#!/usr/bin/env python
"""Quickstart: infer AS relationships end to end in ~20 lines.

Generates a small synthetic Internet, collects BGP paths at vantage
points, runs the ASRank inference pipeline, and scores the result
against the planted ground truth.

Run:  python examples/quickstart.py
"""

from repro.relationships import Relationship
from repro.scenarios import get_scenario
from repro.validation import validate_against_truth


def main() -> None:
    scenario = get_scenario("small")
    graph, corpus, paths, result = scenario.run()

    print(f"topology : {len(graph)} ASes, {graph.num_links()} links")
    print(f"collected: {len(corpus.paths)} paths from {len(corpus.vps)} VPs")
    print(f"sanitized: {len(paths)} unique paths")
    print()

    counts = result.counts_by_relationship()
    print(
        f"inferred {len(result)} relationships: "
        f"{counts.get(Relationship.P2C, 0)} customer-provider, "
        f"{counts.get(Relationship.P2P, 0)} peer-peer"
    )
    print(f"inferred clique: {result.clique.members}")
    print(f"true clique    : {graph.clique_asns()}")
    print()

    report = validate_against_truth(result, graph)
    print("accuracy against ground truth:")
    for rel in (Relationship.P2C, Relationship.P2P):
        metrics = report.by_class.get(rel)
        if metrics:
            print(f"  {rel.label}: PPV {metrics.ppv:.4f} over {metrics.total} links")


if __name__ == "__main__":
    main()
