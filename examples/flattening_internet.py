#!/usr/bin/env python
"""The flattening Internet: cone shares over a 15-year-style series.

Grows one topology through six eras (new edge networks arrive, content
networks peer ever more densely, the clique gains entrants), re-runs
collection + inference on every snapshot, and prints the two
longitudinal series the paper plots: clique membership per era and the
cone share of the largest transit providers — which *declines* as
peering routes around them.

Run:  python examples/flattening_internet.py
"""

from repro.analysis.timeseries import flattening_series, series_metrics
from repro.scenarios import evolution_scenario
from repro.topology.evolution import generate_series


def main() -> None:
    config = evolution_scenario(eras=6)
    print("growing the topology series ...")
    snapshots = generate_series(config)
    for label, graph in snapshots:
        print(f"  {label:<7} {len(graph):>5} ASes  {graph.num_links():>6} links")

    print("\ncollecting + inferring every era ...")
    metrics = series_metrics(snapshots)

    print("\nclique evolution (inferred vs true):")
    for m in metrics:
        print(
            f"  {m.label:<7} inferred {len(m.inferred_clique):>2} members "
            f"(recall {m.clique_recall:.0%}), true {len(m.true_clique):>2}"
        )

    tracked = flattening_series(metrics)
    print("\ncone share of the largest providers per era "
          "(fraction of all ASes):")
    header = "  ASN     " + "".join(f"{m.label:>9}" for m in metrics)
    print(header)
    for asn, shares in sorted(
        tracked.items(), key=lambda kv: -max(kv[1])
    )[:6]:
        row = f"  AS{asn:<6}" + "".join(f"{s:>8.1%} " for s in shares)
        print(row)

    # the flattening claim: the biggest early-era cone loses share
    first_top = max(tracked, key=lambda a: tracked[a][0])
    first, last = tracked[first_top][0], tracked[first_top][-1]
    direction = "shrank" if last < first else "grew"
    print(
        f"\nAS{first_top} held {first:.1%} of the Internet in the first era "
        f"and {last:.1%} in the last — its share {direction} as the edge "
        f"densified."
    )


if __name__ == "__main__":
    main()
