#!/usr/bin/env python
"""Reproduce the paper's validation methodology.

Assembles the four validation corpora (operator reports, BGP
communities, RPSL policies, LOCAL_PREF routing policies), shows their
sizes and pairwise overlap, then scores the inference per relationship
class, per pipeline step, and per validation source — the paper's
Tables 1-3 in miniature.

Run:  python examples/validation_study.py
"""

from repro.relationships import Relationship
from repro.scenarios import get_scenario
from repro.validation import (
    communities_corpus,
    direct_report_corpus,
    routing_policy_corpus,
    rpsl_corpus,
    validate,
)


def main() -> None:
    scenario = get_scenario("medium")
    graph, corpus, paths, result = scenario.run()

    sources = {
        "direct": direct_report_corpus(graph),
        "communities": communities_corpus(corpus.rib, graph.ixp_asns()),
        "rpsl": rpsl_corpus(graph),
        "policy": routing_policy_corpus(graph),
    }

    print("validation corpora (cf. the paper's Table 1):\n")
    print(f"{'source':<14}{'links':>8}")
    merged = None
    for name, source in sources.items():
        print(f"{name:<14}{len(source):>8}")
        merged = source if merged is None else merged.merge(source)
    print(f"{'merged':<14}{len(merged):>8}")

    print("\npairwise overlap (links covered by both):")
    names = list(sources)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            print(f"  {a:<12} ∩ {b:<12} {merged.overlap(a, b):>6}")

    report = validate(result, merged, step_lookup=result.step_of)
    print(
        f"\n{len(result)} inferences, {report.validated} validated "
        f"({report.coverage:.1%} coverage), {report.conflicted} conflicted"
    )

    print("\nPPV by relationship class (paper: c2p 99.6%, p2p 98.7%):")
    for rel in (Relationship.P2C, Relationship.P2P):
        metrics = report.by_class.get(rel)
        if metrics:
            print(f"  {rel.label}: {metrics.ppv:.4f} ({metrics.total} judged)")

    print("\nPPV by inference step:")
    for step, metrics in sorted(report.by_step.items()):
        print(f"  {step:<18} {metrics.ppv:.4f} ({metrics.total} judged)")

    print("\nPPV by validation source:")
    for source, metrics in sorted(report.by_source.items()):
        print(f"  {source:<14} {metrics.ppv:.4f} ({metrics.total} judged)")

    if report.mistakes:
        print(f"\nfirst disagreements ({len(report.mistakes)} total):")
        for (a, b), inferred, truth in report.mistakes[:5]:
            print(
                f"  {a}-{b}: inferred {inferred.label}, "
                f"{truth.source} says {truth.relationship.label}"
            )


if __name__ == "__main__":
    main()
