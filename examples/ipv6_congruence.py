#!/usr/bin/env python
"""Are AS relationships the same over IPv4 and IPv6?

The authors' follow-on study (PAM 2015) ran the IMC 2013 algorithm on
both address families and compared.  This example does the same on one
synthetic world with partial IPv6 adoption: collect each plane, infer
each independently, and measure link-level congruence.

Run:  python examples/ipv6_congruence.py
"""

from repro.analysis.congruence import congruence_report
from repro.bgp.collector import Collector, CollectorConfig
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.topology.generator import GeneratorConfig, generate_topology


def infer_plane(graph, plane: str):
    corpus = Collector(
        graph, CollectorConfig(n_vps=20, seed=9), plane=plane
    ).run()
    paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
    return infer_relationships(paths), paths


def main() -> None:
    graph = generate_topology(GeneratorConfig(n_ases=500, seed=60))
    v6_count = len(graph.v6_asns())
    print(f"{len(graph)} ASes, {v6_count} have deployed IPv6\n")

    result_v4, paths_v4 = infer_plane(graph, "v4")
    result_v6, paths_v6 = infer_plane(graph, "v6")
    print(f"v4 plane: {len(paths_v4)} paths, {len(result_v4)} links labeled")
    print(f"v6 plane: {len(paths_v6)} paths, {len(result_v6)} links labeled")

    report = congruence_report(result_v4, result_v6)
    print(f"\ndual links: {report.dual_links}")
    print(f"congruent : {report.congruent} ({report.congruence:.1%}) "
          f"— PAM'15 measured ~96-97%")
    print(f"v4-only   : {report.v4_only} (the non-adopting edge)")
    print(f"v6-only   : {report.v6_only}")
    print("\nper-class agreement:")
    for rel, (total, agree) in sorted(report.by_relationship.items()):
        print(f"  {rel}: {agree}/{total} ({agree / total:.1%})")
    print(f"\nclique v4: {report.clique_v4}")
    print(f"clique v6: {report.clique_v6}  (jaccard {report.clique_jaccard:.2f})")


if __name__ == "__main__":
    main()
