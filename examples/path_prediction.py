#!/usr/bin/env python
"""Validate relationships by predicting paths (the Gao-style check).

Rebuilds the routing system from each algorithm's inferred labels,
re-derives every observed (vantage point, origin) path with policy
routing, and scores how many real paths each label set can reproduce.
Wrong relationship directions make real paths underivable — so this is
an end-to-end check that needs no ground truth at all.

Run:  python examples/path_prediction.py
"""

from repro.baselines import infer_degree, infer_gao
from repro.core.prediction import predict_paths
from repro.scenarios import get_scenario


def main() -> None:
    scenario = get_scenario("small")
    graph, corpus, paths, result = scenario.run()
    observed = paths.paths
    print(f"{len(observed)} observed paths from {len(corpus.vps)} VPs\n")

    algorithms = {
        "asrank": result,
        "gao2001": infer_gao(paths),
        "degree": infer_degree(paths),
    }
    print(f"{'algorithm':<10}{'exact':>9}{'same len':>10}{'reachable':>11}")
    for name, inference in algorithms.items():
        report = predict_paths(inference, observed, max_origins=100)
        print(
            f"{name:<10}{report.exact_rate:>9.1%}"
            f"{report.length_rate:>10.1%}{report.reachability:>11.1%}"
        )

    print(
        "\nasrank reproduces the most observed paths: its labels describe "
        "a routing system that actually produces the measured Internet."
    )


if __name__ == "__main__":
    main()
