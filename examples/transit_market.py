#!/usr/bin/env python
"""Transit market analysis: who carries the Internet?

The motivating application of customer cones (asrank.caida.org): rank
transit providers by the share of ASes, prefixes and address space in
their customer cone, and show how the three cone definitions disagree
about market size.

Run:  python examples/transit_market.py
"""

from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.rank import rank_ases
from repro.scenarios import get_scenario


def main() -> None:
    scenario = get_scenario("medium")
    print(f"running scenario {scenario.name!r}: {scenario.description}")
    graph, corpus, paths, result = scenario.run()

    prefixes = {asys.asn: asys.prefixes for asys in graph.ases()}
    cones = CustomerCones.compute(
        result,
        ConeDefinition.PROVIDER_PEER_OBSERVED,
        prefixes_by_asn=prefixes,
    )

    total_ases = len(paths.asns())
    print(f"\nTop transit providers by customer cone "
          f"({total_ases} ASes observed):\n")
    print(f"{'rank':>4} {'ASN':>7} {'cone ASes':>10} {'share':>7} "
          f"{'prefixes':>9} {'addresses':>12} {'customers':>10}")
    for entry in rank_ases(result, cones, limit=15):
        share = entry.cone_ases / total_ases
        print(
            f"{entry.rank:>4} {entry.asn:>7} {entry.cone_ases:>10} "
            f"{share:>6.1%} {entry.cone_prefixes:>9} "
            f"{entry.cone_addresses:>12,} {entry.num_customers:>10}"
        )

    # how much the cone definition matters for the market-share question
    print("\nCone of the #1 provider under each definition:")
    top_asn = rank_ases(result, cones, limit=1)[0].asn
    for definition in ConeDefinition:
        alt = CustomerCones.compute(result, definition)
        print(f"  {definition.value:<24} {alt.size_ases(top_asn):>6} ASes")

    truth = len(graph.customer_cone(top_asn))
    print(f"  {'ground truth (recursive)':<24} {truth:>6} ASes")


if __name__ == "__main__":
    main()
