#!/usr/bin/env python
"""Consume BGP data the way the paper does: from MRT RIB dumps.

Simulates a collector snapshot, serializes it as a byte-exact RFC 6396
TABLE_DUMP_V2 file (what RouteViews publishes), then runs the entire
downstream pipeline — parse, sanitize, infer, export ``as-rel`` and
``ppdc-ases`` files in CAIDA's published formats — purely from the file.

Run:  python examples/mrt_pipeline.py [output-dir]
"""

import os
import sys
import tempfile

from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.datasets import save_as_rel, save_ppdc_ases
from repro.mrt.reader import read_rib_dump
from repro.mrt.writer import write_rib_dump
from repro.scenarios import get_scenario


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-mrt-"
    )
    os.makedirs(out_dir, exist_ok=True)

    # --- collector side: produce the dump ------------------------------
    scenario = get_scenario("small")
    graph, corpus = scenario.collect()
    mrt_path = os.path.join(out_dir, "rib.mrt")
    records = write_rib_dump(mrt_path, corpus.rib, view_name="repro-rv2")
    size_kib = os.path.getsize(mrt_path) / 1024
    print(f"wrote {records} RIB records ({size_kib:.0f} KiB) to {mrt_path}")

    # --- consumer side: everything below only touches the file ---------
    rib_rows = read_rib_dump(mrt_path)
    print(f"parsed {len(rib_rows)} (prefix, peer) rows back")

    paths = PathSet.sanitize(
        (row.as_path for row in rib_rows), ixp_asns=graph.ixp_asns()
    )
    print("sanitization:")
    for name, value in paths.stats.as_rows():
        print(f"  {name:<26}{value}")

    result = infer_relationships(paths)
    print(f"\ninferred {len(result)} relationships, "
          f"clique {result.clique.members}")

    as_rel = os.path.join(out_dir, "as-rel.txt")
    save_as_rel(as_rel, result, comments=["inferred from rib.mrt"])
    cones = CustomerCones.compute(result, ConeDefinition.PROVIDER_PEER_OBSERVED)
    ppdc = os.path.join(out_dir, "ppdc-ases.txt")
    save_ppdc_ases(ppdc, cones.cones, comments=["provider/peer observed"])
    print(f"\nwrote {as_rel}")
    print(f"wrote {ppdc}")
    print("\nfirst as-rel lines:")
    with open(as_rel) as handle:
        for line in list(handle)[:6]:
            print(f"  {line.rstrip()}")


if __name__ == "__main__":
    main()
