"""Mask numpy for the no-numpy CI leg.

Placed first on ``PYTHONPATH``, this is imported automatically by the
interpreter's ``site`` machinery and installs a meta-path finder that
makes ``import numpy`` fail even though the wheel is installed.  The
tier-1 suite then exercises every pure-Python fallback: the graph
core's list-backed CSR (:mod:`repro.graph.csr`), the inference
engine's non-vectorized corpus indexing, and route propagation's
reference sweeps.

Usage (mirrors .github/workflows/ci.yml):

    PYTHONPATH=ci/no-numpy:src python -m pytest -x -q
"""

import sys


class _NumpyBlocker:
    """Meta-path finder that refuses to find numpy."""

    _BLOCKED = ("numpy",)

    def find_spec(self, fullname, path=None, target=None):
        root = fullname.split(".", 1)[0]
        if root in self._BLOCKED:
            raise ImportError(
                f"{fullname} is masked by ci/no-numpy/sitecustomize.py "
                "(no-numpy CI leg)"
            )
        return None


# run ahead of every other finder so cached/real specs never resolve
sys.meta_path.insert(0, _NumpyBlocker())
