"""Tests for route-leak modeling and the pipeline's robustness to it."""

import pytest

from repro.bgp.collector import Collector, CollectorConfig
from repro.bgp.noise import NoiseConfig
from repro.bgp.propagation import (
    CLS_CUSTOMER,
    GraphIndex,
    propagate_origin,
)
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.relationships import Relationship
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.model import AS, ASGraph, ASType
from repro.validation.validator import validate_against_truth


def make_graph(p2c=(), p2p=()):
    graph = ASGraph()
    asns = {a for link in list(p2c) + list(p2p) for a in link}
    for asn in sorted(asns):
        graph.add_as(AS(asn=asn, type=ASType.SMALL_TRANSIT))
    for provider, customer in p2c:
        graph.add_p2c(provider, customer)
    for a, b in p2p:
        graph.add_p2p(a, b)
    return graph


class TestLeakPass:
    def test_leak_exposes_provider_route_upward(self):
        # x(=3) buys from p1(=1) and p2(=2); origin 9 is reachable only
        # via p2.  Without a leak, p1 never hears about 9 through 3.
        graph = make_graph(p2c=[(1, 3), (2, 3), (2, 9)])
        index = GraphIndex(graph)

        clean = propagate_origin(index, 9)
        # without the leak, p1 reaches 9 via... nothing (1 has no route)
        assert clean.cls[index.index[1]] == 0

        leaked = propagate_origin(index, 9, leakers={3})
        i1 = index.index[1]
        assert leaked.cls[i1] == CLS_CUSTOMER  # the leak looks like one
        assert leaked.path_from(index, i1) == (1, 3, 2, 9)

    def test_leaked_path_contains_valley(self):
        graph = make_graph(p2c=[(1, 3), (2, 3), (2, 9), (1, 5)])
        index = GraphIndex(graph)
        leaked = propagate_origin(index, 9, leakers={3})
        path = leaked.path_from(index, index.index[5])
        assert path == (5, 1, 3, 2, 9)
        # 3 is a customer of both 1 and 2: the path goes down into 3
        # and back up — a valley
        assert graph.provider_of(1, 3) == 1
        assert graph.provider_of(2, 3) == 2

    def test_leaker_keeps_its_own_route(self):
        graph = make_graph(p2c=[(1, 3), (2, 3), (2, 9)])
        index = GraphIndex(graph)
        leaked = propagate_origin(index, 9, leakers={3})
        i3 = index.index[3]
        assert leaked.path_from(index, i3) == (3, 2, 9)

    def test_no_leak_when_route_is_customer(self):
        # the leaker's route to the origin is a customer route: exporting
        # it upward is legitimate, so nothing changes
        graph = make_graph(p2c=[(1, 3), (2, 3), (3, 9)])
        index = GraphIndex(graph)
        clean = propagate_origin(index, 9)
        leaked = propagate_origin(index, 9, leakers={3})
        assert clean.cls == leaked.cls
        assert clean.nexthop == leaked.nexthop

    def test_paths_remain_loop_free_under_leaks(self):
        graph = generate_topology(GeneratorConfig(n_ases=150, seed=8))
        index = GraphIndex(graph)
        multihomed = [
            a.asn for a in graph.ases() if len(graph.providers[a.asn]) >= 2
        ][:5]
        origins = [a.asn for a in graph.ases() if a.prefixes][:40]
        for origin in origins:
            state = propagate_origin(index, origin, leakers=set(multihomed))
            for i in range(len(index)):
                path = state.path_from(index, i)
                if path:
                    assert len(path) == len(set(path)), (origin, path)

    def test_deterministic(self):
        graph = make_graph(p2c=[(1, 3), (2, 3), (2, 9), (1, 5)])
        index = GraphIndex(graph)
        a = propagate_origin(index, 9, leakers={3})
        b = propagate_origin(index, 9, leakers={3})
        assert a.cls == b.cls and a.nexthop == b.nexthop


class TestCollectorLeaks:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_topology(GeneratorConfig(n_ases=200, seed=15))

    def test_leakers_chosen_multihomed(self, graph):
        config = CollectorConfig(n_vps=10, seed=2, n_route_leakers=3)
        collector = Collector(graph, config)
        assert len(collector.leakers) == 3
        for leaker in collector.leakers:
            assert len(graph.providers[leaker]) >= 2

    def test_no_leakers_by_default(self, graph):
        collector = Collector(graph, CollectorConfig(n_vps=10, seed=2))
        assert collector.leakers == []

    def test_leaks_change_observed_paths(self, graph):
        base = CollectorConfig(n_vps=12, seed=2, noise=NoiseConfig.none())
        leaky = CollectorConfig(
            n_vps=12, seed=2, noise=NoiseConfig.none(),
            n_route_leakers=5, leak_origin_fraction=0.3,
        )
        clean_paths = set(Collector(graph, base).run().paths)
        leaky_paths = set(Collector(graph, leaky).run().paths)
        assert clean_paths != leaky_paths

    def test_inference_survives_moderate_leaks(self, graph):
        config = CollectorConfig(
            n_vps=16, seed=2, n_route_leakers=3, leak_origin_fraction=0.1,
        )
        corpus = Collector(graph, config).run()
        paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
        result = infer_relationships(paths)
        report = validate_against_truth(result, graph)
        # leaks cost accuracy but must not break the pipeline
        assert report.ppv(Relationship.P2C) > 0.9
        assert report.overall_ppv > 0.85
