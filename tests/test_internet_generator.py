"""The internet-scale topology generator (linear-time wiring path)."""

from __future__ import annotations

import hashlib
import subprocess
import sys
from collections import Counter
from pathlib import Path

import pytest

from repro.relationships import Relationship
from repro.topology.generator import (
    InternetScaleConfig,
    generate_internet_topology,
)
from repro.topology.model import ASType, TopologyError, TRANSIT_TYPES

N = 4000
SEED = 17


@pytest.fixture(scope="module")
def graph():
    return generate_internet_topology(InternetScaleConfig(n_ases=N, seed=SEED))


def _world_digest(graph) -> str:
    """One hash over everything the generator decides."""
    h = hashlib.sha256()
    for asys in sorted(graph.ases(), key=lambda a: a.asn):
        h.update(
            f"{asys.asn}|{asys.type.value}|{asys.region}|"
            f"{','.join(map(str, asys.prefixes))}\n".encode()
        )
    for a, b, rel in sorted(
        (a, b, rel.value) for a, b, rel in graph.links()
    ):
        h.update(f"{a}-{b}:{rel}\n".encode())
    for pair, rs in sorted(graph.via_ixp.items()):
        h.update(f"ixp:{pair}:{rs}\n".encode())
    return h.hexdigest()


class TestStructure:
    def test_population_and_roles(self, graph):
        counts = Counter(a.type for a in graph.ases())
        config = InternetScaleConfig(n_ases=N, seed=SEED)
        expected = config.role_counts()
        for as_type, count in expected.items():
            assert counts[as_type] == count
        assert counts[ASType.IXP_RS] == config.regions

    def test_invariants_hold(self, graph):
        assert graph.validate_invariants() == []

    def test_clique_is_meshed_and_transit_free(self, graph):
        clique = graph.clique_asns()
        assert len(clique) == InternetScaleConfig().clique_size
        for i, a in enumerate(clique):
            assert not graph.providers[a]
            for b in clique[i + 1:]:
                assert graph.relationship(a, b) is Relationship.P2P

    def test_power_law_ish_customer_degrees(self, graph):
        """Preferential attachment concentrates customers heavily."""
        degrees = sorted(
            (len(graph.customers[a.asn]) for a in graph.ases()),
            reverse=True,
        )
        total = sum(degrees)
        top_one_percent = sum(degrees[: max(1, len(degrees) // 100)])
        assert top_one_percent > 0.35 * total
        # and role tracks realized size: clique members beat the median
        median = degrees[len(degrees) // 2]
        for asn in graph.clique_asns():
            assert len(graph.customers[asn]) > median

    def test_multihoming_mix(self, graph):
        counts = Counter(
            len(graph.providers[a.asn])
            for a in graph.ases()
            if a.type not in (ASType.CLIQUE, ASType.IXP_RS)
        )
        assert counts[1] > 0  # single-homed edge exists
        assert sum(n for c, n in counts.items() if c >= 2) > 0  # multihomed
        assert max(counts) <= InternetScaleConfig().max_providers

    def test_stubs_are_single_homed_non_transit(self, graph):
        for asys in graph.ases():
            if asys.type is ASType.STUB:
                assert len(graph.providers[asys.asn]) == 1
                assert not graph.customers[asys.asn]

    def test_transit_edges_point_down_the_hierarchy(self, graph):
        tier = {
            ASType.CLIQUE: 0,
            ASType.LARGE_TRANSIT: 1,
            ASType.SMALL_TRANSIT: 2,
            ASType.ACCESS: 3,
            ASType.CONTENT: 4,
            ASType.ENTERPRISE: 4,
            ASType.STUB: 4,
        }
        for provider, customer, rel in graph.links():
            if rel is Relationship.P2C:
                assert (
                    tier[graph.get_as(provider).type]
                    < tier[graph.get_as(customer).type]
                )

    def test_every_as_announces_at_most_plan_prefixes(self, graph):
        for asys in graph.ases():
            if asys.type is ASType.IXP_RS:
                assert not asys.prefixes
            else:
                assert asys.prefixes

    def test_prefixes_do_not_overlap(self, graph):
        spans = sorted(
            (p.network, p.broadcast)
            for a in graph.ases()
            for p in a.prefixes
        )
        for (_, hi), (lo, _) in zip(spans, spans[1:]):
            assert lo > hi

    def test_ixp_links_reference_real_peerings(self, graph):
        rs_asns = graph.ixp_asns()
        assert graph.via_ixp
        for (a, b), rs in graph.via_ixp.items():
            assert graph.relationship(a, b) is Relationship.P2P
            assert rs in rs_asns

    def test_v6_plane_off_by_default(self, graph):
        assert all(not a.prefixes6 for a in graph.ases())

    def test_peering_density_knob_scales(self):
        sparse = generate_internet_topology(
            InternetScaleConfig(n_ases=2000, seed=3, peering_richness=0.5)
        )
        dense = generate_internet_topology(
            InternetScaleConfig(n_ases=2000, seed=3, peering_richness=2.0)
        )

        def peer_links(g):
            return sum(
                1 for _, _, rel in g.links() if rel is Relationship.P2P
            )

        assert peer_links(dense) > 1.5 * peer_links(sparse)

    def test_too_small_population_is_refused(self):
        with pytest.raises(TopologyError, match="too small"):
            generate_internet_topology(
                InternetScaleConfig(n_ases=20, clique_size=15)
            )


class TestDeterminism:
    def test_same_seed_same_world(self):
        config = InternetScaleConfig(n_ases=2500, seed=9)
        assert _world_digest(
            generate_internet_topology(config)
        ) == _world_digest(generate_internet_topology(config))

    def test_different_seeds_differ(self):
        a = generate_internet_topology(InternetScaleConfig(n_ases=2500, seed=9))
        b = generate_internet_topology(InternetScaleConfig(n_ases=2500, seed=10))
        assert _world_digest(a) != _world_digest(b)

    def test_output_identical_without_numpy(self):
        """The generator is pure stdlib: masking numpy changes nothing."""
        repo = Path(__file__).resolve().parent.parent
        script = (
            "from repro.topology.generator import ("
            "InternetScaleConfig, generate_internet_topology)\n"
            "import sys; sys.path.insert(0, r'%s')\n"
            "from test_internet_generator import _world_digest\n"
            "g = generate_internet_topology("
            "InternetScaleConfig(n_ases=1200, seed=21))\n"
            "print(_world_digest(g))\n" % (repo / "tests")
        )
        digests = {}
        for label, pythonpath in (
            ("numpy", f"{repo / 'src'}"),
            ("no-numpy", f"{repo / 'ci' / 'no-numpy'}:{repo / 'src'}"),
        ):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": pythonpath, "PATH": "/usr/bin:/bin"},
                check=True,
            )
            digests[label] = out.stdout.strip()
        assert digests["numpy"] == digests["no-numpy"]


class TestScale:
    def test_wiring_is_roughly_linear(self):
        """10x the ASes must not cost anything like 100x the time."""
        import time

        def build_seconds(n):
            start = time.perf_counter()
            generate_internet_topology(InternetScaleConfig(n_ases=n, seed=5))
            return time.perf_counter() - start

        build_seconds(1000)  # warm caches
        small = build_seconds(1000)
        large = build_seconds(10_000)
        assert large < 30 * small + 0.5  # quadratic would be ~100x

    def test_transit_reaches_every_as(self, graph):
        """Every AS has a provider chain up to the clique."""
        clique = set(graph.clique_asns())
        for asys in graph.ases():
            if asys.type is ASType.IXP_RS:
                continue
            seen = set()
            frontier = {asys.asn}
            while frontier and not (frontier & clique):
                seen |= frontier
                frontier = {
                    p
                    for asn in frontier
                    for p in graph.providers[asn]
                    if p not in seen
                }
            assert (frontier & clique) or asys.type is ASType.CLIQUE
