"""Unit tests for the RIR-style prefix allocator."""

import pytest

from repro.net.allocation import PrefixAllocator
from repro.net.prefix import Prefix, PrefixError


class TestAllocate:
    def test_allocates_requested_length(self):
        allocator = PrefixAllocator(first_octets=[10])
        p = allocator.allocate(16)
        assert p.length == 16

    def test_never_overlaps(self):
        allocator = PrefixAllocator(first_octets=[10])
        allocated = [allocator.allocate(12) for _ in range(8)]
        allocated += [allocator.allocate(20) for _ in range(50)]
        for i, a in enumerate(allocated):
            for b in allocated[i + 1:]:
                assert not a.contains(b) and not b.contains(a)

    def test_exhaustion_raises(self):
        allocator = PrefixAllocator(first_octets=[10])
        allocator.allocate(8)  # consumes the whole pool
        with pytest.raises(PrefixError):
            allocator.allocate(24)

    def test_rejects_too_short(self):
        allocator = PrefixAllocator(first_octets=[10])
        with pytest.raises(PrefixError):
            allocator.allocate(7)

    def test_rejects_too_long(self):
        allocator = PrefixAllocator(first_octets=[10])
        with pytest.raises(PrefixError):
            allocator.allocate(33)

    def test_allocate_many(self):
        allocator = PrefixAllocator(first_octets=[10])
        batch = allocator.allocate_many(24, 10)
        assert len(batch) == 10
        assert len(set(batch)) == 10

    def test_deterministic(self):
        a = PrefixAllocator(first_octets=[10, 11])
        b = PrefixAllocator(first_octets=[10, 11])
        seq = [16, 24, 12, 20, 20, 16]
        assert [a.allocate(n) for n in seq] == [b.allocate(n) for n in seq]

    def test_remaining_addresses_decreases(self):
        allocator = PrefixAllocator(first_octets=[10])
        before = allocator.remaining_addresses()
        p = allocator.allocate(16)
        assert allocator.remaining_addresses() == before - p.num_addresses

    def test_allocated_tracks_order(self):
        allocator = PrefixAllocator(first_octets=[10])
        p1 = allocator.allocate(16)
        p2 = allocator.allocate(20)
        assert allocator.allocated == [p1, p2]


class TestPool:
    def test_rejects_empty_pool(self):
        with pytest.raises(PrefixError):
            PrefixAllocator(first_octets=[])

    def test_rejects_non_unicast_octet(self):
        with pytest.raises(PrefixError):
            PrefixAllocator(first_octets=[240])

    def test_default_pool_excludes_reserved(self):
        allocator = PrefixAllocator()
        first_octets = {p.network >> 24 for p in [allocator.allocate(8) for _ in range(10)]}
        assert 10 not in first_octets
        assert 127 not in first_octets
        assert 0 not in first_octets

    def test_spans_multiple_slash8(self):
        allocator = PrefixAllocator(first_octets=[10, 11])
        a = allocator.allocate(8)
        b = allocator.allocate(8)
        assert {a.network >> 24, b.network >> 24} == {10, 11}
