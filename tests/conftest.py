"""Shared fixtures: scenario runs are expensive, so they are built once
per session and reused by every test module that needs realistic data."""

from __future__ import annotations

import pytest

from repro.scenarios import get_scenario


class ScenarioRun:
    """Bundle of one full pipeline run."""

    def __init__(self, name: str):
        self.scenario = get_scenario(name)
        self.graph, self.corpus, self.paths, self.result = self.scenario.run()


@pytest.fixture(scope="session")
def tiny_run() -> ScenarioRun:
    """~150-AS pipeline run: cheap enough for most integration tests."""
    return ScenarioRun("tiny")


@pytest.fixture(scope="session")
def small_run() -> ScenarioRun:
    """~300-AS pipeline run for accuracy-sensitive assertions."""
    return ScenarioRun("small")


@pytest.fixture(scope="session")
def clean_run() -> ScenarioRun:
    """Noise-free medium run: every artifact off, full feeds only."""
    return ScenarioRun("clean")
