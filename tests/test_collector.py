"""Unit tests for vantage-point collection."""

import pytest

from repro.bgp.collector import (
    CODE_REL,
    Collector,
    CollectorConfig,
    REL_CODE,
    VantagePoint,
)
from repro.bgp.noise import NoiseConfig
from repro.relationships import RelClass, Relationship
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.model import AS, ASGraph, ASType


@pytest.fixture(scope="module")
def graph():
    return generate_topology(GeneratorConfig(n_ases=200, seed=12))


@pytest.fixture(scope="module")
def quiet_config():
    return CollectorConfig(
        n_vps=10, seed=5, noise=NoiseConfig.none(), partial_feed_fraction=0.0
    )


@pytest.fixture(scope="module")
def corpus(graph, quiet_config):
    return Collector(graph, quiet_config).run()


class TestVantagePoints:
    def test_vp_count(self, graph, quiet_config):
        collector = Collector(graph, quiet_config)
        assert len(collector.vps) == 10

    def test_vps_are_business_ases(self, graph, quiet_config):
        collector = Collector(graph, quiet_config)
        for vp in collector.vps:
            assert graph.get_as(vp.asn).type is not ASType.IXP_RS

    def test_vps_deterministic(self, graph, quiet_config):
        a = Collector(graph, quiet_config).vps
        b = Collector(graph, quiet_config).vps
        assert a == b

    def test_partial_feed_fraction(self, graph):
        config = CollectorConfig(n_vps=20, seed=5, partial_feed_fraction=1.0)
        collector = Collector(graph, config)
        assert all(not vp.full_feed for vp in collector.vps)


class TestPaths:
    def test_paths_start_at_vp(self, corpus):
        vp_asns = {vp.asn for vp in corpus.vps}
        for path in corpus.paths:
            assert path[0] in vp_asns

    def test_paths_end_at_prefix_origin(self, graph, corpus):
        originators = {a.asn for a in graph.ases() if a.prefixes}
        for path in corpus.paths:
            assert path[-1] in originators

    def test_noise_free_paths_are_true_adjacencies(self, graph, corpus):
        for path in corpus.paths:
            for a, b in zip(path, path[1:]):
                assert graph.relationship(a, b) is not None, (a, b)

    def test_full_feed_covers_all_origins(self, graph, quiet_config):
        collector = Collector(graph, quiet_config)
        corpus = collector.run()
        origins = {a.asn for a in graph.ases() if a.prefixes}
        for vp in corpus.vps:
            seen = {p[-1] for p in corpus.paths if p[0] == vp.asn}
            # a full feed reaches essentially every origin
            assert len(seen) >= 0.95 * len(origins)

    def test_partial_feed_is_customer_cone_only(self, graph):
        config = CollectorConfig(
            n_vps=12, seed=5, partial_feed_fraction=1.0, noise=NoiseConfig.none()
        )
        corpus = Collector(graph, config).run()
        for vp in corpus.vps:
            cone = graph.customer_cone(vp.asn)
            for path in corpus.paths:
                if path[0] == vp.asn:
                    assert path[-1] in cone

    def test_restricted_origins(self, graph, quiet_config):
        collector = Collector(graph, quiet_config)
        some_origin = next(a.asn for a in graph.ases() if a.prefixes)
        corpus = collector.run(origins=[some_origin])
        assert corpus.paths
        assert {p[-1] for p in corpus.paths} == {some_origin}

    def test_observed_links_subset_of_truth(self, graph, corpus):
        truth = {(min(a, b), max(a, b)) for a, b, _ in graph.links()}
        assert corpus.observed_links() <= truth

    def test_path_counts_track_duplicates(self, corpus):
        assert sum(corpus.path_counts.values()) >= len(corpus.paths)


class TestRib:
    def test_rib_prefix_per_origin(self, graph, corpus):
        origins = graph.prefix_origins()
        for entry in corpus.rib:
            assert origins[entry.prefix] == entry.origin

    def test_rib_disabled(self, graph):
        config = CollectorConfig(n_vps=5, seed=5, build_rib=False)
        corpus = Collector(graph, config).run()
        assert corpus.rib == []
        assert corpus.paths

    def test_communities_taggers_only(self, graph, quiet_config):
        collector = Collector(graph, quiet_config)
        corpus = collector.run()
        for entry in corpus.rib:
            for tagger, code in entry.communities:
                assert tagger in collector.taggers
                assert code in CODE_REL

    def test_communities_encode_true_relationship(self, graph, quiet_config):
        """With noise off, each tag names the true relationship between
        the tagger and its next hop toward the origin."""
        collector = Collector(graph, quiet_config)
        corpus = collector.run()
        checked = 0
        for entry in corpus.rib[:2000]:
            path = entry.path
            pos = {asn: i for i, asn in enumerate(path)}
            for tagger, code in entry.communities:
                i = pos.get(tagger)
                if i is None or i + 1 >= len(path):
                    continue
                neighbor = path[i + 1]
                rel = graph.relationship(tagger, neighbor)
                relclass = {v: k for k, v in REL_CODE.items()}[code]
                if relclass is RelClass.CUSTOMER:
                    assert rel is Relationship.P2C
                    assert graph.provider_of(tagger, neighbor) == tagger
                elif relclass is RelClass.PROVIDER:
                    assert rel is Relationship.P2C
                    assert graph.provider_of(tagger, neighbor) == neighbor
                else:
                    assert rel is Relationship.P2P
                checked += 1
        assert checked > 50


class TestDeterminism:
    def test_same_config_same_corpus(self, graph, quiet_config):
        a = Collector(graph, quiet_config).run()
        b = Collector(graph, quiet_config).run()
        assert a.paths == b.paths
        assert a.rib == b.rib


class TestObservedMemoization:
    def test_repeated_calls_return_cached_object(self, corpus):
        assert corpus.observed_asns() is corpus.observed_asns()
        assert corpus.observed_links() is corpus.observed_links()

    def test_add_path_invalidates_both_caches(self, graph, quiet_config):
        corpus = Collector(graph, quiet_config).run()
        asns_before = set(corpus.observed_asns())
        links_before = set(corpus.observed_links())
        corpus.add_path((999_901, 999_902))
        assert corpus.observed_asns() == asns_before | {999_901, 999_902}
        assert corpus.observed_links() == links_before | {(999_901, 999_902)}

    def test_duplicate_path_still_invalidates(self, graph, quiet_config):
        corpus = Collector(graph, quiet_config).run()
        path = corpus.paths[0]
        before = corpus.observed_asns()
        corpus.add_path(path)  # increments the count, same path set
        after = corpus.observed_asns()
        assert after == before  # equal contents, possibly fresh set
