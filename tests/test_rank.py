"""Unit tests for AS ranking."""

import pytest

from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.rank import rank_ases


@pytest.fixture(scope="module")
def ranking(small_run):
    prefixes = {a.asn: a.prefixes for a in small_run.graph.ases()}
    cones = CustomerCones.compute(
        small_run.result,
        ConeDefinition.PROVIDER_PEER_OBSERVED,
        prefixes_by_asn=prefixes,
    )
    return rank_ases(small_run.result, cones)


class TestRanking:
    def test_covers_every_observed_as(self, ranking, small_run):
        assert len(ranking) == len(small_run.paths.asns())

    def test_ranks_sequential(self, ranking):
        assert [e.rank for e in ranking] == list(range(1, len(ranking) + 1))

    def test_cone_sizes_non_increasing(self, ranking):
        sizes = [e.cone_ases for e in ranking]
        assert sizes == sorted(sizes, reverse=True)

    def test_limit(self, small_run, ranking):
        prefixes = {a.asn: a.prefixes for a in small_run.graph.ases()}
        cones = CustomerCones.compute(
            small_run.result,
            ConeDefinition.PROVIDER_PEER_OBSERVED,
            prefixes_by_asn=prefixes,
        )
        top5 = rank_ases(small_run.result, cones, limit=5)
        assert len(top5) == 5
        assert [e.asn for e in top5] == [e.asn for e in ranking[:5]]

    def test_top_ranks_are_clique_heavy(self, ranking, small_run):
        """The largest cones belong to tier-1 networks."""
        clique = set(small_run.graph.clique_asns())
        top10_asns = {e.asn for e in ranking[:10]}
        assert len(top10_asns & clique) >= 5

    def test_prefix_and_address_metrics_present(self, ranking):
        top = ranking[0]
        assert top.cone_prefixes is not None and top.cone_prefixes > 0
        assert top.cone_addresses is not None and top.cone_addresses > 0

    def test_metrics_without_prefix_data(self, small_run):
        cones = CustomerCones.compute(small_run.result)
        entries = rank_ases(small_run.result, cones, limit=3)
        assert all(e.cone_prefixes is None for e in entries)
        assert all(e.cone_addresses is None for e in entries)

    def test_neighbor_counts_consistent(self, ranking, small_run):
        result = small_run.result
        for entry in ranking[:20]:
            assert entry.num_customers == len(result.customers_of_asn(entry.asn))
            assert entry.num_peers == len(result.peers_of_asn(entry.asn))
            assert entry.num_providers == len(result.providers_of_asn(entry.asn))
