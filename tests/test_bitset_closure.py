"""Adversarial tests for the incremental transitive closure.

``ClosureBitsets`` is the inference engine's cycle gate: after every
``add_edge`` its strict ancestor/descendant bitsets must equal what the
batch ``closure_bits`` computes over the edges seen so far.  These
tests replay interleaved add sequences — chains, stars, diamonds and
seeded random DAGs — and compare against the batch oracle after every
single edge.
"""

import random

from repro.graph.bitset import ClosureBitsets, closure_bits


def _batch_oracle(n, edges):
    """Strict anc/desc lists via two batch closure passes."""
    children = {}
    parents = {}
    for parent, child in edges:
        children.setdefault(parent, []).append(child)
        parents.setdefault(child, []).append(parent)
    desc = [
        bits ^ (1 << i) for i, bits in enumerate(closure_bits(n, children))
    ]
    anc = [
        bits ^ (1 << i) for i, bits in enumerate(closure_bits(n, parents))
    ]
    return anc, desc


def _replay_and_check(n, edges):
    """add_edge one at a time; oracle-compare after every step."""
    closure = ClosureBitsets()
    closure.ensure(n)
    for count, (parent, child) in enumerate(edges, start=1):
        closure.add_edge(parent, child)
        anc, desc = _batch_oracle(n, edges[:count])
        assert closure.anc == anc, f"anc diverged after {count} edges"
        assert closure.desc == desc, f"desc diverged after {count} edges"
    return closure


class TestIncrementalMatchesBatch:
    def test_chain_built_forward(self):
        edges = [(i, i + 1) for i in range(8)]
        _replay_and_check(9, edges)

    def test_chain_built_backward(self):
        # joining two long reachability sets with the last edge is the
        # worst case for incremental propagation
        edges = [(i, i + 1) for i in reversed(range(8))]
        _replay_and_check(9, edges)

    def test_chain_built_from_both_ends(self):
        order = [0, 7, 1, 6, 2, 5, 3, 4]
        edges = [(i, i + 1) for i in order]
        _replay_and_check(9, edges)

    def test_star_and_diamond(self):
        # hub with spokes, then a diamond grafted onto one spoke
        edges = [(0, i) for i in range(1, 5)]
        edges += [(1, 5), (1, 6), (5, 7), (6, 7), (7, 8)]
        _replay_and_check(9, edges)

    def test_duplicate_edges_are_idempotent(self):
        edges = [(0, 1), (1, 2), (0, 1), (0, 2), (1, 2)]
        closure = _replay_and_check(3, edges)
        anc, desc = _batch_oracle(3, [(0, 1), (1, 2), (0, 2)])
        assert closure.anc == anc and closure.desc == desc

    def test_random_dags(self):
        for seed in range(6):
            rng = random.Random(seed)
            n = rng.randint(10, 24)
            closure = ClosureBitsets()
            closure.ensure(n)
            edges = []
            candidates = [
                (a, b) for a in range(n) for b in range(n) if a != b
            ]
            rng.shuffle(candidates)
            for parent, child in candidates:
                # mirror the engine: refuse edges that would close a
                # cycle, accept everything else in arrival order
                if closure.descends(child, parent) or parent == child:
                    continue
                closure.add_edge(parent, child)
                edges.append((parent, child))
                if len(edges) >= 2 * n:
                    break
            anc, desc = _batch_oracle(n, edges)
            assert closure.anc == anc, f"seed {seed}: anc diverged"
            assert closure.desc == desc, f"seed {seed}: desc diverged"

    def test_ensure_mid_sequence(self):
        closure = ClosureBitsets()
        closure.ensure(2)
        closure.add_edge(0, 1)
        closure.ensure(5)
        closure.add_edge(1, 4)
        closure.add_edge(4, 2)
        anc, desc = _batch_oracle(5, [(0, 1), (1, 4), (4, 2)])
        assert closure.anc == anc and closure.desc == desc

    def test_descends_is_strict(self):
        closure = ClosureBitsets()
        closure.ensure(3)
        closure.add_edge(0, 1)
        closure.add_edge(1, 2)
        assert closure.descends(0, 2)
        assert closure.descends(0, 1)
        assert not closure.descends(0, 0)  # strict: not its own descendant
        assert not closure.descends(2, 0)


class TestRebuild:
    def test_rebuild_equals_incremental(self):
        rng = random.Random(99)
        n = 16
        incremental = ClosureBitsets()
        incremental.ensure(n)
        edges = []
        for _ in range(60):
            parent, child = rng.randrange(n), rng.randrange(n)
            if parent == child or incremental.descends(child, parent):
                continue
            incremental.add_edge(parent, child)
            edges.append((parent, child))
        rebuilt = ClosureBitsets.rebuild(n, edges)
        assert rebuilt.anc == incremental.anc
        assert rebuilt.desc == incremental.desc

    def test_rebuild_after_removal(self):
        # the documented removal path: drop an edge, rebuild from the
        # survivors, and the closure shrinks accordingly
        edges = [(0, 1), (1, 2), (2, 3)]
        full = ClosureBitsets.rebuild(4, edges)
        assert full.descends(0, 3)
        pruned = ClosureBitsets.rebuild(4, [(0, 1), (2, 3)])
        assert not pruned.descends(0, 3)
        assert pruned.descends(0, 1)
        assert pruned.descends(2, 3)
        anc, desc = _batch_oracle(4, [(0, 1), (2, 3)])
        assert pruned.anc == anc and pruned.desc == desc

    def test_rebuild_empty(self):
        empty = ClosureBitsets.rebuild(3, [])
        assert empty.anc == [0, 0, 0]
        assert empty.desc == [0, 0, 0]


class TestAgainstInference:
    def test_engine_closure_matches_batch(self):
        """The engine's live closure equals a batch closure over the
        p2c edges it actually accepted."""
        from repro.bgp.collector import Collector, CollectorConfig
        from repro.core.inference import infer_relationships
        from repro.core.paths import PathSet
        from repro.topology.generator import GeneratorConfig, generate_topology

        graph = generate_topology(GeneratorConfig(n_ases=120, seed=23))
        corpus = Collector(graph, CollectorConfig(n_vps=8, seed=23)).run()
        result = infer_relationships(
            PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
        )
        index = result.index
        edges = []
        for (a, b) in result.links():
            provider = result.provider_of(a, b)
            if provider is None:
                continue
            customer = b if provider == a else a
            edges.append((index.ids[provider], index.ids[customer]))
        rebuilt = ClosureBitsets.rebuild(len(index.asns), edges)
        live = result._closure
        assert live.desc[: len(rebuilt.desc)] == rebuilt.desc
        assert live.anc[: len(rebuilt.anc)] == rebuilt.anc
