"""Batched propagation engine vs the reference sweeps — bit identity.

The batched engine (``propagate_batch`` with the default
``PropagationConfig``) must reproduce ``propagate_origin`` exactly —
same route classes, next hops, path lengths and therefore identical
reconstructed paths — on every graph shape, including the leak pass
and the restricted (IPv6) routing plane.
"""

from __future__ import annotations

import random

import pytest

from repro.bgp.propagation import (
    GraphIndex,
    PropagationConfig,
    propagate_batch,
    propagate_origin,
)
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.model import AS, ASGraph, ASType


def random_graph(seed: int, n: int = 50) -> ASGraph:
    """A random multihomed DAG plus peering links."""
    rng = random.Random(seed)
    graph = ASGraph()
    asns = [100 + i for i in range(n)]
    for asn in asns:
        graph.add_as(AS(asn=asn, type=ASType.SMALL_TRANSIT))
    for i, asn in enumerate(asns[1:], start=1):
        for provider in rng.sample(asns[:i], rng.randint(1, min(3, i))):
            try:
                graph.add_p2c(provider, asn)
            except Exception:
                pass
    for _ in range(n):
        a, b = rng.sample(asns, 2)
        try:
            graph.add_p2p(a, b)
        except Exception:
            pass
    return graph


def assert_equivalent(index, origins, leakers_by_origin=None, batch_size=128):
    """Batched states must match the reference origin by origin."""
    leakers_by_origin = leakers_by_origin or {}
    batched = propagate_batch(
        index,
        origins,
        leakers_by_origin,
        PropagationConfig(batched=True, batch_size=batch_size),
    )
    assert len(batched) == len(origins)
    for asn, state in zip(origins, batched):
        reference = propagate_origin(
            index, asn, leakers=leakers_by_origin.get(asn)
        )
        assert state.origin == reference.origin
        assert list(state.cls) == list(reference.cls)
        assert list(state.nexthop) == list(reference.nexthop)
        assert list(state.pathlen) == list(reference.pathlen)
        for i in range(len(index)):
            assert state.path_from(index, i) == reference.path_from(index, i)


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_graphs(self, seed):
        index = GraphIndex(random_graph(seed))
        assert_equivalent(index, index.asns)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_leak_pass_active(self, seed):
        graph = random_graph(seed)
        index = GraphIndex(graph)
        rng = random.Random(seed + 99)
        multihomed = [
            asn for asn in index.asns if len(graph.providers[asn]) >= 2
        ]
        assert multihomed, "fixture graph must have multihomed ASes"
        leakers_by_origin = {
            asn: set(rng.sample(multihomed, min(2, len(multihomed))))
            for asn in index.asns[::3]
        }
        assert_equivalent(index, index.asns, leakers_by_origin)

    def test_generated_topology(self):
        graph = generate_topology(GeneratorConfig(n_ases=150, seed=7))
        index = GraphIndex(graph)
        assert_equivalent(index, index.asns)

    def test_v6_restricted_plane(self):
        graph = generate_topology(GeneratorConfig(n_ases=150, seed=7))
        index = GraphIndex(graph, restrict=graph.v6_asns())
        assert 0 < len(index) < len(graph)
        assert_equivalent(index, index.asns)

    def test_odd_batch_size(self):
        graph = generate_topology(GeneratorConfig(n_ases=120, seed=3))
        index = GraphIndex(graph)
        assert_equivalent(index, index.asns, batch_size=17)


class TestEdgeShapes:
    def test_origin_with_no_route_anywhere(self):
        """An isolated AS routes only to itself in every engine."""
        graph = random_graph(4, n=20)
        graph.add_as(AS(asn=999, type=ASType.STUB))  # no links at all
        index = GraphIndex(graph)
        assert_equivalent(index, index.asns)
        state = propagate_batch(index, [999])[0]
        isolated = index.index[999]
        assert state.path_from(index, isolated) == (999,)
        assert all(
            state.cls[i] == 0 for i in range(len(index)) if i != isolated
        )

    def test_single_as_graph(self):
        graph = ASGraph()
        graph.add_as(AS(asn=42, type=ASType.STUB))
        index = GraphIndex(graph)
        assert_equivalent(index, [42])

    def test_batch_size_larger_than_origin_count(self):
        graph = random_graph(5, n=30)
        index = GraphIndex(graph)
        assert_equivalent(index, index.asns[:4], batch_size=512)

    def test_empty_origin_list(self):
        index = GraphIndex(random_graph(6, n=10))
        assert propagate_batch(index, []) == []


class TestFallback:
    def test_batched_false_uses_reference_sweeps(self):
        graph = random_graph(8, n=25)
        index = GraphIndex(graph)
        states = propagate_batch(
            index, index.asns, config=PropagationConfig(batched=False)
        )
        for asn, state in zip(index.asns, states):
            reference = propagate_origin(index, asn)
            assert list(state.cls) == list(reference.cls)
            assert list(state.nexthop) == list(reference.nexthop)

    def test_batched_rows_are_plain_python(self):
        """Row extraction yields plain ints, same types as the reference."""
        index = GraphIndex(random_graph(9, n=25))
        state = propagate_batch(index, index.asns[:1])[0]
        assert type(state.cls) is list
        assert all(type(v) is int for v in state.cls)
        assert all(type(v) is int for v in state.nexthop)

    def test_csr_is_built_once_and_cached(self):
        index = GraphIndex(random_graph(10, n=15))
        assert index.csr() is index.csr()
