"""Tests for the shared columnar graph core (repro.graph).

The core's contract is *one* id space per world: the property tests
here assert that inference, cones, propagation and the snapshot store
all address the same world through literally the same (or bit-equal)
``DenseIndex``, and that the bitset/CSR structures built over it are
deterministic.  QA worlds (repro.qa) supply realistic topologies;
hypothesis drives the index/closure edge cases.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.asrank import ASRank
from repro.bgp.propagation import GraphIndex
from repro.core.cone import ConeDefinition, CustomerCones, compute_cones
from repro.core.inference import infer_relationships
from repro.graph import (
    BitsetFamily,
    ClosureBitsets,
    Csr,
    DenseIndex,
    RelGraph,
    closure_bits,
    csr_arrays,
    decode_bits,
)
from repro.qa.generator import build_world, world_spec
from repro.serve.snapshot import Snapshot


# ---------------------------------------------------------------------------
# DenseIndex
# ---------------------------------------------------------------------------


class TestDenseIndex:
    def test_sorts_and_dedupes(self):
        index = DenseIndex([30, 10, 20, 10])
        assert index.asns == [10, 20, 30]
        assert index.ids == {10: 0, 20: 1, 30: 2}
        assert index.is_sorted

    def test_from_sorted_adopts_verbatim(self):
        asns = [1, 5, 9]
        index = DenseIndex.from_sorted(asns)
        assert index.asns is asns
        assert [index.id_of(asn) for asn in asns] == [0, 1, 2]

    def test_from_ordered_preserves_first_seen_order(self):
        index = DenseIndex.from_ordered([30, 10, 30, 20])
        assert index.asns == [30, 10, 20]
        assert index.ids == {30: 0, 10: 1, 20: 2}
        assert not index.is_sorted

    def test_intern_grows_and_reuses(self):
        index = DenseIndex()
        assert index.intern(7) == 0
        assert index.intern(3) == 1
        assert index.intern(7) == 0
        assert len(index) == 2
        assert not index.is_sorted  # 3 arrived after 7

    def test_intern_in_order_stays_sorted(self):
        index = DenseIndex()
        for asn in (1, 2, 5):
            index.intern(asn)
        assert index.is_sorted

    def test_frozen_index_refuses_growth(self):
        index = DenseIndex([1, 2]).freeze()
        assert index.frozen
        assert index.intern(2) == 1  # existing ASes still resolve
        with pytest.raises(ValueError, match="frozen"):
            index.intern(3)

    def test_lookup_api(self):
        index = DenseIndex([10, 20])
        assert 10 in index and 15 not in index
        assert index.get(15) is None
        assert index.asn_of(1) == 20
        assert list(index) == [10, 20]
        with pytest.raises(KeyError):
            index.id_of(15)

    @given(st.lists(st.integers(min_value=1, max_value=1 << 31)))
    @settings(max_examples=50, deadline=None)
    def test_sorted_construction_is_canonical(self, asns):
        """Any permutation of the same AS set yields bit-equal indexes."""
        forward = DenseIndex(asns)
        backward = DenseIndex(reversed(asns))
        assert forward.asns == backward.asns
        assert forward.ids == backward.ids


# ---------------------------------------------------------------------------
# bitsets and closures
# ---------------------------------------------------------------------------


class TestBitsets:
    def test_family_round_trip(self):
        family = BitsetFamily(DenseIndex([5, 10, 15]))
        bits = family.encode({5, 15})
        assert family.decode(bits) == {5, 15}
        assert family.contains(bits, 15)
        assert not family.contains(bits, 10)
        assert not family.contains(bits, 999)  # unknown AS: False, no raise
        assert family.singleton(10) == 0b010
        assert family.union([0b001, 0b100]) == 0b101

    def test_decode_bits_empty(self):
        assert decode_bits(0, [1, 2, 3]) == set()

    def test_closure_empty_graph(self):
        assert closure_bits(0, {}) == []

    def test_closure_single_as(self):
        assert closure_bits(1, {}) == [0b1]

    def test_closure_chain_and_diamond(self):
        # 0 -> 1 -> 3, 0 -> 2 -> 3
        bits = closure_bits(4, {0: [1, 2], 1: [3], 2: [3]})
        assert bits[0] == 0b1111
        assert bits[1] == 0b1010
        assert bits[2] == 0b1100
        assert bits[3] == 0b1000

    def test_closure_deep_chain_does_not_recurse(self):
        n = 5000
        bits = closure_bits(n, {i: [i + 1] for i in range(n - 1)})
        assert bits[0].bit_count() == n

    def test_incremental_closure_matches_batch(self):
        edges = [(0, 1), (1, 2), (0, 3), (3, 2), (2, 4)]
        incremental = ClosureBitsets()
        incremental.ensure(5)
        for parent, child in edges:
            incremental.add_edge(parent, child)
        children = {}
        for parent, child in edges:
            children.setdefault(parent, []).append(child)
        batch = closure_bits(5, children)
        for i in range(5):
            # batch closure includes self; incremental desc is strict
            assert (incremental.desc[i] | (1 << i)) == batch[i]

    def test_incremental_closure_cycle_detection(self):
        closure = ClosureBitsets()
        closure.ensure(3)
        closure.add_edge(0, 1)
        closure.add_edge(1, 2)
        assert closure.descends(0, 2)
        assert not closure.descends(2, 0)  # adding 2->0 would cycle

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=19),
                st.integers(min_value=0, max_value=19),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_incremental_equals_batch_on_random_dags(self, raw_edges):
        # keep only forward edges so the input is a DAG
        edges = [(a, b) for a, b in raw_edges if a < b]
        incremental = ClosureBitsets()
        incremental.ensure(20)
        for parent, child in edges:
            incremental.add_edge(parent, child)
        children = {}
        for parent, child in edges:
            children.setdefault(parent, []).append(child)
        batch = closure_bits(20, children)
        for i in range(20):
            assert (incremental.desc[i] | (1 << i)) == batch[i]


# ---------------------------------------------------------------------------
# CSR
# ---------------------------------------------------------------------------


class TestCsr:
    def test_layout(self):
        indptr, indices = csr_arrays([[1, 2], [], [0]])
        assert list(indptr) == [0, 2, 2, 3]
        assert list(indices) == [1, 2, 0]

    def test_deterministic_across_builds(self):
        adjacency = [[2, 3], [0], [], [1, 2]]
        first = csr_arrays(adjacency)
        second = csr_arrays([list(row) for row in adjacency])
        assert list(first[0]) == list(second[0])
        assert list(first[1]) == list(second[1])

    def test_neighbors_helper(self):
        csr = Csr(providers=[[1], []], customers=[[], [0]], peers=[[], []])
        assert list(csr.neighbors(csr.providers, 0)) == [1]
        assert list(csr.neighbors(csr.customers, 1)) == [0]
        assert list(csr.neighbors(csr.peers, 0)) == []


# ---------------------------------------------------------------------------
# RelGraph
# ---------------------------------------------------------------------------


class TestRelGraph:
    def test_from_links(self):
        graph = RelGraph.from_links(
            [1, 2, 3], p2c=[(1, 2), (2, 3)], p2p=[(1, 3)]
        )
        ids = graph.index.ids
        assert graph.customers[ids[1]] == [ids[2]]
        assert graph.providers[ids[3]] == [ids[2]]
        assert graph.peers[ids[1]] == [ids[3]]
        assert graph.closure()[ids[1]] == 0b111

    def test_of_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            RelGraph.of(object())

    def test_from_inference_is_cached(self):
        world = build_world(world_spec(0))
        result = infer_relationships(world.paths)
        assert RelGraph.of(result) is RelGraph.of(result)

    def test_freezes_index(self):
        graph = RelGraph.from_links([1, 2], p2c=[(1, 2)])
        with pytest.raises(ValueError, match="frozen"):
            graph.index.intern(3)


# ---------------------------------------------------------------------------
# one id space across every layer (the tentpole property)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 3, 7])
def test_dense_index_identical_across_layers(seed):
    """Inference, cones, propagation and the snapshot of one QA world
    all see the same ASN -> dense id mapping."""
    world = build_world(world_spec(seed))

    asrank = ASRank(world.paths)
    result = asrank.result
    graph = asrank.rel_graph()

    # inference's engine index is the graph's index (zero-copy)
    assert result.index is graph.index

    # cones share the graph (and therefore the index) exactly
    cones = asrank.cones(ConeDefinition.RECURSIVE)
    assert cones.graph is graph

    # the snapshot adopts it without re-indexing
    snapshot = asrank.snapshot()
    assert snapshot.index is graph.index

    # propagation over the true topology uses its own AS universe
    # (the full generated graph, not just observed ASes) but maps any
    # shared AS set to ids the same canonical way
    prop = GraphIndex(world.graph)
    observed = [asn for asn in snapshot.asns if asn in prop.index]
    rebuilt = DenseIndex(observed)
    assert rebuilt.asns == sorted(observed)
    for asn in observed[:50]:
        assert prop.index[asn] == prop.rel.index.id_of(asn)

    # and the propagation wrapper exposes the RelGraph's own columns
    assert prop.asns is prop.rel.index.asns
    assert prop.providers is prop.rel.providers


@pytest.mark.parametrize("seed", [1, 4])
def test_cone_bitsets_flow_to_snapshot_unexpanded(seed):
    """Snapshot.build adopts the facade's cone bitsets zero-copy."""
    world = build_world(world_spec(seed))
    asrank = ASRank(world.paths)
    snapshot = asrank.snapshot()
    for definition in ConeDefinition:
        cones = asrank.cones(definition)
        assert snapshot._cones[definition.value] is cones.bits

    # and the adopted bitsets answer identically to the dict view
    ppdc = asrank.cones(ConeDefinition.PROVIDER_PEER_OBSERVED)
    for asn in list(snapshot.asns)[:25]:
        assert snapshot.cone(asn) == ppdc.cone(asn)
        assert snapshot.cone_size(asn) == ppdc.size_ases(asn)


def test_compute_cones_dict_api_matches_customer_cones():
    """The dict-returning compute_cones stays equivalent to the
    bitset-backed CustomerCones for every definition."""
    world = build_world(world_spec(2))
    result = infer_relationships(world.paths)
    for definition in ConeDefinition:
        expected = compute_cones(result, definition)
        via_class = CustomerCones.compute(result, definition)
        assert via_class.cones == expected
        assert via_class.sizes() == {
            asn: len(cone) for asn, cone in expected.items()
        }


def test_customer_cones_accepts_relgraph_and_result():
    world = build_world(world_spec(5))
    result = infer_relationships(world.paths)
    graph = RelGraph.of(result)
    from_graph = CustomerCones.compute(graph)
    from_result = CustomerCones.compute(result)
    assert from_graph.graph is from_result.graph
    assert from_graph.bits == from_result.bits


def test_hand_built_cones_still_work_without_graph():
    cones = CustomerCones(
        ConeDefinition.RECURSIVE, cones={1: {1, 2}, 2: {2}}
    )
    assert cones.cone(1) == {1, 2}
    assert cones.size_ases(2) == 1
    assert cones.bits is None  # no graph to index against
    with pytest.raises(ValueError):
        CustomerCones(ConeDefinition.RECURSIVE)  # neither representation
