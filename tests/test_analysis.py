"""Unit tests for structural metrics and the longitudinal pipeline."""

import pytest

from repro.analysis.metrics import (
    cone_share,
    degree_distribution,
    hierarchy_depths,
    link_visibility,
    snapshot_summary,
    true_link_coverage,
    visibility_by_relationship,
)
from repro.analysis.timeseries import (
    analyze_snapshot,
    flattening_series,
    series_metrics,
)
from repro.bgp.collector import CollectorConfig
from repro.core.cone import CustomerCones
from repro.topology.evolution import Era, EvolutionConfig, generate_series
from repro.topology.generator import GeneratorConfig


class TestSnapshotSummary:
    def test_fields(self, small_run):
        summary = snapshot_summary(small_run.corpus, small_run.paths)
        assert summary["vps"] == len(small_run.corpus.vps)
        assert summary["unique_paths"] == len(small_run.paths)
        assert summary["ases"] > 0
        assert summary["links"] > 0
        assert summary["full_feeds"] + summary["partial_feeds"] == summary["vps"]


class TestDegreeDistribution:
    def test_histogram_sums_to_population(self, small_run):
        hist = degree_distribution(small_run.paths)
        assert sum(hist.values()) == len(small_run.paths.asns())

    def test_transit_distribution_heavier_at_zero(self, small_run):
        transit = degree_distribution(small_run.paths, transit=True)
        node = degree_distribution(small_run.paths, transit=False)
        # most ASes never transit, but every observed AS has a neighbor
        assert transit.get(0, 0) > node.get(0, 0)


class TestVisibility:
    def test_visibility_positive(self, small_run):
        vis = link_visibility(small_run.paths)
        assert vis
        assert all(count >= 1 for count in vis.values())

    def test_p2c_better_covered_than_p2p(self, small_run):
        """The paper's visibility argument: most peering links hide."""
        coverage = true_link_coverage(small_run.paths, small_run.graph)
        assert coverage["p2c"] > coverage["p2p"]

    def test_p2c_links_seen_from_more_vps(self, small_run):
        grouped = visibility_by_relationship(small_run.paths, small_run.graph)
        mean_p2c = sum(grouped["p2c"]) / len(grouped["p2c"])
        mean_p2p = sum(grouped["p2p"]) / len(grouped["p2p"])
        assert mean_p2c > mean_p2p


class TestHierarchyDepth:
    def test_clique_at_depth_zero(self, small_run):
        depths = hierarchy_depths(small_run.result)
        for member in small_run.result.clique.members:
            assert depths[member] == 0

    def test_every_observed_as_has_depth(self, small_run):
        depths = hierarchy_depths(small_run.result)
        assert set(depths) == small_run.paths.asns()

    def test_depths_are_shallow(self, small_run):
        depths = hierarchy_depths(small_run.result)
        assert max(depths.values()) <= 8  # the Internet is shallow


class TestConeShare:
    def test_share_bounds(self, small_run):
        cones = CustomerCones.compute(small_run.result)
        total = len(small_run.paths.asns())
        for asn in list(small_run.paths.asns())[:50]:
            share = cone_share(cones, asn, total)
            assert 0.0 < share <= 1.0

    def test_zero_total(self, small_run):
        cones = CustomerCones.compute(small_run.result)
        assert cone_share(cones, 1, 0) == 0.0


@pytest.fixture(scope="module")
def era_metrics():
    config = EvolutionConfig(
        base=GeneratorConfig(n_ases=150, seed=13, clique_size=6),
        eras=[
            Era(label="e1", new_ases=60, peering_boost=0.02),
            Era(label="e2", new_ases=90, peering_boost=0.05),
        ],
    )
    snapshots = generate_series(config)
    return series_metrics(
        snapshots, collector_config=CollectorConfig(n_vps=14, seed=3)
    )


class TestTimeSeries:
    def test_one_metric_per_snapshot(self, era_metrics):
        assert [m.label for m in era_metrics] == ["base", "e1", "e2"]

    def test_growth_visible(self, era_metrics):
        assert era_metrics[-1].n_ases > era_metrics[0].n_ases
        assert era_metrics[-1].n_links > era_metrics[0].n_links

    def test_clique_mostly_recovered_every_era(self, era_metrics):
        for m in era_metrics:
            assert m.clique_recall >= 0.5, m.label

    def test_flattening_series_shape(self, era_metrics):
        series = flattening_series(era_metrics)
        assert series
        for asn, shares in series.items():
            assert len(shares) == len(era_metrics)
            assert all(0.0 <= s <= 1.0 for s in shares)

    def test_flattening_with_explicit_track(self, era_metrics):
        top = max(
            era_metrics[0].cone_sizes, key=lambda a: era_metrics[0].cone_sizes[a]
        )
        series = flattening_series(era_metrics, track=[top])
        assert list(series) == [top]

    def test_analyze_snapshot_standalone(self, small_run):
        metrics = analyze_snapshot(
            "solo", small_run.graph, CollectorConfig(n_vps=10, seed=1)
        )
        assert metrics.n_ases > 0
        assert metrics.cone_sizes
