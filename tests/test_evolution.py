"""Unit tests for the longitudinal growth model."""

import hashlib
import subprocess
import sys
from pathlib import Path

import pytest

from repro.relationships import Relationship
from repro.topology.evolution import Era, EvolutionConfig, generate_series
from repro.topology.generator import GeneratorConfig
from repro.topology.model import ASType


def _series_digest(series) -> str:
    """Stable digest of a (label, graph) series: ASNs + typed links."""
    digest = hashlib.sha256()
    for label, graph in series:
        digest.update(label.encode())
        digest.update(repr(sorted(a.asn for a in graph.ases())).encode())
        digest.update(
            repr(
                sorted((a, b, int(rel)) for a, b, rel in graph.links())
            ).encode()
        )
    return digest.hexdigest()


@pytest.fixture(scope="module")
def series():
    config = EvolutionConfig(
        base=GeneratorConfig(n_ases=150, seed=3, clique_size=6),
        eras=[
            Era(label="e1", new_ases=40, peering_boost=0.02),
            Era(label="e2", new_ases=60, peering_boost=0.03, clique_entrants=1),
            Era(label="e3", new_ases=80, peering_boost=0.04),
        ],
    )
    return generate_series(config)


class TestSeries:
    def test_snapshot_count(self, series):
        assert len(series) == 4  # base + 3 eras
        assert [label for label, _ in series] == ["base", "e1", "e2", "e3"]

    def test_monotone_growth(self, series):
        sizes = [len(g) for _, g in series]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_links_grow(self, series):
        counts = [g.num_links() for _, g in series]
        assert counts == sorted(counts)

    def test_invariants_every_era(self, series):
        for label, graph in series:
            assert graph.validate_invariants() == [], label

    def test_asns_stable(self, series):
        previous = set()
        for _, graph in series:
            current = {a.asn for a in graph.ases()}
            assert previous <= current
            previous = current

    def test_snapshots_independent(self, series):
        # mutating a later snapshot must not affect an earlier one
        base = series[0][1]
        size_before = len(base)
        last = series[-1][1]
        assert len(last) > size_before

    def test_prefixes_unique_across_eras(self, series):
        _, last = series[-1]
        prefixes = [p for a in last.ases() for p in a.prefixes]
        assert len(prefixes) == len(set(prefixes))

    def test_clique_promotion(self, series):
        base_clique = set(series[0][1].clique_asns())
        final_clique = set(series[-1][1].clique_asns())
        assert len(final_clique) == len(base_clique) + 1
        assert base_clique <= final_clique
        # the entrant is transit-free and fully meshed
        entrant = (final_clique - base_clique).pop()
        final = series[-1][1]
        assert not final.providers[entrant]
        for member in final_clique - {entrant}:
            assert final.relationship(entrant, member) is Relationship.P2P

    def test_peering_densifies(self, series):
        def peer_count(graph):
            return sum(1 for _, _, rel in graph.links() if rel is Relationship.P2P)

        first = peer_count(series[0][1]) / series[0][1].num_links()
        last = peer_count(series[-1][1]) / series[-1][1].num_links()
        assert last > first


class TestEraMonotonicity:
    """The growth assumptions the delta timeline encoder relies on."""

    def test_asn_births_permanent_and_increasing(self, series):
        # sorted ASN lists must prefix-extend era over era, with every
        # newcomer larger than all incumbents — the DenseIndex prefix
        # property that makes delta encoding possible
        previous = None
        for label, graph in series:
            asns = sorted(a.asn for a in graph.ases())
            if previous is not None:
                assert asns[: len(previous)] == previous, label
                assert all(
                    asn > previous[-1] for asn in asns[len(previous):]
                ), label
            previous = asns

    def test_no_link_type_regressions_in_clique(self, series):
        # clique members stay transit-free once promoted
        seen_clique = set()
        for label, graph in series:
            seen_clique |= set(graph.clique_asns())
            for member in seen_clique:
                assert not graph.providers[member], (label, member)


class TestDeterminism:
    def test_same_seed_same_series(self):
        config = EvolutionConfig.default_series(start_ases=120, eras=2, seed=11)
        assert _series_digest(generate_series(config)) == _series_digest(
            generate_series(config)
        )

    def test_different_seeds_differ(self):
        a = EvolutionConfig.default_series(start_ases=120, eras=2, seed=11)
        b = EvolutionConfig.default_series(start_ases=120, eras=2, seed=12)
        assert _series_digest(generate_series(a)) != _series_digest(
            generate_series(b)
        )

    def test_output_identical_without_numpy(self):
        """The growth model is pure stdlib: masking numpy changes nothing."""
        repo = Path(__file__).resolve().parent.parent
        script = (
            "from repro.topology.evolution import ("
            "EvolutionConfig, generate_series)\n"
            "import sys; sys.path.insert(0, r'%s')\n"
            "from test_evolution import _series_digest\n"
            "config = EvolutionConfig.default_series("
            "start_ases=100, eras=2, seed=13)\n"
            "print(_series_digest(generate_series(config)))\n"
            % (repo / "tests")
        )
        digests = {}
        for label, pythonpath in (
            ("numpy", f"{repo / 'src'}"),
            ("no-numpy", f"{repo / 'ci' / 'no-numpy'}:{repo / 'src'}"),
        ):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": pythonpath, "PATH": "/usr/bin:/bin"},
                check=True,
            )
            digests[label] = out.stdout.strip()
        assert digests["numpy"] == digests["no-numpy"]


class TestDefaultSeries:
    def test_default_schedule_shape(self):
        config = EvolutionConfig.default_series(start_ases=200, eras=4)
        assert len(config.eras) == 4
        assert all(era.new_ases > 0 for era in config.eras)
        assert sum(e.clique_entrants for e in config.eras) >= 1

    def test_default_series_runs(self):
        config = EvolutionConfig.default_series(start_ases=150, eras=2)
        snapshots = generate_series(config)
        assert len(snapshots) == 3
