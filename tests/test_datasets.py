"""Unit tests for CAIDA-format dataset IO."""

import pytest

from repro.baselines.common import RelationshipMap
from repro.datasets import (
    load_as_rel,
    load_paths,
    load_ppdc_ases,
    save_as_rel,
    save_paths,
    save_ppdc_ases,
)
from repro.datasets.serialization import DatasetFormatError
from repro.relationships import Relationship


@pytest.fixture
def rel_map():
    m = RelationshipMap()
    m.set_p2c(1, 2)
    m.set_p2c(1, 3)
    m.set_p2p(2, 3)
    m.set_s2s(4, 5)
    return m


class TestAsRel:
    def test_round_trip(self, tmp_path, rel_map):
        path = str(tmp_path / "as-rel.txt")
        written = save_as_rel(path, rel_map, comments=["test file"])
        assert written == 4
        rows = load_as_rel(path)
        assert (1, 2, Relationship.P2C) in rows
        assert (1, 3, Relationship.P2C) in rows
        assert (2, 3, Relationship.P2P) in rows
        assert (4, 5, Relationship.S2S) in rows

    def test_provider_always_first(self, tmp_path):
        m = RelationshipMap()
        m.set_p2c(9, 2)  # provider has the higher ASN
        path = str(tmp_path / "as-rel.txt")
        save_as_rel(path, m)
        rows = load_as_rel(path)
        assert rows == [(9, 2, Relationship.P2C)]

    def test_comments_written_and_skipped(self, tmp_path, rel_map):
        path = str(tmp_path / "as-rel.txt")
        save_as_rel(path, rel_map, comments=["one", "two"])
        text = open(path).read()
        assert text.startswith("# one\n# two\n")
        assert len(load_as_rel(path)) == 4

    def test_exact_caida_line_format(self, tmp_path):
        m = RelationshipMap()
        m.set_p2c(3356, 20115)
        path = str(tmp_path / "as-rel.txt")
        save_as_rel(path, m)
        assert open(path).read().strip() == "3356|20115|-1"

    @pytest.mark.parametrize(
        "line", ["1|2", "a|b|0", "1|2|7", "1|2|zero"]
    )
    def test_malformed_rejected(self, tmp_path, line):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as f:
            f.write(line + "\n")
        with pytest.raises(DatasetFormatError):
            load_as_rel(path)

    @pytest.mark.parametrize("line", ["1|-2|-1", "-1|2|0"])
    def test_negative_asn_rejected_with_location(self, tmp_path, line):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as f:
            f.write("# comment\n" + line + "\n")
        with pytest.raises(DatasetFormatError, match=r"bad\.txt:2:"):
            load_as_rel(path)

    def test_self_link_rejected_with_location(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as f:
            f.write("7|7|0\n")
        with pytest.raises(DatasetFormatError, match=r"bad\.txt:1:.*self"):
            load_as_rel(path)


class TestPpdc:
    def test_round_trip(self, tmp_path):
        cones = {1: {1, 2, 3}, 2: {2}, 3: {3}}
        path = str(tmp_path / "ppdc.txt")
        assert save_ppdc_ases(path, cones) == 3
        assert load_ppdc_ases(path) == cones

    def test_exact_caida_line_format(self, tmp_path):
        path = str(tmp_path / "ppdc.txt")
        save_ppdc_ases(path, {10: {10, 30, 20}})
        assert open(path).read().strip() == "10 10 20 30"

    def test_malformed_rejected(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as f:
            f.write("1 2 x\n")
        with pytest.raises(DatasetFormatError):
            load_ppdc_ases(path)

    def test_duplicate_cone_rejected_with_location(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as f:
            f.write("1 1 2\n1 1 3\n")
        with pytest.raises(DatasetFormatError, match=r"bad\.txt:2:"):
            load_ppdc_ases(path)

    def test_negative_asn_rejected_with_location(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as f:
            f.write("1 1 -2\n")
        with pytest.raises(DatasetFormatError, match=r"bad\.txt:1:"):
            load_ppdc_ases(path)


class TestPathFiles:
    def test_round_trip(self, tmp_path):
        paths = [(1, 2, 3), (4, 5)]
        file_path = str(tmp_path / "paths.txt")
        assert save_paths(file_path, paths) == 2
        assert load_paths(file_path) == paths

    def test_comments_skipped(self, tmp_path):
        file_path = str(tmp_path / "paths.txt")
        save_paths(file_path, [(1, 2)], comments=["hello"])
        assert load_paths(file_path) == [(1, 2)]

    def test_malformed_rejected(self, tmp_path):
        file_path = str(tmp_path / "bad.txt")
        with open(file_path, "w") as f:
            f.write("1 2 three\n")
        with pytest.raises(DatasetFormatError):
            load_paths(file_path)

    def test_negative_hop_rejected_with_location(self, tmp_path):
        file_path = str(tmp_path / "bad.txt")
        with open(file_path, "w") as f:
            f.write("1 2 3\n1 -2 3\n")
        with pytest.raises(DatasetFormatError, match=r"bad\.txt:2:"):
            load_paths(file_path)

    def test_scenario_round_trip(self, tmp_path, small_run):
        file_path = str(tmp_path / "paths.txt")
        save_paths(file_path, small_run.corpus.paths)
        assert load_paths(file_path) == small_run.corpus.paths
