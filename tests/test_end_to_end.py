"""Integration tests across the whole system.

These assert the *shapes* the paper reports: headline PPV, algorithm
ordering against baselines, clique recovery, cone structure, and the
parity of the MRT path with the in-memory path.
"""

import os

import pytest

from repro.baselines import infer_degree, infer_gao
from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.mrt.reader import read_rib_dump
from repro.mrt.writer import write_rib_dump
from repro.relationships import Relationship
from repro.validation import (
    communities_corpus,
    direct_report_corpus,
    routing_policy_corpus,
    rpsl_corpus,
    validate,
    validate_against_truth,
)


class TestHeadline:
    def test_paper_shape_c2p_ppv(self, small_run):
        report = validate_against_truth(small_run.result, small_run.graph)
        assert report.ppv(Relationship.P2C) > 0.98  # paper: 0.996

    def test_multi_source_corpus_agrees_with_oracle(self, small_run):
        merged = (
            direct_report_corpus(small_run.graph)
            .merge(communities_corpus(small_run.corpus.rib,
                                      small_run.graph.ixp_asns()))
            .merge(rpsl_corpus(small_run.graph))
            .merge(routing_policy_corpus(small_run.graph))
        )
        sampled = validate(small_run.result, merged,
                           step_lookup=small_run.result.step_of)
        oracle = validate_against_truth(small_run.result, small_run.graph)
        assert abs(sampled.overall_ppv - oracle.overall_ppv) < 0.05
        assert 0.1 < sampled.coverage < 1.0

    def test_per_step_table_nonempty(self, small_run):
        merged = direct_report_corpus(small_run.graph, response_rate=1.0)
        report = validate(small_run.result, merged,
                          step_lookup=small_run.result.step_of)
        assert "top-down" in report.by_step
        top_down = report.by_step["top-down"]
        assert top_down.ppv > 0.95


class TestBaselineOrdering:
    def test_asrank_wins(self, small_run):
        asrank = validate_against_truth(small_run.result, small_run.graph)
        gao = validate_against_truth(infer_gao(small_run.paths),
                                     small_run.graph)
        degree = validate_against_truth(infer_degree(small_run.paths),
                                        small_run.graph)
        assert asrank.overall_ppv > gao.overall_ppv
        assert asrank.overall_ppv > degree.overall_ppv

    def test_gap_is_meaningful(self, small_run):
        asrank = validate_against_truth(small_run.result, small_run.graph)
        gao = validate_against_truth(infer_gao(small_run.paths),
                                     small_run.graph)
        assert asrank.overall_ppv - gao.overall_ppv > 0.03


class TestConeStructure:
    def test_clique_cones_dominate(self, small_run):
        cones = CustomerCones.compute(
            small_run.result, ConeDefinition.PROVIDER_PEER_OBSERVED
        )
        top5 = {asn for asn, _ in cones.top(5)}
        clique = set(small_run.graph.clique_asns())
        assert top5 & clique

    def test_inferred_cone_tracks_truth(self, small_run):
        """Inferred PPDC cone sizes correlate with the true recursive
        cones: big networks look big, stubs look like stubs."""
        cones = CustomerCones.compute(
            small_run.result, ConeDefinition.PROVIDER_PEER_OBSERVED
        )
        graph = small_run.graph
        # spearman-lite: compare rankings of the top 20 true cones
        true_sizes = {
            asn: len(graph.customer_cone(asn))
            for asn in small_run.paths.asns()
        }
        top_true = sorted(true_sizes, key=lambda a: -true_sizes[a])[:20]
        inferred_sizes = cones.sizes()
        top_inferred = sorted(inferred_sizes, key=lambda a: -inferred_sizes[a])[:20]
        assert len(set(top_true) & set(top_inferred)) >= 12

    def test_stub_cones_are_singletons(self, small_run):
        cones = CustomerCones.compute(
            small_run.result, ConeDefinition.PROVIDER_PEER_OBSERVED
        )
        from repro.topology.model import ASType

        stubs = [
            a.asn
            for a in small_run.graph.ases()
            if a.type is ASType.STUB and a.asn in cones.cones
        ]
        singleton = sum(1 for s in stubs if cones.size_ases(s) == 1)
        assert singleton / len(stubs) > 0.95


class TestMrtParity:
    def test_mrt_pipeline_equals_memory_pipeline(self, tmp_path, small_run):
        """Relationships inferred from a parsed MRT dump must equal the
        relationships inferred from the in-memory corpus."""
        mrt_file = str(tmp_path / "rib.mrt")
        write_rib_dump(mrt_file, small_run.corpus.rib)
        records = read_rib_dump(mrt_file)
        paths = PathSet.sanitize(
            (r.as_path for r in records),
            ixp_asns=small_run.graph.ixp_asns(),
        )
        result = infer_relationships(paths, small_run.scenario.inference)
        original = {
            (min(a, b), max(a, b)): small_run.result.relationship(a, b)
            for a, b in small_run.result.links()
        }
        reparsed = {
            (min(a, b), max(a, b)): result.relationship(a, b)
            for a, b in result.links()
        }
        assert original == reparsed


class TestSanitizationAccounting:
    def test_stats_balance(self, small_run):
        stats = small_run.paths.stats
        assert (
            stats.kept
            + stats.discarded_loops
            + stats.discarded_reserved_asn
            + stats.discarded_short
            + stats.duplicates_merged
            == stats.input_paths
        )

    def test_noise_produces_artifacts(self, small_run):
        stats = small_run.paths.stats
        assert stats.prepending_compressed > 0
        assert stats.ixp_hops_removed > 0
