"""mmap zero-copy snapshot loading: parity, failure paths, alignment.

The contract under test: ``load_snapshot(path, mode="mmap")`` answers
every query bit-identically to an eager load, while decoding links and
ranks as read-only numpy views over the mapped file and cones as
lazily materialized per-AS bitsets — and every corruption/truncation
failure surfaces as a clear :class:`SnapshotFormatError`, never a
numpy crash or a silent wrong answer.
"""

from __future__ import annotations

import os

import pytest

from repro.asrank import ASRank
from repro.core.cone import ConeDefinition
from repro.scenarios import get_scenario
from repro.serve import store as store_module
from repro.serve.snapshot import LazyConeBits, Snapshot, SnapshotFormatError
from repro.serve.store import (
    load_snapshot,
    read_snapshot_header,
    save_snapshot,
)

try:
    import numpy as _np
except ImportError:
    _np = None


@pytest.fixture(scope="module")
def built():
    _graph, _corpus, paths, result = get_scenario("small").run()
    facade = ASRank(paths)
    facade._result = result
    return facade.snapshot()


@pytest.fixture()
def snapshot_file(built, tmp_path):
    path = str(tmp_path / "world.snapshot")
    save_snapshot(built, path)
    return path


def _flip_section_byte(path: str, section: str) -> None:
    header, payload_offset = read_snapshot_header(path)
    entry = header["sections"][section]
    position = payload_offset + int(entry["offset"])
    with open(path, "r+b") as stream:
        stream.seek(position)
        byte = stream.read(1)
        stream.seek(position)
        stream.write(bytes([byte[0] ^ 0xFF]))


class TestParity:
    def test_bit_identical_to_eager(self, snapshot_file):
        eager = load_snapshot(snapshot_file)
        mapped = load_snapshot(snapshot_file, mode="mmap")
        assert mapped.version == eager.version
        assert mapped.asns == eager.asns
        assert mapped.encode_sections() == eager.encode_sections()
        assert mapped.content_version() == eager.content_version()
        mapped.close()

    def test_queries_agree(self, snapshot_file):
        import random

        eager = load_snapshot(snapshot_file)
        mapped = load_snapshot(snapshot_file, mode="mmap")
        rng = random.Random(11)
        population = eager.asns + [999999999]
        for _ in range(300):
            a, b = rng.choice(population), rng.choice(population)
            assert mapped.relationship(a, b) == eager.relationship(a, b)
            assert mapped.provider_of(a, b) == eager.provider_of(a, b)
            for definition in eager.definitions:
                assert mapped.in_cone(a, b, definition) == \
                    eager.in_cone(a, b, definition)
                assert mapped.cone_size(a, definition) == \
                    eager.cone_size(a, definition)
        asn = eager.asns[0]
        for definition in eager.definitions:
            assert mapped.cone(asn, definition) == eager.cone(
                asn, definition
            )
        assert mapped.ranks(0, 50) == eager.ranks(0, 50)
        assert mapped.rank_entry(asn) == eager.rank_entry(asn)
        mapped.close()

    def test_rank_entries_are_json_safe(self, snapshot_file):
        """Structured-view rows must coerce to plain ints before JSON."""
        import json

        mapped = load_snapshot(snapshot_file, mode="mmap")
        entry = mapped.ranks(0, 1)[0]
        json.dumps(entry.__dict__)
        assert type(entry.asn) is int and type(entry.rank) is int
        mapped.close()

    @pytest.mark.skipif(_np is None, reason="needs numpy")
    def test_links_and_ranks_are_views(self, snapshot_file):
        mapped = load_snapshot(snapshot_file, mode="mmap")
        links = mapped._links()
        ranks = mapped._ranks()
        assert isinstance(links, _np.ndarray)
        assert isinstance(ranks, _np.ndarray)
        assert not links.flags.writeable and not ranks.flags.writeable
        # zero-copy: the arrays alias the mapping, they don't own data
        assert not links.flags.owndata and not ranks.flags.owndata
        bits = mapped._cone_bits(mapped.definitions[0])
        assert isinstance(bits, LazyConeBits)
        mapped.close()

    def test_no_numpy_fallback_parity(self, snapshot_file, monkeypatch):
        """With numpy masked the mmap mode still answers identically."""
        from repro.serve import snapshot as snapshot_module

        eager = load_snapshot(snapshot_file)
        monkeypatch.setattr(snapshot_module, "_np", None)
        mapped = load_snapshot(snapshot_file, mode="mmap")
        assert mapped._mapped
        assert isinstance(mapped._links(), list)
        assert mapped.encode_sections() == eager.encode_sections()
        assert mapped.asns == eager.asns
        a, b = eager.asns[0], eager.asns[1]
        assert mapped.relationship(a, b) == eager.relationship(a, b)
        for definition in eager.definitions:
            assert mapped.cone(a, definition) == eager.cone(a, definition)
        mapped.close()

    def test_lazy_cone_bits_test_matches_materialized(self, snapshot_file):
        mapped = load_snapshot(snapshot_file, mode="mmap")
        definition = mapped.definitions[0]
        bits = mapped._cone_bits(definition)
        n = len(mapped.asns)
        probes = [(i, j) for i in range(0, n, 7) for j in range(0, n, 13)]
        # probe first (byte reads), then compare against materialized
        probed = {pair: bits.test(*pair) for pair in probes}
        for (i, j), outcome in probed.items():
            assert outcome == bool(bits[i] >> j & 1)
        mapped.close()


class TestFailurePaths:
    def test_truncated_file(self, snapshot_file, tmp_path):
        """A cut-short file fails with a clear error, not a crash.

        ``stats`` sorts last in the payload and is decoded up front,
        so any truncation is caught at load time; the on-first-touch
        bounds check is exercised separately below.
        """
        stub = str(tmp_path / "short.snapshot")
        with open(snapshot_file, "rb") as stream:
            blob = stream.read()
        with open(stub, "wb") as stream:
            stream.write(blob[: len(blob) - len(blob) // 3])
        with pytest.raises(SnapshotFormatError, match="truncated"):
            load_snapshot(stub, mode="mmap")

    def test_truncated_lazy_section_on_first_touch(
        self, snapshot_file, tmp_path
    ):
        """A header that promises more bytes than the mapping holds
        fails on the section's first touch, inside the reader."""
        mapped = load_snapshot(snapshot_file, mode="mmap")
        reader = mapped._section_reader
        reader._sections = dict(reader._sections)
        entry = dict(reader._sections["ranks"])
        entry["length"] = int(entry["length"]) + 1 << 20
        reader._sections["ranks"] = entry
        with pytest.raises(SnapshotFormatError, match="truncated"):
            mapped._ranks()
        mapped.close()

    def test_corrupt_section_detected_on_first_touch(self, snapshot_file):
        _flip_section_byte(snapshot_file, "links")
        mapped = load_snapshot(snapshot_file, mode="mmap")
        assert mapped.version  # header + asns load fine
        with pytest.raises(SnapshotFormatError, match="checksum"):
            mapped.relationship(mapped.asns[0], mapped.asns[1])
        mapped.close()

    def test_corrupt_cone_section(self, snapshot_file):
        _flip_section_byte(snapshot_file, "cones:recursive")
        mapped = load_snapshot(snapshot_file, mode="mmap")
        with pytest.raises(SnapshotFormatError, match="checksum"):
            mapped.cone(mapped.asns[0], ConeDefinition.RECURSIVE)
        mapped.close()

    def test_verify_true_fails_up_front(self, snapshot_file):
        _flip_section_byte(snapshot_file, "ranks")
        with pytest.raises(SnapshotFormatError, match="checksum"):
            load_snapshot(snapshot_file, mode="mmap", verify=True)

    def test_reload_while_mapped(self, built, snapshot_file, tmp_path):
        """os.replace under a live mapping must not disturb it."""
        mapped = load_snapshot(snapshot_file, mode="mmap")
        old_version = mapped.version
        old_links = len(mapped._links())

        _graph, _corpus, paths, result = get_scenario("tiny").run()
        facade = ASRank(paths)
        facade._result = result
        other = str(tmp_path / "other.snapshot")
        new_version = save_snapshot(facade.snapshot(), other)
        os.replace(other, snapshot_file)

        # the old mapping still serves the old inode, checksums intact
        assert mapped.version == old_version
        assert len(mapped._links()) == old_links
        assert mapped.cone_size(mapped.asns[0]) >= 1

        fresh = load_snapshot(snapshot_file, mode="mmap")
        assert fresh.version == new_version != old_version
        fresh.close()
        mapped.close()

    def test_close_is_idempotent(self, snapshot_file):
        mapped = load_snapshot(snapshot_file, mode="mmap")
        mapped._links()
        mapped.close()
        mapped.close()
        with pytest.raises(SnapshotFormatError, match="closed"):
            mapped._load_section("ranks")

    def test_unknown_mode_rejected(self, snapshot_file):
        with pytest.raises(ValueError, match="unknown snapshot load mode"):
            load_snapshot(snapshot_file, mode="mystery")


class TestSectionReader:
    def test_lazy_reader_holds_one_handle(self, snapshot_file):
        """The reader pins the inode: replacing the file mid-life does
        not change what an open lazy snapshot serves."""
        lazy = load_snapshot(snapshot_file, lazy=True)
        _graph, _corpus, paths, result = get_scenario("tiny").run()
        facade = ASRank(paths)
        facade._result = result
        replacement = snapshot_file + ".new"
        save_snapshot(facade.snapshot(), replacement)
        os.replace(replacement, snapshot_file)
        eager_equivalent = None
        # sections decode fine from the original (replaced) inode
        assert len(lazy._links()) > 0
        assert lazy.ranks(0, 5)
        lazy.close()
        with pytest.raises(SnapshotFormatError, match="closed"):
            lazy._load_section("cones:recursive")
        assert eager_equivalent is None

    def test_lazy_section_verified_once(self, snapshot_file, monkeypatch):
        import hashlib

        lazy = load_snapshot(snapshot_file, lazy=True)
        reader = lazy._section_reader
        calls = []
        real = hashlib.sha256

        def counting_sha256(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(
            store_module.hashlib, "sha256", counting_sha256
        )
        reader("links")
        first = len(calls)
        assert first == 1
        reader("links")
        assert len(calls) == first  # memoized, not re-hashed
        lazy.close()


class TestAlignment:
    def test_sections_are_64_byte_aligned(self, snapshot_file):
        header, payload_offset = read_snapshot_header(snapshot_file)
        assert header["minor"] == store_module.MINOR_VERSION
        assert header["alignment"] == store_module.SECTION_ALIGNMENT
        assert payload_offset % store_module.SECTION_ALIGNMENT == 0
        for entry in header["sections"].values():
            assert int(entry["offset"]) % \
                store_module.SECTION_ALIGNMENT == 0

    def test_padding_does_not_change_version(self, built, tmp_path,
                                             monkeypatch):
        """Alignment is file layout only — content versions are pinned
        to section bytes and must not move."""
        padded = str(tmp_path / "padded.snapshot")
        version_padded = save_snapshot(built, padded)
        monkeypatch.setattr(store_module, "SECTION_ALIGNMENT", 1)
        packed = str(tmp_path / "packed.snapshot")
        version_packed = save_snapshot(built, packed)
        assert version_padded == version_packed
        assert os.path.getsize(packed) < os.path.getsize(padded)

    def test_unpadded_files_still_load(self, built, tmp_path, monkeypatch):
        """A minor-0-style (unpadded) file loads through every mode."""
        monkeypatch.setattr(store_module, "SECTION_ALIGNMENT", 1)
        packed = str(tmp_path / "packed.snapshot")
        save_snapshot(built, packed)
        monkeypatch.undo()
        eager = load_snapshot(packed)
        mapped = load_snapshot(packed, mode="mmap")
        assert mapped.encode_sections() == eager.encode_sections()
        assert mapped.ranks(0, 10) == eager.ranks(0, 10)
        mapped.close()

    def test_header_json_tolerates_padding(self, snapshot_file):
        header, _offset = read_snapshot_header(snapshot_file)
        assert isinstance(header["sections"], dict)


class TestStoreModes:
    def test_store_mode_mmap(self, snapshot_file):
        from repro.serve.store import SnapshotStore

        store = SnapshotStore(path=snapshot_file, mode="mmap")
        assert store.mode == "mmap" and store.lazy
        assert store.current._mapped
        first = store.current
        store.reload()
        assert store.current is not first
        assert store.current.version == first.version

    def test_swap_updates_path(self, built, snapshot_file, tmp_path):
        from repro.serve.store import SnapshotStore

        store = SnapshotStore(path=snapshot_file, mode="mmap")
        other = str(tmp_path / "other.snapshot")
        save_snapshot(built, other)
        fresh = load_snapshot(other, mode="mmap")
        store.swap(fresh, path=other)
        assert store.current is fresh
        assert store.path == other
        assert store.reloads == 1
