"""Unit tests for path prediction from inferred relationships."""

import pytest

from repro.baselines import infer_degree, infer_gao
from repro.baselines.common import RelationshipMap
from repro.core.prediction import (
    PredictionReport,
    graph_from_inference,
    predict_paths,
)
from repro.relationships import Relationship


class TestGraphFromInference:
    def test_rebuild_labels(self):
        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2p(2, 3)
        m.set_s2s(3, 4)
        graph = graph_from_inference(m)
        assert graph.relationship(1, 2) is Relationship.P2C
        assert graph.provider_of(1, 2) == 1
        assert graph.relationship(2, 3) is Relationship.P2P
        assert graph.relationship(3, 4) is Relationship.S2S

    def test_cycle_demoted_to_p2p(self):
        # baselines can emit provider cycles; the rebuild keeps the
        # adjacency as peering instead of crashing or dropping it
        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2c(2, 3)
        m.set_p2c(3, 1)
        graph = graph_from_inference(m)
        rels = [graph.relationship(1, 2), graph.relationship(2, 3),
                graph.relationship(3, 1)]
        assert rels.count(Relationship.P2P) >= 1
        assert graph.num_links() == 3


class TestPredictPaths:
    def test_perfect_inference_perfect_prediction(self):
        """Predicting with the exact relationships reproduces the paths
        exactly (the propagation engine is deterministic both times)."""
        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2c(1, 3)
        m.set_p2c(2, 4)
        observed = [(4, 2, 1, 3), (3, 1, 2, 4)]
        report = predict_paths(m, observed)
        assert report.compared == 2
        assert report.exact == 2
        assert report.exact_rate == 1.0
        assert report.reachability == 1.0

    def test_wrong_direction_breaks_prediction(self):
        # invert the 2-4 link: now 4 looks like 2's provider, and the
        # observed path 4,2,1,3 cannot be re-derived (valley)
        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2c(1, 3)
        m.set_p2c(4, 2)
        observed = [(4, 2, 1, 3)]
        report = predict_paths(m, observed)
        assert report.exact == 0

    def test_unreachable_counted(self):
        m = RelationshipMap()
        m.set_p2p(1, 2)
        m.set_p2c(2, 3)
        # path 1,2,3 observed but predicted routing can deliver it: 2
        # exports customer route to peer 1 — fine.  Make a valley: 3's
        # route to a peer-of-peer
        m2 = RelationshipMap()
        m2.set_p2c(2, 1)  # 2 provider of 1
        m2.set_p2p(2, 3)
        report = predict_paths(m2, [(3, 2, 1)])  # 3 hears 1 via peer 2: ok
        # now claim 1-2 is peer too: peer route not exported to a peer
        m3 = RelationshipMap()
        m3.set_p2p(2, 1)
        m3.set_p2p(2, 3)
        report3 = predict_paths(m3, [(3, 2, 1)])
        assert report3.unreachable == 1
        assert report3.reachability == 0.0

    def test_max_origins_bounds_work(self, small_run):
        report = predict_paths(
            small_run.result, small_run.paths.paths, max_origins=20
        )
        assert report.compared > 0

    def test_empty_observations(self):
        m = RelationshipMap()
        m.set_p2p(1, 2)
        report = predict_paths(m, [])
        assert report.compared == 0
        assert report.exact_rate == 0.0


class TestEndToEndOrdering:
    def test_asrank_predicts_better_than_baselines(self, small_run):
        """The paper-grade check: better relationships predict real
        paths better."""
        observed = small_run.paths.paths
        asrank = predict_paths(small_run.result, observed, max_origins=60)
        gao = predict_paths(
            infer_gao(small_run.paths), observed, max_origins=60
        )
        degree = predict_paths(
            infer_degree(small_run.paths), observed, max_origins=60
        )
        assert asrank.exact_rate > gao.exact_rate
        assert asrank.exact_rate > degree.exact_rate
        assert asrank.reachability >= gao.reachability

    def test_asrank_prediction_quality_floor(self, clean_run):
        report = predict_paths(
            clean_run.result, clean_run.paths.paths, max_origins=60
        )
        assert report.reachability > 0.95
        assert report.exact_rate > 0.6


class TestBatchedRefactorIdentity:
    """predict_paths on the batched engine must reproduce the serial
    ASGraph-based implementation bit for bit."""

    @staticmethod
    def _serial_report(inference, observations, max_origins=None):
        # the pre-refactor implementation: mutable ASGraph + one
        # reference sweep per origin
        from repro.bgp.propagation import GraphIndex, propagate_origin

        index = GraphIndex(graph_from_inference(inference))
        by_origin = {}
        for path in observations:
            if len(path) < 2:
                continue
            vp, origin = path[0], path[-1]
            if vp not in index.index or origin not in index.index:
                continue
            by_origin.setdefault(origin, {}).setdefault(vp, path)
        report = PredictionReport()
        origins = sorted(by_origin)
        if max_origins is not None:
            origins = origins[:max_origins]
        for origin in origins:
            state = propagate_origin(index, origin)
            for vp, observed in sorted(by_origin[origin].items()):
                predicted = state.path_from(index, index.index[vp])
                report.compared += 1
                if predicted is None:
                    report.unreachable += 1
                    continue
                if predicted == observed:
                    report.exact += 1
                    report.same_length += 1
                elif len(predicted) == len(observed):
                    report.same_length += 1
        return report

    def test_identical_report_on_inferred_world(self, small_run):
        observed = list(small_run.paths)
        batched = predict_paths(small_run.result, observed, max_origins=40)
        serial = self._serial_report(
            small_run.result, observed, max_origins=40
        )
        assert (batched.compared, batched.exact, batched.same_length,
                batched.unreachable) == (
            serial.compared, serial.exact, serial.same_length,
            serial.unreachable)

    def test_identical_report_on_baseline_with_cycles(self, small_run):
        # baseline inferences exercise the cycle-demotion path
        baseline = infer_gao(small_run.paths)
        observed = list(small_run.paths)
        batched = predict_paths(baseline, observed, max_origins=25)
        serial = self._serial_report(baseline, observed, max_origins=25)
        assert (batched.compared, batched.exact, batched.same_length,
                batched.unreachable) == (
            serial.compared, serial.exact, serial.same_length,
            serial.unreachable)

    def test_rel_graph_matches_asgraph_compilation(self):
        # cycle-closing p2c demotes to p2p identically in both builders
        from repro.core.prediction import rel_graph_from_inference
        from repro.graph.relgraph import RelGraph

        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2c(2, 3)
        m.set_p2c(3, 1)
        m.set_p2p(2, 4)
        m.set_s2s(4, 5)
        direct = rel_graph_from_inference(m)
        via_asgraph = RelGraph.from_as_graph(graph_from_inference(m))
        assert direct.index.asns == via_asgraph.index.asns
        assert direct.providers == via_asgraph.providers
        assert direct.customers == via_asgraph.customers
        assert direct.peers == via_asgraph.peers
