"""Unit tests for path prediction from inferred relationships."""

import pytest

from repro.baselines import infer_degree, infer_gao
from repro.baselines.common import RelationshipMap
from repro.core.prediction import (
    PredictionReport,
    graph_from_inference,
    predict_paths,
)
from repro.relationships import Relationship


class TestGraphFromInference:
    def test_rebuild_labels(self):
        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2p(2, 3)
        m.set_s2s(3, 4)
        graph = graph_from_inference(m)
        assert graph.relationship(1, 2) is Relationship.P2C
        assert graph.provider_of(1, 2) == 1
        assert graph.relationship(2, 3) is Relationship.P2P
        assert graph.relationship(3, 4) is Relationship.S2S

    def test_cycle_demoted_to_p2p(self):
        # baselines can emit provider cycles; the rebuild keeps the
        # adjacency as peering instead of crashing or dropping it
        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2c(2, 3)
        m.set_p2c(3, 1)
        graph = graph_from_inference(m)
        rels = [graph.relationship(1, 2), graph.relationship(2, 3),
                graph.relationship(3, 1)]
        assert rels.count(Relationship.P2P) >= 1
        assert graph.num_links() == 3


class TestPredictPaths:
    def test_perfect_inference_perfect_prediction(self):
        """Predicting with the exact relationships reproduces the paths
        exactly (the propagation engine is deterministic both times)."""
        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2c(1, 3)
        m.set_p2c(2, 4)
        observed = [(4, 2, 1, 3), (3, 1, 2, 4)]
        report = predict_paths(m, observed)
        assert report.compared == 2
        assert report.exact == 2
        assert report.exact_rate == 1.0
        assert report.reachability == 1.0

    def test_wrong_direction_breaks_prediction(self):
        # invert the 2-4 link: now 4 looks like 2's provider, and the
        # observed path 4,2,1,3 cannot be re-derived (valley)
        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2c(1, 3)
        m.set_p2c(4, 2)
        observed = [(4, 2, 1, 3)]
        report = predict_paths(m, observed)
        assert report.exact == 0

    def test_unreachable_counted(self):
        m = RelationshipMap()
        m.set_p2p(1, 2)
        m.set_p2c(2, 3)
        # path 1,2,3 observed but predicted routing can deliver it: 2
        # exports customer route to peer 1 — fine.  Make a valley: 3's
        # route to a peer-of-peer
        m2 = RelationshipMap()
        m2.set_p2c(2, 1)  # 2 provider of 1
        m2.set_p2p(2, 3)
        report = predict_paths(m2, [(3, 2, 1)])  # 3 hears 1 via peer 2: ok
        # now claim 1-2 is peer too: peer route not exported to a peer
        m3 = RelationshipMap()
        m3.set_p2p(2, 1)
        m3.set_p2p(2, 3)
        report3 = predict_paths(m3, [(3, 2, 1)])
        assert report3.unreachable == 1
        assert report3.reachability == 0.0

    def test_max_origins_bounds_work(self, small_run):
        report = predict_paths(
            small_run.result, small_run.paths.paths, max_origins=20
        )
        assert report.compared > 0

    def test_empty_observations(self):
        m = RelationshipMap()
        m.set_p2p(1, 2)
        report = predict_paths(m, [])
        assert report.compared == 0
        assert report.exact_rate == 0.0


class TestEndToEndOrdering:
    def test_asrank_predicts_better_than_baselines(self, small_run):
        """The paper-grade check: better relationships predict real
        paths better."""
        observed = small_run.paths.paths
        asrank = predict_paths(small_run.result, observed, max_origins=60)
        gao = predict_paths(
            infer_gao(small_run.paths), observed, max_origins=60
        )
        degree = predict_paths(
            infer_degree(small_run.paths), observed, max_origins=60
        )
        assert asrank.exact_rate > gao.exact_rate
        assert asrank.exact_rate > degree.exact_rate
        assert asrank.reachability >= gao.reachability

    def test_asrank_prediction_quality_floor(self, clean_run):
        report = predict_paths(
            clean_run.result, clean_run.paths.paths, max_origins=60
        )
        assert report.reachability > 0.95
        assert report.exact_rate > 0.6
