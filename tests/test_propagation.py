"""Unit and property tests for Gao–Rexford route propagation."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.bgp.propagation import (
    CLS_CUSTOMER,
    CLS_ORIGIN,
    CLS_PEER,
    CLS_PROVIDER,
    NO_ROUTE,
    GraphIndex,
    propagate_origin,
)
from repro.relationships import Relationship
from repro.topology.model import AS, ASGraph, ASType


def make_graph(p2c=(), p2p=()):
    graph = ASGraph()
    asns = {a for link in list(p2c) + list(p2p) for a in link}
    for asn in sorted(asns):
        graph.add_as(AS(asn=asn, type=ASType.SMALL_TRANSIT))
    for provider, customer in p2c:
        graph.add_p2c(provider, customer)
    for a, b in p2p:
        graph.add_p2p(a, b)
    return graph


def path_of(graph, origin, at):
    index = GraphIndex(graph)
    state = propagate_origin(index, origin)
    return state.path_from(index, index.index[at])


class TestBasicPropagation:
    def test_direct_customer(self):
        graph = make_graph(p2c=[(1, 2)])
        assert path_of(graph, 2, 1) == (1, 2)

    def test_customer_chain(self):
        graph = make_graph(p2c=[(1, 2), (2, 3)])
        assert path_of(graph, 3, 1) == (1, 2, 3)

    def test_provider_route(self):
        graph = make_graph(p2c=[(1, 2), (1, 3)])
        # 2 and 3 are both customers of 1; they reach each other via 1
        assert path_of(graph, 3, 2) == (2, 1, 3)

    def test_peer_route(self):
        graph = make_graph(p2c=[(1, 2), (3, 4)], p2p=[(1, 3)])
        assert path_of(graph, 4, 2) == (2, 1, 3, 4)

    def test_origin_has_empty_suffix(self):
        graph = make_graph(p2c=[(1, 2)])
        assert path_of(graph, 2, 2) == (2,)

    def test_unreachable_when_valley_required(self):
        # 2 and 3 peer; origin 4 is 3's provider: 3 won't export the
        # provider route to peer 2, so 2 has no route
        graph = make_graph(p2c=[(4, 3)], p2p=[(2, 3)])
        assert path_of(graph, 4, 2) is None

    def test_peer_route_not_reexported_to_provider(self):
        # 1 provides for 2; 2 peers with 3: 1 must not learn 3 via 2
        graph = make_graph(p2c=[(1, 2)], p2p=[(2, 3)])
        assert path_of(graph, 3, 1) is None


class TestPreference:
    def test_customer_beats_shorter_peer(self):
        # 1 can reach 5 via customer chain 2,3 (len 3) or via peer 4 (len 2)
        graph = make_graph(
            p2c=[(1, 2), (2, 3), (3, 5), (4, 5)],
            p2p=[(1, 4)],
        )
        assert path_of(graph, 5, 1) == (1, 2, 3, 5)

    def test_peer_beats_provider(self):
        # 6 reaches 5 via peer 4 or via provider 1; peer wins
        graph = make_graph(
            p2c=[(1, 6), (1, 2), (2, 5), (4, 5)],
            p2p=[(6, 4)],
        )
        path = path_of(graph, 5, 6)
        assert path == (6, 4, 5)

    def test_shorter_customer_route_wins(self):
        graph = make_graph(p2c=[(1, 2), (2, 4), (1, 3), (3, 5), (5, 4)])
        assert path_of(graph, 4, 1) == (1, 2, 4)

    def test_tie_breaks_to_lowest_asn(self):
        # two equal-length customer routes: via 2 or via 3
        graph = make_graph(p2c=[(1, 2), (1, 3), (2, 4), (3, 4)])
        assert path_of(graph, 4, 1) == (1, 2, 4)


class TestRouteClasses:
    def test_classes_assigned(self):
        graph = make_graph(p2c=[(1, 2), (3, 4)], p2p=[(1, 3)])
        index = GraphIndex(graph)
        state = propagate_origin(index, 4)
        assert state.cls[index.index[4]] == CLS_ORIGIN
        assert state.cls[index.index[3]] == CLS_CUSTOMER
        assert state.cls[index.index[1]] == CLS_PEER
        assert state.cls[index.index[2]] == CLS_PROVIDER

    def test_no_route_class(self):
        graph = make_graph(p2c=[(1, 2)], p2p=[(2, 3)])
        index = GraphIndex(graph)
        state = propagate_origin(index, 3)
        assert state.cls[index.index[1]] == NO_ROUTE
        assert state.path_from(index, index.index[1]) is None

    def test_ixp_rs_excluded_from_routing(self):
        graph = make_graph(p2c=[(1, 2)])
        graph.add_as(AS(asn=99, type=ASType.IXP_RS))
        index = GraphIndex(graph)
        assert 99 not in index.index


def _valley_free(graph, path):
    """Check the GR shape: ascend, at most one peer crossing, descend."""
    state = "up"
    for a, b in zip(path, path[1:]):
        rel = graph.relationship(a, b)
        provider = graph.provider_of(a, b)
        if rel is Relationship.P2C and provider == b:
            hop = "up"
        elif rel is Relationship.P2C and provider == a:
            hop = "down"
        elif rel is Relationship.P2P:
            hop = "peer"
        else:
            return False
        # in collector order the path ascends first (toward the peak),
        # may cross one peer link, then descends
        if state == "up":
            if hop in ("peer", "down"):
                state = "down"
        elif hop != "down":
            return False
    return True


class TestValleyFreedom:
    def test_random_graphs_all_paths_valley_free(self):
        rng = random.Random(7)
        for trial in range(5):
            graph = ASGraph()
            n = 40
            for asn in range(1, n + 1):
                graph.add_as(AS(asn=asn, type=ASType.SMALL_TRANSIT))
            # random DAG-ish hierarchy: provider always lower ASN
            for asn in range(2, n + 1):
                provider = rng.randint(1, asn - 1)
                graph.add_p2c(provider, asn)
            for _ in range(15):
                a, b = rng.sample(range(1, n + 1), 2)
                if graph.relationship(a, b) is None:
                    graph.add_p2p(a, b)
            index = GraphIndex(graph)
            for origin in range(1, n + 1):
                state = propagate_origin(index, origin)
                for i in range(len(index)):
                    path = state.path_from(index, i)
                    if path is not None and len(path) > 1:
                        # collector order: reverse to propagation order
                        # is unnecessary; _valley_free handles collector
                        # order directly
                        assert _valley_free(graph, path), (origin, path)

    def test_paths_are_loop_free(self):
        rng = random.Random(11)
        graph = ASGraph()
        n = 30
        for asn in range(1, n + 1):
            graph.add_as(AS(asn=asn, type=ASType.SMALL_TRANSIT))
        for asn in range(2, n + 1):
            graph.add_p2c(rng.randint(1, asn - 1), asn)
        for _ in range(10):
            a, b = rng.sample(range(1, n + 1), 2)
            if graph.relationship(a, b) is None:
                graph.add_p2p(a, b)
        index = GraphIndex(graph)
        for origin in (1, 7, 15, n):
            state = propagate_origin(index, origin)
            for i in range(len(index)):
                path = state.path_from(index, i)
                if path:
                    assert len(path) == len(set(path))

    def test_everyone_reaches_origin_in_connected_hierarchy(self):
        # pure hierarchy (no peering): every AS must have a route to
        # every origin via the provider tree
        rng = random.Random(3)
        graph = ASGraph()
        n = 25
        for asn in range(1, n + 1):
            graph.add_as(AS(asn=asn, type=ASType.SMALL_TRANSIT))
        for asn in range(2, n + 1):
            graph.add_p2c(rng.randint(1, asn - 1), asn)
        index = GraphIndex(graph)
        for origin in range(1, n + 1):
            state = propagate_origin(index, origin)
            for i in range(len(index)):
                assert state.cls[i] != NO_ROUTE


class TestDeterminism:
    def test_same_input_same_routes(self):
        graph = make_graph(
            p2c=[(1, 2), (1, 3), (2, 4), (3, 4), (2, 5), (3, 5)],
            p2p=[(4, 5)],
        )
        index = GraphIndex(graph)
        a = propagate_origin(index, 5)
        b = propagate_origin(index, 5)
        assert a.cls == b.cls
        assert a.nexthop == b.nexthop
        assert a.pathlen == b.pathlen
