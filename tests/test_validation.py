"""Unit tests for the validation framework: corpora and scoring."""

import pytest

from repro.relationships import Relationship
from repro.topology.model import AS, ASGraph, ASType
from repro.validation import (
    ValidationCorpus,
    ValidationRecord,
    communities_corpus,
    direct_report_corpus,
    routing_policy_corpus,
    rpsl_corpus,
    validate,
    validate_against_truth,
)
from repro.validation.policy import (
    LocalPrefEntry,
    decode_localpref,
    generate_localpref_tables,
)
from repro.validation.rpsl import (
    generate_rpsl,
    parse_rpsl,
    relationships_from_objects,
)


def record(a, b, rel, provider=None, source="test"):
    return ValidationRecord(a=a, b=b, relationship=rel, provider=provider,
                            source=source)


class TestCorpus:
    def test_add_and_len(self):
        corpus = ValidationCorpus([record(1, 2, Relationship.P2P)])
        assert len(corpus) == 1
        assert corpus.pairs() == {(1, 2)}

    def test_exact_duplicates_dropped(self):
        corpus = ValidationCorpus()
        corpus.add(record(1, 2, Relationship.P2P))
        corpus.add(record(2, 1, Relationship.P2P))
        assert len(list(corpus)) == 1

    def test_conflict_detected(self):
        corpus = ValidationCorpus()
        corpus.add(record(1, 2, Relationship.P2P, source="a"))
        corpus.add(record(1, 2, Relationship.P2C, provider=1, source="b"))
        assert corpus.is_conflicted(1, 2)
        assert corpus.consensus(1, 2) is None

    def test_agreeing_sources_not_conflicted(self):
        corpus = ValidationCorpus()
        corpus.add(record(1, 2, Relationship.P2C, provider=1, source="a"))
        corpus.add(record(1, 2, Relationship.P2C, provider=1, source="b"))
        assert not corpus.is_conflicted(1, 2)
        assert corpus.consensus(1, 2).relationship is Relationship.P2C

    def test_merge(self):
        a = ValidationCorpus([record(1, 2, Relationship.P2P, source="a")])
        b = ValidationCorpus([record(3, 4, Relationship.P2P, source="b")])
        merged = a.merge(b)
        assert len(merged) == 2
        assert merged.count_by_source() == {"a": 1, "b": 1}

    def test_overlap(self):
        corpus = ValidationCorpus()
        corpus.add(record(1, 2, Relationship.P2P, source="a"))
        corpus.add(record(1, 2, Relationship.P2P, source="b"))
        corpus.add(record(3, 4, Relationship.P2P, source="a"))
        assert corpus.overlap("a", "b") == 1


@pytest.fixture(scope="module")
def truth_graph():
    graph = ASGraph()
    for asn, as_type in [
        (1, ASType.CLIQUE), (2, ASType.CLIQUE),
        (3, ASType.SMALL_TRANSIT), (4, ASType.SMALL_TRANSIT),
        (5, ASType.STUB), (6, ASType.STUB),
    ]:
        graph.add_as(AS(asn=asn, type=as_type))
    graph.add_p2p(1, 2)
    graph.add_p2c(1, 3)
    graph.add_p2c(2, 4)
    graph.add_p2p(3, 4)
    graph.add_p2c(3, 5)
    graph.add_p2c(4, 6)
    return graph


class TestDirectCorpus:
    def test_records_match_truth(self, truth_graph):
        corpus = direct_report_corpus(truth_graph, response_rate=1.0)
        for rec in corpus:
            assert truth_graph.relationship(rec.a, rec.b) is rec.relationship
            if rec.relationship is Relationship.P2C:
                assert truth_graph.provider_of(rec.a, rec.b) == rec.provider

    def test_full_response_covers_all_links(self, truth_graph):
        corpus = direct_report_corpus(truth_graph, response_rate=1.0)
        assert len(corpus) == truth_graph.num_links()

    def test_partial_response_smaller(self, small_run):
        low = direct_report_corpus(small_run.graph, response_rate=0.02, seed=1)
        high = direct_report_corpus(small_run.graph, response_rate=0.5, seed=1)
        assert len(low) < len(high)

    def test_deterministic(self, small_run):
        a = direct_report_corpus(small_run.graph, seed=9)
        b = direct_report_corpus(small_run.graph, seed=9)
        assert a.pairs() == b.pairs()


class TestCommunitiesCorpus:
    def test_noise_free_records_are_true(self, clean_run):
        corpus = communities_corpus(
            clean_run.corpus.rib, clean_run.graph.ixp_asns()
        )
        assert len(corpus) > 20
        wrong = 0
        for rec in corpus:
            truth = clean_run.graph.relationship(rec.a, rec.b)
            if truth is not rec.relationship:
                wrong += 1
            elif rec.relationship is Relationship.P2C and (
                clean_run.graph.provider_of(rec.a, rec.b) != rec.provider
            ):
                wrong += 1
        assert wrong == 0

    def test_noisy_records_mostly_true(self, small_run):
        corpus = communities_corpus(
            small_run.corpus.rib, small_run.graph.ixp_asns()
        )
        total = sum(1 for _ in corpus)
        wrong = sum(
            1
            for rec in corpus
            if small_run.graph.relationship(rec.a, rec.b) is not rec.relationship
        )
        assert wrong / total < 0.02

    def test_source_label(self, small_run):
        corpus = communities_corpus(small_run.corpus.rib)
        assert set(corpus.count_by_source()) == {"communities"}


class TestRpsl:
    def test_generate_parse_round_trip(self, truth_graph):
        objects = generate_rpsl(truth_graph, registration_rate=1.0)
        text = "\n".join(obj.as_text() for obj in objects)
        parsed = parse_rpsl(text)
        assert {o.asn for o in parsed} == {o.asn for o in objects}
        by_asn = {o.asn: o for o in parsed}
        for obj in objects:
            assert sorted(by_asn[obj.asn].imports) == sorted(obj.imports)
            assert sorted(by_asn[obj.asn].exports) == sorted(obj.exports)

    def test_parser_ignores_junk(self):
        text = (
            "% RIPE-style comment\n"
            "aut-num: AS65000\n"
            "remarks: nothing to see\n"
            "import: from AS65001 accept ANY\n"
            "broken line without colon\n"
            "export: to AS65001 announce AS65000:AS-CUSTOMERS\n"
        )
        objects = parse_rpsl(text)
        assert len(objects) == 1
        assert objects[0].imports == [(65001, "ANY")]

    def test_parser_skips_malformed_policies(self):
        text = (
            "aut-num: AS65000\n"
            "import: from NOT-AN-AS accept ANY\n"
            "import: accept ANY\n"
            "export: to AS65001\n"
        )
        objects = parse_rpsl(text)
        assert objects[0].imports == []
        assert objects[0].exports == []

    def test_relationship_decoding(self, truth_graph):
        objects = generate_rpsl(truth_graph, registration_rate=1.0)
        records = list(relationships_from_objects(objects))
        assert records
        for rec in records:
            assert truth_graph.relationship(rec.a, rec.b) is rec.relationship
            if rec.relationship is Relationship.P2C:
                assert truth_graph.provider_of(rec.a, rec.b) == rec.provider

    def test_corpus_source_label(self, truth_graph):
        corpus = rpsl_corpus(truth_graph, registration_rate=1.0)
        assert set(corpus.count_by_source()) == {"rpsl"}

    def test_stale_registry_contradicts_truth(self, small_run):
        fresh = rpsl_corpus(small_run.graph, registration_rate=1.0,
                            staleness=0.0)
        stale = rpsl_corpus(small_run.graph, registration_rate=1.0,
                            staleness=0.3)

        def wrong_fraction(corpus):
            wrong = total = 0
            for rec in corpus:
                truth = small_run.graph.relationship(rec.a, rec.b)
                if truth is None:
                    continue
                total += 1
                if truth is not rec.relationship or (
                    truth is Relationship.P2C
                    and small_run.graph.provider_of(rec.a, rec.b)
                    != rec.provider
                ):
                    wrong += 1
            return wrong / total if total else 0.0

        assert wrong_fraction(fresh) == 0.0
        assert 0.1 < wrong_fraction(stale) < 0.5

    def test_stale_records_surface_as_conflicts(self, small_run):
        """A stale RPSL record disagreeing with a fresh source makes the
        link conflicted, so the validator excludes it — the paper's
        treatment of dirty IRR data."""
        stale = rpsl_corpus(small_run.graph, registration_rate=1.0,
                            staleness=0.5)
        authoritative = direct_report_corpus(small_run.graph,
                                             response_rate=1.0)
        merged = stale.merge(authoritative)
        conflicted = sum(
            1 for pair in merged.pairs() if merged.is_conflicted(*pair)
        )
        assert conflicted > 0
        report = validate(small_run.result, merged)
        assert report.conflicted == sum(
            1
            for a, b in small_run.result.links()
            if merged.records_for(a, b) and merged.is_conflicted(a, b)
        )


class TestPolicyCorpus:
    def test_three_band_table_decoded(self):
        entries = [
            LocalPrefEntry(1, 10, 100),
            LocalPrefEntry(1, 20, 90),
            LocalPrefEntry(1, 30, 80),
        ]
        records = list(decode_localpref(entries))
        by_pair = {(r.a, r.b): r for r in records}
        assert by_pair[(1, 10)].provider == 1
        assert by_pair[(1, 20)].relationship is Relationship.P2P
        assert by_pair[(1, 30)].provider == 30

    def test_ambiguous_two_band_table_skipped(self):
        entries = [LocalPrefEntry(1, 10, 100), LocalPrefEntry(1, 30, 80)]
        assert list(decode_localpref(entries)) == []

    def test_jitter_does_not_confuse_decoder(self, truth_graph):
        corpus = routing_policy_corpus(truth_graph, visibility_rate=1.0)
        for rec in corpus:
            assert truth_graph.relationship(rec.a, rec.b) is rec.relationship

    def test_tables_cover_all_neighbor_classes(self, truth_graph):
        entries = generate_localpref_tables(truth_graph, visibility_rate=1.0)
        by_asn = {}
        for e in entries:
            by_asn.setdefault(e.asn, []).append(e)
        # AS 3 has a provider, a peer and a customer: all three bands
        lprefs = sorted({e.lpref for e in by_asn[3]})
        assert len(lprefs) == 3


class FakeInference:
    """Minimal object satisfying the validator protocol."""

    def __init__(self, rows):
        # rows: (a, b, rel, provider)
        self._rows = {(min(a, b), max(a, b)): (rel, provider)
                      for a, b, rel, provider in rows}

    def links(self):
        return list(self._rows)

    def relationship(self, a, b):
        row = self._rows.get((min(a, b), max(a, b)))
        return row[0] if row else None

    def provider_of(self, a, b):
        row = self._rows.get((min(a, b), max(a, b)))
        return row[1] if row else None


class TestValidator:
    def test_ppv_math(self):
        inference = FakeInference([
            (1, 2, Relationship.P2C, 1),  # correct
            (3, 4, Relationship.P2C, 3),  # wrong direction
            (5, 6, Relationship.P2P, None),  # correct
            (7, 8, Relationship.P2P, None),  # not validated
        ])
        corpus = ValidationCorpus([
            record(1, 2, Relationship.P2C, provider=1),
            record(3, 4, Relationship.P2C, provider=4),
            record(5, 6, Relationship.P2P),
        ])
        report = validate(inference, corpus)
        assert report.total_inferences == 4
        assert report.validated == 3
        assert report.coverage == 0.75
        assert report.ppv(Relationship.P2C) == 0.5
        assert report.ppv(Relationship.P2P) == 1.0
        assert report.overall_ppv == pytest.approx(2 / 3)
        assert len(report.mistakes) == 1

    def test_conflicted_links_excluded(self):
        inference = FakeInference([(1, 2, Relationship.P2P, None)])
        corpus = ValidationCorpus([
            record(1, 2, Relationship.P2P, source="a"),
            record(1, 2, Relationship.P2C, provider=1, source="b"),
        ])
        report = validate(inference, corpus)
        assert report.validated == 0
        assert report.conflicted == 1

    def test_wrong_class_counts_against_inferred_class(self):
        inference = FakeInference([(1, 2, Relationship.P2P, None)])
        corpus = ValidationCorpus([record(1, 2, Relationship.P2C, provider=1)])
        report = validate(inference, corpus)
        assert report.ppv(Relationship.P2P) == 0.0

    def test_by_source_breakdown(self):
        inference = FakeInference([(1, 2, Relationship.P2P, None)])
        corpus = ValidationCorpus([
            record(1, 2, Relationship.P2P, source="a"),
            record(1, 2, Relationship.P2P, source="b"),
        ])
        report = validate(inference, corpus)
        assert set(report.by_source) == {"a", "b"}

    def test_validate_against_truth_scores_almost_everything(self, small_run):
        report = validate_against_truth(small_run.result, small_run.graph)
        # every link that exists in the ground truth is judged; the
        # occasional phantom adjacency fabricated by poisoning noise has
        # no true label and stays unjudged
        assert report.coverage > 0.99

    def test_empty_corpus(self):
        inference = FakeInference([(1, 2, Relationship.P2P, None)])
        report = validate(inference, ValidationCorpus())
        assert report.validated == 0
        assert report.overall_ppv == 1.0


class TestHeadlineAccuracy:
    """The paper's headline numbers, as shape targets (E3)."""

    def test_c2p_ppv_above_98(self, small_run):
        report = validate_against_truth(small_run.result, small_run.graph)
        assert report.ppv(Relationship.P2C) > 0.98

    def test_p2p_ppv_above_75(self, small_run):
        report = validate_against_truth(small_run.result, small_run.graph)
        assert report.ppv(Relationship.P2P) > 0.75

    def test_clean_world_near_perfect(self, clean_run):
        report = validate_against_truth(clean_run.result, clean_run.graph)
        assert report.overall_ppv > 0.97
