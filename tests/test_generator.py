"""Unit tests for the synthetic Internet generator."""

import pytest

from repro.net.prefix import Prefix
from repro.relationships import Relationship, canonical_pair
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.model import ASType, TopologyError


@pytest.fixture(scope="module")
def graph():
    return generate_topology(GeneratorConfig(n_ases=250, seed=9))


class TestStructure:
    def test_population_close_to_requested(self, graph):
        # IXP route servers are created on top of n_ases
        non_ixp = sum(1 for a in graph.ases() if a.type is not ASType.IXP_RS)
        assert non_ixp == 250

    def test_invariants_hold(self, graph):
        assert graph.validate_invariants() == []

    def test_clique_size(self, graph):
        assert len(graph.clique_asns()) == 10

    def test_clique_fully_meshed(self, graph):
        clique = graph.clique_asns()
        for i, a in enumerate(clique):
            for b in clique[i + 1:]:
                assert graph.relationship(a, b) is Relationship.P2P

    def test_clique_transit_free(self, graph):
        for asn in graph.clique_asns():
            assert not graph.providers[asn]

    def test_every_edge_as_has_provider(self, graph):
        for asys in graph.ases():
            if asys.type in (ASType.CLIQUE, ASType.IXP_RS):
                continue
            assert graph.providers[asys.asn], f"AS{asys.asn} orphaned"

    def test_role_counts_follow_fractions(self):
        counts = GeneratorConfig(n_ases=1000).role_counts()
        assert counts[ASType.CLIQUE] == 10
        assert counts[ASType.STUB] > 0
        assert sum(counts.values()) == 1000

    def test_too_small_population_rejected(self):
        with pytest.raises(TopologyError):
            GeneratorConfig(n_ases=12).role_counts()

    def test_clique_members_have_largest_customer_bases(self, graph):
        clique_customers = sorted(
            len(graph.customers[a]) for a in graph.clique_asns()
        )
        stub_like = [
            len(graph.customers[a.asn])
            for a in graph.ases()
            if a.type is ASType.STUB
        ]
        assert clique_customers[-1] > max(stub_like)
        # the clique collectively holds a large share of direct customers
        total = sum(len(graph.customers[a.asn]) for a in graph.ases())
        clique_total = sum(len(graph.customers[a]) for a in graph.clique_asns())
        assert clique_total / total > 0.15


class TestPrefixes:
    def test_every_business_as_originates(self, graph):
        for asys in graph.ases():
            if asys.type is ASType.IXP_RS:
                assert not asys.prefixes
            else:
                assert asys.prefixes

    def test_prefixes_never_overlap(self, graph):
        all_prefixes = [p for a in graph.ases() for p in a.prefixes]
        assert len(all_prefixes) == len(set(all_prefixes))
        ordered = sorted(all_prefixes)
        for a, b in zip(ordered, ordered[1:]):
            assert not a.contains(b)

    def test_clique_originates_more_than_stubs(self, graph):
        clique_avg = sum(
            graph.get_as(a).num_addresses for a in graph.clique_asns()
        ) / len(graph.clique_asns())
        stubs = [a for a in graph.ases() if a.type is ASType.STUB]
        stub_avg = sum(a.num_addresses for a in stubs) / len(stubs)
        assert clique_avg > stub_avg


class TestIxp:
    def test_via_ixp_links_are_true_p2p(self, graph):
        for (a, b), rs in graph.via_ixp.items():
            assert graph.relationship(a, b) is Relationship.P2P
            assert graph.get_as(rs).type is ASType.IXP_RS

    def test_ixps_disabled(self):
        g = generate_topology(GeneratorConfig(n_ases=200, seed=3, ixps_enabled=False))
        assert g.via_ixp == {}
        assert not g.ixp_asns()


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = generate_topology(GeneratorConfig(n_ases=200, seed=5))
        b = generate_topology(GeneratorConfig(n_ases=200, seed=5))
        assert sorted(a.links()) == sorted(b.links())
        assert {x.asn: x.prefixes for x in a.ases()} == {
            x.asn: x.prefixes for x in b.ases()
        }

    def test_different_seed_different_graph(self):
        a = generate_topology(GeneratorConfig(n_ases=200, seed=5))
        b = generate_topology(GeneratorConfig(n_ases=200, seed=6))
        assert sorted(a.links()) != sorted(b.links())


class TestPeeringRichness:
    def test_richness_increases_peering(self):
        lean = generate_topology(
            GeneratorConfig(n_ases=300, seed=4, peering_richness=0.3)
        )
        rich = generate_topology(
            GeneratorConfig(n_ases=300, seed=4, peering_richness=2.0)
        )

        def peer_count(g):
            return sum(1 for _, _, rel in g.links() if rel is Relationship.P2P)

        assert peer_count(rich) > peer_count(lean)

    def test_sibling_pairs(self):
        g = generate_topology(GeneratorConfig(n_ases=300, seed=4, sibling_pairs=3))
        sibling_links = [l for l in g.links() if l[2] is Relationship.S2S]
        assert len(sibling_links) == 3
