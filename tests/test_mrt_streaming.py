"""Streaming MRT decode: generator path vs eager path equivalence.

The eager helpers (``read_rib_dump`` / ``read_update_dump``) now drain
``MrtReader.iter_records()``; these tests prove the streaming path
yields record sequences identical to the eager lists, including with
pathologically small read buffers, and that it is genuinely lazy.
"""

import io

import pytest

from repro.mrt.reader import (
    MrtReader,
    RibRecord,
    UpdateRecord,
    iter_rib_dump,
    read_rib_dump,
)
from repro.mrt.updates import (
    iter_update_dump,
    read_update_dump,
    write_update_dump,
)
from repro.mrt.writer import MrtWriter, write_rib_dump
from repro.net.prefix import Prefix


class TestRibStreaming:
    def test_streaming_equals_eager(self, tmp_path, small_run):
        dump = str(tmp_path / "rib.mrt")
        write_rib_dump(dump, small_run.corpus.rib)
        eager = read_rib_dump(dump)
        assert eager  # non-trivial corpus
        assert list(iter_rib_dump(dump)) == eager

    def test_tiny_buffer_identical(self, tmp_path, small_run):
        dump = str(tmp_path / "rib.mrt")
        write_rib_dump(dump, small_run.corpus.rib)
        assert list(iter_rib_dump(dump, buffer_size=1)) == read_rib_dump(dump)

    def test_lazy_first_record(self, tmp_path, small_run):
        dump = str(tmp_path / "rib.mrt")
        write_rib_dump(dump, small_run.corpus.rib)
        stream = iter_rib_dump(dump)
        first = next(stream)
        assert isinstance(first, RibRecord)
        stream.close()  # early close must not raise; file handle released
        assert first == read_rib_dump(dump)[0]

    def test_iter_delegates_to_iter_records(self, tmp_path, small_run):
        dump = str(tmp_path / "rib.mrt")
        write_rib_dump(dump, small_run.corpus.rib)
        with open(dump, "rb") as fh:
            via_iter = list(MrtReader(fh))
        with open(dump, "rb") as fh:
            via_records = list(MrtReader(fh).iter_records())
        assert via_iter == via_records


class TestUpdateStreaming:
    def test_streaming_equals_eager(self, tmp_path, small_run):
        dump = str(tmp_path / "updates.mrt")
        write_update_dump(dump, small_run.corpus.rib)
        eager = read_update_dump(dump)
        assert eager
        assert list(iter_update_dump(dump)) == eager

    def test_tiny_buffer_identical(self, tmp_path, small_run):
        dump = str(tmp_path / "updates.mrt")
        write_update_dump(dump, small_run.corpus.rib)
        assert (
            list(iter_update_dump(dump, buffer_size=1))
            == read_update_dump(dump)
        )

    def test_lazy_partial_consumption(self, tmp_path, small_run):
        dump = str(tmp_path / "updates.mrt")
        write_update_dump(dump, small_run.corpus.rib)
        stream = iter_update_dump(dump)
        head = [next(stream) for _ in range(3)]
        stream.close()
        assert all(isinstance(r, UpdateRecord) for r in head)
        assert head == read_update_dump(dump)[:3]


class TestLegacyStreaming:
    def test_table_dump_v1_streaming(self):
        buf = io.BytesIO()
        writer = MrtWriter(buf, timestamp=7)
        entries = [
            (Prefix.parse("10.0.0.0/8"), 1, (1, 2), ()),
            (Prefix.parse("192.0.2.0/24"), 3, (3, 4, 5), ((3, 9),)),
        ]
        for prefix, peer, path, communities in entries:
            writer.write_table_dump_entry(prefix, peer, path, communities)
        payload = buf.getvalue()
        eager = list(MrtReader(io.BytesIO(payload)))
        streamed = list(MrtReader(io.BytesIO(payload)).iter_records())
        assert streamed == eager
        assert [r.prefix for r in streamed] == [e[0] for e in entries]

    def test_generator_does_not_prefetch(self):
        """iter_records must not touch the stream past the yielded record."""
        buf = io.BytesIO()
        writer = MrtWriter(buf, timestamp=0)
        writer.write_table_dump_entry(
            Prefix.parse("10.0.0.0/8"), 1, (1, 2), ()
        )
        mark = buf.tell()
        writer.write_table_dump_entry(
            Prefix.parse("192.0.2.0/24"), 2, (2, 3), ()
        )
        stream = io.BytesIO(buf.getvalue())
        records = MrtReader(stream).iter_records()
        next(records)
        assert stream.tell() == mark
