"""Unit tests for the longest-prefix-match trie."""

import pytest
from hypothesis import given, strategies as st

from repro.net.prefix import Prefix
from repro.net.trie import PrefixTrie


@pytest.fixture
def trie():
    t = PrefixTrie()
    t.insert(Prefix.parse("10.0.0.0/8"), "eight")
    t.insert(Prefix.parse("10.1.0.0/16"), "sixteen")
    t.insert(Prefix.parse("10.1.2.0/24"), "twentyfour")
    t.insert(Prefix.parse("192.0.2.0/24"), "doc")
    return t


class TestBasics:
    def test_len(self, trie):
        assert len(trie) == 4

    def test_contains(self, trie):
        assert Prefix.parse("10.1.0.0/16") in trie
        assert Prefix.parse("10.2.0.0/16") not in trie

    def test_exact_get(self, trie):
        assert trie.get(Prefix.parse("10.1.0.0/16")) == "sixteen"

    def test_get_default(self, trie):
        assert trie.get(Prefix.parse("172.16.0.0/12"), "missing") == "missing"

    def test_get_is_exact_not_lpm(self, trie):
        # /12 inside 10/8 but not stored exactly
        assert trie.get(Prefix.parse("10.16.0.0/12")) is None

    def test_insert_replaces(self, trie):
        trie.insert(Prefix.parse("10.0.0.0/8"), "new")
        assert trie.get(Prefix.parse("10.0.0.0/8")) == "new"
        assert len(trie) == 4

    def test_remove(self, trie):
        assert trie.remove(Prefix.parse("10.1.0.0/16"))
        assert Prefix.parse("10.1.0.0/16") not in trie
        assert len(trie) == 3
        # children survive parent removal
        assert trie.get(Prefix.parse("10.1.2.0/24")) == "twentyfour"

    def test_remove_missing_returns_false(self, trie):
        assert not trie.remove(Prefix.parse("172.16.0.0/12"))

    def test_default_route(self):
        t = PrefixTrie()
        t.insert(Prefix.parse("0.0.0.0/0"), "default")
        match = t.longest_match(12345)
        assert match is not None
        assert match[1] == "default"


class TestLongestMatch:
    def test_most_specific_wins(self, trie):
        prefix, value = trie.longest_match(Prefix.parse("10.1.2.0/24").network + 5)
        assert value == "twentyfour"
        assert prefix == Prefix.parse("10.1.2.0/24")

    def test_falls_back_to_shorter(self, trie):
        prefix, value = trie.longest_match(Prefix.parse("10.9.0.0/16").network)
        assert value == "eight"

    def test_no_match(self, trie):
        assert trie.longest_match(Prefix.parse("172.16.0.0/12").network) is None

    def test_covering_finds_ancestor(self, trie):
        prefix, value = trie.covering(Prefix.parse("10.1.2.128/25"))
        assert value == "twentyfour"

    def test_covering_exact(self, trie):
        prefix, value = trie.covering(Prefix.parse("10.1.0.0/16"))
        assert value == "sixteen"

    def test_covering_none(self, trie):
        assert trie.covering(Prefix.parse("172.16.0.0/12")) is None


class TestIteration:
    def test_items_in_address_order(self, trie):
        keys = [p for p, _ in trie.items()]
        assert keys == sorted(keys)

    def test_to_dict(self, trie):
        d = trie.to_dict()
        assert len(d) == 4
        assert d[Prefix.parse("192.0.2.0/24")] == "doc"


prefix_strategy = st.integers(min_value=8, max_value=28).flatmap(
    lambda length: st.integers(min_value=0, max_value=(1 << 32) - 1).map(
        lambda raw: Prefix(raw >> (32 - length) << (32 - length), length)
    )
)


@given(
    st.dictionaries(prefix_strategy, st.integers(), max_size=30),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
)
def test_lpm_matches_brute_force(entries, address):
    trie = PrefixTrie()
    for prefix, value in entries.items():
        trie.insert(prefix, value)
    covering = [
        (p, v) for p, v in entries.items() if p.contains_address(address)
    ]
    got = trie.longest_match(address)
    if not covering:
        assert got is None
    else:
        best = max(covering, key=lambda pv: pv[0].length)
        assert got == best


@given(st.dictionaries(prefix_strategy, st.integers(), max_size=30))
def test_items_round_trip(entries):
    trie = PrefixTrie()
    for prefix, value in entries.items():
        trie.insert(prefix, value)
    assert trie.to_dict() == entries
