"""Unit tests for the Gao and degree baselines."""

import pytest

from repro.baselines import infer_degree, infer_gao
from repro.baselines.common import RelationshipMap
from repro.baselines.degree import DegreeConfig
from repro.baselines.gao import GaoConfig
from repro.core.paths import PathSet
from repro.relationships import Relationship
from repro.validation.validator import validate_against_truth


class TestRelationshipMap:
    def test_p2c(self):
        m = RelationshipMap()
        m.set_p2c(1, 2)
        assert m.relationship(2, 1) is Relationship.P2C
        assert m.provider_of(1, 2) == 1

    def test_p2p_clears_provider(self):
        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2p(1, 2)
        assert m.relationship(1, 2) is Relationship.P2P
        assert m.provider_of(1, 2) is None

    def test_s2s(self):
        m = RelationshipMap()
        m.set_s2s(1, 2)
        assert m.relationship(1, 2) is Relationship.S2S

    def test_counts_and_iter(self):
        m = RelationshipMap()
        m.set_p2c(1, 2)
        m.set_p2p(3, 4)
        assert m.counts() == {Relationship.P2C: 1, Relationship.P2P: 1}
        assert len(list(m)) == 2
        assert len(m.links()) == 2


class TestGao:
    def test_simple_hierarchy(self):
        # 1 has the highest degree: everything slopes away from it;
        # interior links (not adjacent to the top) stay c2p
        paths = [
            (10, 1, 20), (10, 1, 30), (20, 1, 30), (30, 1, 40),
            (11, 10, 1, 20),
        ]
        result = infer_gao(PathSet.sanitize(paths))
        assert result.provider_of(10, 11) == 10
        # top-adjacent links get at least a directional assignment or
        # Gao's (documented) peering confusion — never the wrong provider
        rel = result.relationship(1, 20)
        assert rel is not None
        if result.provider_of(1, 20) is not None:
            assert result.provider_of(1, 20) == 1

    def test_stub_peering_confusion_is_gaos_known_weakness(self):
        """Gao's phase-3 heuristic famously over-labels top-adjacent
        stub links as peering (the IMC13 paper's motivation for doing
        better); pin that behavior so regressions are deliberate."""
        paths = [(10, 1, 20), (10, 1, 30), (20, 1, 30), (30, 1, 40)]
        result = infer_gao(PathSet.sanitize(paths))
        assert result.relationship(1, 20) is Relationship.P2P

    def test_sibling_detection(self):
        # transit observed in both directions repeatedly → s2s
        paths = (
            [(10, 1, 2, 20)] * 3
            + [(20, 2, 1, 10)] * 3
            + [(30, 1, 2, 40)] * 3
            + [(40, 2, 1, 30)] * 3
            # degree padding so neither 1 nor 2 is the unique top
            + [(1, i) for i in range(100, 104)]
            + [(2, i) for i in range(200, 204)]
        )
        result = infer_gao(PathSet.sanitize(paths), GaoConfig(sibling_votes=1))
        assert result.relationship(1, 2) is Relationship.S2S

    def test_sibling_disabled(self):
        paths = [(10, 1, 2, 20)] * 3 + [(20, 2, 1, 10)] * 3
        result = infer_gao(
            PathSet.sanitize(paths), GaoConfig(infer_siblings=False)
        )
        assert result.relationship(1, 2) is not Relationship.S2S

    def test_peering_refinement(self):
        # 1 and 2 comparable degree, link only ever adjacent to the top;
        # raise the sibling threshold so the bidirectional votes do not
        # trip the s2s rule first
        paths = [
            (10, 1, 2, 20), (11, 1, 2, 21), (20, 2, 1, 10), (21, 2, 1, 11),
        ]
        result = infer_gao(
            PathSet.sanitize(paths), GaoConfig(sibling_votes=5)
        )
        assert result.relationship(1, 2) is Relationship.P2P

    def test_degree_ratio_blocks_peering(self):
        paths = [(10, 1, 2), (11, 1, 2), (12, 1, 2), (13, 1, 2),
                 (14, 1, 15), (16, 1, 17), (18, 1, 19)]
        result = infer_gao(
            PathSet.sanitize(paths), GaoConfig(degree_ratio=1.5)
        )
        # degree(1) >> degree(2): too lopsided to be peers
        assert result.relationship(1, 2) is not Relationship.P2P

    def test_labels_every_link(self, small_run):
        result = infer_gao(small_run.paths)
        assert set(result.links()) == small_run.paths.links()


class TestDegreeBaseline:
    def test_bigger_degree_is_provider(self):
        paths = [(10, 1, 20), (11, 1, 21), (12, 1, 22)]
        result = infer_degree(PathSet.sanitize(paths))
        assert result.provider_of(1, 10) == 1

    def test_comparable_degrees_peer(self):
        paths = [(1, 2)]
        result = infer_degree(PathSet.sanitize(paths))
        assert result.relationship(1, 2) is Relationship.P2P

    def test_ratio_knob(self):
        paths = [(10, 1, 20), (11, 1, 21)]  # degree(1)=4 vs degree(10)=1
        loose = infer_degree(PathSet.sanitize(paths), DegreeConfig(peer_ratio=10))
        strict = infer_degree(PathSet.sanitize(paths), DegreeConfig(peer_ratio=1.1))
        assert loose.relationship(1, 10) is Relationship.P2P
        assert strict.relationship(1, 10) is Relationship.P2C

    def test_labels_every_link(self, small_run):
        result = infer_degree(small_run.paths)
        assert set(result.links()) == small_run.paths.links()


class TestOrdering:
    def test_asrank_beats_baselines(self, small_run):
        """The paper's comparison: ASRank is more accurate than both."""
        asrank = validate_against_truth(small_run.result, small_run.graph)
        gao = validate_against_truth(
            infer_gao(small_run.paths), small_run.graph
        )
        degree = validate_against_truth(
            infer_degree(small_run.paths), small_run.graph
        )
        assert asrank.overall_ppv > gao.overall_ppv
        assert asrank.overall_ppv > degree.overall_ppv
