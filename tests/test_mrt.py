"""Unit and property tests for the MRT (RFC 6396) codec."""

import io
import struct

import pytest
from hypothesis import given, strategies as st

from repro.mrt import constants as c
from repro.mrt.reader import (
    MrtReader,
    RibRecord,
    UpdateRecord,
    decode_as_path,
    decode_attributes,
)
from repro.mrt.writer import MrtWriter, encode_as_path, encode_attributes
from repro.net.prefix import Prefix


class TestAsPathCodec:
    def test_round_trip_simple(self):
        path = (65001, 65002, 65003)
        assert decode_as_path(encode_as_path(path)) == path

    def test_round_trip_long_path_multiple_segments(self):
        path = tuple(range(1, 600))  # forces >255 segmentation
        assert decode_as_path(encode_as_path(path)) == path

    def test_empty_path(self):
        assert decode_as_path(encode_as_path(())) == ()

    def test_as_set_decoded_sorted(self):
        blob = struct.pack("!BB", c.SEGMENT_AS_SET, 3) + struct.pack(
            "!3I", 30, 10, 20
        )
        assert decode_as_path(blob) == (10, 20, 30)

    def test_truncated_segment_raises(self):
        blob = struct.pack("!BB", c.SEGMENT_AS_SEQUENCE, 5) + b"\0\0\0\1"
        with pytest.raises(c.MrtFormatError):
            decode_as_path(blob)

    def test_unknown_segment_type_raises(self):
        blob = struct.pack("!BB", 9, 1) + struct.pack("!I", 1)
        with pytest.raises(c.MrtFormatError):
            decode_as_path(blob)


class TestAttributeCodec:
    def test_round_trip_with_communities(self):
        communities = ((65000, 1001), (65001, 1002))
        blob = encode_attributes((1, 2, 3), communities=communities)
        path, comms = decode_attributes(blob)
        assert path == (1, 2, 3)
        assert comms == communities

    def test_no_communities(self):
        blob = encode_attributes((7, 8))
        path, comms = decode_attributes(blob)
        assert path == (7, 8)
        assert comms == ()

    def test_extended_length_attribute(self):
        # a path long enough that AS_PATH exceeds 255 bytes
        long_path = tuple(range(1, 100))
        blob = encode_attributes(long_path)
        path, _ = decode_attributes(blob)
        assert path == long_path

    def test_truncated_attribute_raises(self):
        blob = encode_attributes((1, 2, 3))[:-2]
        with pytest.raises(c.MrtFormatError):
            decode_attributes(blob)

    def test_bad_communities_length_raises(self):
        value = b"\0\0\0"  # not a multiple of 4
        blob = struct.pack("!BBB", c.FLAG_OPTIONAL, c.ATTR_COMMUNITIES,
                           len(value)) + value
        with pytest.raises(c.MrtFormatError):
            decode_attributes(blob)


def roundtrip_rib(entries_by_prefix, peers):
    stream = io.BytesIO()
    writer = MrtWriter(stream, timestamp=1234)
    writer.write_peer_index_table(peers)
    for prefix, entries in entries_by_prefix:
        writer.write_rib_entry(prefix, entries)
    stream.seek(0)
    return [r for r in MrtReader(stream) if isinstance(r, RibRecord)]


class TestTableDumpV2:
    def test_single_entry_round_trip(self):
        prefix = Prefix.parse("192.0.2.0/24")
        records = roundtrip_rib(
            [(prefix, [(65010, (65010, 65020), ((65010, 1001),))])],
            peers=[65010],
        )
        assert len(records) == 1
        record = records[0]
        assert record.prefix == prefix
        assert record.peer_asn == 65010
        assert record.as_path == (65010, 65020)
        assert record.communities == ((65010, 1001),)

    def test_multiple_peers_one_prefix(self):
        prefix = Prefix.parse("10.0.0.0/8")
        records = roundtrip_rib(
            [(prefix, [(1, (1, 5), ()), (2, (2, 5), ())])], peers=[1, 2]
        )
        assert {r.peer_asn for r in records} == {1, 2}

    def test_various_prefix_lengths(self):
        prefixes = [
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("172.16.0.0/12"),
            Prefix.parse("192.0.2.0/24"),
            Prefix.parse("192.0.2.128/25"),
            Prefix.parse("0.0.0.0/0"),
        ]
        records = roundtrip_rib(
            [(p, [(1, (1, 2), ())]) for p in prefixes], peers=[1]
        )
        assert [r.prefix for r in records] == prefixes

    def test_rib_before_peer_table_rejected_on_write(self):
        writer = MrtWriter(io.BytesIO())
        with pytest.raises(c.MrtFormatError):
            writer.write_rib_entry(Prefix.parse("10.0.0.0/8"), [(1, (1,), ())])

    def test_unknown_peer_rejected_on_write(self):
        writer = MrtWriter(io.BytesIO())
        writer.write_peer_index_table([1])
        with pytest.raises(c.MrtFormatError):
            writer.write_rib_entry(Prefix.parse("10.0.0.0/8"), [(2, (2,), ())])

    def test_rib_before_peer_table_rejected_on_read(self):
        stream = io.BytesIO()
        writer = MrtWriter(stream)
        writer.write_peer_index_table([1])
        writer.write_rib_entry(Prefix.parse("10.0.0.0/8"), [(1, (1,), ())])
        data = stream.getvalue()
        # locate and strip the first record (the peer index table)
        first_len = struct.unpack("!I", data[8:12])[0]
        stripped = data[12 + first_len:]
        with pytest.raises(c.MrtFormatError):
            list(MrtReader(io.BytesIO(stripped)))

    def test_truncated_stream_raises(self):
        stream = io.BytesIO()
        writer = MrtWriter(stream)
        writer.write_peer_index_table([1])
        writer.write_rib_entry(Prefix.parse("10.0.0.0/8"), [(1, (1,), ())])
        data = stream.getvalue()[:-3]
        with pytest.raises(c.MrtFormatError):
            list(MrtReader(io.BytesIO(data)))

    def test_unknown_mrt_type_skipped(self):
        stream = io.BytesIO()
        # a bogus record type 99 followed by a real table
        stream.write(struct.pack("!IHHI", 0, 99, 0, 4) + b"\0\0\0\0")
        writer = MrtWriter(stream)
        writer.write_peer_index_table([1])
        writer.write_rib_entry(Prefix.parse("10.0.0.0/8"), [(1, (1,), ())])
        stream.seek(0)
        records = [r for r in MrtReader(stream) if isinstance(r, RibRecord)]
        assert len(records) == 1


class TestBgp4mp:
    def test_update_round_trip(self):
        stream = io.BytesIO()
        writer = MrtWriter(stream, timestamp=7)
        writer.write_bgp4mp_update(
            peer_asn=65001,
            local_asn=65002,
            as_path=(65001, 65003),
            announced=[Prefix.parse("192.0.2.0/24"), Prefix.parse("10.0.0.0/8")],
            communities=((65001, 1002),),
        )
        stream.seek(0)
        records = [r for r in MrtReader(stream) if isinstance(r, UpdateRecord)]
        assert len(records) == 1
        update = records[0]
        assert update.peer_asn == 65001
        assert update.local_asn == 65002
        assert update.as_path == (65001, 65003)
        assert update.announced == (
            Prefix.parse("192.0.2.0/24"),
            Prefix.parse("10.0.0.0/8"),
        )
        assert update.communities == ((65001, 1002),)

    def test_bad_marker_raises(self):
        stream = io.BytesIO()
        writer = MrtWriter(stream)
        writer.write_bgp4mp_update(1, 2, (1,), [Prefix.parse("10.0.0.0/8")])
        data = bytearray(stream.getvalue())
        data[12 + 12 + 8] ^= 0xFF  # corrupt the first marker byte
        with pytest.raises(c.MrtFormatError):
            list(MrtReader(io.BytesIO(bytes(data))))


asn_strategy = st.integers(min_value=1, max_value=2**32 - 1)
path_strategy = st.lists(asn_strategy, min_size=1, max_size=12).map(tuple)
prefix_strategy = st.integers(min_value=0, max_value=24).flatmap(
    lambda length: st.integers(min_value=0, max_value=(1 << 32) - 1).map(
        lambda raw: Prefix(
            (raw >> (32 - length) << (32 - length)) if length else 0, length
        )
    )
)


@given(path_strategy)
def test_as_path_round_trip_property(path):
    assert decode_as_path(encode_as_path(path)) == path


@given(
    prefix_strategy,
    path_strategy,
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=0xFFFF),
            st.integers(min_value=0, max_value=0xFFFF),
        ),
        max_size=5,
    ).map(tuple),
)
def test_rib_record_round_trip_property(prefix, path, communities):
    records = roundtrip_rib([(prefix, [(9, path, communities)])], peers=[9])
    assert records[0].prefix == prefix
    assert records[0].as_path == path
    assert records[0].communities == communities
