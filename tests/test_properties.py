"""Cross-cutting property-based tests on randomly generated worlds.

Hypothesis drives the topology seed and scale; every drawn world must
satisfy the pipeline's hard invariants end to end.  (Statistical
accuracy claims live in the scenario tests — these are the properties
that must *never* break.)
"""

from hypothesis import given, settings, strategies as st

from repro.bgp.collector import Collector, CollectorConfig
from repro.bgp.noise import NoiseConfig
from repro.core.cone import ConeDefinition, compute_cones
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.relationships import Relationship
from repro.topology.generator import GeneratorConfig, generate_topology

world_strategy = st.builds(
    GeneratorConfig,
    n_ases=st.integers(min_value=60, max_value=140),
    seed=st.integers(min_value=0, max_value=10_000),
    clique_size=st.integers(min_value=4, max_value=8),
    regions=st.integers(min_value=2, max_value=5),
)


def run_world(config: GeneratorConfig):
    graph = generate_topology(config)
    collector = Collector(
        graph,
        # 12 VPs: below this, tiny worlds drop below the visibility
        # floor where even a perfect algorithm cannot identify the
        # clique (see test_no_false_clique_members for the guarantee
        # that survives *any* visibility)
        CollectorConfig(
            n_vps=12, seed=config.seed + 1, noise=NoiseConfig.none(),
            build_rib=False,
        ),
    )
    corpus = collector.run()
    paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
    result = infer_relationships(paths)
    return graph, paths, result


@settings(max_examples=12, deadline=None)
@given(world_strategy)
def test_every_observed_link_is_labeled(config):
    graph, paths, result = run_world(config)
    for a, b in paths.links():
        assert result.relationship(a, b) is not None


@settings(max_examples=12, deadline=None)
@given(world_strategy)
def test_inferred_p2c_dag_is_acyclic(config):
    graph, paths, result = run_world(config)
    WHITE, GRAY, BLACK = 0, 1, 2
    state = {}
    for root in paths.asns():
        if state.get(root, WHITE) != WHITE:
            continue
        stack = [(root, iter(result.customers.get(root, ())))]
        state[root] = GRAY
        while stack:
            node, children = stack[-1]
            advanced = False
            for child in children:
                mark = state.get(child, WHITE)
                assert mark != GRAY, "inferred provider cycle"
                if mark == WHITE:
                    state[child] = GRAY
                    stack.append(
                        (child, iter(result.customers.get(child, ())))
                    )
                    advanced = True
                    break
            if not advanced:
                state[node] = BLACK
                stack.pop()


@settings(max_examples=10, deadline=None)
@given(world_strategy)
def test_clique_precision_up_to_information_limit(config):
    """Clique precision, up to the information-theoretic limit.

    A network whose relationship with *every* inferred clique member is
    customer-or-peer is provably indistinguishable from a tier-1 in
    clean path data: no observable path can witness a difference
    (customer routes and peer routes look identical one hop above, and
    the pattern that would expose a customer — its route crossing a
    clique peer link — never materializes when every member reaches it
    directly).  The real system hits the same wall: tier-1 status of
    borderline networks is genuinely disputed.  Anything *outside* that
    envelope must never be admitted.
    """
    graph, paths, result = run_world(config)
    true_clique = set(graph.clique_asns())
    members = set(result.clique.members)
    assert members & true_clique, "clique missed entirely"
    # every inferred clique pair is a real link: the algorithm never
    # fabricates adjacency, whatever the visibility
    member_list = sorted(members)
    for i, a in enumerate(member_list):
        for b in member_list[i + 1:]:
            assert graph.relationship(a, b) is not None
    # false members sit inside the clique's immediate neighborhood —
    # each is a genuine customer or peer of true clique members (the
    # observationally-equivalent configuration), never something farther
    for member in members - true_clique:
        touching_clique = (
            graph.providers[member] | graph.peers[member]
        ) & true_clique
        assert touching_clique, (
            f"AS{member} has no upward link to any true tier-1"
        )


@settings(max_examples=10, deadline=None)
@given(world_strategy)
def test_cone_invariants(config):
    graph, paths, result = run_world(config)
    recursive = compute_cones(result, ConeDefinition.RECURSIVE)
    bgp = compute_cones(result, ConeDefinition.BGP_OBSERVED)
    ppdc = compute_cones(result, ConeDefinition.PROVIDER_PEER_OBSERVED)
    for asn in paths.asns():
        # self-membership everywhere
        assert asn in recursive[asn]
        assert asn in bgp[asn]
        assert asn in ppdc[asn]
        # descending observation is a subset of the inferred closure
        assert bgp[asn] <= recursive[asn]


@settings(max_examples=10, deadline=None)
@given(world_strategy)
def test_clean_world_paths_have_no_artifacts(config):
    graph, paths, result = run_world(config)
    stats = paths.stats
    assert stats.discarded_loops == 0
    assert stats.discarded_reserved_asn == 0
    assert stats.ixp_hops_removed == 0


@settings(max_examples=10, deadline=None)
@given(world_strategy)
def test_oracle_accuracy_floor(config):
    """Even across arbitrary seeds and scales, a noise-free world must
    be inferred with high overall accuracy."""
    from repro.validation.validator import validate_against_truth

    graph, paths, result = run_world(config)
    report = validate_against_truth(result, graph)
    assert report.overall_ppv > 0.85
    assert report.ppv(Relationship.P2C) > 0.9
