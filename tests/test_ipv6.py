"""Tests for the IPv6 plane: prefixes, dual-plane collection, congruence."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.congruence import congruence_report
from repro.bgp.collector import Collector, CollectorConfig
from repro.bgp.noise import NoiseConfig
from repro.bgp.propagation import GraphIndex
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.net.prefix import PrefixError
from repro.net.prefix6 import Prefix6, Prefix6Allocator
from repro.relationships import Relationship
from repro.topology.generator import GeneratorConfig, generate_topology


class TestPrefix6:
    def test_parse_and_str(self):
        p = Prefix6.parse("2001:db8::/32")
        assert p.length == 32
        assert str(p) == "2001:db8::/32"

    def test_parse_compressed_forms(self):
        assert Prefix6.parse("::/0").length == 0
        assert str(Prefix6.parse("2001:db8:0:0::/64")) == "2001:db8::/64"

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix6.parse("2001:db8::1/32")

    def test_rejects_malformed(self):
        for text in ("2001:db8::/129", "not-a-prefix/32", "2001:zz::/32"):
            with pytest.raises(PrefixError):
                Prefix6.parse(text)

    def test_contains(self):
        outer = Prefix6.parse("2001:db8::/32")
        inner = Prefix6.parse("2001:db8:1::/48")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_num_addresses(self):
        assert Prefix6.parse("2001:db8::/126").num_addresses == 4

    def test_subnets(self):
        halves = list(Prefix6.parse("2001:db8::/32").subnets(33))
        assert len(halves) == 2
        assert halves[0].network < halves[1].network

    def test_ordering_and_hash(self):
        a = Prefix6.parse("2001:db8::/32")
        b = Prefix6.parse("2001:db9::/32")
        assert a < b
        assert len({a, Prefix6.parse("2001:db8::/32")}) == 1

    def test_immutability(self):
        p = Prefix6.parse("2001:db8::/32")
        with pytest.raises(AttributeError):
            p.length = 33

    @given(st.integers(min_value=16, max_value=64).flatmap(
        lambda length: st.integers(min_value=0, max_value=(1 << 128) - 1).map(
            lambda raw: Prefix6(raw >> (128 - length) << (128 - length), length)
        )
    ))
    def test_text_round_trip(self, prefix):
        assert Prefix6.parse(str(prefix)) == prefix


class TestPrefix6Allocator:
    def test_no_overlap(self):
        allocator = Prefix6Allocator()
        allocated = [allocator.allocate(32) for _ in range(5)]
        allocated += [allocator.allocate(48) for _ in range(20)]
        for i, a in enumerate(allocated):
            for b in allocated[i + 1:]:
                assert not a.contains(b) and not b.contains(a)

    def test_mixed_lengths_aligned(self):
        allocator = Prefix6Allocator()
        a = allocator.allocate(48)
        b = allocator.allocate(32)
        assert not a.contains(b) and not b.contains(a)
        assert b.network % b.num_addresses == 0

    def test_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix6Allocator().allocate(8)


@pytest.fixture(scope="module")
def dual_graph():
    return generate_topology(GeneratorConfig(n_ases=250, seed=77))


class TestDualPlaneTopology:
    def test_partial_adoption(self, dual_graph):
        v6 = dual_graph.v6_asns()
        business = [
            a for a in dual_graph.ases() if a.prefixes
        ]
        assert 0 < len(v6) < len(business)

    def test_backbone_adopts_first(self, dual_graph):
        clique = dual_graph.clique_asns()
        v6 = dual_graph.v6_asns()
        assert set(clique) <= v6

    def test_no_v6_islands(self, dual_graph):
        """Every v6 AS with providers has at least one v6 provider."""
        v6 = dual_graph.v6_asns()
        for asn in v6:
            providers = dual_graph.providers[asn]
            if providers:
                assert providers & v6, f"AS{asn} is a v6 island"

    def test_v6_prefixes_unique(self, dual_graph):
        all6 = [p for a in dual_graph.ases() for p in a.prefixes6]
        assert len(all6) == len(set(all6))

    def test_adoption_disabled(self):
        graph = generate_topology(
            GeneratorConfig(n_ases=100, seed=3, v6_adoption=0.0)
        )
        assert graph.v6_asns() == set()


class TestDualPlaneCollection:
    @pytest.fixture(scope="class")
    def planes(self, dual_graph):
        config = CollectorConfig(n_vps=16, seed=5, noise=NoiseConfig.none())
        v4 = Collector(dual_graph, config, plane="v4").run()
        v6 = Collector(dual_graph, config, plane="v6").run()
        return v4, v6

    def test_v6_paths_use_v6_ases_only(self, dual_graph, planes):
        _, v6 = planes
        enabled = dual_graph.v6_asns()
        for path in v6.paths:
            assert set(path) <= enabled

    def test_v6_origins_announce_v6_prefixes(self, dual_graph, planes):
        _, v6 = planes
        origins6 = dual_graph.prefix6_origins()
        for entry in v6.rib:
            assert origins6[entry.prefix] == entry.origin

    def test_v6_smaller_than_v4(self, planes):
        v4, v6 = planes
        assert 0 < len(v6.paths) < len(v4.paths)

    def test_unknown_plane_rejected(self, dual_graph):
        with pytest.raises(ValueError):
            Collector(dual_graph, plane="v5")

    def test_restricted_index(self, dual_graph):
        index = GraphIndex(dual_graph, restrict=dual_graph.v6_asns())
        assert set(index.asns) == dual_graph.v6_asns()


class TestCongruence:
    @pytest.fixture(scope="class")
    def results(self, dual_graph):
        config = CollectorConfig(n_vps=16, seed=5, noise=NoiseConfig.none())
        out = {}
        for plane in ("v4", "v6"):
            corpus = Collector(dual_graph, config, plane=plane).run()
            paths = PathSet.sanitize(corpus.paths,
                                     ixp_asns=dual_graph.ixp_asns())
            out[plane] = infer_relationships(paths)
        return out

    def test_high_congruence(self, results):
        """The PAM'15 finding: dual links almost always agree."""
        report = congruence_report(results["v4"], results["v6"])
        assert report.dual_links > 50
        assert report.congruence > 0.9

    def test_plane_exclusive_links_counted(self, results):
        report = congruence_report(results["v4"], results["v6"])
        assert report.v4_only > 0  # v4 sees the non-adopting edge
        assert report.v4_only + report.dual_links == len(
            results["v4"].links()
        )

    def test_cliques_overlap(self, results):
        report = congruence_report(results["v4"], results["v6"])
        assert report.clique_jaccard > 0.5

    def test_self_congruence_is_total(self, results):
        report = congruence_report(results["v4"], results["v4"])
        assert report.congruence == 1.0
        assert report.v4_only == 0 and report.v6_only == 0


class TestMrtV6:
    def test_v6_rib_round_trip(self, tmp_path, dual_graph):
        import io

        from repro.mrt.reader import MrtReader, RibRecord
        from repro.mrt.writer import MrtWriter

        prefix = Prefix6.parse("2001:db8::/32")
        stream = io.BytesIO()
        writer = MrtWriter(stream)
        writer.write_peer_index_table([65001])
        writer.write_rib_entry(prefix, [(65001, (65001, 65002), ())])
        stream.seek(0)
        records = [r for r in MrtReader(stream) if isinstance(r, RibRecord)]
        assert records[0].prefix == prefix
        assert records[0].as_path == (65001, 65002)

    def test_dual_stack_dump(self, tmp_path, dual_graph):
        """One file carrying both planes round-trips cleanly."""
        from repro.mrt.reader import read_rib_dump
        from repro.mrt.writer import write_rib_dump

        config = CollectorConfig(n_vps=10, seed=5, noise=NoiseConfig.none())
        v4 = Collector(dual_graph, config, plane="v4").run()
        v6 = Collector(dual_graph, config, plane="v6").run()
        dump = str(tmp_path / "dual.mrt")
        write_rib_dump(dump, list(v4.rib) + list(v6.rib))
        records = read_rib_dump(dump)
        assert len(records) == len(v4.rib) + len(v6.rib)
        v6_rows = [r for r in records if isinstance(r.prefix, Prefix6)]
        assert len(v6_rows) == len(v6.rib)
