"""Determinism of the multiprocessing collection fan-out."""

from __future__ import annotations

from dataclasses import replace

import pytest

import repro.bgp.collector as collector_module
from repro.bgp.collector import (
    Collector,
    CollectorConfig,
    shutdown_worker_pool,
)
from repro.bgp.noise import NoiseConfig
from repro.topology.generator import GeneratorConfig, generate_topology


@pytest.fixture(scope="module")
def graph():
    return generate_topology(GeneratorConfig(n_ases=120, seed=5))


def _corpus_key(corpus):
    return (
        corpus.paths,
        corpus.path_counts,
        [(r.vp, r.prefix, r.path, r.communities) for r in corpus.rib],
    )


class TestParallelCollection:
    def test_noise_free_parallel_matches_serial_exactly(self, graph):
        base = CollectorConfig(n_vps=8, seed=11, noise=NoiseConfig.none())
        serial = Collector(graph, base).run()
        parallel = Collector(graph, replace(base, workers=2)).run()
        assert _corpus_key(parallel) == _corpus_key(serial)

    def test_worker_count_does_not_change_the_corpus(self, graph):
        base = CollectorConfig(n_vps=8, seed=11)  # default (noisy) config
        two = Collector(graph, replace(base, workers=2)).run()
        three = Collector(graph, replace(base, workers=3)).run()
        assert _corpus_key(two) == _corpus_key(three)

    def test_parallel_run_is_reproducible(self, graph):
        config = CollectorConfig(n_vps=8, seed=11, workers=2)
        assert _corpus_key(Collector(graph, config).run()) == _corpus_key(
            Collector(graph, config).run()
        )

    def test_workers_zero_is_serial(self, graph):
        base = CollectorConfig(n_vps=8, seed=11)
        assert _corpus_key(Collector(graph, base).run()) == _corpus_key(
            Collector(graph, replace(base, workers=0)).run()
        )

    def test_noisy_parallel_matches_serial_exactly(self, graph):
        """Per-origin noise RNGs make noisy corpora worker-invariant."""
        base = CollectorConfig(n_vps=8, seed=11)  # default (noisy) config
        serial = Collector(graph, base).run()
        parallel = Collector(graph, replace(base, workers=2)).run()
        assert _corpus_key(parallel) == _corpus_key(serial)

    @pytest.mark.parametrize("workers", [2, 3, 4, 5])
    def test_strided_chunks_merge_in_origin_order(self, graph, workers):
        """Every worker count reassembles the exact serial corpus."""
        base = CollectorConfig(n_vps=8, seed=11, n_route_leakers=2)
        serial = Collector(graph, base).run()
        parallel = Collector(graph, replace(base, workers=workers)).run()
        assert _corpus_key(parallel) == _corpus_key(serial)


class TestPersistentPool:
    def test_pool_is_reused_across_runs(self, graph):
        shutdown_worker_pool()
        config = CollectorConfig(n_vps=8, seed=11, workers=2)
        Collector(graph, config).run()
        first = collector_module._WORKER_POOL
        assert first is not None
        Collector(graph, config).run()
        assert collector_module._WORKER_POOL is first

    def test_smaller_worker_count_reuses_larger_pool(self, graph):
        shutdown_worker_pool()
        base = CollectorConfig(n_vps=8, seed=11)
        Collector(graph, replace(base, workers=3)).run()
        pool = collector_module._WORKER_POOL
        Collector(graph, replace(base, workers=2)).run()
        assert collector_module._WORKER_POOL is pool

    def test_shutdown_is_idempotent(self, graph):
        config = CollectorConfig(n_vps=8, seed=11, workers=2)
        Collector(graph, config).run()
        shutdown_worker_pool()
        assert collector_module._WORKER_POOL is None
        shutdown_worker_pool()  # no-op on an absent pool
        # and collection still works after a shutdown
        corpus = Collector(graph, config).run()
        assert len(corpus.paths) > 0
        shutdown_worker_pool()


class TestEdgeCases:
    def test_more_workers_than_origins(self, graph):
        origins = sorted(asys.asn for asys in graph.ases())[:3]
        base = CollectorConfig(n_vps=8, seed=11)
        serial = Collector(graph, base).run(origins=origins)
        wide = Collector(graph, replace(base, workers=16)).run(
            origins=origins
        )
        assert _corpus_key(wide) == _corpus_key(serial)
        assert len(serial.paths) > 0

    def test_empty_origin_list_with_workers(self, graph):
        config = CollectorConfig(n_vps=8, seed=11, workers=3)
        corpus = Collector(graph, config).run(origins=[])
        assert len(corpus.paths) == 0
        assert len(corpus.rib) == 0

    def test_empty_origin_list_serial(self, graph):
        corpus = Collector(graph, CollectorConfig(n_vps=8, seed=11)).run(
            origins=[]
        )
        assert len(corpus.paths) == 0

    def test_unknown_origins_are_ignored(self, graph):
        config = CollectorConfig(n_vps=8, seed=11, workers=2)
        corpus = Collector(graph, config).run(origins=[999_999_999])
        assert len(corpus.paths) == 0
