"""Determinism of the multiprocessing collection fan-out."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bgp.collector import Collector, CollectorConfig
from repro.bgp.noise import NoiseConfig
from repro.topology.generator import GeneratorConfig, generate_topology


@pytest.fixture(scope="module")
def graph():
    return generate_topology(GeneratorConfig(n_ases=120, seed=5))


def _corpus_key(corpus):
    return (
        corpus.paths,
        corpus.path_counts,
        [(r.vp, r.prefix, r.path, r.communities) for r in corpus.rib],
    )


class TestParallelCollection:
    def test_noise_free_parallel_matches_serial_exactly(self, graph):
        base = CollectorConfig(n_vps=8, seed=11, noise=NoiseConfig.none())
        serial = Collector(graph, base).run()
        parallel = Collector(graph, replace(base, workers=2)).run()
        assert _corpus_key(parallel) == _corpus_key(serial)

    def test_worker_count_does_not_change_the_corpus(self, graph):
        base = CollectorConfig(n_vps=8, seed=11)  # default (noisy) config
        two = Collector(graph, replace(base, workers=2)).run()
        three = Collector(graph, replace(base, workers=3)).run()
        assert _corpus_key(two) == _corpus_key(three)

    def test_parallel_run_is_reproducible(self, graph):
        config = CollectorConfig(n_vps=8, seed=11, workers=2)
        assert _corpus_key(Collector(graph, config).run()) == _corpus_key(
            Collector(graph, config).run()
        )

    def test_workers_zero_is_serial(self, graph):
        base = CollectorConfig(n_vps=8, seed=11)
        assert _corpus_key(Collector(graph, base).run()) == _corpus_key(
            Collector(graph, replace(base, workers=0)).run()
        )
