"""Unit tests for cone-overlap and path-length analyses."""

import pytest

from repro.analysis.metrics import (
    cone_overlap,
    exclusive_cone,
    mean_path_length,
    path_length_distribution,
)
from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.paths import PathSet


class TestConeOverlap:
    @pytest.fixture
    def cones(self):
        return CustomerCones(
            definition=ConeDefinition.RECURSIVE,
            cones={
                1: {1, 10, 11, 12},
                2: {2, 11, 12, 13},
                3: {3},
            },
        )

    def test_jaccard(self, cones):
        overlap = cone_overlap(cones, [1, 2])
        # intersection {11, 12} = 2; union {1,2,10,11,12,13} = 6
        assert overlap[(1, 2)] == pytest.approx(2 / 6)

    def test_disjoint(self, cones):
        overlap = cone_overlap(cones, [1, 3])
        assert overlap[(1, 3)] == 0.0

    def test_all_pairs_present(self, cones):
        overlap = cone_overlap(cones, [1, 2, 3])
        assert set(overlap) == {(1, 2), (1, 3), (2, 3)}

    def test_exclusive_cone(self, cones):
        exclusive = exclusive_cone(cones, 1, [2, 3])
        assert exclusive == {1, 10}

    def test_exclusive_ignores_self_in_others(self, cones):
        assert exclusive_cone(cones, 1, [1, 2]) == {1, 10}

    def test_scenario_overlaps_bounded(self, small_run):
        cones = CustomerCones.compute(small_run.result)
        top = [asn for asn, _ in cones.top(5)]
        overlap = cone_overlap(cones, top)
        assert all(0.0 <= v <= 1.0 for v in overlap.values())
        # big transit cones genuinely intersect (multihoming)
        assert max(overlap.values()) > 0.05


class TestPathLengths:
    def test_distribution(self):
        ps = PathSet.sanitize([(1, 2), (1, 2, 3), (4, 5, 6)])
        assert path_length_distribution(ps) == {2: 1, 3: 2}

    def test_mean_unweighted(self):
        ps = PathSet.sanitize([(1, 2), (1, 2, 3, 4)])
        assert mean_path_length(ps) == 3.0

    def test_mean_weighted_by_multiplicity(self):
        ps = PathSet.sanitize([(1, 2), (1, 2), (1, 2), (3, 4, 5)])
        # (2*3 + 3*1) / 4
        assert mean_path_length(ps) == pytest.approx(9 / 4)

    def test_empty(self):
        ps = PathSet.sanitize([])
        assert mean_path_length(ps) == 0.0
        assert path_length_distribution(ps) == {}

    def test_scenario_paths_are_short(self, small_run):
        """The hierarchical Internet has short paths: mean under 7."""
        assert 2.0 < mean_path_length(small_run.paths) < 7.0
