"""Unit tests for repro.stream: live corpus, delta apply, publishers."""

import random

import pytest

from repro.bgp.collector import Collector, CollectorConfig
from repro.mrt.reader import RibRecord, UpdateRecord
from repro.mrt.updates import (
    COLLECTOR_ASN,
    iter_update_batches,
    read_update_dump,
    rib_from_updates,
    write_update_dump,
)
from repro.net.prefix import Prefix
from repro.relationships import canonical_pair
from repro.stream import (
    LiveCorpus,
    StorePublisher,
    StreamIngestor,
    asrank_from_rib_rows,
    prefixes_from_rows,
)
from repro.stream.delta import _LATE_STEPS, _partial_vps
from repro.topology.generator import GeneratorConfig, generate_topology


def _world(seed=11, n_ases=120, n_vps=8):
    graph = generate_topology(GeneratorConfig(n_ases=n_ases, seed=seed))
    corpus = Collector(graph, CollectorConfig(n_vps=n_vps, seed=seed)).run()
    rows = [
        RibRecord(
            prefix=entry.prefix,
            peer_asn=entry.vp,
            as_path=tuple(entry.path),
            communities=tuple(entry.communities),
        )
        for entry in corpus.rib
    ]
    return graph, rows


def _announce(row, prefix=None, path=None):
    return UpdateRecord(
        peer_asn=row.peer_asn,
        local_asn=COLLECTOR_ASN,
        as_path=path if path is not None else row.as_path,
        announced=(prefix if prefix is not None else row.prefix,),
        communities=row.communities,
    )


def _withdraw(row):
    return UpdateRecord(
        peer_asn=row.peer_asn,
        local_asn=COLLECTOR_ASN,
        as_path=(),
        announced=(),
        communities=(),
        withdrawn=(row.prefix,),
    )


def _oracle_version(ingestor, ixp_asns):
    return (
        asrank_from_rib_rows(ingestor.corpus.rows(), ixp_asns=ixp_asns)
        .snapshot(source=ingestor.source)
        .version
    )


class TestLiveCorpus:
    def test_matches_rib_from_updates_oracle(self):
        _graph, rows = _world()
        rng = random.Random(5)
        base = rows[: len(rows) // 2]
        updates = []
        for _ in range(120):
            row = rng.choice(rows)
            kind = rng.random()
            if kind < 0.5:
                updates.append(_announce(row))
            elif kind < 0.8:
                updates.append(_withdraw(row))
            else:
                donor = rng.choice(rows)
                updates.append(_announce(row, path=donor.as_path))
        corpus = LiveCorpus(base)
        # apply in uneven batches; the final table must equal the
        # one-shot offline reconstruction
        for start in range(0, len(updates), 17):
            corpus.apply(updates[start:start + 17])
        assert corpus.rows() == rib_from_updates(updates, base=base)

    def test_withdraw_before_announce_within_update(self):
        row = RibRecord(
            prefix=Prefix.parse("10.0.0.0/24"),
            peer_asn=1,
            as_path=(1, 2),
            communities=(),
        )
        corpus = LiveCorpus([row])
        corpus.apply(
            [
                UpdateRecord(
                    peer_asn=1,
                    local_asn=COLLECTOR_ASN,
                    as_path=(1, 3),
                    announced=(row.prefix,),
                    communities=(),
                    withdrawn=(row.prefix,),
                )
            ]
        )
        (survivor,) = corpus.rows()
        assert survivor.as_path == (1, 3)

    def test_dirty_tracking(self):
        _graph, rows = _world()
        corpus = LiveCorpus(rows)
        assert corpus.dirty_fraction() == 0.0
        # re-announcing an identical row is not dirty
        corpus.apply([_announce(rows[0])])
        assert corpus.dirty_fraction() == 0.0
        corpus.apply([_withdraw(rows[1])])
        assert len(corpus.dirty_keys) == 1
        corpus.clear_dirty()
        assert corpus.dirty_fraction() == 0.0

    def test_prefixes_from_rows_matches_facade_derivation(self):
        _graph, rows = _world()
        derived = prefixes_from_rows(rows)
        assert set(derived) == {r.as_path[-1] for r in rows if r.as_path}
        for prefixes in derived.values():
            assert prefixes == sorted(prefixes)


class TestCachedSanitizer:
    def test_bit_identical_to_pathset_sanitize(self):
        from repro.core.paths import PathSet
        from repro.stream.corpus import CachedSanitizer

        ixp = frozenset({500})
        raw = [
            (),  # empty: discarded short
            (1, 2, 3),
            (1, 1, 2, 2, 3),  # prepending
            (1, 64512, 3),  # reserved ASN: discarded
            (1, 500, 3),  # IXP hop spliced out
            (1, 500, 1, 3),  # IXP splice exposes prepending
            (1, 2, 1),  # loop: discarded
            (7,),  # short after cleaning
            (1, 2, 3),  # duplicate
            (500, 2),  # IXP removal leaves a short path
            (1, 1, 64500, 2),  # prepending AND reserved: both counted
        ] * 2
        sanitizer = CachedSanitizer(ixp)
        # twice through the same sanitizer: the second pass is all
        # cache hits and must still match the uncached reference
        for _ in range(2):
            cached = sanitizer.sanitize(iter(raw))
            reference = PathSet.sanitize(raw, ixp_asns=ixp)
            assert cached.paths == reference.paths
            assert cached.counts == reference.counts
            assert cached.stats == reference.stats

    def test_real_corpus_equivalence(self):
        from repro.core.paths import PathSet
        from repro.stream.corpus import CachedSanitizer

        graph, rows = _world()
        ixp = graph.ixp_asns()
        sanitizer = CachedSanitizer(ixp)
        cached = sanitizer.sanitize(row.as_path for row in rows)
        reference = PathSet.sanitize(
            (row.as_path for row in rows), ixp_asns=ixp
        )
        assert cached.paths == reference.paths
        assert cached.counts == reference.counts
        assert cached.stats == reference.stats


class TestUpdateBatches:
    def test_batches_flatten_to_full_dump(self, tmp_path):
        graph = generate_topology(GeneratorConfig(n_ases=60, seed=3))
        corpus = Collector(graph, CollectorConfig(n_vps=4, seed=3)).run()
        dump = str(tmp_path / "updates.mrt")
        write_update_dump(dump, corpus.rib)
        flat = [
            record
            for batch in iter_update_batches(dump, batch_size=7)
            for record in batch
        ]
        assert flat == read_update_dump(dump)
        sizes = [
            len(batch) for batch in iter_update_batches(dump, batch_size=7)
        ]
        assert all(size == 7 for size in sizes[:-1])
        assert 1 <= sizes[-1] <= 7

    def test_batch_size_validated(self, tmp_path):
        dump = str(tmp_path / "empty.mrt")
        open(dump, "wb").close()
        with pytest.raises(ValueError):
            list(iter_update_batches(dump, batch_size=0))
        assert list(iter_update_batches(dump)) == []


class TestIngestLevels:
    @pytest.fixture(scope="class")
    def seeded(self):
        graph, rows = _world()
        ingestor = StreamIngestor(
            ixp_asns=graph.ixp_asns(), base_rows=rows
        )
        ingestor.publish()
        return graph, rows, ingestor

    def test_noop_reuses_snapshot(self):
        graph, rows = _world()
        ingestor = StreamIngestor(ixp_asns=graph.ixp_asns(), base_rows=rows)
        first = ingestor.publish()
        ingestor.apply_batch([_announce(rows[0])])
        second = ingestor.publish()
        assert second is first  # the object, not just the version
        assert ingestor.stats.noop_publishes == 1

    def test_new_prefix_is_delta_not_noop(self):
        graph, rows = _world()
        ixp = graph.ixp_asns()
        ingestor = StreamIngestor(ixp_asns=ixp, base_rows=rows)
        first = ingestor.publish()
        # same corpus paths, new prefix: cone_prefixes change, so the
        # version must change — and match the batch oracle
        ingestor.apply_batch(
            [_announce(rows[0], prefix=Prefix.parse("198.51.100.0/24"))]
        )
        second = ingestor.publish()
        assert ingestor.stats.last_publish_mode == "delta"
        assert second.version != first.version
        assert second.version == _oracle_version(ingestor, ixp)

    def test_truncated_path_batch_is_delta(self):
        graph, rows = _world()
        ixp = graph.ixp_asns()
        ingestor = StreamIngestor(ixp_asns=ixp, base_rows=rows)
        ingestor.publish()
        live = ingestor.live
        result = live.result
        origins = {path[-1] for path in live.filtered.paths}
        partial = _partial_vps(
            live.filtered, ingestor.config.partial_vp_coverage
        )
        existing = set(live.filtered.paths)
        batch = []
        for path in live.filtered.paths:
            for cut in range(3, len(path)):
                t = path[:cut]
                if t in existing or t[-1] not in origins:
                    continue
                if t[0] in partial:
                    continue
                steps = [
                    result._step.get(canonical_pair(a, b))
                    for a, b in zip(t, t[1:])
                ]
                if any(s is None or s in _LATE_STEPS for s in steps):
                    continue
                existing.add(t)
                batch.append(
                    UpdateRecord(
                        peer_asn=t[0],
                        local_asn=COLLECTOR_ASN,
                        as_path=t,
                        announced=(
                            Prefix.parse(f"203.0.{113 + len(batch)}.0/24"),
                        ),
                        communities=(),
                    )
                )
            if len(batch) >= 4:
                break
        assert batch, "world must yield delta-eligible truncations"
        ingestor.apply_batch(batch)
        snapshot = ingestor.publish()
        assert ingestor.stats.delta_publishes >= 1
        assert ingestor.stats.last_publish_mode == "delta"
        assert snapshot.version == _oracle_version(ingestor, ixp)

    def test_new_link_falls_back_to_full(self):
        graph, rows = _world()
        ixp = graph.ixp_asns()
        ingestor = StreamIngestor(ixp_asns=ixp, base_rows=rows)
        ingestor.publish()
        live = ingestor.live
        links = live.filtered.links()
        asns = sorted(live.filtered.asns())
        # extend an existing path by one previously-unlinked AS so the
        # announcement introduces a genuinely new link
        path = None
        for old in live.filtered.paths:
            for extra in asns:
                pair = canonical_pair(old[-1], extra)
                if extra not in old and pair not in links:
                    path = old + (extra,)
                    break
            if path is not None:
                break
        assert path is not None
        ingestor.apply_batch(
            [
                UpdateRecord(
                    peer_asn=path[0],
                    local_asn=COLLECTOR_ASN,
                    as_path=path,
                    announced=(Prefix.parse("192.0.2.0/24"),),
                    communities=(),
                )
            ]
        )
        snapshot = ingestor.publish()
        assert ingestor.stats.last_publish_mode == "full"
        assert ingestor.stats.fallbacks  # a delta refusal was recorded
        assert snapshot.version == _oracle_version(ingestor, ixp)

    def test_withdrawal_shrinking_corpus_is_full(self):
        graph, rows = _world()
        ixp = graph.ixp_asns()
        ingestor = StreamIngestor(ixp_asns=ixp, base_rows=rows)
        ingestor.publish()
        # withdraw every row carrying some path so the corpus shrinks
        victim_path = rows[0].as_path
        victims = [r for r in rows if r.as_path == victim_path]
        ingestor.apply_batch([_withdraw(r) for r in victims])
        snapshot = ingestor.publish()
        assert ingestor.stats.last_publish_mode == "full"
        assert ingestor.stats.withdrawals == len(victims)
        assert snapshot.version == _oracle_version(ingestor, ixp)

    def test_zero_threshold_forces_full(self):
        graph, rows = _world()
        ixp = graph.ixp_asns()
        ingestor = StreamIngestor(
            ixp_asns=ixp, base_rows=rows, full_threshold=0.0
        )
        ingestor.publish()
        ingestor.apply_batch(
            [_announce(rows[0], prefix=Prefix.parse("198.51.100.0/24"))]
        )
        ingestor.publish()
        assert ingestor.stats.last_publish_mode == "full"
        assert ingestor.stats.fallbacks.get("dirty-threshold") == 1

    def test_churn_sequence_stays_bit_identical(self):
        graph, rows = _world(seed=29)
        ixp = graph.ixp_asns()
        rng = random.Random(29)
        base = rows[: len(rows) * 3 // 5]
        held = rows[len(base):]
        ingestor = StreamIngestor(ixp_asns=ixp, base_rows=base)
        ingestor.publish()
        batches = [
            [_announce(r) for r in held[: len(held) // 2]],
            [_announce(r) for r in held[len(held) // 2:]]
            + [_withdraw(r) for r in rng.sample(base, 3)],
            [
                _announce(t, path=d.as_path)
                for t, d in zip(rng.sample(base, 4), rng.sample(rows, 4))
            ],
        ]
        for batch in batches:
            ingestor.apply_batch(batch)
            snapshot = ingestor.publish()
            assert snapshot.version == _oracle_version(ingestor, ixp)
        assert ingestor.stats.publishes == 4
        assert ingestor.stats.batches == 3

    def test_stats_counters(self, seeded):
        _graph, _rows, ingestor = seeded
        status = ingestor.status()
        assert status["publishes"] == ingestor.stats.publishes
        assert status["table_rows"] == len(ingestor.corpus)
        assert status["last_publish_version"] is not None
        assert "last_publish_age_s" in status
        assert status["fallbacks"].get("cold-start") == 1


class TestServing:
    def test_hot_publish_and_stream_route(self):
        import json
        from urllib.request import urlopen

        from repro.serve.server import ServerThread
        from repro.serve.store import SnapshotStore

        graph, rows = _world(seed=17, n_ases=80, n_vps=5)
        ixp = graph.ixp_asns()
        base = rows[: len(rows) // 2]
        ingestor = StreamIngestor(ixp_asns=ixp, base_rows=base)
        first = ingestor.publish()
        store = SnapshotStore(snapshot=first)
        ingestor.publisher = StorePublisher(store)
        with ServerThread(store, ingest_status=ingestor.status) as (
            host,
            port,
        ):
            def get(route):
                with urlopen(
                    f"http://{host}:{port}{route}", timeout=10
                ) as response:
                    return json.load(response)

            assert get("/snapshot")["version"] == first.version
            status = get("/stream")
            assert status["publishes"] == 1
            assert status["serving_version"] == first.version
            assert get("/metrics")["ingest"]["publishes"] == 1

            # hot publish: the served version must converge
            ingestor.apply_batch([_announce(r) for r in rows[len(base):]])
            second = ingestor.publish()
            assert second.version != first.version
            assert get("/snapshot")["version"] == second.version
            assert get("/stream")["last_publish_version"] == second.version

    def test_stream_route_404_without_ingestor(self):
        from repro.serve.handlers import Api
        from repro.serve.store import SnapshotStore

        graph, rows = _world(seed=17, n_ases=80, n_vps=5)
        snapshot = asrank_from_rib_rows(
            rows, ixp_asns=graph.ixp_asns()
        ).snapshot(source="test")
        api = Api(SnapshotStore(snapshot=snapshot))
        status, payload, _route, _cacheable = api.handle(
            "GET", "/stream", {}
        )
        assert status == 404
        assert "no stream attached" in payload["error"]
