"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scenario", "bogus"])


class TestPipeline:
    def test_simulate_then_infer_then_cones(self, tmp_path, capsys):
        out = str(tmp_path)
        assert main(["simulate", "--scenario", "tiny", "--out-dir", out,
                     "--mrt"]) == 0
        assert os.path.exists(os.path.join(out, "paths.txt"))
        assert os.path.exists(os.path.join(out, "rib.mrt"))

        as_rel = os.path.join(out, "as-rel.txt")
        assert main(["infer", "--paths", os.path.join(out, "paths.txt"),
                     "--as-rel", as_rel]) == 0
        assert os.path.exists(as_rel)
        captured = capsys.readouterr().out
        assert "clique" in captured

        ppdc = os.path.join(out, "ppdc.txt")
        assert main(["cones", "--paths", os.path.join(out, "paths.txt"),
                     "--ppdc", ppdc, "--top", "3"]) == 0
        assert os.path.exists(ppdc)

    def test_validate_command(self, capsys):
        assert main(["validate", "--scenario", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "PPV" in out
        assert "coverage" in out

    def test_rank_command(self, capsys):
        assert main(["rank", "--scenario", "tiny", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert len(out.strip().splitlines()) == 6  # header + 5 rows

    def test_simulate_updates_dump(self, tmp_path):
        out = str(tmp_path)
        assert main(["simulate", "--scenario", "tiny", "--out-dir", out,
                     "--updates"]) == 0
        assert os.path.exists(os.path.join(out, "updates.mrt"))

    def test_evolve_command(self, capsys):
        assert main(["evolve", "--eras", "2"]) == 0
        out = capsys.readouterr().out
        assert "era" in out
        assert "cone share" in out

    def test_cones_definitions(self, tmp_path, capsys):
        out = str(tmp_path)
        main(["simulate", "--scenario", "tiny", "--out-dir", out])
        for definition in ("recursive", "bgp-observed",
                           "provider/peer-observed"):
            assert main(["cones", "--paths", os.path.join(out, "paths.txt"),
                         "--definition", definition, "--top", "2"]) == 0
