"""Unit tests for the command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scenario", "bogus"])


class TestPipeline:
    def test_simulate_then_infer_then_cones(self, tmp_path, capsys):
        out = str(tmp_path)
        assert main(["simulate", "--scenario", "tiny", "--out-dir", out,
                     "--mrt"]) == 0
        assert os.path.exists(os.path.join(out, "paths.txt"))
        assert os.path.exists(os.path.join(out, "rib.mrt"))

        as_rel = os.path.join(out, "as-rel.txt")
        assert main(["infer", "--paths", os.path.join(out, "paths.txt"),
                     "--as-rel", as_rel]) == 0
        assert os.path.exists(as_rel)
        captured = capsys.readouterr().out
        assert "clique" in captured

        ppdc = os.path.join(out, "ppdc.txt")
        assert main(["cones", "--paths", os.path.join(out, "paths.txt"),
                     "--ppdc", ppdc, "--top", "3"]) == 0
        assert os.path.exists(ppdc)

    def test_validate_command(self, capsys):
        assert main(["validate", "--scenario", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "PPV" in out
        assert "coverage" in out

    def test_rank_command(self, capsys):
        assert main(["rank", "--scenario", "tiny", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert len(out.strip().splitlines()) == 6  # header + 5 rows

    def test_simulate_updates_dump(self, tmp_path):
        out = str(tmp_path)
        assert main(["simulate", "--scenario", "tiny", "--out-dir", out,
                     "--updates"]) == 0
        assert os.path.exists(os.path.join(out, "updates.mrt"))

    def test_evolve_command(self, capsys):
        assert main(["evolve", "--eras", "2"]) == 0
        out = capsys.readouterr().out
        assert "era" in out
        assert "cone share" in out

    def test_cones_definitions(self, tmp_path, capsys):
        out = str(tmp_path)
        main(["simulate", "--scenario", "tiny", "--out-dir", out])
        for definition in ("recursive", "bgp-observed",
                           "provider/peer-observed"):
            assert main(["cones", "--paths", os.path.join(out, "paths.txt"),
                         "--definition", definition, "--top", "2"]) == 0

    def test_qa_command_clean_sweep(self, tmp_path, capsys):
        repros = str(tmp_path / "repros")
        assert main(["qa", "--seeds", "2", "--repro-dir", repros]) == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert not os.path.isdir(repros)

    def test_qa_replay_round_trip(self, tmp_path, capsys):
        out = str(tmp_path)
        main(["simulate", "--scenario", "tiny", "--out-dir", out])
        assert main(["qa", "--replay", os.path.join(out, "paths.txt")]) == 0
        assert "clean" in capsys.readouterr().out


class TestErrorExits:
    """Data and I/O problems exit 2 with a one-line message (no traceback)."""

    def _assert_exit_2(self, capsys, argv):
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert len(err.strip().splitlines()) == 1

    def test_infer_missing_file(self, capsys, tmp_path):
        self._assert_exit_2(
            capsys, ["infer", "--paths", str(tmp_path / "nope.txt")]
        )

    def test_infer_malformed_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("1 two 3\n")
        assert main(["infer", "--paths", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "bad.txt:1:" in err

    def test_cones_missing_file(self, capsys, tmp_path):
        self._assert_exit_2(
            capsys, ["cones", "--paths", str(tmp_path / "nope.txt")]
        )

    def test_simulate_out_dir_collides_with_file(self, capsys, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("")
        self._assert_exit_2(
            capsys,
            ["simulate", "--scenario", "tiny", "--out-dir", str(blocker)],
        )

    def test_qa_replay_missing_file(self, capsys, tmp_path):
        self._assert_exit_2(
            capsys, ["qa", "--replay", str(tmp_path / "nope.txt")]
        )

    def test_validate_scenario_io_failure(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(name):
            raise OSError("disk on fire")

        monkeypatch.setattr(cli, "get_scenario", boom)
        self._assert_exit_2(capsys, ["validate", "--scenario", "tiny"])

    def test_rank_scenario_data_failure(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.datasets.serialization import DatasetFormatError

        def boom(name):
            raise DatasetFormatError("corrupt corpus")

        monkeypatch.setattr(cli, "get_scenario", boom)
        self._assert_exit_2(capsys, ["rank", "--scenario", "tiny"])

    def test_evolve_io_failure(self, capsys, monkeypatch):
        import repro.cli as cli

        def boom(config):
            raise OSError("no space left")

        monkeypatch.setattr(cli, "generate_series", boom)
        self._assert_exit_2(capsys, ["evolve", "--eras", "2"])

    def test_rank_missing_paths_file(self, capsys, tmp_path):
        self._assert_exit_2(
            capsys, ["rank", "--paths", str(tmp_path / "nope.txt")]
        )

    def test_cones_binary_file(self, capsys, tmp_path):
        bad = tmp_path / "bin.paths.txt"
        bad.write_bytes(bytes(range(256)))
        self._assert_exit_2(capsys, ["cones", "--paths", str(bad)])

    def test_snapshot_build_missing_input(self, capsys, tmp_path):
        self._assert_exit_2(
            capsys,
            [
                "snapshot", "build",
                "--paths", str(tmp_path / "nope.txt"),
                "--out", str(tmp_path / "out.snap"),
            ],
        )

    def test_serve_missing_snapshot(self, capsys, tmp_path):
        self._assert_exit_2(
            capsys, ["serve", "--snapshot", str(tmp_path / "nope.snap")]
        )

    def test_serve_corrupt_snapshot(self, capsys, tmp_path):
        junk = tmp_path / "junk.snap"
        junk.write_bytes(b"not a snapshot")
        self._assert_exit_2(capsys, ["serve", "--snapshot", str(junk)])


class TestSnapshotCommand:
    def test_build_then_info(self, tmp_path, capsys):
        out = str(tmp_path / "tiny.snap")
        assert main(["snapshot", "build", "--scenario", "tiny",
                     "--out", out]) == 0
        built = capsys.readouterr().out
        assert built.startswith("wrote snapshot ") and os.path.exists(out)
        version = built.split()[2]
        assert main(["snapshot", "info", out]) == 0
        info = capsys.readouterr().out
        assert version in info
        assert "definitions" in info

    def test_build_from_as_rel_files(self, tmp_path, capsys):
        as_rel = tmp_path / "w.as-rel.txt"
        as_rel.write_text("1|2|-1\n2|3|0\n")
        out = str(tmp_path / "w.snap")
        assert main(["snapshot", "build", "--as-rel", str(as_rel),
                     "--out", out]) == 0
        from repro.serve.store import load_snapshot

        snapshot = load_snapshot(out)
        assert snapshot.asns == [1, 2, 3]
        assert snapshot.provider_of(1, 2) == 1
