"""Pre-fork worker fleet: port sharing, supervision, coordinated reload.

These run real forked workers against real sockets, so every test is
built on one module-scoped snapshot file and fleets are kept small
(2 workers) and short-lived.  The invariants under test mirror the
serving contract: one port answers regardless of which worker accepts,
a killed worker is respawned, and hot reload is atomic across the
fleet — all workers converge to one version, and a bad target file
leaves every worker on the old snapshot.
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.request

import pytest

from repro.asrank import ASRank
from repro.scenarios import get_scenario
from repro.serve.store import save_snapshot
from repro.serve.workers import FleetError, WorkerFleet, memory_stats

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="needs fork"
)


def _get(host: str, port: int, path: str, timeout: float = 5.0):
    with urllib.request.urlopen(
        f"http://{host}:{port}{path}", timeout=timeout
    ) as response:
        return response.status, json.loads(response.read())


def _post(host: str, port: int, path: str, payload: dict,
          timeout: float = 5.0):
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(payload).encode(),
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


@pytest.fixture(scope="module")
def snapshots(tmp_path_factory):
    """(small snapshot path + version, tiny snapshot path + version)."""
    directory = tmp_path_factory.mktemp("fleet")
    _g, _c, paths, result = get_scenario("small").run()
    facade = ASRank(paths)
    facade._result = result
    small = str(directory / "small.snapshot")
    small_version = save_snapshot(facade.snapshot(), small)
    _g, _c, paths, result = get_scenario("tiny").run()
    facade = ASRank(paths)
    facade._result = result
    tiny = str(directory / "tiny.snapshot")
    tiny_version = save_snapshot(facade.snapshot(), tiny)
    return small, small_version, tiny, tiny_version


def _wait(predicate, timeout: float = 10.0, interval: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestFleetServing:
    def test_fleet_serves_and_identifies_workers(self, snapshots):
        small, version, _tiny, _tv = snapshots
        with WorkerFleet(small, workers=2) as (host, port):
            seen_pids = set()
            for _ in range(40):
                status, body = _get(host, port, "/healthz")
                assert status == 200 and body["status"] == "ok"
                assert body["version"] == version
                worker = body["worker"]
                assert worker["index"] in (0, 1)
                seen_pids.add(worker["pid"])
            status, body = _get(host, port, "/snapshot")
            assert status == 200 and body["version"] == version
            assert "worker" in body

    def test_versions_poll(self, snapshots):
        small, version, _tiny, _tv = snapshots
        fleet = WorkerFleet(small, workers=2)
        fleet.start()
        try:
            fleet_versions = fleet.versions()
            assert set(fleet_versions.values()) == {version}
            assert sorted(fleet_versions) == [0, 1]
            assert len(fleet.pids()) == 2
        finally:
            fleet.stop()

    def test_shared_socket_fallback(self, snapshots):
        small, version, _tiny, _tv = snapshots
        fleet = WorkerFleet(small, workers=2, force_shared_socket=True)
        host, port = fleet.start()
        try:
            assert not fleet.reuse_port
            status, body = _get(host, port, "/healthz")
            assert status == 200 and body["version"] == version
        finally:
            fleet.stop()

    def test_worker_memory_is_shared(self, snapshots):
        small, _v, _tiny, _tv = snapshots
        snapshot_bytes = os.path.getsize(small)
        fleet = WorkerFleet(small, workers=2)
        host, port = fleet.start()
        try:
            for _ in range(20):  # fault some pages in
                _get(host, port, "/ranks?page=1&per_page=100")
            stats = [memory_stats(pid) for pid in fleet.pids()]
        finally:
            fleet.stop()
        if any(s is None for s in stats):
            pytest.skip("smaps_rollup unavailable")
        for entry in stats:
            assert entry["rss_kb"] > 0
            # private pages must not include a copy of the payload
            assert entry["private_kb"] * 1024 < \
                snapshot_bytes + 16 * 1024 * 1024


class TestSupervision:
    def test_killed_worker_respawns(self, snapshots):
        small, _v, _tiny, _tv = snapshots
        fleet = WorkerFleet(small, workers=2, restart_backoff=0.05)
        host, port = fleet.start()
        try:
            victim = fleet.pids()[0]
            os.kill(victim, signal.SIGKILL)
            assert _wait(
                lambda: len(fleet.pids()) == 2
                and victim not in fleet.pids()
            ), f"no respawn: {fleet.pids()}"
            assert fleet.restarts >= 1
            status, _body = _get(host, port, "/healthz")
            assert status == 200
        finally:
            fleet.stop()

    def test_stop_leaves_no_children(self, snapshots):
        small, _v, _tiny, _tv = snapshots
        fleet = WorkerFleet(small, workers=2)
        fleet.start()
        pids = fleet.pids()
        fleet.stop()
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: the process is gone

    def test_start_requires_live_snapshot(self, tmp_path):
        missing = str(tmp_path / "nope.snapshot")
        fleet = WorkerFleet(missing, workers=1, start_timeout=3.0,
                            restart_backoff=0.2)
        with pytest.raises(FleetError):
            fleet.start()


class TestCoordinatedReload:
    def test_reload_converges_all_workers(self, snapshots):
        small, small_version, tiny, tiny_version = snapshots
        fleet = WorkerFleet(small, workers=2)
        host, port = fleet.start()
        try:
            assert set(fleet.versions().values()) == {small_version}
            new_version = fleet.reload(tiny)
            assert new_version == tiny_version
            assert set(fleet.versions().values()) == {tiny_version}
            # and observable over HTTP from every worker
            versions_seen = set()
            for _ in range(20):
                _status, body = _get(host, port, "/healthz")
                versions_seen.add(body["version"])
            assert versions_seen == {tiny_version}
        finally:
            fleet.stop()

    def test_failed_reload_keeps_old_everywhere(self, snapshots,
                                                tmp_path):
        small, small_version, tiny, _tv = snapshots
        corrupt = str(tmp_path / "corrupt.snapshot")
        with open(tiny, "rb") as stream:
            blob = bytearray(stream.read())
        blob[-1] ^= 0xFF
        with open(corrupt, "wb") as stream:
            stream.write(bytes(blob))
        fleet = WorkerFleet(small, workers=2)
        fleet.start()
        try:
            with pytest.raises(FleetError, match="old snapshot"):
                fleet.reload(corrupt)
            assert set(fleet.versions().values()) == {small_version}
            # the fleet still reloads fine afterwards
            assert fleet.reload(small) == small_version
        finally:
            fleet.stop()

    def test_reload_of_missing_file_fails_cleanly(self, snapshots):
        small, small_version, _tiny, _tv = snapshots
        fleet = WorkerFleet(small, workers=2)
        fleet.start()
        try:
            with pytest.raises(FleetError):
                fleet.reload(small + ".does-not-exist")
            assert set(fleet.versions().values()) == {small_version}
        finally:
            fleet.stop()

    def test_admin_reload_delegates_and_converges(self, snapshots):
        small, _sv, tiny, tiny_version = snapshots
        fleet = WorkerFleet(small, workers=2)
        host, port = fleet.start()
        try:
            status, body = _post(
                host, port, "/admin/reload", {"path": tiny}
            )
            assert status == 202
            assert body["accepted"] is True
            assert _wait(
                lambda: set(fleet.versions().values()) == {tiny_version}
            ), fleet.versions()
        finally:
            fleet.stop()
