"""Tests for ground-truth graph serialization."""

import pytest

from repro.datasets.graph_io import load_graph, save_graph
from repro.datasets.serialization import DatasetFormatError
from repro.net.prefix import Prefix
from repro.relationships import Relationship
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.model import AS, ASGraph, ASType


def small_graph():
    graph = ASGraph()
    graph.add_as(AS(asn=1, type=ASType.CLIQUE, region=0,
                    prefixes=[Prefix.parse("10.0.0.0/16")]))
    graph.add_as(AS(asn=2, type=ASType.CLIQUE, region=1,
                    prefixes=[Prefix.parse("11.0.0.0/16")]))
    graph.add_as(AS(asn=3, type=ASType.STUB, region=0,
                    prefixes=[Prefix.parse("12.0.0.0/24")]))
    graph.add_as(AS(asn=4, type=ASType.STUB, region=1, prefixes=[]))
    graph.add_p2p(1, 2)
    graph.add_p2c(1, 3)
    graph.add_p2c(2, 4)
    graph.add_s2s(3, 4)
    graph.via_ixp = {}
    return graph


class TestRoundTrip:
    def test_small_graph(self, tmp_path):
        path = str(tmp_path / "graph.txt")
        written = save_graph(path, small_graph(), comments=["test"])
        assert written == 4
        loaded = load_graph(path)
        original = small_graph()
        assert sorted(loaded.links()) == sorted(original.links())
        for asys in original.ases():
            twin = loaded.get_as(asys.asn)
            assert twin.type is asys.type
            assert twin.region == asys.region
            assert twin.prefixes == asys.prefixes

    def test_generated_graph(self, tmp_path):
        graph = generate_topology(GeneratorConfig(n_ases=150, seed=5))
        path = str(tmp_path / "graph.txt")
        save_graph(path, graph)
        loaded = load_graph(path)
        assert sorted(loaded.links()) == sorted(graph.links())
        assert loaded.via_ixp == graph.via_ixp
        assert loaded.validate_invariants() == []

    def test_v6_prefixes_survive(self, tmp_path):
        graph = generate_topology(GeneratorConfig(n_ases=150, seed=5))
        assert graph.v6_asns()  # precondition: some adoption happened
        path = str(tmp_path / "graph.txt")
        save_graph(path, graph)
        loaded = load_graph(path)
        for asys in graph.ases():
            assert loaded.get_as(asys.asn).prefixes6 == asys.prefixes6
        assert loaded.v6_asns() == graph.v6_asns()

    def test_pipeline_equivalence(self, tmp_path):
        """A reloaded graph must drive the collector identically."""
        from repro.bgp.collector import Collector, CollectorConfig

        graph = generate_topology(GeneratorConfig(n_ases=120, seed=6))
        path = str(tmp_path / "graph.txt")
        save_graph(path, graph)
        loaded = load_graph(path)
        config = CollectorConfig(n_vps=10, seed=3)
        original_paths = Collector(graph, config).run().paths
        reloaded_paths = Collector(loaded, config).run().paths
        assert original_paths == reloaded_paths


class TestErrors:
    def test_unknown_tag(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as f:
            f.write("@bogus 1 2 3\n")
        with pytest.raises(DatasetFormatError):
            load_graph(path)

    def test_bad_as_type(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as f:
            f.write("@as 1 warpcore 0\n")
        with pytest.raises(DatasetFormatError):
            load_graph(path)

    def test_link_before_as(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as f:
            f.write("@link 1 2 0\n")
        with pytest.raises(DatasetFormatError):
            load_graph(path)

    def test_comments_skipped(self, tmp_path):
        path = str(tmp_path / "graph.txt")
        with open(path, "w") as f:
            f.write("# header\n@as 1 stub 0\n")
        loaded = load_graph(path)
        assert 1 in loaded
