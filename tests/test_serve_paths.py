"""Path-prediction / what-if endpoints + serving dispatch fixes.

Most tests drive :class:`Api` in-process on a hand-built topology whose
routing is easy to verify by eye::

    1 ── provider of ──> 2, 3
    2, 3 ── providers of ──> 4      (4 is dual-homed: tie-break fodder)
    3 ── provider of ──> 5
    10 ── provider of ──> 11        (a second, disconnected component)

The disconnected component gives real unreachable pairs; the dual-homed
AS 4 gives an anycast tie broken by lowest origin ASN.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.serve.handlers import Api
from repro.serve.prediction import PathEngine, Scenario, ScenarioError
from repro.serve.server import ServerThread
from repro.serve.snapshot import Snapshot
from repro.serve.store import SnapshotStore

AS_REL_ROWS = """\
1|2|-1
1|3|-1
2|4|-1
3|4|-1
3|5|-1
10|11|-1
"""


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    as_rel = tmp_path_factory.mktemp("paths") / "as-rel.txt"
    as_rel.write_text(AS_REL_ROWS)
    return Snapshot.from_files(str(as_rel))


@pytest.fixture()
def api(snapshot):
    return Api(SnapshotStore(snapshot=snapshot))


def _what_if(api, body):
    return api.handle("POST", "/what-if", {}, json.dumps(body).encode())


class TestPathsEndpoint:
    def test_path_is_the_policy_path(self, api):
        status, payload, route, cacheable = api.handle(
            "GET", "/paths/4/1", {}
        )
        assert (status, route, cacheable) == (200, "paths", True)
        # both 2 and 3 offer the len-2 provider route; lowest ASN wins
        assert payload["path"] == [4, 2, 1]
        assert payload["length"] == 2
        assert payload["route_class"] == "provider"
        assert payload["reachable"] is True

    def test_src_equals_dst(self, api):
        status, payload, _route, _c = api.handle("GET", "/paths/4/4", {})
        assert status == 200
        assert payload["path"] == [4]
        assert payload["length"] == 0
        assert payload["route_class"] == "origin"

    def test_unreachable_pair_is_200_not_found_route(self, api):
        status, payload, _route, _c = api.handle("GET", "/paths/4/10", {})
        assert status == 200
        assert payload["reachable"] is False
        assert payload["path"] is None
        assert payload["length"] is None

    def test_unknown_src_and_dst_404(self, api):
        assert api.handle("GET", "/paths/999/1", {})[0] == 404
        assert api.handle("GET", "/paths/1/999", {})[0] == 404

    def test_non_integer_asn_400(self, api):
        assert api.handle("GET", "/paths/abc/1", {})[0] == 400


class TestAnycast:
    def test_tie_breaks_on_lowest_origin_asn(self, api):
        status, payload, _route, _c = api.handle(
            "GET", "/paths/4/2", {"origins": "3"}
        )
        assert status == 200
        assert payload["origins"] == [2, 3]
        # 4 sees both origins as len-1 provider routes: tie -> AS2
        assert payload["winner"] == 2
        assert payload["path"] == [4, 2]

    def test_catchment_partitions_the_snapshot(self, api):
        _status, payload, _route, _c = api.handle(
            "GET", "/paths/4/2", {"origins": "3"}
        )
        # 1 (customer tie -> 2), 2 (origin), 4 (tie -> 2) vs
        # 3 (origin), 5 (closer to 3); 10, 11 unreachable
        assert payload["catchment"] == {"2": 3, "3": 2}
        assert payload["unreachable"] == 2

    def test_unknown_origin_404(self, api):
        assert api.handle(
            "GET", "/paths/4/2", {"origins": "999"}
        )[0] == 404

    def test_origin_cap_400(self, api):
        too_many = ",".join(str(1000 + i) for i in range(20))
        assert api.handle(
            "GET", "/paths/4/2", {"origins": too_many}
        )[0] == 400

    def test_empty_origins_400(self, api):
        assert api.handle("GET", "/paths/4/2", {"origins": ","})[0] == 400


class TestWhatIf:
    def test_disconnecting_scenario(self, api):
        status, payload, route, cacheable = _what_if(
            api,
            {
                "dst": 1,
                "ops": [
                    {"op": "drop_link", "a": 1, "b": 2},
                    {"op": "drop_link", "a": 1, "b": 3},
                ],
            },
        )
        assert (status, route, cacheable) == (200, "whatif", False)
        # 2,3,4,5 lose their only routes to 1; the 10-11 component and
        # the origin itself never had different answers
        assert payload["sources"] == 7
        assert payload["changed"] == 4
        assert payload["newly_unreachable"] == 4
        assert payload["unchanged"] == 3
        assert payload["newly_reachable"] == 0
        for example in payload["examples"]:
            assert example["after"] is None

    def test_add_peering_connects_components(self, api):
        status, payload, _route, _c = _what_if(
            api,
            {
                "dst": 1,
                "ops": [{"op": "add_peering", "a": 1, "b": 10}],
            },
        )
        assert status == 200
        # 10 learns the origin from its new peer 1 and exports the
        # peer route to its customer 11; nobody else moves
        assert payload["newly_reachable"] == 2
        assert payload["changed"] == 2

    def test_scenario_key_is_canonical(self):
        a = Scenario.parse([{"op": "drop_link", "a": 3, "b": 1}])
        b = Scenario.parse([{"op": "drop_link", "a": 1, "b": 3}])
        assert a.key == b.key != ""

    def test_add_transit_cycle_400(self, api):
        status, payload, _route, _c = _what_if(
            api,
            {
                "dst": 1,
                "ops": [
                    {"op": "add_transit", "provider": 4, "customer": 1}
                ],
            },
        )
        assert status == 400
        assert "cycle" in payload["error"]

    def test_set_relationship_flip(self, api):
        status, payload, _route, _c = _what_if(
            api,
            {
                "dst": 1,
                "ops": [
                    {
                        "op": "set_relationship",
                        "a": 1,
                        "b": 2,
                        "relationship": "p2p",
                    }
                ],
            },
        )
        assert status == 200
        # AS2's path to 1 is unchanged but it now rides a peer route
        # instead of paying a provider — a class-only change the diff
        # must still count
        assert payload["changed"] == 1
        example = payload["examples"][0]
        assert example["src"] == 2
        assert example["before"] == example["after"] == [2, 1]
        assert example["before_class"] == "provider"
        assert example["after_class"] == "peer"

    def test_leak_is_valid_and_hashes(self, api):
        status, payload, _route, _c = _what_if(
            api,
            {"dst": 1, "ops": [{"op": "leak", "asn": 4}], "sample": 5},
        )
        assert status == 200
        assert payload["sources"] == 5

    def test_poison_removes_the_as_from_routing(self, api):
        status, payload, _route, _c = _what_if(
            api,
            {"dst": 1, "ops": [{"op": "poison", "asn": 2}], "srcs": [2]},
        )
        assert status == 200
        assert payload["newly_unreachable"] == 1

    def test_unknown_dst_404(self, api):
        assert _what_if(
            api, {"dst": 999, "ops": [{"op": "leak", "asn": 1}]}
        )[0] == 404

    def test_unknown_op_asn_400(self, api):
        assert _what_if(
            api, {"dst": 1, "ops": [{"op": "leak", "asn": 999}]}
        )[0] == 400

    def test_drop_missing_link_400(self, api):
        assert _what_if(
            api,
            {"dst": 1, "ops": [{"op": "drop_link", "a": 1, "b": 10}]},
        )[0] == 400

    def test_malformed_bodies_400(self, api):
        assert api.handle("POST", "/what-if", {}, b"not json")[0] == 400
        assert api.handle("POST", "/what-if", {}, b"")[0] == 400
        assert api.handle("POST", "/what-if", {}, b"[]")[0] == 400
        assert _what_if(api, {"dst": 1, "ops": []})[0] == 400
        assert _what_if(api, {"dst": "x", "ops": [{}]})[0] == 400
        assert _what_if(
            api, {"dst": 1, "ops": [{"op": "nonsense"}]}
        )[0] == 400
        assert _what_if(
            api,
            {"dst": 1, "ops": [{"op": "leak", "asn": 1}], "bogus": 1},
        )[0] == 400

    def test_scenario_parse_rejects_non_lists(self):
        with pytest.raises(ScenarioError):
            Scenario.parse({"op": "leak"})


class TestEngineCache:
    def test_route_tables_are_reused_across_requests(self, snapshot):
        engine = PathEngine()
        api = Api(SnapshotStore(snapshot=snapshot), engine=engine)
        api.handle("GET", "/paths/4/1", {})
        assert engine.table_misses == 1
        api.handle("GET", "/paths/5/1", {})  # same origin, other source
        assert engine.table_misses == 1
        assert engine.table_hits == 1

    def test_scenarios_get_their_own_cache_entries(self, snapshot):
        engine = PathEngine()
        api = Api(SnapshotStore(snapshot=snapshot), engine=engine)
        body = {"dst": 1, "ops": [{"op": "drop_link", "a": 1, "b": 2}]}
        _what_if(api, body)
        misses = engine.table_misses
        assert misses == 2  # baseline table + scenario table
        _what_if(api, body)
        assert engine.table_misses == misses  # both answered from cache

    def test_table_lru_is_bounded(self, snapshot):
        engine = PathEngine(max_tables=2)
        api = Api(SnapshotStore(snapshot=snapshot), engine=engine)
        for dst in (1, 2, 3, 4):
            api.handle("GET", f"/paths/5/{dst}", {})
        assert engine.stats()["tables"] == 2


class TestDispatchFixes:
    def test_post_to_get_only_routes_is_405(self, api):
        for target in ("/snapshot", "/healthz", "/metrics", "/ranks",
                       "/asns/1", "/links/1/2", "/paths/4/1"):
            status, _payload, _route, _c = api.handle(
                "POST", target, {}
            )
            assert status == 405, target

    def test_post_to_unknown_route_is_404(self, api):
        assert api.handle("POST", "/nope", {})[0] == 404

    def test_reload_non_string_path_400(self, api):
        status, payload, _route, _c = api.handle(
            "POST", "/admin/reload", {}, b'{"path": 123}'
        )
        assert status == 400
        assert "string" in payload["error"]

    def test_cone_page_without_per_page_400(self, api):
        status, payload, _route, _c = api.handle(
            "GET", "/asns/1/cone", {"page": "2", "definition": "recursive"}
        )
        assert status == 400
        assert "per_page" in payload["error"]

    def test_cone_explicit_per_page_still_paginates(self, api):
        status, payload, _route, _c = api.handle(
            "GET", "/asns/1/cone",
            {"page": "1", "per_page": "2", "definition": "recursive"},
        )
        assert status == 200
        assert len(payload["members"]) == 2
        assert payload["size"] == 5

    def test_ranks_page_past_end_is_empty_200(self, api):
        status, payload, _route, _c = api.handle(
            "GET", "/ranks", {"page": "999", "per_page": "50"}
        )
        assert status == 200
        assert payload["entries"] == []

    def test_per_page_above_max_400(self, api):
        assert api.handle(
            "GET", "/ranks", {"per_page": "1001"}
        )[0] == 400


class TestAsOfParamHardening:
    """Malformed ``as_of`` / era / date values must 400, never 500."""

    READ_TARGETS = (
        "/snapshot", "/ranks", "/asns/1", "/asns/1/cone",
        "/links/1/2", "/paths/4/1",
    )
    # note: surrounding whitespace is stripped (" 0" is valid), so it
    # is not in this list
    BAD_TOKENS = (
        "bogus", "", "99", "-1", "2026-13-40", "1900-13-01",
        "1e3", "0x1", "None",
    )

    @pytest.fixture()
    def timeline_api(self, snapshot):
        from repro.timeline import build_timeline

        timeline = build_timeline([("a", snapshot), ("b", snapshot)])
        return Api(SnapshotStore(timeline=timeline))

    def test_as_of_without_timeline_is_400(self, api):
        for target in self.READ_TARGETS:
            status, payload, _route, _c = api.handle(
                "GET", target, {"as_of": "0"}
            )
            assert status == 400, target
            assert "timeline" in payload["error"], target

    def test_malformed_as_of_is_400_everywhere(self, timeline_api):
        for target in self.READ_TARGETS:
            for token in self.BAD_TOKENS:
                status, payload, _route, _c = timeline_api.handle(
                    "GET", target, {"as_of": token}
                )
                assert status == 400, (target, token)
                assert set(payload) == {"error"}, (target, token)

    def test_out_of_range_date_is_400(self, timeline_api):
        # a well-formed date before the first era cannot resolve
        status, payload, _route, _c = timeline_api.handle(
            "GET", "/ranks", {"as_of": "1901-01-01"}
        )
        assert status == 400
        assert "error" in payload

    def test_valid_as_of_forms_still_resolve(self, timeline_api):
        for token in ("0", "1", "a", "b", "1998-01-01", "2030-06-15"):
            status, _payload, _route, _c = timeline_api.handle(
                "GET", "/ranks", {"as_of": token}
            )
            assert status == 200, token

    def test_diff_with_bad_eras_is_400(self, timeline_api):
        for pair in ("bogus/0", "0/bogus", "5/0", "0/-3", "x/y"):
            status, payload, _route, _c = timeline_api.handle(
                "GET", f"/diff/{pair}", {}
            )
            assert status == 400, pair
            assert "error" in payload, pair

    def test_timeline_routes_404_without_timeline(self, api):
        for target in ("/eras", "/diff/0/1", "/asns/1/history"):
            assert api.handle("GET", target, {})[0] == 404, target

    def test_post_to_timeline_routes_is_405(self, timeline_api):
        for target in ("/eras", "/diff/0/1", "/asns/1/history"):
            assert timeline_api.handle("POST", target, {})[0] == 405, target

    def test_what_if_ignores_valid_as_of_but_rejects_malformed(
        self, timeline_api
    ):
        body = json.dumps(
            {"dst": 1, "ops": [{"op": "drop_link", "a": 1, "b": 2}]}
        ).encode()
        status, _payload, _route, _c = timeline_api.handle(
            "POST", "/what-if", {"as_of": "0"}, body
        )
        assert status == 200
        status, payload, _route, _c = timeline_api.handle(
            "POST", "/what-if", {"as_of": "bogus"}, body
        )
        assert status == 400
        assert "error" in payload


class TestOverTheWire:
    """The asyncio server + compute pool serving the new endpoints."""

    @pytest.fixture()
    def served(self, snapshot):
        thread = ServerThread(SnapshotStore(snapshot=snapshot))
        host, port = thread.start()
        yield host, port
        thread.stop()

    @staticmethod
    def _request(host, port, method, target, body=None):
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(method, target, body=body)
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        finally:
            conn.close()

    def test_paths_and_what_if_over_http(self, served):
        host, port = served
        status, payload = self._request(host, port, "GET", "/paths/4/1")
        assert status == 200 and payload["path"] == [4, 2, 1]
        status, payload = self._request(
            host, port, "POST", "/what-if",
            json.dumps(
                {"dst": 1, "ops": [{"op": "drop_link", "a": 1, "b": 2}]}
            ),
        )
        assert status == 200 and payload["changed"] >= 1
        status, payload = self._request(host, port, "GET", "/metrics")
        assert payload["paths"]["table_misses"] >= 1

    def test_post_to_get_route_is_405_over_http(self, served):
        host, port = served
        status, _payload = self._request(host, port, "POST", "/snapshot")
        assert status == 405

    def test_loadgen_paths_mix_zero_errors(self, served):
        from repro.serve.loadgen import LoadGenConfig, run_loadgen

        host, port = served
        report = run_loadgen(
            LoadGenConfig(
                host=host, port=port, connections=2, requests=80,
                paths_weight=20, what_if_weight=10, population=7,
            )
        )
        assert report.requests == 80
        assert report.errors == 0
        assert report.by_route.get("paths", 0) > 0
        assert report.by_route.get("whatif", 0) > 0
