"""Unit tests for the three customer-cone definitions."""

import pytest

from repro.core.cone import ConeDefinition, CustomerCones, compute_cones
from repro.core.inference import InferenceConfig, infer_relationships
from repro.core.paths import PathSet
from repro.net.prefix import Prefix


def build_result(paths, **config_kwargs):
    defaults = dict(clique_seed_size=3, enable_partial_vp=False)
    defaults.update(config_kwargs)
    return infer_relationships(
        PathSet.sanitize(paths), InferenceConfig(**defaults)
    )


@pytest.fixture
def hierarchy_result():
    """1 and 2 peer at the top; 1 provides for 10→100; 2 for 20."""
    paths = [
        (10, 1, 2, 20),
        (20, 2, 1, 10),
        (10, 1, 2, 20, 200),
        (100, 10, 1, 2, 20),
        (20, 2, 1, 10, 100),
    ]
    return build_result(paths, clique_seed_size=2)


class TestRecursive:
    def test_includes_self(self, hierarchy_result):
        cones = compute_cones(hierarchy_result, ConeDefinition.RECURSIVE)
        for asn in hierarchy_result.paths.asns():
            assert asn in cones[asn]

    def test_transitive_closure(self, hierarchy_result):
        cones = compute_cones(hierarchy_result, ConeDefinition.RECURSIVE)
        assert cones[1] >= {1, 10, 100}
        assert 100 in cones[10]

    def test_peers_not_in_cone(self, hierarchy_result):
        cones = compute_cones(hierarchy_result, ConeDefinition.RECURSIVE)
        assert 2 not in cones[1]
        assert 1 not in cones[2]

    def test_leaf_cone_is_self(self, hierarchy_result):
        cones = compute_cones(hierarchy_result, ConeDefinition.RECURSIVE)
        assert cones[100] == {100}


class TestObservedDefinitions:
    def test_bgp_observed_requires_descending_run(self, hierarchy_result):
        cones = compute_cones(hierarchy_result, ConeDefinition.BGP_OBSERVED)
        assert cones[1] >= {1, 10, 100}
        assert 20 not in cones[1]

    def test_ppdc_uses_entry_from_above(self, hierarchy_result):
        cones = compute_cones(
            hierarchy_result, ConeDefinition.PROVIDER_PEER_OBSERVED
        )
        # path (20, 2, 1, 10, 100): route enters 1 from peer 2 → the
        # suffix 10, 100 is in 1's PPDC cone
        assert cones[1] >= {1, 10, 100}

    def test_ppdc_excludes_unwitnessed(self):
        # only one path, starting at the top: no entry from above, so
        # PPDC cone of 1 is just itself
        result = build_result([(1, 10, 100)], enable_clique=False)
        cones = compute_cones(result, ConeDefinition.PROVIDER_PEER_OBSERVED)
        assert cones[1] == {1}

    def test_bgp_observed_within_recursive(self, small_run):
        recursive = compute_cones(small_run.result, ConeDefinition.RECURSIVE)
        observed = compute_cones(small_run.result, ConeDefinition.BGP_OBSERVED)
        for asn, cone in observed.items():
            assert cone <= recursive[asn], asn

    def test_definitions_ordering_on_scenario(self, small_run):
        """The recursive cone is the upper bound on both observed
        definitions in aggregate (the paper's over-counting argument)."""
        result = small_run.result
        recursive = compute_cones(result, ConeDefinition.RECURSIVE)
        ppdc = compute_cones(result, ConeDefinition.PROVIDER_PEER_OBSERVED)
        bgp = compute_cones(result, ConeDefinition.BGP_OBSERVED)
        total_r = sum(len(c) for c in recursive.values())
        total_p = sum(len(c) for c in ppdc.values())
        total_b = sum(len(c) for c in bgp.values())
        assert total_r >= total_p
        assert total_r >= total_b
        # observed definitions agree at the top of the hierarchy: the
        # largest PPDC cone belongs to an AS with a near-largest
        # recursive cone
        top_ppdc = max(ppdc, key=lambda a: len(ppdc[a]))
        assert len(recursive[top_ppdc]) >= 0.8 * max(
            len(c) for c in recursive.values()
        )

    def test_unknown_definition_rejected(self, hierarchy_result):
        with pytest.raises(ValueError):
            compute_cones(hierarchy_result, "bogus")


class TestCustomerCones:
    @pytest.fixture
    def cones(self, hierarchy_result):
        prefixes = {
            1: [Prefix.parse("10.0.0.0/16")],
            10: [Prefix.parse("10.1.0.0/16")],
            100: [Prefix.parse("10.2.0.0/16"), Prefix.parse("10.3.0.0/16")],
            2: [Prefix.parse("11.0.0.0/16")],
            20: [Prefix.parse("11.1.0.0/16")],
            200: [Prefix.parse("11.2.0.0/16")],
        }
        return CustomerCones.compute(
            hierarchy_result,
            ConeDefinition.RECURSIVE,
            prefixes_by_asn=prefixes,
        )

    def test_size_ases(self, cones):
        assert cones.size_ases(1) == 3  # self + 10 + 100

    def test_size_prefixes(self, cones):
        assert cones.size_prefixes(1) == 4

    def test_size_addresses(self, cones):
        assert cones.size_addresses(1) == 4 * (1 << 16)

    def test_sizes_mapping(self, cones):
        sizes = cones.sizes()
        assert sizes[100] == 1

    def test_top(self, cones):
        top = cones.top(2)
        assert len(top) == 2
        assert top[0][1] >= top[1][1]

    def test_cone_copy_is_defensive(self, cones):
        cone = cones.cone(1)
        cone.add(999)
        assert 999 not in cones.cone(1)

    def test_prefix_queries_need_prefix_data(self, hierarchy_result):
        bare = CustomerCones.compute(hierarchy_result)
        with pytest.raises(ValueError):
            bare.size_prefixes(1)

    def test_unknown_asn_cone_is_self(self, cones):
        assert cones.cone(4242) == {4242}
        assert cones.size_ases(4242) == 1
