"""Cross-scenario invariant matrix.

Runs the same battery of system-level invariants against every cheap
named scenario, so a change that quietly breaks one workload shape is
caught even if the targeted tests still pass.
"""

import pytest

from repro.core.cone import ConeDefinition, compute_cones
from repro.relationships import Relationship
from repro.scenarios import get_scenario
from repro.validation.validator import validate_against_truth


@pytest.fixture(scope="module", params=["tiny", "small", "clean"])
def run(request, tiny_run, small_run, clean_run):
    return {"tiny": tiny_run, "small": small_run, "clean": clean_run}[
        request.param
    ]


class TestUniversalInvariants:
    def test_every_link_labeled(self, run):
        # the result's path set is the post-poisoned-filter corpus: the
        # pipeline labels exactly the links that survive filtering
        for a, b in run.result.paths.links():
            assert run.result.relationship(a, b) is not None

    def test_counts_partition(self, run):
        result = run.result
        assert sum(result.counts_by_relationship().values()) == len(result)
        assert sum(result.counts_by_step().values()) == len(result)

    def test_no_false_clique_members(self, run):
        true = set(run.graph.clique_asns())
        for member in run.result.clique.members:
            assert member in true

    def test_clique_members_provider_free(self, run):
        for member in run.result.clique.members:
            assert not run.result.providers_of_asn(member)

    def test_c2p_ppv_floor(self, run):
        report = validate_against_truth(run.result, run.graph)
        assert report.ppv(Relationship.P2C) > 0.97

    def test_overall_ppv_floor(self, run):
        report = validate_against_truth(run.result, run.graph)
        assert report.overall_ppv > 0.9

    def test_observed_cones_bounded_by_recursive(self, run):
        recursive = compute_cones(run.result, ConeDefinition.RECURSIVE)
        for definition in (ConeDefinition.BGP_OBSERVED,):
            observed = compute_cones(run.result, definition)
            for asn, cone in observed.items():
                assert cone <= recursive[asn]

    def test_largest_cone_belongs_to_tier1(self, run):
        cones = compute_cones(
            run.result, ConeDefinition.PROVIDER_PEER_OBSERVED
        )
        top = max(cones, key=lambda a: len(cones[a]))
        assert run.graph.get_as(top).type.value in ("clique", "large_transit")

    def test_stubs_outnumber_transits_in_observation(self, run):
        paths = run.paths
        degrees = [paths.transit_degree(asn) for asn in paths.asns()]
        zero = sum(1 for d in degrees if d == 0)
        assert zero > len(degrees) / 2  # the Internet is mostly edge

    def test_path_corpus_is_deduplicated(self, run):
        assert len(run.paths.paths) == len(set(run.paths.paths))

    def test_every_path_at_least_two_hops(self, run):
        assert all(len(p) >= 2 for p in run.paths)

    def test_inferred_peers_symmetric(self, run):
        result = run.result
        for asn, peers in result.peers.items():
            for peer in peers:
                assert asn in result.peers.get(peer, set())

    def test_provider_customer_mirror(self, run):
        result = run.result
        for provider, customers in result.customers.items():
            for customer in customers:
                assert provider in result.providers.get(customer, set())
