"""Historical serving off a mounted timeline: as_of, eras, diff, history.

In-process tests drive :class:`Api` over the same hand-built eras as
``test_timeline.py`` and pin every ``?as_of=`` answer to a plain
single-snapshot server for that era (byte-identical payloads).  The
over-the-wire class checks ETag separation between eras, and the fleet
class hot-reloads a whole timeline through the two-phase protocol.
"""

from __future__ import annotations

import http.client
import json
import os

import pytest

from repro.serve.handlers import Api
from repro.serve.server import ServerThread
from repro.serve.snapshot import Snapshot
from repro.serve.store import SnapshotStore
from repro.timeline import build_timeline, load_timeline, save_timeline

ERA0 = """\
1|2|-1
1|3|-1
2|4|-1
3|4|-1
3|5|-1
10|11|-1
"""
ERA1 = ERA0 + "5|12|-1\n11|13|-1\n"
ERA2 = ERA1.replace("3|5|-1", "3|5|0").replace("2|4|-1\n", "") + "12|14|-1\n"


@pytest.fixture(scope="module")
def eras(tmp_path_factory):
    directory = tmp_path_factory.mktemp("serve-tln")
    snapshots = []
    for index, text in enumerate((ERA0, ERA1, ERA2)):
        as_rel = directory / f"era{index}.txt"
        as_rel.write_text(text)
        snapshots.append(
            (f"era-{index}", Snapshot.from_files(str(as_rel)))
        )
    return snapshots


@pytest.fixture(scope="module")
def timeline_path(eras, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("tln") / "eras.tln")
    save_timeline(build_timeline(eras), path)
    return path


@pytest.fixture(scope="module")
def api(timeline_path):
    store = SnapshotStore(path=timeline_path)
    return Api(store)


class TestAsOfReads:
    TARGETS = (
        ("/asns/4", {}),
        ("/asns/1/cone", {"definition": "recursive"}),
        ("/ranks", {}),
        ("/links/3/5", {}),
        ("/paths/4/1", {}),
    )

    def test_every_read_equals_plain_server(self, api, eras):
        for index, (_label, full) in enumerate(eras):
            plain = Api(SnapshotStore(snapshot=full))
            for target, params in self.TARGETS:
                query = dict(params, as_of=str(index))
                got = api.handle("GET", target, query)
                want = plain.handle("GET", target, params)
                # identical status AND payload: as_of adds no fields,
                # so historical reads are byte-for-byte era reads
                assert got[:2] == want[:2], (index, target)

    def test_default_read_is_latest_era(self, api, eras):
        latest = Api(SnapshotStore(snapshot=eras[-1][1]))
        assert api.handle("GET", "/ranks", {})[:2] == (
            latest.handle("GET", "/ranks", {})[:2]
        )

    def test_label_and_date_tokens(self, api):
        by_index = api.handle("GET", "/ranks", {"as_of": "1"})
        assert api.handle(
            "GET", "/ranks", {"as_of": "era-1"}
        )[:2] == by_index[:2]
        assert api.handle(
            "GET", "/ranks", {"as_of": "1999-07-01"}
        )[:2] == by_index[:2]

    def test_snapshot_info_names_the_timeline(self, api):
        status, payload, _route, _c = api.handle("GET", "/snapshot", {})
        assert status == 200
        assert payload["timeline"]["eras"] == 3
        status, payload, _route, _c = api.handle(
            "GET", "/snapshot", {"as_of": "0"}
        )
        assert status == 200  # historical snapshot info resolves too


class TestTimelineEndpoints:
    def test_eras_listing(self, api):
        status, payload, route, cacheable = api.handle("GET", "/eras", {})
        assert (status, route, cacheable) == (200, "eras", True)
        assert [row["era"] for row in payload["eras"]] == [0, 1, 2]
        assert [row["kind"] for row in payload["eras"]] == [
            "full", "delta", "delta"
        ]

    def test_diff_endpoint_and_cache(self, api):
        status, payload, route, _c = api.handle("GET", "/diff/0/2", {})
        assert (status, route) == (200, "diff")
        assert payload["ases"]["new_count"] == 3
        assert payload["links"]["flips"] == {"p2c->p2p": 1}
        again = api.handle("GET", "/diff/0/2", {})[1]
        assert again is payload  # served from the diff cache

    def test_diff_accepts_labels_and_dates(self, api):
        by_index = api.handle("GET", "/diff/0/2", {})[1]
        by_label = api.handle("GET", "/diff/era-0/era-2", {})[1]
        assert by_label == by_index

    def test_history_endpoint(self, api):
        status, payload, route, _c = api.handle(
            "GET", "/asns/12/history", {}
        )
        assert (status, route) == (200, "history")
        assert [row["present"] for row in payload["eras"]] == [
            False, True, True
        ]
        assert api.handle("GET", "/asns/999999/history", {})[0] == 404


class TestOverTheWire:
    @pytest.fixture()
    def served(self, timeline_path):
        store = SnapshotStore(path=timeline_path)
        thread = ServerThread(store)
        host, port = thread.start()
        yield store, host, port
        thread.stop()

    @staticmethod
    def _get(host, port, target, headers=None):
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request("GET", target, headers=headers or {})
            response = conn.getresponse()
            return (
                response.status,
                response.read(),
                dict(response.getheaders()),
            )
        finally:
            conn.close()

    def test_as_of_gets_its_own_etag(self, served):
        _store, host, port = served
        etags = set()
        for era in range(3):
            status, _body, headers = self._get(
                host, port, f"/ranks?as_of={era}"
            )
            assert status == 200
            etags.add(headers["ETag"])
        assert len(etags) == 3  # each era revalidates independently

    def test_etag_revalidation_per_era(self, served):
        _store, host, port = served
        _status, _body, headers = self._get(host, port, "/ranks?as_of=1")
        status, body, _headers = self._get(
            host, port, "/ranks?as_of=1",
            headers={"If-None-Match": headers["ETag"]},
        )
        assert status == 304 and body == b""

    def test_timeline_endpoints_over_http(self, served):
        _store, host, port = served
        status, body, _h = self._get(host, port, "/eras")
        assert status == 200
        assert len(json.loads(body)["eras"]) == 3
        status, body, _h = self._get(host, port, "/diff/0/2")
        assert status == 200
        assert json.loads(body)["links"]["removed"] == 1
        status, body, _h = self._get(host, port, "/asns/12/history")
        assert status == 200
        assert self._get(host, port, "/ranks?as_of=bogus")[0] == 400
        assert self._get(host, port, "/diff/0/9")[0] == 400


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork")
class TestFleetReload:
    def test_two_phase_reload_of_a_timeline(
        self, eras, timeline_path, tmp_path
    ):
        import urllib.request

        from repro.serve.workers import WorkerFleet

        # a second timeline (first two eras only) to reload into
        shorter = str(tmp_path / "short.tln")
        save_timeline(build_timeline(eras[:2]), shorter)
        short_version = load_timeline(shorter).version

        def get(host, port, path):
            with urllib.request.urlopen(
                f"http://{host}:{port}{path}", timeout=5
            ) as response:
                return response.status, json.loads(response.read())

        fleet = WorkerFleet(timeline_path, workers=2)
        host, port = fleet.start()
        try:
            status, payload = get(host, port, "/eras")
            assert status == 200 and len(payload["eras"]) == 3
            assert fleet.reload(shorter) == short_version
            assert set(fleet.versions().values()) == {short_version}
            status, payload = get(host, port, "/eras")
            assert status == 200 and len(payload["eras"]) == 2
            # historical reads resolve on the new timeline
            status, _payload = get(host, port, "/ranks?as_of=1")
            assert status == 200
        finally:
            fleet.stop()
