"""Unit tests for the measurement-noise model."""

import pytest

from repro.bgp.noise import NoiseConfig, PathNoiser, RESERVED_ASN
from repro.relationships import canonical_pair
from repro.topology.model import AS, ASGraph, ASType


def bare_graph(clique_asns=(1, 2, 3)):
    graph = ASGraph()
    for asn in clique_asns:
        graph.add_as(AS(asn=asn, type=ASType.CLIQUE))
    for i, a in enumerate(clique_asns):
        for b in clique_asns[i + 1:]:
            graph.add_p2p(a, b)
    graph.via_ixp = {}
    return graph


class TestNone:
    def test_none_is_identity(self):
        noiser = PathNoiser(bare_graph(), NoiseConfig.none())
        path = (10, 11, 12, 13)
        assert noiser.apply(path) == path


class TestPrepending:
    def test_prepend_adds_adjacent_duplicates(self):
        config = NoiseConfig(seed=3, prepend_prob=1.0, max_prepend=2,
                             poison_prob=0, loop_prob=0, reserved_asn_prob=0,
                             ixp_insertion=False)
        noiser = PathNoiser(bare_graph(), config)
        observed = noiser.apply((10, 11, 12))
        # compressing duplicates recovers the original path
        compressed = [observed[0]]
        for asn in observed[1:]:
            if asn != compressed[-1]:
                compressed.append(asn)
        assert tuple(compressed) == (10, 11, 12)
        assert len(observed) > 3

    def test_prepend_deterministic_per_adjacency(self):
        config = NoiseConfig(seed=3, prepend_prob=0.5, poison_prob=0,
                             loop_prob=0, reserved_asn_prob=0,
                             ixp_insertion=False)
        a = PathNoiser(bare_graph(), config)
        b = PathNoiser(bare_graph(), config)
        for path in ((10, 11, 12), (10, 11, 13), (11, 12, 14)):
            assert a.apply(path) == b.apply(path)

    def test_first_hop_never_prepended(self):
        config = NoiseConfig(seed=1, prepend_prob=1.0, max_prepend=3,
                             poison_prob=0, loop_prob=0, reserved_asn_prob=0,
                             ixp_insertion=False)
        noiser = PathNoiser(bare_graph(), config)
        observed = noiser.apply((10, 11))
        assert observed[0] == 10
        assert observed.count(10) == 1


class TestIxpInsertion:
    def test_rs_inserted_between_peers(self):
        graph = bare_graph()
        graph.add_as(AS(asn=20, type=ASType.SMALL_TRANSIT))
        graph.add_as(AS(asn=21, type=ASType.SMALL_TRANSIT))
        graph.add_as(AS(asn=99, type=ASType.IXP_RS))
        graph.add_p2p(20, 21)
        graph.via_ixp = {canonical_pair(20, 21): 99}
        config = NoiseConfig(seed=1, prepend_prob=0, poison_prob=0,
                             loop_prob=0, reserved_asn_prob=0)
        noiser = PathNoiser(graph, config)
        assert noiser.apply((10, 20, 21)) == (10, 20, 99, 21)

    def test_rs_skipped_when_disabled(self):
        graph = bare_graph()
        graph.via_ixp = {canonical_pair(10, 11): 99}
        noiser = PathNoiser(graph, NoiseConfig.none())
        assert noiser.apply((10, 11)) == (10, 11)


class TestInjections:
    def test_poison_inserts_clique_asn(self):
        config = NoiseConfig(seed=2, prepend_prob=0, poison_prob=1.0,
                             loop_prob=0, reserved_asn_prob=0,
                             ixp_insertion=False)
        noiser = PathNoiser(bare_graph(), config)
        observed = noiser.apply((10, 11, 12))
        extras = [asn for asn in observed if asn not in (10, 11, 12)]
        if extras:  # poison may collide and be skipped; usually present
            assert extras[0] in (1, 2, 3)
            assert len(observed) == 4

    def test_loop_duplicates_origin(self):
        config = NoiseConfig(seed=2, prepend_prob=0, poison_prob=0,
                             loop_prob=1.0, reserved_asn_prob=0,
                             ixp_insertion=False)
        noiser = PathNoiser(bare_graph(), config)
        observed = noiser.apply((10, 11, 12))
        assert observed.count(12) == 2

    def test_reserved_asn_injected(self):
        config = NoiseConfig(seed=2, prepend_prob=0, poison_prob=0,
                             loop_prob=0, reserved_asn_prob=1.0,
                             ixp_insertion=False)
        noiser = PathNoiser(bare_graph(), config)
        observed = noiser.apply((10, 11, 12))
        assert RESERVED_ASN in observed

    def test_short_paths_not_poisoned(self):
        config = NoiseConfig(seed=2, prepend_prob=0, poison_prob=1.0,
                             loop_prob=1.0, reserved_asn_prob=0,
                             ixp_insertion=False)
        noiser = PathNoiser(bare_graph(), config)
        assert noiser.apply((10, 11)) == (10, 11)
