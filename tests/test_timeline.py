"""The delta-encoded era timeline: container, codec, resolution, diffs.

Hand-built eras (CAIDA as-rel text) keep the delta codec's behavior
easy to verify by eye: era 1 adds ASes and links, era 2 additionally
retypes a link and removes another.  A separate evolution-model leg
proves bit-identity on generated series (the production input).
"""

from __future__ import annotations

import pytest

from repro.serve.snapshot import Snapshot, SnapshotFormatError
from repro.serve.store import TimelineLookupError
from repro.timeline import (
    Timeline,
    TimelineFormatError,
    build_timeline,
    default_era_dates,
    era_snapshots,
    load_timeline,
    read_timeline_header,
    save_timeline,
)

ERA0 = """\
1|2|-1
1|3|-1
2|4|-1
3|4|-1
3|5|-1
10|11|-1
"""

# era 1: two new ASes (12, 13 — larger than every incumbent) and links
ERA1 = ERA0 + "5|12|-1\n11|13|-1\n"

# era 2: one more AS, a p2c->p2p retype of 3|5, and 2|4 removed
ERA2 = ERA1.replace("3|5|-1", "3|5|0").replace("2|4|-1\n", "") + "12|14|-1\n"


@pytest.fixture(scope="module")
def eras(tmp_path_factory):
    directory = tmp_path_factory.mktemp("timeline")
    snapshots = []
    for index, text in enumerate((ERA0, ERA1, ERA2)):
        as_rel = directory / f"era{index}.txt"
        as_rel.write_text(text)
        snapshots.append(
            (f"era-{index}", Snapshot.from_files(str(as_rel)))
        )
    return snapshots


@pytest.fixture(scope="module")
def timeline(eras):
    return build_timeline(eras)


@pytest.fixture(scope="module")
def loaded(timeline, eras, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("tln") / "eras.tln")
    save_timeline(timeline, path)
    tln = load_timeline(path, verify=True)
    yield tln, path
    tln.close()


class TestBuild:
    def test_era_kinds(self, timeline):
        assert [info.kind for info in timeline.eras] == [
            "full", "delta", "delta"
        ]

    def test_default_dates_one_year_apart(self, timeline):
        assert [info.date for info in timeline.eras] == [
            "1998-01-01", "1999-01-01", "2000-01-01"
        ]
        assert default_era_dates(2, start_year=2010) == [
            "2010-01-01", "2011-01-01"
        ]

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            build_timeline([])

    def test_date_count_mismatch_rejected(self, eras):
        with pytest.raises(ValueError):
            build_timeline(eras, dates=["1998-01-01"])

    def test_non_monotone_dates_rejected(self, eras):
        with pytest.raises(ValueError):
            build_timeline(
                eras,
                dates=["2001-01-01", "2000-01-01", "2002-01-01"],
            )

    def test_incompatible_era_falls_back_to_full(self, eras, tmp_path):
        # a shrinking AS set cannot prefix-extend -> stored full
        as_rel = tmp_path / "shrunk.txt"
        as_rel.write_text("1|2|-1\n")
        shrunk = Snapshot.from_files(str(as_rel))
        fallback = build_timeline([eras[0], ("shrunk", shrunk)])
        assert [info.kind for info in fallback.eras] == ["full", "full"]
        assert fallback.snapshot(1).encode_sections() == (
            shrunk.encode_sections()
        )

    def test_version_is_content_derived(self, eras, timeline):
        assert build_timeline(eras).version == timeline.version
        assert len(timeline.version) == 12


class TestRoundTrip:
    def test_every_era_bit_identical(self, loaded, eras):
        tln, _path = loaded
        for index, (_label, original) in enumerate(eras):
            assert tln.snapshot(index).encode_sections() == (
                original.encode_sections()
            ), index

    def test_verify_content(self, loaded):
        tln, _path = loaded
        tln.verify_content()  # must not raise

    def test_header_carries_era_table(self, loaded, timeline):
        _tln, path = loaded
        header, _payload_offset = read_timeline_header(path)
        assert header["version"] == timeline.version
        assert [row["kind"] for row in header["eras"]] == [
            "full", "delta", "delta"
        ]

    def test_delta_materialization_semantics(self, loaded):
        tln, _path = loaded
        era2 = tln.snapshot(2)
        assert era2.relationship(2, 4) is None  # removed link
        assert era2.relationship(3, 5).label == "p2p"  # retyped link
        assert 14 in era2 and 14 not in tln.snapshot(0)

    def test_delta_eras_store_fewer_bytes(self, loaded):
        tln, _path = loaded
        assert tln.era_bytes(1) < tln.era_bytes(0)
        assert tln.era_bytes(2) < tln.era_bytes(0)


class TestResolve:
    def test_index_label_and_date_forms(self, timeline):
        assert timeline.resolve(0) == 0
        assert timeline.resolve("2") == 2
        assert timeline.resolve("era-1") == 1
        assert timeline.resolve("1999-06-15") == 1  # latest era <= date
        assert timeline.resolve("2030-01-01") == 2

    def test_malformed_tokens_raise(self, timeline):
        for token in ("bogus", "", "9", "-1", "1901-01-01", "2000-13-40"):
            with pytest.raises(TimelineLookupError):
                timeline.resolve(token)


class TestCache:
    def test_lru_is_bounded(self, loaded, eras, tmp_path):
        _tln, path = loaded
        tln = load_timeline(path, cache_size=2)
        try:
            for index in range(len(eras)):
                tln.snapshot(index)
            assert len(tln._cache) <= 2
        finally:
            tln.close()

    def test_repeat_access_returns_cached_object(self, loaded):
        tln, _path = loaded
        assert tln.snapshot(1) is tln.snapshot(1)


class TestCorruption:
    def test_flipped_payload_byte_detected(self, timeline, tmp_path):
        path = str(tmp_path / "corrupt.tln")
        save_timeline(timeline, path)
        header, payload_offset = read_timeline_header(path)
        section = header["sections"]["era1:links+"]
        with open(path, "r+b") as fh:
            fh.seek(payload_offset + section["offset"])
            byte = fh.read(1)
            fh.seek(-1, 1)
            fh.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(SnapshotFormatError):
            load_timeline(path, verify=True)

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.tln")
        with open(path, "wb") as fh:
            fh.write(b"NOTATLN!" + b"\0" * 64)
        with pytest.raises(TimelineFormatError):
            load_timeline(path)


class TestDiffAndHistory:
    def test_diff_matches_hand_count(self, loaded):
        tln, _path = loaded
        diff = tln.diff(0, 2)
        assert diff["ases"]["new_count"] == 3  # 12, 13, 14
        assert diff["ases"]["new"] == [12, 13, 14]
        assert diff["ases"]["vanished_count"] == 0
        assert diff["links"]["added"] == 3  # 5-12, 11-13, 12-14
        assert diff["links"]["removed"] == 1  # 2-4
        assert diff["links"]["flips"] == {"p2c->p2p": 1}
        assert diff["links"]["flip_examples"] == [[3, 5, "p2c", "p2p"]]

    def test_history_tracks_birth(self, loaded):
        tln, _path = loaded
        rows = tln.history(12)
        assert [row["present"] for row in rows] == [False, True, True]
        assert all("rank" not in row for row in rows if not row["present"])


class TestEvolutionSeries:
    """Bit-identity on the generated series — the production input."""

    def test_generated_series_round_trips(self, tmp_path):
        from repro.topology.evolution import Era, EvolutionConfig, generate_series
        from repro.topology.generator import GeneratorConfig

        config = EvolutionConfig(
            base=GeneratorConfig(n_ases=50, seed=4, clique_size=4),
            eras=[
                Era(label="e1", new_ases=12, peering_boost=0.02),
                Era(label="e2", new_ases=15, peering_boost=0.03),
            ],
        )
        pairs = era_snapshots(generate_series(config))
        path = str(tmp_path / "evo.tln")
        save_timeline(build_timeline(pairs), path)
        tln = load_timeline(path, verify=True)
        try:
            assert [info.kind for info in tln.eras] == [
                "full", "delta", "delta"
            ]
            for index, (_label, original) in enumerate(pairs):
                assert tln.snapshot(index).encode_sections() == (
                    original.encode_sections()
                ), index
        finally:
            tln.close()
