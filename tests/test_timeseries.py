"""Tests for the longitudinal analysis pipeline (analysis/timeseries).

Covers the per-era metrics the evolution figures plot, seeded
determinism of the whole collect→infer→cone pipeline, vantage-point
persistence across eras, and a no-numpy parity leg.
"""

import hashlib
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.timeseries import (
    SnapshotMetrics,
    analyze_snapshot,
    flattening_series,
    series_metrics,
)
from repro.topology.evolution import Era, EvolutionConfig, generate_series
from repro.topology.generator import GeneratorConfig


def _metrics_digest(metrics) -> str:
    """Stable digest over everything downstream figures consume."""
    digest = hashlib.sha256()
    for snapshot in metrics:
        digest.update(snapshot.label.encode())
        digest.update(
            repr(
                (
                    snapshot.n_ases,
                    snapshot.n_links,
                    snapshot.n_paths,
                    sorted(snapshot.inferred_clique),
                    sorted(snapshot.cone_sizes.items()),
                    sorted(snapshot.recursive_cone_sizes.items()),
                )
            ).encode()
        )
    return digest.hexdigest()


@pytest.fixture(scope="module")
def series():
    config = EvolutionConfig(
        base=GeneratorConfig(n_ases=80, seed=5, clique_size=4),
        eras=[
            Era(label="e1", new_ases=20, peering_boost=0.02),
            Era(label="e2", new_ases=25, peering_boost=0.03),
        ],
    )
    return generate_series(config)


@pytest.fixture(scope="module")
def metrics(series):
    return series_metrics(series)


class TestSeriesMetrics:
    def test_one_row_per_era(self, series, metrics):
        assert [m.label for m in metrics] == [label for label, _ in series]

    def test_observed_world_grows(self, metrics):
        ases = [m.n_ases for m in metrics]
        assert ases == sorted(ases)
        assert [m.n_paths for m in metrics] == sorted(
            m.n_paths for m in metrics
        )

    def test_clique_recall_bounded(self, metrics):
        for snapshot in metrics:
            assert 0.0 <= snapshot.clique_recall <= 1.0

    def test_vps_persist_across_eras(self, metrics):
        # the collector keeps earlier vantage points and only adds new
        # ones, so observed deltas are topology change, not VP churn
        for earlier, later in zip(metrics, metrics[1:]):
            assert set(earlier.vps) <= set(later.vps)

    def test_cone_share_defaults_to_leaf(self, metrics):
        last = metrics[-1]
        # an AS absent from the cone table is a leaf: cone of itself
        assert last.cone_share(10**9) == pytest.approx(1 / last.n_ases)

    def test_empty_metrics_guards(self):
        empty = SnapshotMetrics(
            label="x", n_ases=0, n_links=0, n_paths=0,
            true_clique=[], inferred_clique=[], cone_sizes={},
        )
        assert empty.clique_recall == 1.0
        assert empty.cone_share(1) == 0.0


class TestFlatteningSeries:
    def test_default_tracking_shape(self, metrics):
        shares = flattening_series(metrics)
        assert shares  # top cones exist
        for asn, values in shares.items():
            assert len(values) == len(metrics)
            assert all(0.0 < v <= 1.0 for v in values), asn

    def test_explicit_track_list(self, metrics):
        probe = sorted(metrics[0].cone_sizes)[:2]
        shares = flattening_series(metrics, track=probe)
        assert sorted(shares) == probe


class TestDeterminism:
    def test_same_series_same_metrics(self, series):
        assert _metrics_digest(series_metrics(series)) == _metrics_digest(
            series_metrics(series)
        )

    def test_analyze_snapshot_matches_series_head(self, series, metrics):
        label, graph = series[0]
        alone = analyze_snapshot(label, graph)
        # same collector defaults for era 0 → identical inference input
        assert alone.n_ases == metrics[0].n_ases
        assert sorted(alone.inferred_clique) == sorted(
            metrics[0].inferred_clique
        )

    def test_output_identical_without_numpy(self):
        """Collection + inference + cones: numpy off changes nothing."""
        repo = Path(__file__).resolve().parent.parent
        script = (
            "from repro.analysis.timeseries import series_metrics\n"
            "from repro.topology.evolution import ("
            "Era, EvolutionConfig, generate_series)\n"
            "from repro.topology.generator import GeneratorConfig\n"
            "import sys; sys.path.insert(0, r'%s')\n"
            "from test_timeseries import _metrics_digest\n"
            "config = EvolutionConfig("
            "base=GeneratorConfig(n_ases=60, seed=6, clique_size=4),"
            "eras=[Era(label='e1', new_ases=15, peering_boost=0.02)])\n"
            "print(_metrics_digest(series_metrics(generate_series(config))))\n"
            % (repo / "tests")
        )
        digests = {}
        for label, pythonpath in (
            ("numpy", f"{repo / 'src'}"),
            ("no-numpy", f"{repo / 'ci' / 'no-numpy'}:{repo / 'src'}"),
        ):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": pythonpath, "PATH": "/usr/bin:/bin"},
                check=True,
            )
            digests[label] = out.stdout.strip()
        assert digests["numpy"] == digests["no-numpy"]
