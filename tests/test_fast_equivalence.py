"""The fast engine must be bit-for-bit equivalent to the seed code.

The fast paths (dense index, link-state fold, bitset cones) are pure
performance work: every observable output — relationship labels, the
inference step that set them, provider orientation, adjacency views,
and all three cone definitions — must match the reference
implementations exactly.  These tests pin that contract on the `tiny`
and `small` scenarios.
"""

from __future__ import annotations

import pytest

from repro.core.cone import (
    ConeDefinition,
    compute_cones,
    reference_bgp_observed_cones,
    reference_ppdc_cones,
    reference_recursive_cones,
)
from repro.core.inference import InferenceConfig, infer_relationships

_REFERENCE = {
    ConeDefinition.RECURSIVE: reference_recursive_cones,
    ConeDefinition.BGP_OBSERVED: reference_bgp_observed_cones,
    ConeDefinition.PROVIDER_PEER_OBSERVED: reference_ppdc_cones,
}


def _snapshot(result):
    """Everything observable about an inference result."""
    return {
        "rel": dict(result._rel),
        "provider": dict(result._provider),
        "step": dict(result._step),
        "providers": {k: set(v) for k, v in result.providers.items()},
        "customers": {k: set(v) for k, v in result.customers.items()},
        "peers": {k: set(v) for k, v in result.peers.items()},
        "siblings": {k: set(v) for k, v in result.siblings.items()},
        "clique": tuple(result.clique.members),
        "discarded": result.discarded_poisoned,
    }


@pytest.fixture(scope="module", params=["tiny", "small"])
def pair(request, tiny_run, small_run):
    """(fast result, reference result) over the same corpus."""
    run = {"tiny": tiny_run, "small": small_run}[request.param]
    fast = infer_relationships(run.paths, InferenceConfig(fast=True))
    reference = infer_relationships(run.paths, InferenceConfig(fast=False))
    return fast, reference


class TestInferenceEquivalence:
    def test_fast_flag_defaults_on(self):
        assert InferenceConfig().fast is True

    def test_identical_links_steps_and_adjacency(self, pair):
        fast, reference = pair
        assert _snapshot(fast) == _snapshot(reference)

    def test_fast_engine_used_the_index(self, pair):
        fast, reference = pair
        # guard against silently falling back to the reference paths
        assert fast._lstate is not None
        assert reference._lstate is None


class TestConeEquivalence:
    @pytest.mark.parametrize("definition", list(ConeDefinition))
    def test_fast_cones_match_reference(self, pair, definition):
        fast, reference = pair
        assert compute_cones(fast, definition) == _REFERENCE[definition](
            reference
        )

    @pytest.mark.parametrize("definition", list(ConeDefinition))
    def test_fallback_cones_match_reference(self, pair, definition):
        # a fast=False result exercises the set-based fallback cones
        _, reference = pair
        assert compute_cones(reference, definition) == _REFERENCE[
            definition
        ](reference)
