"""Tests for BGP4MP update-stream dumps."""

import pytest

from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.mrt.reader import RibRecord, UpdateRecord
from repro.mrt.updates import (
    read_update_dump,
    rib_from_updates,
    write_update_dump,
)
from repro.mrt.writer import MrtWriter
from repro.net.prefix import Prefix


def _update(peer, path, announced=(), withdrawn=()):
    return UpdateRecord(
        peer_asn=peer,
        local_asn=64700,
        as_path=tuple(path),
        announced=tuple(announced),
        communities=(),
        withdrawn=tuple(withdrawn),
    )


class TestRoundTrip:
    def test_rib_survives_update_round_trip(self, tmp_path, small_run):
        dump = str(tmp_path / "updates.mrt")
        written = write_update_dump(dump, small_run.corpus.rib)
        assert written > 0
        updates = read_update_dump(dump)
        rebuilt = rib_from_updates(updates)
        original = {
            (e.prefix, e.vp): (e.path, e.communities)
            for e in small_run.corpus.rib
        }
        got = {
            (r.prefix, r.peer_asn): (r.as_path, r.communities)
            for r in rebuilt
        }
        assert got == original

    def test_prefix_bundling(self, tmp_path, small_run):
        dump = str(tmp_path / "updates.mrt")
        written = write_update_dump(dump, small_run.corpus.rib)
        # bundling must compress relative to one update per RIB row
        assert written < len(small_run.corpus.rib)

    def test_inference_parity_via_updates(self, tmp_path, small_run):
        """Relationships inferred from the update stream must equal the
        in-memory result (the RIB-vs-updates consumer equivalence)."""
        dump = str(tmp_path / "updates.mrt")
        write_update_dump(dump, small_run.corpus.rib)
        rebuilt = rib_from_updates(read_update_dump(dump))
        paths = PathSet.sanitize(
            (r.as_path for r in rebuilt),
            ixp_asns=small_run.graph.ixp_asns(),
        )
        result = infer_relationships(paths, small_run.scenario.inference)
        original = {
            (min(a, b), max(a, b)): small_run.result.relationship(a, b)
            for a, b in small_run.result.links()
        }
        via_updates = {
            (min(a, b), max(a, b)): result.relationship(a, b)
            for a, b in result.links()
        }
        assert via_updates == original


class TestStreamSemantics:
    def test_last_announcement_wins(self):
        p = Prefix.parse("10.0.0.0/8")
        older = UpdateRecord(peer_asn=1, local_asn=9, as_path=(1, 2),
                             announced=(p,), communities=())
        newer = UpdateRecord(peer_asn=1, local_asn=9, as_path=(1, 3),
                             announced=(p,), communities=())
        rebuilt = rib_from_updates([older, newer])
        assert len(rebuilt) == 1
        assert rebuilt[0].as_path == (1, 3)

    def test_peers_kept_separate(self):
        p = Prefix.parse("10.0.0.0/8")
        a = UpdateRecord(peer_asn=1, local_asn=9, as_path=(1, 5),
                         announced=(p,), communities=())
        b = UpdateRecord(peer_asn=2, local_asn=9, as_path=(2, 5),
                         announced=(p,), communities=())
        rebuilt = rib_from_updates([a, b])
        assert {r.peer_asn for r in rebuilt} == {1, 2}

    def test_empty_stream(self):
        assert rib_from_updates([]) == []


class TestWithdrawals:
    def test_withdrawal_removes_the_route(self):
        p = Prefix.parse("10.0.0.0/8")
        stream = [
            _update(1, (1, 2), announced=(p,)),
            _update(1, (), withdrawn=(p,)),
        ]
        assert rib_from_updates(stream) == []

    def test_withdrawal_is_per_peer(self):
        p = Prefix.parse("10.0.0.0/8")
        stream = [
            _update(1, (1, 5), announced=(p,)),
            _update(2, (2, 5), announced=(p,)),
            _update(1, (), withdrawn=(p,)),
        ]
        rebuilt = rib_from_updates(stream)
        assert [(r.peer_asn, r.prefix) for r in rebuilt] == [(2, p)]

    def test_same_prefix_in_both_fields_is_reannouncement(self):
        # RFC 4271: within one UPDATE, withdrawals apply first
        p = Prefix.parse("10.0.0.0/8")
        stream = [
            _update(1, (1, 2), announced=(p,)),
            _update(1, (1, 3), announced=(p,), withdrawn=(p,)),
        ]
        rebuilt = rib_from_updates(stream)
        assert len(rebuilt) == 1
        assert rebuilt[0].as_path == (1, 3)

    def test_withdrawal_of_unknown_route_is_ignored(self):
        p = Prefix.parse("10.0.0.0/8")
        assert rib_from_updates([_update(1, (), withdrawn=(p,))]) == []

    def test_base_snapshot_rows_can_be_withdrawn(self):
        p = Prefix.parse("10.0.0.0/8")
        q = Prefix.parse("10.1.0.0/16")
        base = [
            RibRecord(prefix=p, peer_asn=1, as_path=(1, 2), communities=()),
            RibRecord(prefix=q, peer_asn=1, as_path=(1, 3), communities=()),
        ]
        rebuilt = rib_from_updates([_update(1, (), withdrawn=(p,))], base=base)
        assert [(r.prefix, r.as_path) for r in rebuilt] == [(q, (1, 3))]

    def test_reannounced_snapshot_row_not_duplicated(self):
        p = Prefix.parse("10.0.0.0/8")
        base = [
            RibRecord(prefix=p, peer_asn=1, as_path=(1, 2), communities=()),
        ]
        rebuilt = rib_from_updates([_update(1, (1, 2), announced=(p,))],
                                   base=base)
        assert len(rebuilt) == 1

    def test_pure_withdrawal_survives_the_wire(self, tmp_path):
        """Writer -> reader round-trip for an UPDATE with withdrawals."""
        p = Prefix.parse("10.0.0.0/8")
        q = Prefix.parse("192.168.4.0/24")
        dump = str(tmp_path / "wd.mrt")
        with open(dump, "wb") as stream:
            writer = MrtWriter(stream)
            writer.write_bgp4mp_update(
                peer_asn=7, local_asn=64700, as_path=(7, 8),
                announced=(p, q),
            )
            writer.write_bgp4mp_update(
                peer_asn=7, local_asn=64700, as_path=(),
                announced=(), withdrawn=(q,),
            )
        updates = read_update_dump(dump)
        assert len(updates) == 2
        assert updates[1].withdrawn == (q,)
        assert updates[1].announced == ()
        rebuilt = rib_from_updates(updates)
        assert [(r.prefix, r.as_path) for r in rebuilt] == [(p, (7, 8))]

    def test_mixed_update_survives_the_wire(self, tmp_path):
        """One UPDATE carrying both withdrawals and announcements."""
        p = Prefix.parse("10.0.0.0/8")
        q = Prefix.parse("192.168.4.0/24")
        dump = str(tmp_path / "mixed.mrt")
        with open(dump, "wb") as stream:
            MrtWriter(stream).write_bgp4mp_update(
                peer_asn=7, local_asn=64700, as_path=(7, 9),
                announced=(p,), withdrawn=(q,),
            )
        (update,) = read_update_dump(dump)
        assert update.announced == (p,)
        assert update.withdrawn == (q,)
        assert update.as_path == (7, 9)

    def test_withdraw_then_announce_matches_snapshot(self, tmp_path,
                                                     small_run):
        """A full churn stream must rebuild exactly the surviving RIB.

        Announce everything, withdraw every 3rd row, re-announce every
        9th: the rebuilt table must equal the snapshot of what survived.
        """
        rib = list(small_run.corpus.rib)
        dump = str(tmp_path / "churn.mrt")
        write_update_dump(dump, rib)
        with open(dump, "ab") as stream:
            writer = MrtWriter(stream)
            for i, entry in enumerate(rib):
                if i % 3 == 0:
                    writer.write_bgp4mp_update(
                        peer_asn=entry.vp, local_asn=64700, as_path=(),
                        announced=(), withdrawn=(entry.prefix,),
                    )
            for i, entry in enumerate(rib):
                if i % 9 == 0:
                    writer.write_bgp4mp_update(
                        peer_asn=entry.vp, local_asn=64700,
                        as_path=tuple(entry.path),
                        announced=(entry.prefix,),
                        communities=tuple(entry.communities),
                    )
        rebuilt = {
            (r.prefix, r.peer_asn): (r.as_path, r.communities)
            for r in rib_from_updates(read_update_dump(dump))
        }
        expected = {
            (e.prefix, e.vp): (tuple(e.path), tuple(e.communities))
            for i, e in enumerate(rib)
            if i % 3 != 0 or i % 9 == 0
        }
        assert rebuilt == expected
