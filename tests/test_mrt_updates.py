"""Tests for BGP4MP update-stream dumps."""

import pytest

from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.mrt.reader import RibRecord, UpdateRecord
from repro.mrt.updates import (
    read_update_dump,
    rib_from_updates,
    write_update_dump,
)
from repro.net.prefix import Prefix


class TestRoundTrip:
    def test_rib_survives_update_round_trip(self, tmp_path, small_run):
        dump = str(tmp_path / "updates.mrt")
        written = write_update_dump(dump, small_run.corpus.rib)
        assert written > 0
        updates = read_update_dump(dump)
        rebuilt = rib_from_updates(updates)
        original = {
            (e.prefix, e.vp): (e.path, e.communities)
            for e in small_run.corpus.rib
        }
        got = {
            (r.prefix, r.peer_asn): (r.as_path, r.communities)
            for r in rebuilt
        }
        assert got == original

    def test_prefix_bundling(self, tmp_path, small_run):
        dump = str(tmp_path / "updates.mrt")
        written = write_update_dump(dump, small_run.corpus.rib)
        # bundling must compress relative to one update per RIB row
        assert written < len(small_run.corpus.rib)

    def test_inference_parity_via_updates(self, tmp_path, small_run):
        """Relationships inferred from the update stream must equal the
        in-memory result (the RIB-vs-updates consumer equivalence)."""
        dump = str(tmp_path / "updates.mrt")
        write_update_dump(dump, small_run.corpus.rib)
        rebuilt = rib_from_updates(read_update_dump(dump))
        paths = PathSet.sanitize(
            (r.as_path for r in rebuilt),
            ixp_asns=small_run.graph.ixp_asns(),
        )
        result = infer_relationships(paths, small_run.scenario.inference)
        original = {
            (min(a, b), max(a, b)): small_run.result.relationship(a, b)
            for a, b in small_run.result.links()
        }
        via_updates = {
            (min(a, b), max(a, b)): result.relationship(a, b)
            for a, b in result.links()
        }
        assert via_updates == original


class TestStreamSemantics:
    def test_last_announcement_wins(self):
        p = Prefix.parse("10.0.0.0/8")
        older = UpdateRecord(peer_asn=1, local_asn=9, as_path=(1, 2),
                             announced=(p,), communities=())
        newer = UpdateRecord(peer_asn=1, local_asn=9, as_path=(1, 3),
                             announced=(p,), communities=())
        rebuilt = rib_from_updates([older, newer])
        assert len(rebuilt) == 1
        assert rebuilt[0].as_path == (1, 3)

    def test_peers_kept_separate(self):
        p = Prefix.parse("10.0.0.0/8")
        a = UpdateRecord(peer_asn=1, local_asn=9, as_path=(1, 5),
                         announced=(p,), communities=())
        b = UpdateRecord(peer_asn=2, local_asn=9, as_path=(2, 5),
                         announced=(p,), communities=())
        rebuilt = rib_from_updates([a, b])
        assert {r.peer_asn for r in rebuilt} == {1, 2}

    def test_empty_stream(self):
        assert rib_from_updates([]) == []
