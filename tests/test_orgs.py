"""Unit tests for the organizations / WHOIS sibling substrate."""

import pytest

from repro.core.inference import InferenceConfig, Step, infer_relationships
from repro.core.paths import PathSet
from repro.relationships import Relationship, canonical_pair
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.model import AS, ASGraph, ASType
from repro.topology.orgs import (
    Organization,
    OrgRegistry,
    assign_organizations,
    parse_as_org,
    render_as_org,
)


class TestRegistry:
    def test_add_and_lookup(self):
        registry = OrgRegistry([Organization("ORG-1", "One", [10, 11])])
        assert registry.org_of(10).org_id == "ORG-1"
        assert registry.org_of(99) is None
        assert len(registry) == 1

    def test_duplicate_org_rejected(self):
        registry = OrgRegistry([Organization("ORG-1", "One", [10])])
        with pytest.raises(ValueError):
            registry.add(Organization("ORG-1", "Again", [11]))

    def test_asn_in_two_orgs_rejected(self):
        registry = OrgRegistry([Organization("ORG-1", "One", [10])])
        with pytest.raises(ValueError):
            registry.add(Organization("ORG-2", "Two", [10]))

    def test_siblings(self):
        registry = OrgRegistry([
            Organization("ORG-1", "One", [10, 11, 12]),
            Organization("ORG-2", "Two", [20]),
        ])
        assert registry.are_siblings(10, 11)
        assert registry.are_siblings(12, 10)
        assert not registry.are_siblings(10, 20)
        assert not registry.are_siblings(10, 10)
        assert registry.sibling_pairs() == {(10, 11), (10, 12), (11, 12)}

    def test_multi_as_orgs(self):
        registry = OrgRegistry([
            Organization("ORG-1", "One", [10, 11]),
            Organization("ORG-2", "Two", [20]),
        ])
        assert [o.org_id for o in registry.multi_as_orgs()] == ["ORG-1"]


class TestAssignment:
    @pytest.fixture(scope="class")
    def graph(self):
        return generate_topology(
            GeneratorConfig(n_ases=200, seed=21, sibling_pairs=4)
        )

    def test_every_business_as_assigned(self, graph):
        registry = assign_organizations(graph)
        for asys in graph.ases():
            if asys.type is ASType.IXP_RS:
                assert registry.org_of(asys.asn) is None
            else:
                assert registry.org_of(asys.asn) is not None

    def test_s2s_links_share_org(self, graph):
        registry = assign_organizations(graph)
        for a, b, rel in graph.links():
            if rel is Relationship.S2S:
                assert registry.are_siblings(a, b)

    def test_acquisitions_create_linkless_siblings(self, graph):
        registry = assign_organizations(graph, acquisition_rate=0.5, seed=2)
        linkless = [
            (a, b)
            for (a, b) in registry.sibling_pairs()
            if graph.relationship(a, b) is None
        ]
        assert linkless  # WHOIS knows siblings the path data cannot see

    def test_deterministic(self, graph):
        a = assign_organizations(graph, seed=5)
        b = assign_organizations(graph, seed=5)
        assert a.sibling_pairs() == b.sibling_pairs()


class TestAsOrgFormat:
    def test_round_trip(self):
        registry = OrgRegistry([
            Organization("ORG-00001", "Alpha", [10, 11]),
            Organization("ORG-00002", "Beta", [20]),
        ])
        parsed = parse_as_org(render_as_org(registry))
        assert len(parsed) == 2
        assert parsed.org_of(11).name == "Alpha"
        assert parsed.sibling_pairs() == registry.sibling_pairs()

    def test_parser_tolerates_junk(self):
        text = (
            "# a comment\n"
            "ORG-1|Example Org\n"
            "not|three|fields|ok\n"
            "\n"
            "10|ORG-1\n"
            "11|ORG-1\n"
        )
        registry = parse_as_org(text)
        assert registry.are_siblings(10, 11)

    def test_scenario_round_trip(self):
        graph = generate_topology(GeneratorConfig(n_ases=150, seed=3))
        registry = assign_organizations(graph)
        parsed = parse_as_org(render_as_org(registry))
        assert parsed.sibling_pairs() == registry.sibling_pairs()
        assert len(parsed) == len(registry)


class TestDegenerateInputs:
    def test_empty_registry_round_trip(self):
        registry = OrgRegistry()
        assert len(registry) == 0
        assert registry.sibling_pairs() == set()
        assert registry.multi_as_orgs() == []
        parsed = parse_as_org(render_as_org(registry))
        assert len(parsed) == 0

    def test_parse_empty_and_comment_only_text(self):
        assert len(parse_as_org("")) == 0
        assert len(parse_as_org("# only comments\n\n# more\n")) == 0

    def test_parse_org_without_name_record(self):
        # ASN lines referencing an org with no name line: the org_id
        # stands in for the missing name
        registry = parse_as_org("10|ORG-GHOST\n11|ORG-GHOST\n")
        assert registry.org_of(10).name == "ORG-GHOST"
        assert registry.are_siblings(10, 11)

    def test_assign_minimal_graph(self):
        graph = ASGraph()
        graph.add_as(AS(asn=1, type=ASType.STUB))
        registry = assign_organizations(graph)
        assert registry.org_of(1) is not None
        assert registry.sibling_pairs() == set()

    def test_zero_acquisition_rate_means_link_driven_only(self):
        graph = generate_topology(
            GeneratorConfig(n_ases=150, seed=9, sibling_pairs=3)
        )
        registry = assign_organizations(graph, acquisition_rate=0.0)
        for a, b in registry.sibling_pairs():
            assert graph.relationship(a, b) is Relationship.S2S


class TestSiblingInference:
    def test_known_siblings_labeled_first(self):
        paths = [
            (50, 60, 61, 70),  # 60-61 is a sibling pair on the path
            (70, 61, 60, 50),
        ] + [(50, 60, i) for i in range(100, 108)]
        config = InferenceConfig(
            enable_clique=False,
            enable_partial_vp=False,
            known_siblings=frozenset({canonical_pair(60, 61)}),
        )
        result = infer_relationships(PathSet.sanitize(paths), config)
        assert result.relationship(60, 61) is Relationship.S2S
        assert result.step_of(60, 61) is Step.S2B_SIBLING

    def test_sibling_link_resets_fold_constraints(self):
        # descent before the sibling link must not force descent after it
        paths = [
            (50, 60, 61, 70),
            (70, 61, 60, 50),
            # make 60 clearly the provider of 50 via other evidence
            (99, 60, 50),
        ]
        config = InferenceConfig(
            enable_clique=False,
            enable_partial_vp=False,
            enable_degree_gap=False,
            enable_stub=False,
            enable_providerless=False,
            known_siblings=frozenset({canonical_pair(60, 61)}),
        )
        result = infer_relationships(PathSet.sanitize(paths), config)
        # the 61-70 link is NOT forced to descend by the 50-60 state
        assert result.step_of(61, 70) is not Step.S6_FOLD or (
            result.relationship(61, 70) is not None
        )
        assert result.relationship(60, 61) is Relationship.S2S

    def test_pipeline_with_org_derived_siblings(self):
        graph = generate_topology(
            GeneratorConfig(n_ases=200, seed=21, sibling_pairs=4)
        )
        registry = assign_organizations(graph)
        from repro.bgp.collector import Collector, CollectorConfig

        corpus = Collector(graph, CollectorConfig(n_vps=14, seed=4)).run()
        paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
        config = InferenceConfig(known_siblings=frozenset(registry.sibling_pairs()))
        result = infer_relationships(paths, config)
        # every observed sibling link is labeled s2s, matching truth
        for a, b in paths.links():
            if registry.are_siblings(a, b):
                assert result.relationship(a, b) is Relationship.S2S
                assert graph.relationship(a, b) is Relationship.S2S
