"""Tests for the seeded differential-QA subsystem (``repro.qa``)."""

from __future__ import annotations

import glob
import os

import pytest

from repro.qa import (
    QaConfig,
    build_world,
    replay_paths,
    run_qa,
    shrink_paths,
    world_spec,
)
from repro.qa.generator import SHAPES


class TestGenerator:
    def test_spec_is_deterministic(self):
        assert world_spec(7) == world_spec(7)

    def test_seed_sweep_covers_every_shape(self):
        shapes = {world_spec(seed).shape for seed in range(len(SHAPES))}
        assert shapes == set(SHAPES)

    def test_label_names_seed_and_shape(self):
        spec = world_spec(3)
        assert str(spec.seed) in spec.label
        assert spec.shape in spec.label

    def test_build_world_materializes(self):
        world = build_world(world_spec(0))
        assert len(world.corpus.paths) > 0
        assert len(world.paths) > 0
        assert len(world.graph) >= 60

    def test_single_vp_shape_has_one_vp(self):
        spec = next(
            world_spec(s) for s in range(len(SHAPES))
            if world_spec(s).shape == "single-vp"
        )
        assert spec.collector.n_vps == 1

    def test_worlds_differ_across_seeds(self):
        a = build_world(world_spec(0))
        b = build_world(world_spec(10))  # same shape, different seed
        assert a.spec.shape == b.spec.shape
        assert a.corpus.paths != b.corpus.paths


class TestCleanSweep:
    def test_small_sweep_is_clean(self, tmp_path):
        config = QaConfig(
            seeds=4, repro_dir=str(tmp_path / "repros"), collection_every=2
        )
        lines = []
        report = run_qa(config, log=lines.append)
        assert report.ok, report.violations
        assert report.worlds == 4
        assert report.checks >= 4 * 3  # three corpus families per world
        assert report.repros == []
        assert not os.path.isdir(str(tmp_path / "repros"))  # nothing saved
        assert any("clean" in line for line in lines)

    def test_replay_of_clean_corpus_passes(self, tmp_path):
        from repro.datasets.serialization import save_paths

        world = build_world(world_spec(1))  # "clean" shape: no IXP stripping
        corpus_file = str(tmp_path / "corpus.paths.txt")
        save_paths(corpus_file, world.corpus.paths)
        report = replay_paths(corpus_file)
        assert report.ok, report.violations


class TestMutationSmoke:
    """A deliberately broken fast path must be caught and shrunk."""

    @pytest.fixture
    def broken_fold(self, monkeypatch):
        import repro.core.inference as inf

        monkeypatch.setattr(inf, "_step_fold_fast", lambda result: None)

    def test_broken_fast_fold_is_caught(self, tmp_path, broken_fold):
        repro_dir = str(tmp_path / "repros")
        config = QaConfig(
            seeds=2, repro_dir=repro_dir, collection_every=0,
            max_shrink_evals=150,
        )
        report = run_qa(config)
        assert not report.ok
        assert any(
            v.invariant.startswith("differential/") for v in report.violations
        )
        # every failing world produced a shrunken repro file
        assert len(report.repros) == 2
        for repro_file in report.repros:
            assert os.path.exists(repro_file)
            text = open(repro_file).read()
            assert "reproduce with: repro-asrank qa --replay" in text

    def test_shrunken_repro_replays_red_under_the_bug(
        self, tmp_path, broken_fold
    ):
        config = QaConfig(
            seeds=1, repro_dir=str(tmp_path), collection_every=0,
            max_shrink_evals=150,
        )
        report = run_qa(config)
        assert report.repros
        replay = replay_paths(report.repros[0])
        assert not replay.ok

    def test_shrunken_repro_is_small(self, tmp_path, broken_fold):
        config = QaConfig(
            seeds=1, repro_dir=str(tmp_path), collection_every=0,
            max_shrink_evals=150,
        )
        report = run_qa(config)
        from repro.datasets.serialization import load_paths

        minimal = load_paths(report.repros[0])
        world = build_world(world_spec(0))
        assert len(minimal) < len(world.corpus.paths)

    def test_no_shrink_keeps_full_corpus(self, tmp_path, broken_fold):
        config = QaConfig(
            seeds=1, repro_dir=str(tmp_path), collection_every=0,
            shrink=False,
        )
        report = run_qa(config)
        from repro.datasets.serialization import load_paths

        saved = load_paths(report.repros[0])
        world = build_world(world_spec(0))
        assert len(saved) == len(set(world.corpus.paths)) or (
            len(saved) == len(world.corpus.paths)
        )


class TestShrinker:
    def test_shrinks_to_single_culprit(self):
        corpus = [(1, 2, 3)] + [(9, n) for n in range(40)]

        def still_fails(paths):
            return (1, 2, 3) in paths

        assert shrink_paths(corpus, still_fails) == [(1, 2, 3)]

    def test_shrinks_to_interacting_pair(self):
        corpus = [(i, i + 1) for i in range(30)]

        def still_fails(paths):
            return (0, 1) in paths and (20, 21) in paths

        assert sorted(shrink_paths(corpus, still_fails)) == [(0, 1), (20, 21)]

    def test_flaky_predicate_returns_input_unshrunk(self):
        corpus = [(1,), (2,), (3,)]
        assert shrink_paths(corpus, lambda paths: False) == corpus

    def test_empty_corpus(self):
        assert shrink_paths([], lambda paths: True) == []

    def test_eval_budget_is_respected(self):
        corpus = [(n,) for n in range(200)]
        evals = []

        def still_fails(paths):
            evals.append(1)
            return (0,) in paths

        shrink_paths(corpus, still_fails, max_evals=25)
        assert len(evals) <= 26  # budget + the initial sanity check
