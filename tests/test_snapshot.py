"""Snapshot compile/serialize/load round-trips (repro.serve)."""

from __future__ import annotations

import os

import pytest

from repro.asrank import ASRank
from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.paths import PathSet, SanitizeStats
from repro.serve.snapshot import (
    Snapshot,
    SnapshotFormatError,
    resolve_definition,
)
from repro.serve.store import load_snapshot, save_snapshot


def _facade(raw_paths):
    return ASRank.from_paths(raw_paths)


def _unsanitized_facade(paths):
    """A facade over paths the sanitizer would reject (ASN 0 etc.)."""
    counts = {tuple(p): 1 for p in paths}
    return ASRank(PathSet([tuple(p) for p in paths], counts,
                          SanitizeStats()))


class TestRoundTrip:
    def test_eager_and_lazy_agree(self, tmp_path, tiny_run):
        facade = ASRank(tiny_run.paths)
        facade._result = tiny_run.result
        snapshot = facade.snapshot()
        path = str(tmp_path / "tiny.snap")
        version = save_snapshot(snapshot, path)
        eager = load_snapshot(path)
        lazy = load_snapshot(path, lazy=True)
        assert eager.version == lazy.version == version == snapshot.version
        assert eager.asns == lazy.asns == snapshot.asns
        assert eager.ranks() == lazy.ranks() == snapshot.ranks()
        for definition in ConeDefinition:
            for asn in snapshot.asns[:20]:
                expected = snapshot.cone(asn, definition)
                assert eager.cone(asn, definition) == expected
                assert lazy.cone(asn, definition) == expected
        for a, b in list(tiny_run.result.links())[:50]:
            assert eager.relationship(a, b) is (
                tiny_run.result.relationship(a, b)
            )
            assert lazy.provider_of(a, b) == (
                tiny_run.result.provider_of(a, b)
            )

    def test_version_is_content_derived(self, tmp_path):
        facade = _facade([(10, 1, 2), (20, 2, 1)])
        first = facade.snapshot()
        second = _facade([(10, 1, 2), (20, 2, 1)]).snapshot()
        assert first.version == second.version
        different = _facade([(10, 1, 3), (20, 3, 1)]).snapshot()
        assert different.version != first.version

    def test_empty_graph(self, tmp_path):
        snapshot = _facade([]).snapshot()
        assert len(snapshot) == 0
        assert snapshot.ranks() == []
        path = str(tmp_path / "empty.snap")
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded.asns == []
        assert loaded.ranks() == []
        assert loaded.relationship(1, 2) is None
        assert loaded.cone(7) == {7}  # unknown AS mirrors CustomerCones

    def test_single_as_world_from_files(self, tmp_path):
        as_rel = tmp_path / "one.as-rel.txt"
        as_rel.write_text("# empty\n")
        ppdc = tmp_path / "one.ppdc.txt"
        ppdc.write_text("42\n")
        snapshot = Snapshot.from_files(str(as_rel), str(ppdc))
        assert snapshot.asns == [42]
        assert snapshot.cone(42) == {42}
        assert snapshot.cone(42, ConeDefinition.RECURSIVE) == {42}
        [entry] = snapshot.ranks()
        assert (entry.rank, entry.asn, entry.cone_ases) == (1, 42, 1)
        path = str(tmp_path / "one.snap")
        save_snapshot(snapshot, path)
        assert load_snapshot(path).cone(42) == {42}

    def test_asn_zero_and_32bit_asns(self, tmp_path):
        wide = 4_199_999_999  # below the 32-bit private range
        facade = _unsanitized_facade(
            [(0, wide), (wide, 0), (0, wide, 77), (77, wide, 0)]
        )
        snapshot = facade.snapshot()
        assert 0 in snapshot and wide in snapshot
        path = str(tmp_path / "wide.snap")
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded.asns == snapshot.asns
        assert loaded.relationship(0, wide) is (
            facade.relationship(0, wide)
        )
        for asn in (0, 77, wide):
            assert loaded.cone(asn) == facade.customer_cone(asn)

    def test_cones_match_oracles_bit_for_bit(self, tiny_run, tmp_path):
        facade = ASRank(tiny_run.paths)
        facade._result = tiny_run.result
        path = str(tmp_path / "cones.snap")
        save_snapshot(facade.snapshot(), path)
        loaded = load_snapshot(path)
        for definition in ConeDefinition:
            oracle = CustomerCones.compute(tiny_run.result, definition)
            for asn in loaded.asns:
                assert loaded.cone(asn, definition) == oracle.cone(asn), (
                    definition,
                    asn,
                )
                assert loaded.cone_size(asn, definition) == (
                    oracle.size_ases(asn)
                )


class TestCorruption:
    def _snapshot_file(self, tmp_path) -> str:
        path = str(tmp_path / "c.snap")
        save_snapshot(_facade([(10, 1, 2), (20, 2, 1)]).snapshot(), path)
        return path

    def test_flipped_payload_byte_rejected_eager(self, tmp_path):
        path = self._snapshot_file(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[-3] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(SnapshotFormatError, match="checksum"):
            load_snapshot(path)

    def test_flipped_payload_byte_rejected_lazy(self, tmp_path):
        import json
        import struct

        path = self._snapshot_file(tmp_path)
        blob = bytearray(open(path, "rb").read())
        # corrupt one byte inside the *ranks* section specifically, so
        # the lazy open (meta/stats/asns) succeeds and the first rank
        # query trips the per-section checksum
        _magic, _fmt, header_len = struct.unpack_from("<8sII", blob, 0)
        header = json.loads(bytes(blob[16:16 + header_len]))
        entry = header["sections"]["ranks"]
        blob[16 + header_len + int(entry["offset"])] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        lazy = load_snapshot(path, lazy=True)  # header still parses
        assert lazy.asns  # untouched sections stay readable
        with pytest.raises(SnapshotFormatError, match="checksum"):
            lazy.ranks()

    def test_truncated_file_rejected(self, tmp_path):
        path = self._snapshot_file(tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(SnapshotFormatError):
            load_snapshot(path)

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.snap")
        open(path, "wb").write(b"not a snapshot at all" * 4)
        with pytest.raises(SnapshotFormatError, match="magic"):
            load_snapshot(path)

    def test_save_is_atomic(self, tmp_path):
        path = self._snapshot_file(tmp_path)
        before = load_snapshot(path).version
        # a failing save must leave no temp litter and the old file intact
        class Boom(Snapshot):
            def encode_sections(self):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            save_snapshot(Boom([], {}, {}), path)
        assert load_snapshot(path).version == before
        assert [f for f in os.listdir(tmp_path) if f.endswith(".tmp")] == []


class TestFromFiles:
    def test_recursive_closure_and_ppdc(self, tmp_path):
        as_rel = tmp_path / "t.as-rel.txt"
        as_rel.write_text("1|2|-1\n2|3|-1\n2|4|0\n")
        ppdc = tmp_path / "t.ppdc.txt"
        ppdc.write_text("1 1 2\n2 2 3\n3 3\n4 4\n")
        snapshot = Snapshot.from_files(str(as_rel), str(ppdc))
        assert snapshot.cone(1, ConeDefinition.RECURSIVE) == {1, 2, 3}
        assert snapshot.cone(2, ConeDefinition.RECURSIVE) == {2, 3}
        assert snapshot.cone(1) == {1, 2}  # ppdc as given in the file
        assert snapshot.provider_of(1, 2) == 1
        assert snapshot.relationship(2, 4).label == "p2p"
        with pytest.raises(KeyError):
            snapshot.cone(1, ConeDefinition.BGP_OBSERVED)

    def test_definitions_metadata_limits_serving(self, tmp_path):
        as_rel = tmp_path / "t.as-rel.txt"
        as_rel.write_text("1|2|-1\n")
        snapshot = Snapshot.from_files(str(as_rel))
        assert snapshot.meta["definitions"] == ["recursive"]


class TestFromFilesRegression:
    """Pin ``Snapshot.from_files`` output on committed CAIDA fixtures.

    The section hashes were captured before the file-built path moved
    onto the shared graph core (its private closure implementation was
    deleted in favor of :func:`repro.graph.closure_bits`); any drift
    here means a file-built snapshot no longer matches what earlier
    releases served.  The ``meta`` section is excluded because it
    embeds the input path.
    """

    AS_REL = os.path.join(
        os.path.dirname(__file__), "data", "tiny-world.as-rel.txt"
    )
    PPDC = os.path.join(
        os.path.dirname(__file__), "data", "tiny-world.ppdc-ases.txt"
    )

    WITH_PPDC = {
        "asns": "8eb52ea6b33eecd0",
        "cones:provider/peer-observed": "cd770efdfa685508",
        "cones:recursive": "36dfd9b0da1bfba7",
        "links": "e224944f70ef33e8",
        "ranks": "fa419745a863dfe7",
        "stats": "a33cc642c9c75d2d",
    }
    AS_REL_ONLY = {
        "asns": "8eb52ea6b33eecd0",
        "cones:recursive": "36dfd9b0da1bfba7",
        "links": "e224944f70ef33e8",
        "ranks": "1e7b118f0c3ab0bb",
        "stats": "df4895ea9b3308ca",
    }

    @staticmethod
    def _section_hashes(snapshot):
        import hashlib

        return {
            name: hashlib.sha256(blob).hexdigest()[:16]
            for name, blob in snapshot.encode_sections().items()
            if name != "meta"
        }

    def test_with_ppdc_sections_unchanged(self):
        snapshot = Snapshot.from_files(self.AS_REL, self.PPDC)
        assert self._section_hashes(snapshot) == self.WITH_PPDC

    def test_as_rel_only_sections_unchanged(self):
        snapshot = Snapshot.from_files(self.AS_REL)
        assert self._section_hashes(snapshot) == self.AS_REL_ONLY


class TestDefinitionAliases:
    def test_aliases_resolve(self):
        assert resolve_definition("ppdc") is (
            ConeDefinition.PROVIDER_PEER_OBSERVED
        )
        assert resolve_definition("provider/peer-observed") is (
            ConeDefinition.PROVIDER_PEER_OBSERVED
        )
        assert resolve_definition("recursive") is ConeDefinition.RECURSIVE
        with pytest.raises(KeyError):
            resolve_definition("bogus")
