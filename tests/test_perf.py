"""Unit tests for the perf instrumentation layer."""

from __future__ import annotations

import time

from repro import perf
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet


class TestStageTree:
    def test_nesting_accumulates_under_parent(self):
        rec = perf.PerfRecorder()
        with rec.stage("infer"):
            with rec.stage("fold"):
                pass
            with rec.stage("fold"):
                pass
        flat = rec.flat()
        assert set(flat) == {"infer", "infer/fold"}
        assert flat["infer"] >= flat["infer/fold"] >= 0.0

    def test_reentry_counts_calls(self):
        rec = perf.PerfRecorder()
        for _ in range(3):
            with rec.stage("fold"):
                pass
        assert rec.snapshot()["fold"]["calls"] == 3

    def test_seconds_actually_measure_time(self):
        rec = perf.PerfRecorder()
        with rec.stage("sleep"):
            time.sleep(0.01)
        assert rec.flat()["sleep"] >= 0.009

    def test_counters_attach_to_open_stage(self):
        rec = perf.PerfRecorder()
        with rec.stage("collect"):
            rec.counter("origins", 5)
            rec.counter("origins", 2)
        assert rec.counters() == {"collect/origins": 7}

    def test_stage_closed_on_exception(self):
        rec = perf.PerfRecorder()
        try:
            with rec.stage("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        # the stack unwound: a new top-level stage is a sibling
        with rec.stage("after"):
            pass
        assert set(rec.flat()) == {"boom", "after"}

    def test_snapshot_is_json_like(self):
        rec = perf.PerfRecorder()
        with rec.stage("a"):
            with rec.stage("b"):
                rec.counter("n")
        snap = rec.snapshot()
        assert snap["a"]["children"]["b"]["counters"] == {"n": 1}

    def test_reentering_open_stage_is_passthrough(self):
        rec = perf.PerfRecorder()
        with rec.stage("asrank"):
            with rec.stage("infer"):
                with rec.stage("infer"):  # engine re-opens the facade's stage
                    time.sleep(0.01)
        snap = rec.snapshot()
        node = snap["asrank"]["children"]["infer"]
        assert "children" not in node  # no infer/infer duplicate
        assert node["calls"] == 1  # passthrough does not double-count
        assert node["seconds"] >= 0.009

    def test_facade_attributes_infer_and_cones_distinctly(self):
        from repro.asrank import ASRank

        rec = perf.PerfRecorder()
        with perf.use_recorder(rec):
            facade = ASRank.from_paths([(10, 1, 2, 20), (20, 2, 1, 10)])
            facade.result
            facade.cones()
        flat = rec.flat()
        assert "asrank/infer" in flat
        assert "asrank/cones" in flat
        assert "asrank/infer/infer" not in flat
        assert "asrank/cones/cones" not in flat

    def test_report_lines_indent_children(self):
        rec = perf.PerfRecorder()
        with rec.stage("outer"):
            with rec.stage("inner"):
                pass
        lines = rec.report_lines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")


class TestScopedRecorder:
    def test_use_recorder_scopes_and_restores(self):
        scoped = perf.PerfRecorder()
        before = perf.get_recorder()
        with perf.use_recorder(scoped):
            assert perf.get_recorder() is scoped
            with perf.stage("x"):
                pass
        assert perf.get_recorder() is before
        assert "x" in scoped.flat()
        assert "x" not in before.flat()

    def test_reset_clears(self):
        rec = perf.PerfRecorder()
        with rec.stage("x"):
            pass
        rec.reset()
        assert rec.flat() == {}


class TestPipelineWiring:
    def test_inference_reports_stages(self):
        rec = perf.PerfRecorder()
        paths = PathSet.sanitize([(10, 1, 2, 20), (20, 2, 1, 10)])
        with perf.use_recorder(rec):
            infer_relationships(paths)
        flat = rec.flat()
        assert "infer" in flat
        assert any(key.startswith("infer/") for key in flat)

    def test_scenario_run_reports_stages(self):
        from repro.scenarios import get_scenario

        rec = perf.PerfRecorder()
        with perf.use_recorder(rec):
            get_scenario("tiny").run()
        flat = rec.flat()
        for stage in ("generate", "collect", "sanitize", "infer"):
            assert stage in flat, flat


class TestThreadSafety:
    def test_concurrent_counters_sum_exactly(self):
        import threading

        rec = perf.PerfRecorder()
        rounds = 2000

        def work():
            with rec.stage("worker"):
                for _ in range(rounds):
                    rec.counter("ticks")
                    rec.add_seconds("busy", 0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert rec.counters()["worker/ticks"] == 8 * rounds
        assert abs(rec.flat()["worker/busy"] - 8 * rounds * 0.001) < 1e-6

    def test_each_thread_gets_its_own_stage_stack(self):
        import threading

        rec = perf.PerfRecorder()
        barrier = threading.Barrier(2)

        def left():
            with rec.stage("left"):
                barrier.wait()
                with rec.stage("inner"):
                    barrier.wait()

        def right():
            with rec.stage("right"):
                barrier.wait()
                with rec.stage("inner"):
                    barrier.wait()

        threads = [
            threading.Thread(target=left),
            threading.Thread(target=right),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        flat = rec.flat()
        # each thread nests "inner" under its own top-level stage — the
        # stacks never bleed into each other
        assert set(flat) == {"left", "right", "left/inner", "right/inner"}

    def test_snapshot_does_not_mutate(self):
        rec = perf.PerfRecorder()
        with rec.stage("a"):
            rec.counter("n")
        first = rec.snapshot()
        first["a"]["counters"]["n"] = 999
        first["a"]["ghost"] = {}
        second = rec.snapshot()
        assert second["a"]["counters"] == {"n": 1}
        assert "ghost" not in second["a"]

    def test_module_snapshot_is_detached_view(self):
        rec = perf.PerfRecorder()
        with perf.use_recorder(rec):
            with perf.stage("x"):
                pass
            snap = perf.snapshot()
        assert "x" in snap
        snap["x"]["seconds"] = -1.0
        assert rec.snapshot()["x"]["seconds"] >= 0.0


class TestAddSeconds:
    def test_accumulates_under_open_stage(self):
        rec = perf.PerfRecorder()
        with rec.stage("collect"):
            rec.add_seconds("propagate", 0.25)
            rec.add_seconds("propagate", 0.5)
            rec.add_seconds("noise", 0.1)
        flat = rec.flat()
        assert flat["collect/propagate"] == 0.75
        assert flat["collect/noise"] == 0.1

    def test_counts_each_deposit_as_a_call(self):
        rec = perf.PerfRecorder()
        with rec.stage("collect"):
            rec.add_seconds("rib", 0.1)
            rec.add_seconds("rib", 0.2)
        assert rec.snapshot()["collect"]["children"]["rib"]["calls"] == 2

    def test_module_level_helper_uses_active_recorder(self):
        rec = perf.PerfRecorder()
        with perf.use_recorder(rec):
            with perf.stage("collect"):
                perf.add_seconds("paths", 0.05)
        assert rec.flat()["collect/paths"] == 0.05

    def test_collector_reports_substages(self):
        from repro.bgp.collector import Collector, CollectorConfig
        from repro.topology.generator import (
            GeneratorConfig,
            generate_topology,
        )

        graph = generate_topology(GeneratorConfig(n_ases=60, seed=2))
        rec = perf.PerfRecorder()
        with perf.use_recorder(rec):
            Collector(graph, CollectorConfig(n_vps=6, seed=3)).run()
        flat = rec.flat()
        for substage in ("propagate", "paths", "noise", "rib"):
            assert f"collect/{substage}" in flat, flat
        substage_sum = sum(
            v for k, v in flat.items() if k.startswith("collect/")
        )
        assert substage_sum <= flat["collect"]
