"""Tests for the legacy TABLE_DUMP (v1) codec and AS4_PATH merging."""

import io
import struct

import pytest
from hypothesis import given, strategies as st

from repro.mrt import constants as c
from repro.mrt.reader import MrtReader, RibRecord, decode_attributes, merge_as4_path
from repro.mrt.writer import MrtWriter, encode_attributes
from repro.net.prefix import Prefix


def roundtrip_v1(entries):
    stream = io.BytesIO()
    writer = MrtWriter(stream, timestamp=42)
    for prefix, peer_asn, path, communities in entries:
        writer.write_table_dump_entry(prefix, peer_asn, path, communities)
    stream.seek(0)
    return [r for r in MrtReader(stream) if isinstance(r, RibRecord)]


class TestTableDumpV1:
    def test_basic_round_trip(self):
        prefix = Prefix.parse("192.0.2.0/24")
        records = roundtrip_v1([(prefix, 6447, (6447, 3356, 20115), ())])
        assert len(records) == 1
        record = records[0]
        assert record.prefix == prefix
        assert record.peer_asn == 6447
        assert record.as_path == (6447, 3356, 20115)

    def test_communities_round_trip(self):
        prefix = Prefix.parse("10.0.0.0/8")
        communities = ((3356, 1001), (174, 1002))
        records = roundtrip_v1([(prefix, 1, (1, 2), communities)])
        assert records[0].communities == communities

    def test_no_peer_index_needed(self):
        # v1 records are self-contained: no PEER_INDEX_TABLE required
        records = roundtrip_v1([(Prefix.parse("10.0.0.0/8"), 1, (1,), ())])
        assert records[0].peer_asn == 1

    def test_multiple_records(self):
        entries = [
            (Prefix.parse("10.0.0.0/8"), 1, (1, 2), ()),
            (Prefix.parse("192.0.2.0/24"), 3, (3, 4, 5), ()),
        ]
        records = roundtrip_v1(entries)
        assert [r.prefix for r in records] == [e[0] for e in entries]

    def test_truncated_record_raises(self):
        stream = io.BytesIO()
        writer = MrtWriter(stream)
        writer.write_table_dump_entry(Prefix.parse("10.0.0.0/8"), 1, (1, 2))
        data = stream.getvalue()
        # shrink the body but keep the header length field intact → the
        # reader must notice the truncation
        with pytest.raises(c.MrtFormatError):
            list(MrtReader(io.BytesIO(data[:-1])))

    def test_mixed_v1_v2_stream(self):
        stream = io.BytesIO()
        writer = MrtWriter(stream)
        writer.write_table_dump_entry(Prefix.parse("10.0.0.0/8"), 1, (1, 2))
        writer.write_peer_index_table([5])
        writer.write_rib_entry(Prefix.parse("192.0.2.0/24"), [(5, (5, 6), ())])
        stream.seek(0)
        records = [r for r in MrtReader(stream) if isinstance(r, RibRecord)]
        assert len(records) == 2
        assert records[0].as_path == (1, 2)
        assert records[1].as_path == (5, 6)


class TestAs4Path:
    def test_wide_asn_substituted_and_recovered(self):
        # 4-byte ASN 196608 cannot ride a 2-byte AS_PATH: AS_TRANS goes
        # on the wire and AS4_PATH carries the truth
        path = (6447, 196608, 20115)
        blob = encode_attributes(path, asn_size=2)
        decoded, _ = decode_attributes(blob, asn_size=2)
        assert decoded == path

    def test_wire_path_has_as_trans_without_merge(self):
        path = (6447, 196608, 20115)
        blob = encode_attributes(path, asn_size=2)
        # decoding at 2 bytes *without* AS4 merging is simulated by
        # checking the raw AS_PATH attribute contains AS_TRANS
        from repro.mrt.reader import decode_as_path

        # find the AS_PATH attribute value by re-parsing manually
        offset = 0
        raw_path = None
        while offset < len(blob):
            flags, type_code = blob[offset], blob[offset + 1]
            offset += 2
            if flags & c.FLAG_EXTENDED_LENGTH:
                (length,) = struct.unpack("!H", blob[offset:offset + 2])
                offset += 2
            else:
                length = blob[offset]
                offset += 1
            value = blob[offset:offset + length]
            offset += length
            if type_code == c.ATTR_AS_PATH:
                raw_path = decode_as_path(value, 2)
        assert raw_path == (6447, c.AS_TRANS, 20115)

    def test_no_as4_attribute_for_narrow_paths(self):
        blob = encode_attributes((1, 2, 3), asn_size=2)
        # no byte pair encodes attribute type 17 at an attribute boundary
        decoded, _ = decode_attributes(blob, asn_size=2)
        assert decoded == (1, 2, 3)
        assert c.AS_TRANS not in decoded

    def test_merge_rule_replaces_tail(self):
        assert merge_as4_path((1, c.AS_TRANS, 3), (99999, 3)) == (1, 99999, 3)

    def test_merge_rule_ignores_oversized_as4(self):
        assert merge_as4_path((1, 2), (7, 8, 9)) == (1, 2)

    def test_merge_rule_empty_as4(self):
        assert merge_as4_path((1, 2), ()) == (1, 2)

    def test_v1_record_with_wide_asn(self):
        prefix = Prefix.parse("10.0.0.0/8")
        records = roundtrip_v1([(prefix, 1, (1, 262144, 3), ())])
        assert records[0].as_path == (1, 262144, 3)


asn2 = st.integers(min_value=1, max_value=0xFFFF)
asn_any = st.integers(min_value=1, max_value=2**32 - 1)


@given(st.lists(asn2, min_size=1, max_size=10).map(tuple))
def test_v1_roundtrip_property_narrow(path):
    records = roundtrip_v1([(Prefix.parse("10.0.0.0/8"), path[0], path, ())])
    assert records[0].as_path == path


@given(st.lists(asn_any, min_size=1, max_size=10).map(tuple))
def test_v1_roundtrip_property_wide(path):
    # AS4_PATH reconstruction must recover any mix of ASN widths
    records = roundtrip_v1([(Prefix.parse("10.0.0.0/8"), 1, path, ())])
    assert records[0].as_path == path
