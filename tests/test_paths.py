"""Unit tests for path sanitization and degree computation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.paths import (
    PathSet,
    compress_prepending,
    has_loop,
    is_reserved_asn,
)


class TestReservedAsns:
    @pytest.mark.parametrize(
        "asn", [0, 23456, 64496, 64511, 64512, 65000, 65534, 65535,
                65536, 65551, 4200000000, 4294967295]
    )
    def test_reserved(self, asn):
        assert is_reserved_asn(asn)

    @pytest.mark.parametrize("asn", [1, 100, 3356, 64495, 65552, 100000])
    def test_not_reserved(self, asn):
        assert not is_reserved_asn(asn)


class TestCompress:
    def test_removes_adjacent_duplicates(self):
        assert compress_prepending((1, 1, 2, 2, 2, 3)) == (1, 2, 3)

    def test_identity_when_clean(self):
        assert compress_prepending((1, 2, 3)) == (1, 2, 3)

    def test_keeps_nonadjacent_duplicates(self):
        assert compress_prepending((1, 2, 1)) == (1, 2, 1)

    def test_empty(self):
        assert compress_prepending(()) == ()

    @given(st.lists(st.integers(min_value=1, max_value=50), max_size=20))
    def test_idempotent(self, path):
        once = compress_prepending(path)
        assert compress_prepending(once) == once


class TestLoops:
    def test_loop_detected(self):
        assert has_loop((1, 2, 3, 1))

    def test_clean_path(self):
        assert not has_loop((1, 2, 3))


class TestSanitize:
    def test_clean_paths_kept(self):
        ps = PathSet.sanitize([(1, 2, 3), (1, 2, 4)])
        assert len(ps) == 2
        assert ps.stats.kept == 2

    def test_prepending_compressed_and_counted(self):
        ps = PathSet.sanitize([(1, 2, 2, 3)])
        assert ps.paths == [(1, 2, 3)]
        assert ps.stats.prepending_compressed == 1

    def test_loops_discarded(self):
        ps = PathSet.sanitize([(1, 2, 1, 3)])
        assert len(ps) == 0
        assert ps.stats.discarded_loops == 1

    def test_reserved_asn_discarded(self):
        ps = PathSet.sanitize([(1, 64512, 3)])
        assert len(ps) == 0
        assert ps.stats.discarded_reserved_asn == 1

    def test_ixp_hop_spliced(self):
        ps = PathSet.sanitize([(1, 99, 2)], ixp_asns=frozenset({99}))
        assert ps.paths == [(1, 2)]
        assert ps.stats.ixp_hops_removed == 1

    def test_ixp_splice_may_expose_prepending(self):
        # 1 99 1 2 → removing 99 leaves 1 1 2 → compressed to 1 2
        ps = PathSet.sanitize([(1, 99, 1, 2)], ixp_asns=frozenset({99}))
        assert ps.paths == [(1, 2)]

    def test_duplicates_merged(self):
        ps = PathSet.sanitize([(1, 2, 3), (1, 2, 3)])
        assert len(ps) == 1
        assert ps.counts[(1, 2, 3)] == 2
        assert ps.stats.duplicates_merged == 1

    def test_single_hop_dropped(self):
        ps = PathSet.sanitize([(1,), (1, 1)])
        assert len(ps) == 0

    def test_empty_input(self):
        ps = PathSet.sanitize([])
        assert len(ps) == 0
        assert ps.stats.input_paths == 0

    def test_stats_rows_cover_all_counters(self):
        ps = PathSet.sanitize([(1, 2, 3)])
        names = [name for name, _ in ps.stats.as_rows()]
        assert "input paths" in names and "kept (unique)" in names


class TestDegrees:
    @pytest.fixture
    def ps(self):
        return PathSet.sanitize(
            [
                (10, 20, 30),  # 20 transits between 10 and 30
                (10, 20, 40),
                (50, 20, 30),
                (10, 60),  # 60 only at the edge
            ]
        )

    def test_node_degree(self, ps):
        assert ps.node_degree(20) == 4  # 10, 30, 40, 50
        assert ps.node_degree(10) == 2  # 20, 60

    def test_transit_degree_counts_middle_only(self, ps):
        assert ps.transit_degree(20) == 4
        assert ps.transit_degree(60) == 0
        assert ps.transit_degree(10) == 0

    def test_transit_degrees_mapping(self, ps):
        td = ps.transit_degrees()
        assert td[20] == 4 and td[60] == 0

    def test_ranked_order(self, ps):
        ranked = ps.ranked_asns()
        assert ranked[0] == 20
        # ties broken by node degree then ASN
        assert ranked.index(10) < ranked.index(50)

    def test_asns_and_links(self, ps):
        assert ps.asns() == {10, 20, 30, 40, 50, 60}
        assert (10, 20) in ps.links()
        assert (10, 60) in ps.links()

    def test_triples(self, ps):
        triples = list(ps.triples())
        assert (10, 20, 30) in triples
        assert len(triples) == 3

    def test_filtered_shares_stats(self, ps):
        sub = ps.filtered([(10, 20, 30)])
        assert len(sub) == 1
        assert sub.stats is ps.stats
        assert sub.transit_degree(20) == 2


class TestMemoization:
    """PathSet is immutable: corpus-wide scans are computed once."""

    @pytest.fixture
    def ps(self):
        return PathSet([(10, 20, 30), (10, 20, 40)])

    def test_asns_cached(self, ps):
        assert ps.asns() is ps.asns()

    def test_links_cached(self, ps):
        assert ps.links() is ps.links()

    def test_ranked_cached(self, ps):
        assert ps.ranked_asns() is ps.ranked_asns()

    def test_filtered_does_not_share_caches(self, ps):
        ps.asns()
        ps.links()
        sub = ps.filtered([(10, 20, 30)])
        assert sub.asns() == {10, 20, 30}
        assert sub.links() == {(10, 20), (20, 30)}
        # and the parent's caches are untouched
        assert ps.asns() == {10, 20, 30, 40}

    def test_empty_corpus(self):
        empty = PathSet([])
        assert empty.asns() == set()
        assert empty.links() == set()
        assert empty.ranked_asns() == []
