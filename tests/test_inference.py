"""Unit tests for the ASRank inference pipeline, step by step.

Each test builds a tiny hand-crafted path corpus that isolates one
heuristic, then checks the resulting labels and attribution.
"""

import pytest

from repro.core.inference import (
    InferenceConfig,
    Step,
    infer_relationships,
)
from repro.core.paths import PathSet
from repro.relationships import Relationship


def run(paths, **config_kwargs):
    defaults = dict(
        clique_seed_size=3,
        enable_partial_vp=False,  # most unit corpora are tiny; avoid the
        # partial-feed detector seeing every synthetic VP as partial
    )
    defaults.update(config_kwargs)
    return infer_relationships(
        PathSet.sanitize(paths), InferenceConfig(**defaults)
    )


# a reusable backbone: clique {1,2,3} with two customer trees
BACKBONE = [
    # kid, top, other-top, other-kid (collector order: ascend then descend)
    (10, 1, 2, 12),
    (10, 1, 3, 14),
    (12, 2, 1, 10),
    (12, 2, 3, 14),
    (14, 3, 1, 10),
    (14, 3, 2, 12),
]


class TestCliqueStep:
    def test_clique_links_p2p(self):
        result = run(BACKBONE)
        assert result.relationship(1, 2) is Relationship.P2P
        assert result.step_of(1, 2) is Step.S3_CLIQUE
        assert result.relationship(2, 3) is Relationship.P2P

    def test_clique_disabled(self):
        result = run(BACKBONE, enable_clique=False)
        assert result.clique.members == []


class TestPoisonedFilter:
    def test_nonadjacent_clique_members_discarded(self):
        # 1 and 3 separated by non-clique 50: poisoned
        poisoned = (10, 1, 50, 3, 14)
        result = run(BACKBONE + [poisoned])
        assert result.discarded_poisoned == 1
        assert poisoned not in result.paths.paths

    def test_three_clique_members_discarded(self):
        leak = (10, 1, 2, 3, 14)
        result = run(BACKBONE + [leak])
        assert result.discarded_poisoned == 1

    def test_filter_disabled(self):
        poisoned = (10, 1, 50, 3, 14)
        result = run(BACKBONE + [poisoned], enable_poisoned_filter=False)
        assert result.discarded_poisoned == 0


class TestTopDown:
    def test_descent_beyond_peak_neighbor_is_p2c(self):
        # path 10,1,2,12: peak is 1 or 2 (clique); link 2-12 descends
        result = run(BACKBONE)
        assert result.relationship(2, 12) is Relationship.P2C
        assert result.provider_of(2, 12) == 2

    def test_vp_side_descends_toward_vp(self):
        # link 10-1: 10 is one hop from peak → handled; but a longer
        # tail 9,10,1,... makes 10 provide for 9
        paths = BACKBONE + [(9, 10, 1, 2, 12), (12, 2, 1, 10, 9)]
        result = run(paths)
        assert result.provider_of(9, 10) == 10

    def test_peak_adjacent_link_resolved_by_fold_crossing(self):
        # 1 (clique) provides for 20; paths crossing 2→1→20 descend into
        # 20 because the route entered 1 from a peer
        paths = BACKBONE + [(12, 2, 1, 20), (10, 1, 20)]
        result = run(paths)
        assert result.provider_of(1, 20) == 1


class TestFold:
    def test_descent_propagates_forward(self):
        # after the peer crossing everything descends: 2-12 p2c known,
        # then 12-40 must also be p2c
        paths = BACKBONE + [(10, 1, 2, 12, 40)]
        result = run(paths)
        assert result.provider_of(12, 40) == 12
        # the deep link is attributed to topdown or fold depending on
        # sweep order; both are descent inferences
        assert result.step_of(12, 40) in (Step.S5_TOPDOWN, Step.S6_FOLD)

    def test_ascent_propagates_backward(self):
        paths = BACKBONE + [(41, 10, 1, 2, 12)]
        result = run(paths)
        assert result.provider_of(41, 10) == 10

    def test_fold_disabled_leaves_link_open(self):
        paths = [(50, 60, 70), (70, 60, 50)]
        without = run(paths, enable_clique=False, enable_fold=False,
                      enable_topdown=False, enable_providerless=False,
                      enable_degree_gap=False, enable_stub=False)
        # with no heuristics at all the links default to p2p
        assert without.relationship(50, 60) is Relationship.P2P


class TestStub:
    def test_stub_attached_to_clique_is_customer(self):
        # 30 appears only at path ends next to clique member 1
        paths = BACKBONE + [(12, 2, 1, 30), (14, 3, 1, 30)]
        result = run(paths, enable_fold=False, enable_topdown=False,
                     enable_degree_gap=False, enable_providerless=False)
        assert result.provider_of(1, 30) == 1
        assert result.step_of(1, 30) is Step.S7_STUB

    def test_stub_next_to_nonclique_not_labeled_by_stub_step(self):
        paths = BACKBONE + [(12, 2, 1, 10, 31)]
        result = run(paths, enable_fold=False, enable_topdown=False,
                     enable_degree_gap=False, enable_providerless=False)
        assert result.step_of(10, 31) is not Step.S7_STUB


class TestDegreeGap:
    def test_huge_ratio_implies_transit(self):
        # 100 transits for many; 200 is tiny and unclassified
        paths = [(i, 100, 200) for i in range(1, 12)]
        paths += [(i, 100, j) for i in range(1, 12) for j in range(300, 306)]
        result = run(paths, enable_clique=False, enable_topdown=False,
                     enable_fold=False, enable_stub=False,
                     enable_providerless=False)
        assert result.provider_of(100, 200) == 100
        assert result.step_of(100, 200) is Step.S7B_GAP

    def test_comparable_sizes_untouched(self):
        paths = [(1, 100, 200), (2, 200, 100)]
        result = run(paths, enable_clique=False, enable_topdown=False,
                     enable_fold=False, enable_stub=False,
                     enable_providerless=False)
        assert result.step_of(100, 200) is Step.S9_REMAINING_P2P


class TestProviderless:
    def test_orphan_gets_highest_ranked_neighbor(self):
        # 77 only ever appears at the VP end: no provider inferred for it
        paths = BACKBONE + [(77, 10, 1, 2, 12)]
        result = run(paths, enable_degree_gap=False)
        if result.step_of(77, 10) is Step.S8_PROVIDERLESS:
            assert result.provider_of(77, 10) == 10

    def test_clique_members_never_get_providers(self):
        result = run(BACKBONE)
        for member in result.clique.members:
            assert not result.providers_of_asn(member)


class TestRemaining:
    def test_unclassified_defaults_to_p2p(self):
        paths = [(50, 60), (60, 50)]
        result = run(paths, enable_clique=False, enable_providerless=False,
                     enable_degree_gap=False)
        assert result.relationship(50, 60) is Relationship.P2P
        assert result.step_of(50, 60) is Step.S9_REMAINING_P2P

    def test_every_observed_link_labeled(self):
        result = run(BACKBONE + [(9, 10, 1, 3, 14, 15)])
        for a, b in result.paths.links():
            assert result.relationship(a, b) is not None


class TestPartialVp:
    def test_partial_vp_paths_are_customer_chains(self):
        # VP 5 sees only its own tiny cone; VPs 10/12/14 see everything
        full = BACKBONE + [
            (10, 1, 2, 12), (10, 1, 3, 14),
            (10, 1, 60), (12, 2, 60), (14, 3, 60),
        ]
        partial = [(5, 6), (5, 6, 7)]
        result = infer_relationships(
            PathSet.sanitize(full + partial),
            InferenceConfig(clique_seed_size=3, enable_partial_vp=True,
                            partial_vp_coverage=0.4),
        )
        assert result.provider_of(5, 6) == 5
        assert result.step_of(5, 6) is Step.S4B_PARTIAL_VP
        assert result.provider_of(6, 7) == 6


class TestSafety:
    def test_no_provider_cycles(self, small_run):
        result = small_run.result
        # walk the inferred p2c DAG: must be acyclic
        WHITE, GRAY, BLACK = 0, 1, 2
        state = {}

        def dfs(start):
            stack = [(start, iter(result.customers.get(start, ())))]
            state[start] = GRAY
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    mark = state.get(nxt, WHITE)
                    assert mark != GRAY, "provider cycle inferred"
                    if mark == WHITE:
                        state[nxt] = GRAY
                        stack.append((nxt, iter(result.customers.get(nxt, ()))))
                        advanced = True
                        break
                if not advanced:
                    state[node] = BLACK
                    stack.pop()

        for asn in result.paths.asns():
            if state.get(asn, WHITE) == WHITE:
                dfs(asn)

    def test_conflicts_recorded_not_silent(self):
        # two paths claiming opposite directions for 60-70
        paths = [(50, 60, 70), (80, 70, 60)] * 3
        paths += [(50, 60, i) for i in range(100, 110)]
        paths += [(80, 70, i) for i in range(200, 210)]
        result = run(paths, enable_clique=False)
        total_claims = len(result) + len(result.conflicts)
        assert total_claims >= len(result)

    def test_complex_candidates_surface_conflicted_pairs(self):
        paths = [(50, 60, 70), (80, 70, 60)] * 3
        paths += [(50, 60, i) for i in range(100, 110)]
        paths += [(80, 70, i) for i in range(200, 210)]
        result = run(paths, enable_clique=False)
        candidates = result.complex_candidates()
        assert sum(candidates.values()) == len(result.conflicts)
        if candidates:
            assert (60, 70) in candidates

    def test_clique_members_refuse_providers(self):
        """The transit-free assumption is enforced: no vote can give a
        clique member a provider."""
        result = run(BACKBONE + [(9, 10, 1, 2, 12)])
        for member in result.clique.members:
            assert not result.providers_of_asn(member)
        # and it holds on realistic data too (regression: a fold vote
        # once gave a clique member a provider)

    def test_counts_by_step_partition(self, small_run):
        result = small_run.result
        assert sum(result.counts_by_step().values()) == len(result)

    def test_counts_by_relationship_partition(self, small_run):
        result = small_run.result
        assert sum(result.counts_by_relationship().values()) == len(result)

    def test_every_sanitized_link_labeled(self, small_run):
        result = small_run.result
        for a, b in result.paths.links():
            assert result.relationship(a, b) is not None
