"""The shared-memory graph codec and the zero-copy collection path."""

from __future__ import annotations

import gc
import os
import weakref
from dataclasses import replace

import pytest

import repro.graph.shm as shm_module
from repro.bgp.collector import Collector, CollectorConfig, shutdown_pool
from repro.bgp.noise import NoiseConfig
from repro.bgp.propagation import GraphIndex
from repro.graph import (
    HAS_SHARED_MEMORY,
    SharedGraphIndex,
    SharedMemoryUnavailable,
    SharedRelGraph,
)
from repro.topology.generator import GeneratorConfig, generate_topology

pytestmark = pytest.mark.skipif(
    not HAS_SHARED_MEMORY,
    reason="needs numpy and multiprocessing.shared_memory",
)


@pytest.fixture(scope="module")
def graph():
    return generate_topology(GeneratorConfig(n_ases=160, seed=5))


@pytest.fixture(scope="module")
def index(graph):
    return GraphIndex(graph)


def _corpus_key(corpus):
    return (
        corpus.paths,
        corpus.path_counts,
        [(r.vp, r.prefix, r.path, r.communities) for r in corpus.rib],
    )


def _shm_entries():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return set()
    return {f for f in os.listdir("/dev/shm") if f.startswith("repro_rg_")}


class TestSharedRelGraphCodec:
    def test_round_trip_adjacency(self, graph, index):
        packed = SharedRelGraph.pack(index.rel, via_ixp=graph.via_ixp)
        try:
            attached = SharedRelGraph.attach(packed.name)
            view = SharedGraphIndex(attached)
            assert view.asns == index.asns
            assert view.index == index.index
            for i in range(len(index)):
                assert list(view.providers[i]) == index.providers[i]
                assert list(view.customers[i]) == index.customers[i]
                assert list(view.peers[i]) == index.peers[i]
            assert view.via_ixp == graph.via_ixp
            attached.close()
        finally:
            packed.unlink()

    def test_round_trip_closure_bitsets(self, index):
        packed = SharedRelGraph.pack(index.rel, include_closure=True)
        try:
            attached = SharedRelGraph.attach(packed.name)
            assert attached.closure_bits() == list(index.rel.closure())
            attached.close()
        finally:
            packed.unlink()

    def test_closure_not_packed_by_default(self, index):
        packed = SharedRelGraph.pack(index.rel)
        try:
            assert packed.closure_bits() is None
            assert packed.via_ixp() == {}
        finally:
            packed.unlink()

    def test_sections_are_read_only(self, index):
        packed = SharedRelGraph.pack(index.rel)
        try:
            arr = packed.section("asns")
            with pytest.raises(ValueError):
                arr[0] = 0
        finally:
            packed.unlink()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        alien = shared_memory.SharedMemory(create=True, size=64)
        try:
            with pytest.raises(ValueError, match="not a packed RelGraph"):
                SharedRelGraph.attach(alien.name)
        finally:
            alien.close()
            alien.unlink()

    def test_unlink_removes_dev_shm_entry(self, index):
        packed = SharedRelGraph.pack(index.rel)
        name = packed.name
        assert name in _shm_entries()
        packed.unlink()
        assert name not in _shm_entries()
        packed.unlink()  # idempotent

    def test_unlink_all_sweeps_owned_segments(self, index):
        names = [SharedRelGraph.pack(index.rel).name for _ in range(3)]
        assert set(names) <= _shm_entries()
        shm_module.unlink_all()
        assert not (set(names) & _shm_entries())


class TestSharedMemoryCollection:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_bit_identical_to_serial(self, graph, workers):
        base = CollectorConfig(n_vps=8, seed=11, n_route_leakers=2)
        serial = Collector(graph, base).run()
        col = Collector(graph, replace(base, workers=workers))
        assert _corpus_key(col.run()) == _corpus_key(serial)
        if workers > 1:
            # the zero-copy transport actually ran
            assert col._shared_segment is not None

    def test_noise_free_shared_matches_serial(self, graph):
        base = CollectorConfig(n_vps=8, seed=3, noise=NoiseConfig.none())
        serial = Collector(graph, base).run()
        parallel = Collector(
            graph, replace(base, workers=2, shared_memory=True)
        ).run()
        assert _corpus_key(parallel) == _corpus_key(serial)

    def test_transport_choice_never_changes_corpus(self, graph):
        base = CollectorConfig(n_vps=8, seed=11, workers=2)
        via_shm = Collector(graph, replace(base, shared_memory=True)).run()
        via_pickle = Collector(
            graph, replace(base, shared_memory=False)
        ).run()
        assert _corpus_key(via_shm) == _corpus_key(via_pickle)

    def test_pickle_transport_packs_no_segment(self, graph):
        col = Collector(
            graph,
            CollectorConfig(n_vps=8, seed=11, workers=2, shared_memory=False),
        )
        col.run()
        assert col._shared_segment is None

    def test_segment_reused_across_runs(self, graph):
        col = Collector(graph, CollectorConfig(n_vps=8, seed=11, workers=2))
        col.run()
        first = col._shared_segment
        assert first is not None
        col.run()
        assert col._shared_segment == first

    def test_collector_gc_unlinks_segment(self, graph):
        col = Collector(graph, CollectorConfig(n_vps=8, seed=11, workers=2))
        col.run()
        name = col._shared_segment
        assert name in _shm_entries()
        del col
        gc.collect()
        assert name not in _shm_entries()

    def test_release_shared_is_explicit_and_idempotent(self, graph):
        col = Collector(graph, CollectorConfig(n_vps=8, seed=11, workers=2))
        col.run()
        name = col._shared_segment
        col.release_shared()
        assert name not in _shm_entries()
        col.release_shared()  # no-op
        # the collector still works after releasing (repacks lazily)
        corpus = col.run()
        assert len(corpus.paths) > 0

    def test_shutdown_pool_leaves_no_segments(self, graph):
        Collector(graph, CollectorConfig(n_vps=8, seed=11, workers=2)).run()
        shutdown_pool()
        assert not _shm_entries()


class TestGracefulFallback:
    def test_pack_raises_without_shared_memory(self, index, monkeypatch):
        monkeypatch.setattr(shm_module, "HAS_SHARED_MEMORY", False)
        with pytest.raises(SharedMemoryUnavailable):
            SharedRelGraph.pack(index.rel)

    def test_collector_falls_back_to_pickle_transport(self, graph, monkeypatch):
        monkeypatch.setattr(shm_module, "HAS_SHARED_MEMORY", False)
        base = CollectorConfig(n_vps=8, seed=11)
        serial = Collector(graph, base).run()
        # auto and even forced-on shared memory degrade to pickling
        for forced in (None, True):
            col = Collector(
                graph, replace(base, workers=2, shared_memory=forced)
            )
            assert _corpus_key(col.run()) == _corpus_key(serial)
            assert col._shared_segment is None

    def test_weakref_finalizer_survives_fallback(self, graph, monkeypatch):
        monkeypatch.setattr(shm_module, "HAS_SHARED_MEMORY", False)
        col = Collector(graph, CollectorConfig(n_vps=8, seed=11, workers=2))
        col.run()
        ref = weakref.ref(col)
        del col
        gc.collect()
        assert ref() is None
