"""Tests for the high-level ASRank facade."""

import os

import pytest

from repro.asrank import ASRank
from repro.core.cone import ConeDefinition
from repro.datasets import load_as_rel, load_ppdc_ases, save_paths
from repro.mrt.updates import write_update_dump
from repro.mrt.writer import write_rib_dump
from repro.relationships import Relationship


BACKBONE = [
    (10, 1, 2, 12),
    (10, 1, 3, 14),
    (12, 2, 1, 10),
    (12, 2, 3, 14),
    (14, 3, 1, 10),
    (14, 3, 2, 12),
]


class TestConstruction:
    def test_from_paths(self):
        asrank = ASRank.from_paths(BACKBONE)
        assert asrank.relationship(1, 2) is Relationship.P2P
        assert set(asrank.clique) == {1, 2, 3}

    def test_from_path_file(self, tmp_path):
        file_path = str(tmp_path / "paths.txt")
        save_paths(file_path, BACKBONE)
        asrank = ASRank.from_path_file(file_path)
        assert asrank.relationship(2, 12) is Relationship.P2C

    def test_from_mrt_rib(self, tmp_path, small_run):
        mrt = str(tmp_path / "rib.mrt")
        write_rib_dump(mrt, small_run.corpus.rib)
        asrank = ASRank.from_mrt(mrt, ixp_asns=small_run.graph.ixp_asns())
        original = {
            (min(a, b), max(a, b)): small_run.result.relationship(a, b)
            for a, b in small_run.result.links()
        }
        via_facade = {
            (min(a, b), max(a, b)): asrank.relationship(a, b)
            for a, b in asrank.result.links()
        }
        assert via_facade == original
        # prefix data flows in from the dump: address cones work
        top = asrank.rank(limit=1)[0]
        assert top.cone_addresses is not None and top.cone_addresses > 0

    def test_from_mrt_updates(self, tmp_path, small_run):
        mrt = str(tmp_path / "updates.mrt")
        write_update_dump(mrt, small_run.corpus.rib)
        asrank = ASRank.from_mrt(mrt, ixp_asns=small_run.graph.ixp_asns())
        assert set(asrank.clique) == set(small_run.result.clique.members)

    def test_from_mrt_snapshot_plus_reannouncements_dedups(
        self, tmp_path, small_run
    ):
        """Updates re-announcing snapshot routes must not double-count."""
        snap_only = str(tmp_path / "snap.mrt")
        write_rib_dump(snap_only, small_run.corpus.rib)
        combined = str(tmp_path / "combined.mrt")
        write_rib_dump(combined, small_run.corpus.rib)
        with open(combined, "ab") as out, open(
            str(tmp_path / "upd.mrt"), "wb+"
        ) as upd:
            write_update_dump(upd.name, small_run.corpus.rib)
            upd.seek(0)
            out.write(upd.read())
        a = ASRank.from_mrt(snap_only, ixp_asns=small_run.graph.ixp_asns())
        b = ASRank.from_mrt(combined, ixp_asns=small_run.graph.ixp_asns())
        assert len(b.paths) == len(a.paths)
        assert sorted(b.paths.paths) == sorted(a.paths.paths)

    def test_from_mrt_honors_withdrawals(self, tmp_path, small_run):
        """Withdraw-everything updates after a snapshot empty the table."""
        from repro.mrt.writer import MrtWriter

        mrt = str(tmp_path / "churn.mrt")
        write_rib_dump(mrt, small_run.corpus.rib)
        with open(mrt, "ab") as stream:
            writer = MrtWriter(stream)
            for entry in small_run.corpus.rib:
                writer.write_bgp4mp_update(
                    peer_asn=entry.vp, local_asn=64700, as_path=(),
                    announced=(), withdrawn=(entry.prefix,),
                )
        asrank = ASRank.from_mrt(mrt, ixp_asns=small_run.graph.ixp_asns())
        assert len(asrank.paths) == 0


class TestQueries:
    @pytest.fixture(scope="class")
    def asrank(self):
        return ASRank.from_paths(BACKBONE + [(12, 2, 1, 10, 11)])

    def test_neighbor_sets(self, asrank):
        assert 11 in asrank.customers(10)
        assert 10 in asrank.providers(11)
        assert 2 in asrank.peers(1)

    def test_cone_definitions_cached(self, asrank):
        a = asrank.cones(ConeDefinition.RECURSIVE)
        b = asrank.cones(ConeDefinition.RECURSIVE)
        assert a is b

    def test_customer_cone(self, asrank):
        assert asrank.customer_cone(10) >= {10, 11}

    def test_rank(self, asrank):
        entries = asrank.rank(limit=3)
        assert len(entries) == 3
        assert entries[0].cone_ases >= entries[-1].cone_ases

    def test_predict(self, asrank):
        report = asrank.predict()
        assert report.compared > 0
        assert report.exact_rate > 0.5

    def test_inference_lazy_and_cached(self):
        asrank = ASRank.from_paths(BACKBONE)
        assert asrank._result is None
        first = asrank.result
        assert asrank.result is first


class TestExport:
    def test_save_artifacts(self, tmp_path):
        asrank = ASRank.from_paths(BACKBONE)
        files = asrank.save(str(tmp_path), tag="demo")
        rows = load_as_rel(files["as-rel"])
        assert len(rows) == len(asrank.result)
        cones = load_ppdc_ases(files["ppdc-ases"])
        assert cones == asrank.cones().cones
