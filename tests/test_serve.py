"""Integration tests for the asyncio HTTP query service."""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.asrank import ASRank
from repro.serve.handlers import Api
from repro.serve.loadgen import LoadGenConfig, run_loadgen
from repro.serve.server import ServerThread
from repro.serve.store import SnapshotStore, save_snapshot


@pytest.fixture(scope="module")
def tiny_snapshot(tiny_run):
    facade = ASRank(tiny_run.paths)
    facade._result = tiny_run.result
    return facade.snapshot()


@pytest.fixture()
def served(tiny_snapshot, tmp_path):
    path = str(tmp_path / "tiny.snap")
    save_snapshot(tiny_snapshot, path)
    store = SnapshotStore(snapshot=tiny_snapshot, path=path)
    thread = ServerThread(store)
    host, port = thread.start()
    yield store, thread.server, host, port
    thread.stop()


def _get(host, port, target, headers=None):
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", target, headers=headers or {})
        response = conn.getresponse()
        body = response.read()
        return response.status, body, dict(response.getheaders())
    finally:
        conn.close()


class TestEndpoints:
    def test_asn_detail_matches_rank_table(self, served, tiny_run):
        store, _server, host, port = served
        snapshot = store.current
        top = snapshot.ranks(limit=1)[0]
        status, body, _ = _get(host, port, f"/asns/{top.asn}")
        assert status == 200
        payload = json.loads(body)
        assert payload["rank"] == 1
        assert payload["cone"]["ases"] == top.cone_ases
        assert payload["neighbors"]["customers"] == top.num_customers
        assert payload["snapshot"] == snapshot.version

    def test_cone_definitions_and_pagination(self, served):
        store, _server, host, port = served
        snapshot = store.current
        asn = snapshot.ranks(limit=1)[0].asn
        status, body, _ = _get(
            host, port,
            f"/asns/{asn}/cone?definition=provider%2Fpeer-observed",
        )
        assert status == 200
        full = json.loads(body)
        assert sorted(full["members"]) == full["members"]
        assert full["size"] == len(full["members"]) >= 1
        status, body, _ = _get(
            host, port, f"/asns/{asn}/cone?page=1&per_page=2"
        )
        paged = json.loads(body)
        assert paged["members"] == full["members"][:2]
        assert paged["size"] == full["size"]

    def test_link_lookup(self, served, tiny_run):
        _store, _server, host, port = served
        a, b = next(iter(tiny_run.result.links()))
        status, body, _ = _get(host, port, f"/links/{a}/{b}")
        assert status == 200
        payload = json.loads(body)
        rel = tiny_run.result.relationship(a, b)
        assert payload["relationship"] == rel.label
        assert payload["provider"] == tiny_run.result.provider_of(a, b)

    def test_ranks_pagination_covers_everything(self, served):
        store, _server, host, port = served
        snapshot = store.current
        seen = []
        page = 1
        while True:
            status, body, _ = _get(
                host, port, f"/ranks?page={page}&per_page=60"
            )
            assert status == 200
            payload = json.loads(body)
            assert payload["total"] == len(snapshot)
            if not payload["entries"]:
                break
            seen.extend(entry["asn"] for entry in payload["entries"])
            page += 1
        assert seen == [entry.asn for entry in snapshot.ranks()]

    def test_snapshot_and_healthz(self, served):
        store, _server, host, port = served
        status, body, _ = _get(host, port, "/snapshot")
        assert status == 200
        assert json.loads(body)["version"] == store.current.version
        status, body, _ = _get(host, port, "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"

    def test_errors(self, served):
        _store, _server, host, port = served
        assert _get(host, port, "/asns/999999999")[0] == 404
        assert _get(host, port, "/asns/notanumber")[0] == 400
        assert _get(host, port, "/asns/1/cone?definition=bogus")[0] == 400
        assert _get(host, port, "/ranks?page=0")[0] == 400
        assert _get(host, port, "/nope")[0] == 404
        assert _get(host, port, "/links/1")[0] == 404


class TestCachingAndEtags:
    def test_etag_304_revalidation(self, served):
        _store, _server, host, port = served
        status, body, headers = _get(host, port, "/snapshot")
        etag = headers.get("ETag")
        assert status == 200 and etag
        status, body, headers = _get(
            host, port, "/snapshot", headers={"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers.get("ETag") == etag

    def test_cache_hits_show_in_metrics(self, served):
        _store, server, host, port = served
        for _ in range(3):
            _get(host, port, "/ranks?page=1&per_page=5")
        status, body, _ = _get(host, port, "/metrics")
        assert status == 200
        metrics = json.loads(body)
        assert metrics["cache"]["hits"] >= 2
        assert 0.0 <= metrics["cache"]["hit_rate"] <= 1.0
        assert "ranks" in metrics["routes"]
        assert metrics["routes"]["ranks"]["requests"] >= 1
        assert "perf" in metrics

    def test_metrics_not_cached(self, served):
        _store, _server, host, port = served
        _, first, _ = _get(host, port, "/metrics")
        _, second, _ = _get(host, port, "/metrics")
        first_count = (
            json.loads(first)["routes"].get("metrics", {}).get("requests", 0)
        )
        second_count = json.loads(second)["routes"]["metrics"]["requests"]
        assert second_count > first_count


class TestHotReload:
    def test_reload_swaps_version_atomically(self, served, small_run,
                                             tmp_path):
        store, _server, host, port = served
        old_version = store.current.version
        facade = ASRank(small_run.paths)
        facade._result = small_run.result
        new_path = str(tmp_path / "next.snap")
        save_snapshot(facade.snapshot(), new_path)
        conn = http.client.HTTPConnection(host, port, timeout=10)
        body = json.dumps({"path": new_path}).encode()
        conn.request("POST", "/admin/reload", body=body)
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 200
        assert payload["version"] != old_version
        assert store.current.version == payload["version"]
        status, body, _ = _get(host, port, "/snapshot")
        assert json.loads(body)["version"] == payload["version"]

    def test_reload_failure_keeps_serving(self, served, tmp_path):
        store, _server, host, port = served
        version = store.current.version
        bad = tmp_path / "bad.snap"
        bad.write_bytes(b"garbage")
        conn = http.client.HTTPConnection(host, port, timeout=10)
        conn.request(
            "POST", "/admin/reload",
            body=json.dumps({"path": str(bad)}).encode(),
        )
        response = conn.getresponse()
        status, payload = response.status, json.loads(response.read())
        conn.close()
        assert status == 409
        assert "error" in payload
        assert store.current.version == version
        assert _get(host, port, "/healthz")[0] == 200

    def test_reload_under_concurrent_load_zero_failures(
        self, served, small_run, tmp_path
    ):
        store, _server, host, port = served
        facade = ASRank(small_run.paths)
        facade._result = small_run.result
        new_path = str(tmp_path / "swap.snap")
        save_snapshot(facade.snapshot(), new_path)

        failures = []
        stop = threading.Event()

        def hammer():
            conn = http.client.HTTPConnection(host, port, timeout=10)
            try:
                while not stop.is_set():
                    conn.request("GET", "/snapshot")
                    response = conn.getresponse()
                    data = response.read()
                    if response.status != 200 or not data:
                        failures.append(response.status)
            except Exception as exc:
                failures.append(repr(exc))
            finally:
                conn.close()

        workers = [threading.Thread(target=hammer) for _ in range(4)]
        for worker in workers:
            worker.start()
        try:
            for _ in range(3):
                conn = http.client.HTTPConnection(host, port, timeout=10)
                conn.request(
                    "POST", "/admin/reload",
                    body=json.dumps({"path": new_path}).encode(),
                )
                assert conn.getresponse().status == 200
                conn.close()
        finally:
            stop.set()
            for worker in workers:
                worker.join(timeout=10)
        assert failures == []
        assert store.reloads >= 3


class TestLoadgen:
    def test_loadgen_round_trip(self, served):
        _store, _server, host, port = served
        report = run_loadgen(
            LoadGenConfig(host=host, port=port, requests=300,
                          connections=3, seed=7)
        )
        assert report.requests == 300
        assert report.errors == 0
        assert report.throughput > 0
        assert report.percentile(0.99) >= report.percentile(0.50) >= 0
        as_dict = report.as_dict()
        assert as_dict["requests"] == 300
        assert set(as_dict["by_route"]) <= {
            "asn", "cone", "link", "ranks", "snapshot", "healthz"
        }


class TestAdminDisabled:
    def test_admin_disabled_returns_403(self, tiny_snapshot):
        api = Api(SnapshotStore(snapshot=tiny_snapshot), allow_admin=False)
        status, payload, route, _ = api.handle(
            "POST", "/admin/reload", {}, b""
        )
        assert status == 403 and route == "admin"
