"""Tests for the IPv4/IPv6 congruence analysis."""

from repro.analysis.congruence import congruence_report
from repro.bgp.collector import Collector, CollectorConfig
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.relationships import Relationship, canonical_pair
from repro.topology.generator import GeneratorConfig, generate_topology


def _infer(seed, n_ases=100, n_vps=6):
    graph = generate_topology(GeneratorConfig(n_ases=n_ases, seed=seed))
    corpus = Collector(graph, CollectorConfig(n_vps=n_vps, seed=seed)).run()
    return infer_relationships(
        PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
    )


class _Stub:
    """Hand-built inference surface: links, labels, providers, clique.

    ``congruence_report`` documents that any object with the inference
    query surface works; this keeps the disagreement-matrix tests
    independent of what a real inference would label.
    """

    class _Clique:
        def __init__(self, members):
            self.members = members

    def __init__(self, labels, clique=()):
        # labels: {(a, b): ("p2c", provider) | ("p2p", None) | ("s2s", None)}
        self._labels = {
            canonical_pair(a, b): value for (a, b), value in labels.items()
        }
        self.clique = self._Clique(list(clique))

    def links(self):
        return list(self._labels)

    def relationship(self, a, b):
        entry = self._labels.get(canonical_pair(a, b))
        if entry is None:
            return None
        return {
            "p2c": Relationship.P2C,
            "p2p": Relationship.P2P,
            "s2s": Relationship.S2S,
        }[entry[0]]

    def provider_of(self, a, b):
        entry = self._labels.get(canonical_pair(a, b))
        if entry is None or entry[0] != "p2c":
            return None
        return entry[1]


class TestDegenerate:
    def test_empty_results(self):
        empty_a = _Stub({})
        empty_b = _Stub({})
        report = congruence_report(empty_a, empty_b)
        assert report.dual_links == 0
        assert report.v4_only == 0 and report.v6_only == 0
        assert report.congruence == 1.0
        assert report.clique_jaccard == 1.0
        assert report.disagreements == {}

    def test_disjoint_link_sets(self):
        v4 = _Stub({(1, 2): ("p2p", None), (2, 3): ("p2p", None)})
        v6 = _Stub({(4, 5): ("p2p", None)})
        report = congruence_report(v4, v6)
        assert report.dual_links == 0
        assert report.v4_only == 2
        assert report.v6_only == 1
        assert report.congruence == 1.0  # vacuous, by convention


class TestDisagreements:
    def test_label_disagreement_matrix(self):
        v4 = _Stub(
            {
                (1, 2): ("p2c", 1),  # agrees
                (2, 3): ("p2c", 2),  # v6 says p2p
                (3, 4): ("p2p", None),  # v6 says s2s
                (4, 5): ("p2p", None),  # agrees
            }
        )
        v6 = _Stub(
            {
                (1, 2): ("p2c", 1),
                (2, 3): ("p2p", None),
                (3, 4): ("s2s", None),
                (4, 5): ("p2p", None),
            }
        )
        report = congruence_report(v4, v6)
        assert report.dual_links == 4
        assert report.congruent == 2
        assert report.congruence == 0.5
        assert report.disagreements == {
            ("p2c", "p2p"): 1,
            ("p2p", "s2s"): 1,
        }
        assert report.by_relationship == {"p2c": (2, 1), "p2p": (2, 1)}

    def test_provider_direction_counts_as_disagreement(self):
        # same p2c relationship but opposite provider: not congruent,
        # yet the coarse (p2c, p2c) cell records it
        v4 = _Stub({(1, 2): ("p2c", 1)})
        v6 = _Stub({(1, 2): ("p2c", 2)})
        report = congruence_report(v4, v6)
        assert report.congruent == 0
        assert report.disagreements == {("p2c", "p2c"): 1}

    def test_clique_jaccard(self):
        v4 = _Stub({}, clique=(1, 2, 3))
        v6 = _Stub({}, clique=(2, 3, 4))
        report = congruence_report(v4, v6)
        assert report.clique_v4 == [1, 2, 3]
        assert report.clique_v6 == [2, 3, 4]
        assert report.clique_jaccard == 0.5


class TestRealResults:
    def test_identical_results_are_fully_congruent(self):
        result = _infer(seed=7)
        report = congruence_report(result, result)
        assert report.dual_links == len(result.links())
        assert report.congruent == report.dual_links
        assert report.congruence == 1.0
        assert report.v4_only == 0 and report.v6_only == 0
        assert report.clique_jaccard == 1.0
        assert not report.disagreements
        # every bucket fully agrees
        for total, agree in report.by_relationship.values():
            assert total == agree

    def test_seeded_determinism(self):
        first = congruence_report(_infer(seed=7), _infer(seed=13))
        second = congruence_report(_infer(seed=7), _infer(seed=13))
        assert first == second

    def test_different_planes_report_consistency(self):
        report = congruence_report(_infer(seed=7), _infer(seed=13))
        assert (
            sum(total for total, _ in report.by_relationship.values())
            == report.dual_links
        )
        assert (
            report.congruent + sum(report.disagreements.values())
            == report.dual_links
        )
        assert 0.0 <= report.congruence <= 1.0
        assert 0.0 <= report.clique_jaccard <= 1.0
