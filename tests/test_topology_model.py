"""Unit tests for the ground-truth AS graph model."""

import pytest

from repro.net.prefix import Prefix
from repro.relationships import Relationship, canonical_pair
from repro.topology.model import AS, ASGraph, ASType, TopologyError


def build_graph(*asns, as_type=ASType.SMALL_TRANSIT):
    graph = ASGraph()
    for asn in asns:
        graph.add_as(AS(asn=asn, type=as_type))
    return graph


class TestNodes:
    def test_add_and_get(self):
        graph = build_graph(1)
        assert graph.get_as(1).asn == 1
        assert 1 in graph
        assert len(graph) == 1

    def test_duplicate_asn_rejected(self):
        graph = build_graph(1)
        with pytest.raises(TopologyError):
            graph.add_as(AS(asn=1, type=ASType.STUB))

    def test_unknown_asn_raises(self):
        graph = build_graph(1)
        with pytest.raises(TopologyError):
            graph.get_as(2)

    def test_nonpositive_asn_rejected(self):
        with pytest.raises(TopologyError):
            AS(asn=0, type=ASType.STUB)

    def test_asns_sorted(self):
        graph = build_graph(5, 2, 9)
        assert graph.asns() == [2, 5, 9]


class TestLinks:
    def test_p2c_directions(self):
        graph = build_graph(1, 2)
        graph.add_p2c(1, 2)
        assert graph.relationship(1, 2) is Relationship.P2C
        assert graph.relationship(2, 1) is Relationship.P2C
        assert graph.provider_of(1, 2) == 1
        assert graph.provider_of(2, 1) == 1
        assert graph.customers[1] == {2}
        assert graph.providers[2] == {1}

    def test_p2p_symmetric(self):
        graph = build_graph(1, 2)
        graph.add_p2p(1, 2)
        assert graph.relationship(2, 1) is Relationship.P2P
        assert graph.provider_of(1, 2) is None
        assert graph.peers[1] == {2} and graph.peers[2] == {1}

    def test_s2s(self):
        graph = build_graph(1, 2)
        graph.add_s2s(1, 2)
        assert graph.relationship(1, 2) is Relationship.S2S
        assert graph.siblings[1] == {2}

    def test_self_link_rejected(self):
        graph = build_graph(1)
        with pytest.raises(TopologyError):
            graph.add_p2p(1, 1)

    def test_duplicate_link_rejected(self):
        graph = build_graph(1, 2)
        graph.add_p2c(1, 2)
        with pytest.raises(TopologyError):
            graph.add_p2p(1, 2)

    def test_unknown_endpoint_rejected(self):
        graph = build_graph(1)
        with pytest.raises(TopologyError):
            graph.add_p2c(1, 99)

    def test_cycle_refused(self):
        graph = build_graph(1, 2, 3)
        graph.add_p2c(1, 2)
        graph.add_p2c(2, 3)
        with pytest.raises(TopologyError):
            graph.add_p2c(3, 1)

    def test_two_hop_cycle_refused(self):
        graph = build_graph(1, 2)
        graph.add_p2c(1, 2)
        with pytest.raises(TopologyError):
            graph.add_p2c(2, 1)

    def test_remove_p2c(self):
        graph = build_graph(1, 2)
        graph.add_p2c(1, 2)
        graph.remove_link(1, 2)
        assert graph.relationship(1, 2) is None
        assert not graph.customers[1] and not graph.providers[2]

    def test_remove_p2p(self):
        graph = build_graph(1, 2)
        graph.add_p2p(1, 2)
        graph.remove_link(2, 1)
        assert graph.relationship(1, 2) is None

    def test_remove_missing_raises(self):
        graph = build_graph(1, 2)
        with pytest.raises(TopologyError):
            graph.remove_link(1, 2)

    def test_links_iteration_provider_first(self):
        graph = build_graph(1, 2, 3)
        graph.add_p2c(2, 1)
        graph.add_p2p(1, 3)
        links = sorted(graph.links(), key=str)
        assert (2, 1, Relationship.P2C) in links
        assert (1, 3, Relationship.P2P) in links
        assert graph.num_links() == 2

    def test_neighbors_and_degree(self):
        graph = build_graph(1, 2, 3, 4)
        graph.add_p2c(1, 2)
        graph.add_p2p(1, 3)
        graph.add_s2s(1, 4)
        assert graph.neighbors(1) == {2, 3, 4}
        assert graph.degree(1) == 3


class TestQueries:
    def test_customer_cone(self):
        graph = build_graph(1, 2, 3, 4, 5)
        graph.add_p2c(1, 2)
        graph.add_p2c(2, 3)
        graph.add_p2c(2, 4)
        graph.add_p2p(1, 5)
        assert graph.customer_cone(1) == {1, 2, 3, 4}
        assert graph.customer_cone(3) == {3}

    def test_transit_free(self):
        graph = build_graph(1, 2, 3)
        graph.add_p2c(1, 2)
        graph.add_p2c(2, 3)
        assert graph.transit_free() == [1]

    def test_clique_asns(self):
        graph = ASGraph()
        graph.add_as(AS(asn=1, type=ASType.CLIQUE))
        graph.add_as(AS(asn=2, type=ASType.STUB))
        assert graph.clique_asns() == [1]

    def test_ixp_asns(self):
        graph = ASGraph()
        graph.add_as(AS(asn=7, type=ASType.IXP_RS))
        assert graph.ixp_asns() == frozenset({7})

    def test_prefix_origins(self):
        graph = ASGraph()
        p = Prefix.parse("10.0.0.0/8")
        graph.add_as(AS(asn=1, type=ASType.STUB, prefixes=[p]))
        assert graph.prefix_origins() == {p: 1}

    def test_duplicate_prefix_origin_rejected(self):
        graph = ASGraph()
        p = Prefix.parse("10.0.0.0/8")
        graph.add_as(AS(asn=1, type=ASType.STUB, prefixes=[p]))
        graph.add_as(AS(asn=2, type=ASType.STUB, prefixes=[p]))
        with pytest.raises(TopologyError):
            graph.prefix_origins()

    def test_num_addresses(self):
        asys = AS(
            asn=1,
            type=ASType.STUB,
            prefixes=[Prefix.parse("10.0.0.0/24"), Prefix.parse("11.0.0.0/24")],
        )
        assert asys.num_addresses == 512


class TestInvariants:
    def test_healthy_graph_passes(self):
        graph = ASGraph()
        graph.add_as(AS(asn=1, type=ASType.CLIQUE))
        graph.add_as(AS(asn=2, type=ASType.CLIQUE))
        graph.add_as(AS(asn=3, type=ASType.STUB))
        graph.add_p2p(1, 2)
        graph.add_p2c(1, 3)
        assert graph.validate_invariants() == []

    def test_orphan_detected(self):
        graph = ASGraph()
        graph.add_as(AS(asn=1, type=ASType.STUB))
        problems = graph.validate_invariants()
        assert any("no provider" in p for p in problems)

    def test_unmeshed_clique_detected(self):
        graph = ASGraph()
        graph.add_as(AS(asn=1, type=ASType.CLIQUE))
        graph.add_as(AS(asn=2, type=ASType.CLIQUE))
        problems = graph.validate_invariants()
        assert any("not p2p" in p for p in problems)

    def test_clique_with_provider_detected(self):
        graph = ASGraph()
        graph.add_as(AS(asn=1, type=ASType.CLIQUE))
        graph.add_as(AS(asn=2, type=ASType.CLIQUE))
        graph.add_as(AS(asn=3, type=ASType.LARGE_TRANSIT))
        graph.add_p2p(1, 2)
        graph.add_p2c(3, 1)  # a clique member buying transit
        problems = graph.validate_invariants()
        assert any("has providers" in p for p in problems)
