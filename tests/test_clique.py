"""Unit tests for tier-1 clique inference."""

import pytest

from repro.core.clique import bron_kerbosch, infer_clique
from repro.core.paths import PathSet


class TestBronKerbosch:
    def test_triangle(self):
        adjacency = {1: {2, 3}, 2: {1, 3}, 3: {1, 2}}
        cliques = bron_kerbosch([1, 2, 3], adjacency)
        assert frozenset({1, 2, 3}) in cliques

    def test_disconnected_vertices(self):
        adjacency = {1: set(), 2: set()}
        cliques = bron_kerbosch([1, 2], adjacency)
        assert sorted(cliques, key=sorted) == [frozenset({1}), frozenset({2})]

    def test_two_overlapping_triangles(self):
        adjacency = {
            1: {2, 3},
            2: {1, 3, 4},
            3: {1, 2, 4},
            4: {2, 3},
        }
        cliques = bron_kerbosch([1, 2, 3, 4], adjacency)
        assert frozenset({1, 2, 3}) in cliques
        assert frozenset({2, 3, 4}) in cliques

    def test_restricted_to_given_vertices(self):
        adjacency = {1: {2, 9}, 2: {1, 9}, 9: {1, 2}}
        cliques = bron_kerbosch([1, 2], adjacency)
        assert cliques == [frozenset({1, 2})]


def paths_with_planted_clique():
    """Three clique members (1,2,3) with customer trees below them.

    Clique links appear in cross-paths; customers 10..15 provide the
    transit-degree signal that ranks 1,2,3 on top.
    """
    paths = []
    # each clique member transits for its customers to the others' trees
    customers = {1: [10, 11], 2: [12, 13], 3: [14, 15]}
    for top, kids in customers.items():
        for other, other_kids in customers.items():
            if top == other:
                continue
            for kid in kids:
                for other_kid in other_kids:
                    # kid -> top -> other -> other_kid (collector order)
                    paths.append((kid, top, other, other_kid))
    return PathSet.sanitize(paths)


class TestInferClique:
    def test_planted_clique_recovered(self):
        result = infer_clique(paths_with_planted_clique(), seed_size=3)
        assert result.members == [1, 2, 3]

    def test_seed_members_recorded(self):
        result = infer_clique(paths_with_planted_clique(), seed_size=3)
        assert set(result.seed_members) <= set(result.members)

    def test_rank_walk_admits_fully_connected(self):
        # 4 peers with all of 1,2,3 but has lower transit degree
        ps = paths_with_planted_clique()
        extra = [(10, 1, 4, 16), (12, 2, 4, 16), (14, 3, 4, 16),
                 (16, 4, 1, 10), (16, 4, 2, 12), (16, 4, 3, 14)]
        combined = PathSet.sanitize(ps.paths + extra)
        result = infer_clique(combined, seed_size=3)
        assert 4 in result.members
        assert 4 in result.added_members

    def test_partial_peer_not_admitted(self):
        # 5 peers with only 1 and 2, never 3 → cannot join the clique
        ps = paths_with_planted_clique()
        extra = [(10, 1, 5, 17), (12, 2, 5, 17)]
        combined = PathSet.sanitize(ps.paths + extra)
        result = infer_clique(combined, seed_size=3)
        assert 5 not in result.members

    def test_empty_paths(self):
        result = infer_clique(PathSet.sanitize([]))
        assert result.members == []

    def test_membership_test(self):
        result = infer_clique(paths_with_planted_clique(), seed_size=3)
        assert 1 in result
        assert 99 not in result

    def test_scenario_clique_recovered(self, small_run):
        inferred = set(small_run.result.clique.members)
        true = set(small_run.graph.clique_asns())
        # at small scale visibility may cost a member or two, never more
        assert len(true & inferred) >= len(true) - 2
        assert not (inferred - true), "no false clique members"
