"""Unit tests for the IPv4 prefix value type."""

import pytest
from hypothesis import given, strategies as st

from repro.net.prefix import Prefix, PrefixError, summarize_address_space


class TestParse:
    def test_parse_basic(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.network == 10 << 24
        assert p.length == 8

    def test_parse_host_route(self):
        p = Prefix.parse("192.0.2.1/32")
        assert p.length == 32
        assert str(p) == "192.0.2.1/32"

    def test_parse_default_route(self):
        p = Prefix.parse("0.0.0.0/0")
        assert p.length == 0
        assert p.num_addresses == 1 << 32

    def test_parse_strips_whitespace(self):
        assert Prefix.parse("  10.0.0.0/8 ") == Prefix.parse("10.0.0.0/8")

    @pytest.mark.parametrize(
        "text",
        [
            "10.0.0.0",  # missing length
            "10.0.0/8",  # short quad
            "10.0.0.0.0/8",  # long quad
            "10.0.0.256/32",  # octet out of range
            "10.0.0.0/33",  # length out of range
            "10.0.0.0/-1",  # negative length
            "10.0.0.0/x",  # non-numeric length
            "a.b.c.d/8",  # non-numeric quad
            "",  # empty
        ],
    )
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(PrefixError):
            Prefix.parse(text)

    def test_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.1/8")

    def test_constructor_rejects_bad_length(self):
        with pytest.raises(PrefixError):
            Prefix(0, 40)

    def test_constructor_rejects_bad_network(self):
        with pytest.raises(PrefixError):
            Prefix(1 << 33, 8)


class TestProperties:
    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/8").num_addresses == 1 << 24
        assert Prefix.parse("192.0.2.0/24").num_addresses == 256
        assert Prefix.parse("192.0.2.4/32").num_addresses == 1

    def test_broadcast(self):
        p = Prefix.parse("192.0.2.0/24")
        assert p.broadcast == p.network + 255

    def test_str_round_trip(self):
        for text in ("10.0.0.0/8", "172.16.0.0/12", "192.0.2.128/25"):
            assert str(Prefix.parse(text)) == text

    def test_repr_contains_text(self):
        assert "10.0.0.0/8" in repr(Prefix.parse("10.0.0.0/8"))

    def test_immutability(self):
        p = Prefix.parse("10.0.0.0/8")
        with pytest.raises(AttributeError):
            p.length = 9

    def test_hashable_and_equal(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix(10 << 24, 8)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_ordering(self):
        p8 = Prefix.parse("10.0.0.0/8")
        p9 = Prefix.parse("10.0.0.0/9")
        p24 = Prefix.parse("192.0.2.0/24")
        assert p8 < p9 < p24
        assert p24 > p9 >= p8
        assert sorted([p24, p9, p8]) == [p8, p9, p24]


class TestContainment:
    def test_contains_more_specific(self):
        assert Prefix.parse("10.0.0.0/8").contains(Prefix.parse("10.1.0.0/16"))

    def test_contains_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(p)

    def test_does_not_contain_shorter(self):
        assert not Prefix.parse("10.0.0.0/16").contains(Prefix.parse("10.0.0.0/8"))

    def test_does_not_contain_disjoint(self):
        assert not Prefix.parse("10.0.0.0/8").contains(Prefix.parse("11.0.0.0/8"))

    def test_contains_address(self):
        p = Prefix.parse("192.0.2.0/24")
        assert p.contains_address(p.network + 7)
        assert not p.contains_address(p.network - 1)

    def test_in_operator(self):
        outer = Prefix.parse("10.0.0.0/8")
        assert Prefix.parse("10.2.0.0/16") in outer
        assert (10 << 24) + 5 in outer


class TestSubnets:
    def test_split_in_two(self):
        halves = list(Prefix.parse("10.0.0.0/8").subnets(9))
        assert [str(h) for h in halves] == ["10.0.0.0/9", "10.128.0.0/9"]

    def test_split_same_length_is_identity(self):
        p = Prefix.parse("10.0.0.0/8")
        assert list(p.subnets(8)) == [p]

    def test_split_rejects_shorter(self):
        with pytest.raises(PrefixError):
            list(Prefix.parse("10.0.0.0/8").subnets(7))

    def test_split_rejects_beyond_32(self):
        with pytest.raises(PrefixError):
            list(Prefix.parse("10.0.0.0/8").subnets(33))

    def test_supernet(self):
        assert str(Prefix.parse("10.128.0.0/9").supernet(8)) == "10.0.0.0/8"

    def test_supernet_rejects_longer(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/8").supernet(9)

    def test_from_host_count(self):
        p = Prefix.from_host_count(10 << 24, 300)
        assert p.num_addresses >= 300
        assert p.length == 23


class TestSummarize:
    def test_empty(self):
        assert summarize_address_space([]) == 0

    def test_single(self):
        assert summarize_address_space([Prefix.parse("192.0.2.0/24")]) == 256

    def test_duplicates_count_once(self):
        p = Prefix.parse("192.0.2.0/24")
        assert summarize_address_space([p, p]) == 256

    def test_nested_count_once(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert summarize_address_space([outer, inner]) == outer.num_addresses

    def test_disjoint_sum(self):
        a = Prefix.parse("10.0.0.0/24")
        b = Prefix.parse("11.0.0.0/24")
        assert summarize_address_space([a, b]) == 512

    def test_adjacent_merge(self):
        a = Prefix.parse("10.0.0.0/25")
        b = Prefix.parse("10.0.0.128/25")
        assert summarize_address_space([a, b]) == 256


# property-based coverage --------------------------------------------------

prefix_strategy = st.integers(min_value=0, max_value=32).flatmap(
    lambda length: st.integers(min_value=0, max_value=(1 << 32) - 1).map(
        lambda raw: Prefix(
            (raw >> (32 - length) << (32 - length)) if length else 0, length
        )
    )
)


@given(prefix_strategy)
def test_text_round_trip(prefix):
    assert Prefix.parse(str(prefix)) == prefix


@given(prefix_strategy)
def test_broadcast_geq_network(prefix):
    assert prefix.broadcast >= prefix.network
    assert prefix.broadcast - prefix.network + 1 == prefix.num_addresses


@given(st.lists(prefix_strategy, max_size=12))
def test_summarize_matches_brute_force(prefixes):
    # brute force on /24 granularity would be huge; restrict to short
    # prefixes by mapping everything into a /16 window
    scoped = [p for p in prefixes if p.length >= 20]
    expected = set()
    for p in scoped:
        expected.update(range(p.network, p.broadcast + 1))
    assert summarize_address_space(scoped) == len(expected)


@given(prefix_strategy, prefix_strategy)
def test_containment_antisymmetry(a, b):
    if a.contains(b) and b.contains(a):
        assert a == b
