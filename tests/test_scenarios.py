"""Unit tests for the scenario registry."""

import pytest

from repro.scenarios import SCENARIOS, evolution_scenario, get_scenario


class TestRegistry:
    def test_known_names(self):
        for name in ("tiny", "small", "medium", "large", "clean"):
            assert name in SCENARIOS

    def test_get_scenario(self):
        scenario = get_scenario("tiny")
        assert scenario.name == "tiny"

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError) as err:
            get_scenario("bogus")
        assert "tiny" in str(err.value)

    def test_descriptions_present(self):
        for scenario in SCENARIOS.values():
            assert scenario.description


class TestRun:
    def test_tiny_pipeline(self, tiny_run):
        assert len(tiny_run.paths) > 100
        assert len(tiny_run.result) > 50
        assert tiny_run.result.clique.members

    def test_collect_reuses_graph(self):
        scenario = get_scenario("tiny")
        graph = scenario.build_graph()
        same_graph, corpus = scenario.collect(graph)
        assert same_graph is graph
        assert corpus.paths

    def test_deterministic_between_runs(self):
        scenario = get_scenario("tiny")
        _, _, paths_a, result_a = scenario.run()
        _, _, paths_b, result_b = scenario.run()
        assert paths_a.paths == paths_b.paths
        assert sorted(result_a.links()) == sorted(result_b.links())

    def test_clean_scenario_has_no_noise(self, clean_run):
        stats = clean_run.paths.stats
        assert stats.discarded_loops == 0
        assert stats.discarded_reserved_asn == 0
        assert stats.ixp_hops_removed == 0


class TestEvolutionScenario:
    def test_default(self):
        config = evolution_scenario(eras=3)
        assert len(config.eras) == 3
