"""E5 — clique evolution (the paper's longitudinal clique figure).

Series: inferred clique membership per era versus the planted truth,
including the arrival of new tier-1 entrants.  The benchmark measures
clique inference (ranking + Bron–Kerbosch + rank walk) on the medium
corpus.
"""

from conftest import write_report

from repro.core.clique import infer_clique


def test_e05_clique_evolution(benchmark, medium_run, era_series):
    snapshots, metrics = era_series

    inferred = benchmark.pedantic(
        lambda: infer_clique(medium_run.paths), rounds=3, iterations=1
    )

    lines = ["E5: clique evolution across eras", "-" * 60,
             f"{'era':<8}{'ases':>6}{'true':>6}{'inferred':>9}"
             f"{'recall':>8}  members"]
    for m in metrics:
        members = ",".join(str(a) for a in m.inferred_clique[:8])
        if len(m.inferred_clique) > 8:
            members += ",…"
        lines.append(
            f"{m.label:<8}{m.n_ases:>6}{len(m.true_clique):>6}"
            f"{len(m.inferred_clique):>9}{m.clique_recall:>8.0%}  {members}"
        )
    entrants = set(metrics[-1].true_clique) - set(metrics[0].true_clique)
    lines.append("")
    lines.append(f"tier-1 entrants during the series: {sorted(entrants)}")
    detected = entrants & set(metrics[-1].inferred_clique)
    lines.append(f"entrants present in final inferred clique: {sorted(detected)}")
    write_report("E05_clique", lines)

    # shape: the clique is substantially recovered in every era and the
    # series witnesses clique growth
    assert all(m.clique_recall >= 0.5 for m in metrics)
    assert len(metrics[-1].true_clique) > len(metrics[0].true_clique)
    # the benchmark corpus clique matches the medium scenario's truth
    assert set(inferred.members) == set(medium_run.graph.clique_asns())
