"""E3 — headline PPV table (the paper reports c2p 99.6%, p2p 98.7%,
with 34.6% of inferences validated).

Rows: PPV per relationship class against the merged multi-source
corpus, plus the oracle (full ground truth) for reference.  The
benchmark measures the scoring pass itself.
"""

from conftest import write_report

from repro.relationships import Relationship
from repro.validation import (
    communities_corpus,
    direct_report_corpus,
    routing_policy_corpus,
    rpsl_corpus,
    validate,
    validate_against_truth,
)

# the numbers the paper reports, used for shape comparison in the report
PAPER_C2P_PPV = 0.996
PAPER_P2P_PPV = 0.987


def test_e03_headline_ppv(benchmark, medium_run):
    graph, corpus, result = medium_run.graph, medium_run.corpus, medium_run.result
    merged = (
        direct_report_corpus(graph)
        .merge(communities_corpus(corpus.rib, graph.ixp_asns()))
        .merge(rpsl_corpus(graph))
        .merge(routing_policy_corpus(graph))
    )

    report = benchmark.pedantic(
        lambda: validate(result, merged, step_lookup=result.step_of),
        rounds=3, iterations=1,
    )
    oracle = validate_against_truth(result, graph)

    lines = ["E3: headline PPV (medium scenario)", "-" * 52,
             f"{'class':<8}{'measured':>10}{'oracle':>10}{'paper':>9}{'judged':>8}"]
    for rel, paper in ((Relationship.P2C, PAPER_C2P_PPV),
                       (Relationship.P2P, PAPER_P2P_PPV)):
        measured = report.by_class.get(rel)
        truth = oracle.by_class.get(rel)
        lines.append(
            f"{rel.label:<8}{measured.ppv:>10.4f}{truth.ppv:>10.4f}"
            f"{paper:>9.3f}{measured.total:>8}"
        )
    lines.append("")
    lines.append(f"coverage: {report.coverage:.1%} of {report.total_inferences} "
                 f"inferences validated (paper: 34.6%)")
    lines.append(f"conflicted validation links: {report.conflicted}")
    write_report("E03_ppv", lines)

    # the paper's shape: c2p nearly perfect, p2p high
    assert report.ppv(Relationship.P2C) > 0.97
    assert report.ppv(Relationship.P2P) > 0.75
    assert 0.05 < report.coverage <= 1.0
