"""E8 — the flattening Internet (the paper's cone-share time series).

Series: provider/peer-observed cone share per era for the networks that
were largest at the start, and for the tier-1 entrants.  The expected
shape: incumbents lose share as growth attaches regionally and peering
densifies; entrants gain.  The benchmark measures one full snapshot
analysis (collect + sanitize + infer + cones).
"""

from conftest import write_report

from repro.analysis.timeseries import analyze_snapshot, flattening_series
from repro.bgp.collector import CollectorConfig


def test_e08_flattening(benchmark, era_series):
    snapshots, metrics = era_series

    label, first_graph = snapshots[0]
    benchmark.pedantic(
        lambda: analyze_snapshot(label, first_graph,
                                 CollectorConfig(n_vps=16, seed=3)),
        rounds=2, iterations=1,
    )

    tracked = flattening_series(metrics)
    lines = ["E8: cone share per era (provider/peer-observed)",
             "-" * 64,
             "  ASN     " + "".join(f"{m.label:>9}" for m in metrics)]
    for asn, shares in sorted(tracked.items(), key=lambda kv: -kv[1][0]):
        lines.append(
            f"  AS{asn:<6}" + "".join(f"{s:>8.1%} " for s in shares)
        )

    base_clique = set(metrics[0].true_clique)
    entrants = set(metrics[-1].true_clique) - base_clique

    def direct_customer_share(snapshot) -> float:
        """Fraction of the Internet buying transit straight from the
        original clique — the stable structural flattening signal
        (observed cone shares fluctuate with VP placement)."""
        direct = set()
        for member in base_clique:
            direct |= snapshot.result.customers.get(member, set())
        return len(direct) / snapshot.n_ases

    shares = [direct_customer_share(m) for m in metrics]
    lines.append("")
    lines.append("original clique's direct-customer share per era:")
    lines.append("  " + "  ".join(f"{s:.1%}" for s in shares))
    if entrants:
        entrant_last = sum(metrics[-1].cone_share(a) for a in entrants)
        lines.append(
            f"combined cone share of tier-1 entrants {sorted(entrants)} in "
            f"the last era: {entrant_last:.1%}"
        )
    write_report("E08_flattening", lines)

    # the flattening shape: growth attaches regionally, so the original
    # clique serves a shrinking fraction of the Internet directly
    assert shares[-1] < shares[0]
    assert len(tracked) >= 3
