"""E11 — sanitization accounting (the paper's data-cleaning table).

Rows: paths discarded or repaired by each sanitizer — prepending
compression, loop discard, reserved-ASN discard, IXP route-server
splice, duplicate merge — plus the poisoned-path discard from the
inference stage.  The benchmark measures sanitization throughput.
"""

from conftest import write_report

from repro.core.paths import PathSet


def test_e11_sanitization(benchmark, medium_run):
    raw = medium_run.corpus.paths
    ixps = medium_run.graph.ixp_asns()

    sanitized = benchmark.pedantic(
        lambda: PathSet.sanitize(raw, ixp_asns=ixps), rounds=3, iterations=1
    )

    lines = ["E11: sanitization accounting (medium scenario)", "-" * 48]
    for name, value in sanitized.stats.as_rows():
        lines.append(f"{name:<28}{value:>8}")
    lines.append(
        f"{'discarded: poisoned (S4)':<28}"
        f"{medium_run.result.discarded_poisoned:>8}"
    )
    write_report("E11_sanitization", lines)

    stats = sanitized.stats
    # accounting must balance exactly
    assert (
        stats.kept
        + stats.discarded_loops
        + stats.discarded_reserved_asn
        + stats.discarded_short
        + stats.duplicates_merged
        == stats.input_paths
    )
    # with the default noise model every artifact class fires
    assert stats.prepending_compressed > 0
    assert stats.discarded_loops > 0
    assert stats.ixp_hops_removed > 0
