"""CI smoke for the time-travel subsystem: build, serve, diff, reload.

Builds a four-era timeline from the default evolution model, serves it
on an ephemeral port, and drives concurrent mixed traffic — latest
reads, ``?as_of=`` historical reads (index, label, and date tokens),
``/eras``, ``/diff``, and ``/asns/{asn}/history`` — from several
threads.  Mid-load, the server hot-reloads a second timeline (the same
series truncated to three eras) through ``POST /admin/reload``; the
load keeps to eras the two timelines share, so the run must finish
with zero non-200 responses.  Afterwards the served era table must
show the new timeline.

Exit code 0 on success, 1 with a one-line reason on any failure.

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/timeline_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import tempfile
import threading

from repro.serve.server import ServerThread
from repro.serve.store import SnapshotStore
from repro.timeline import build_timeline, era_snapshots, save_timeline
from repro.topology.evolution import EvolutionConfig, generate_series

START_ASES = 150
ERAS = 3  # growth steps -> base + 3 = four eras
SEED = 7
THREADS = 4
REQUESTS_PER_THREAD = 250
SHARED_ERAS = 3  # eras 0..2 exist in both timelines; the load stays there


def _fail(reason: str) -> int:
    print(f"FAIL: {reason}")
    return 1


def _request(host, port, method, target, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, target, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _load_thread(host, port, asns, seed, failures):
    """One closed-loop client cycling the whole timeline surface."""
    conn = http.client.HTTPConnection(host, port, timeout=30)
    tokens = ["0", "1", "2", "era-1", "1998-06-01", "2000-12-31"]
    try:
        for i in range(REQUESTS_PER_THREAD):
            pick = (seed + i) % 6
            asn = asns[(seed * 31 + i * 7) % len(asns)]
            if pick == 0:
                target = f"/asns/{asn}"
            elif pick == 1:
                target = f"/asns/{asn}?as_of={tokens[(seed + i) % len(tokens)]}"
            elif pick == 2:
                target = f"/ranks?per_page=20&as_of={i % SHARED_ERAS}"
            elif pick == 3:
                target = "/eras"
            elif pick == 4:
                target = f"/diff/{i % 2}/{SHARED_ERAS - 1}"
            else:
                target = f"/asns/{asn}/history"
            conn.request("GET", target)
            response = conn.getresponse()
            response.read()
            if response.status != 200:
                failures.append((response.status, target))
    except Exception as exc:  # transport error = failure
        failures.append(("transport", repr(exc)))
    finally:
        conn.close()


def main() -> int:
    print(f"building the {ERAS}-step series ({START_ASES} start ASes) ...")
    config = EvolutionConfig.default_series(
        start_ases=START_ASES, eras=ERAS, seed=SEED
    )
    pairs = era_snapshots(generate_series(config))

    scratch = tempfile.mkdtemp(prefix="repro-timeline-smoke-")
    four_eras = os.path.join(scratch, "four.tln")
    version_four = save_timeline(build_timeline(pairs), four_eras)
    three_eras = os.path.join(scratch, "three.tln")
    version_three = save_timeline(build_timeline(pairs[:3]), three_eras)
    if version_four == version_three:
        return _fail("truncated timeline has the same version")
    # ASes born in era 0 exist in every era — history/as_of-safe probes
    asns = [int(a) for a in pairs[0][1].asns]

    store = SnapshotStore(path=four_eras)
    thread = ServerThread(store)
    host, port = thread.start()
    try:
        status, body = _request(host, port, "GET", "/eras")
        if status != 200 or len(json.loads(body)["eras"]) != ERAS + 1:
            return _fail(f"/eras answered {status}: {body[:120]!r}")

        failures: list = []
        loaders = [
            threading.Thread(
                target=_load_thread,
                args=(host, port, asns, seed, failures),
            )
            for seed in range(THREADS)
        ]
        for loader in loaders:
            loader.start()

        # hot-reload the truncated timeline while the load is running
        status, body = _request(
            host, port, "POST", "/admin/reload",
            json.dumps({"path": three_eras}).encode(),
        )
        if status != 200:
            return _fail(f"reload answered {status}: {body[:120]!r}")

        for loader in loaders:
            loader.join(timeout=120)
        if any(loader.is_alive() for loader in loaders):
            return _fail("load threads never finished")
        if failures:
            return _fail(
                f"{len(failures)} failed requests under load, first: "
                f"{failures[0]}"
            )

        status, body = _request(host, port, "GET", "/eras")
        payload = json.loads(body)
        if status != 200 or payload["timeline"] != version_three:
            return _fail(
                f"served timeline is {payload.get('timeline')}, "
                f"expected {version_three} after reload"
            )
        if len(payload["eras"]) != SHARED_ERAS:
            return _fail(
                f"{len(payload['eras'])} eras served after the reload"
            )
        total = THREADS * REQUESTS_PER_THREAD
        print(
            f"mixed timeline load: {total} requests across {THREADS} "
            f"threads, 0 errors; hot reload {version_four} -> "
            f"{version_three} under load"
        )
    finally:
        thread.stop()
    print("timeline smoke: all legs passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
