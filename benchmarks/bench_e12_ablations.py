"""E12 — ablations of the design choices DESIGN.md calls out.

Rows: oracle PPV with each pipeline stage disabled, versus the full
pipeline — quantifying what the clique anchor, the poisoned-path
filter, valley-free folding and the mop-up heuristics each contribute.
The benchmark measures the full (un-ablated) pipeline.
"""

from dataclasses import replace

from conftest import write_report

from repro.core.inference import InferenceConfig, infer_relationships
from repro.relationships import Relationship
from repro.validation.validator import validate_against_truth

ABLATIONS = [
    ("full pipeline", {}),
    ("no clique anchor", {"enable_clique": False}),
    ("no poisoned filter", {"enable_poisoned_filter": False}),
    ("no partial-VP step", {"enable_partial_vp": False}),
    ("no top-down sweep", {"enable_topdown": False}),
    ("no valley-free fold", {"enable_fold": False}),
    ("no descent logic", {"enable_topdown": False, "enable_fold": False}),
    ("no stub heuristic", {"enable_stub": False}),
    ("no degree gap", {"enable_degree_gap": False}),
    ("no provider-less fix", {"enable_providerless": False}),
]


def test_e12_ablations(benchmark, medium_run):
    paths, graph = medium_run.paths, medium_run.graph
    base = medium_run.scenario.inference

    benchmark.pedantic(
        lambda: infer_relationships(paths, base), rounds=3, iterations=1
    )

    rows = []
    for name, overrides in ABLATIONS:
        config = replace(base, **overrides)
        result = infer_relationships(paths, config)
        report = validate_against_truth(result, graph)
        rows.append((name, report))

    lines = ["E12: ablation study (medium scenario, oracle-scored)",
             "-" * 62,
             f"{'variant':<22}{'overall':>9}{'c2p':>8}{'p2p':>8}{'links':>7}"]
    for name, report in rows:
        lines.append(
            f"{name:<22}{report.overall_ppv:>9.4f}"
            f"{report.ppv(Relationship.P2C):>8.4f}"
            f"{report.ppv(Relationship.P2P):>8.4f}"
            f"{report.total_inferences:>7}"
        )
    write_report("E12_ablations", lines)

    full = rows[0][1]
    by_name = dict(rows)
    # single-stage ablations never help (top-down and fold partially
    # cover for each other, so each alone costs little)...
    assert full.overall_ppv >= by_name["no top-down sweep"].overall_ppv
    assert full.overall_ppv >= by_name["no valley-free fold"].overall_ppv
    assert full.overall_ppv > by_name["no clique anchor"].overall_ppv - 0.005
    # ...but removing the descent logic entirely collapses accuracy
    assert by_name["no descent logic"].overall_ppv < full.overall_ppv - 0.03
