"""Timeline benchmark: delta-storage efficiency and historical-read cost.

Builds the default longitudinal series (four eras), compiles one full
snapshot per era, delta-encodes them into a timeline, and measures:

* storage — bytes stored per era inside the timeline vs the size of a
  standalone full snapshot file for the same era (the delta ratio the
  regression gate holds under 35%);
* serving — sequential service times on one connection for latest
  reads (``/asns/{asn}``), warm historical reads (``?as_of=`` after
  the era is materialized), cold historical reads (the first touch of
  an era, which pays the delta-chain reconstruction), and the era-diff
  endpoint cold vs cached.

Every sampled URL is distinct, so the server's response cache never
answers for the timeline: warm numbers measure the era-LRU hit path,
not response-cache hits.  The committed JSON records a
``calibration_workload`` run so ``check_regression.py`` can rescale on
slower runners.

Usage::

    PYTHONPATH=src python benchmarks/bench_timeline.py
"""

from __future__ import annotations

import http.client
import json
import os
import sys
import tempfile
import time

from repro.scenarios import evolution_scenario
from repro.serve.loadgen import calibration_workload
from repro.serve.server import ServerThread
from repro.serve.store import SnapshotStore, save_snapshot
from repro.timeline import build_timeline, era_snapshots, load_timeline, save_timeline
from repro.topology.evolution import generate_series

ERAS = 3  # growth steps; the series is base + ERAS = 4 eras
SEED = 7
LATEST_SAMPLES = 200
HISTORICAL_SAMPLES = 200
REPORT_FILE = os.path.join(
    os.path.dirname(__file__), "reports", "BENCH_timeline.json"
)


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def history_leg(timeline_path: str, samples: int = HISTORICAL_SAMPLES) -> dict:
    """Latest vs historical service times against a timeline server.

    Sequential on one connection, every URL distinct (response-cache
    misses throughout).  Cold historical samples are taken first — one
    per non-base era, in order, so each pays exactly one delta
    materialization step on top of its predecessor.
    """
    store = SnapshotStore(path=timeline_path)
    n_eras = len(store.timeline)
    asns = [int(a) for a in store.timeline.snapshot(0).asns]

    thread = ServerThread(store)
    host, port = thread.start()
    conn = http.client.HTTPConnection(host, port, timeout=30)
    errors = 0

    def timed(target):
        nonlocal errors
        start = time.perf_counter()
        conn.request("GET", target)
        response = conn.getresponse()
        response.read()
        if response.status != 200:
            errors += 1
        return (time.perf_counter() - start) * 1000.0

    cold, warm, latest = [], [], []
    try:
        # spin up the connection before timing anything
        for _ in range(20):
            timed(f"/asns/{asns[0]}")
        errors = 0
        # cold: first touch per era pays one delta reconstruction
        for era in range(1, n_eras):
            cold.append(timed(f"/asns/{asns[1]}?as_of={era}"))
        # warm historical vs latest yardstick, interleaved so both
        # legs sample the same noise window; every URL is distinct
        # (different asn per request) so the response cache never hits
        pool = asns[2 : 2 + samples]
        for i, asn in enumerate(pool):
            warm.append(timed(f"/asns/{asn}?as_of={i % n_eras}"))
            latest.append(timed(f"/asns/{asn}"))
        diff_cold = timed(f"/diff/0/{n_eras - 1}")
        diff_cached = timed(f"/diff/0/{n_eras - 1}")
    finally:
        conn.close()
        thread.stop()
        store.timeline.close()

    return {
        "errors": errors,
        "eras": n_eras,
        "cold_ms": [round(ms, 3) for ms in cold],
        "warm_samples": len(warm),
        "warm_p50_ms": round(_percentile(warm, 0.50), 3),
        "warm_p99_ms": round(_percentile(warm, 0.99), 3),
        "latest_samples": len(latest),
        "latest_p50_ms": round(_percentile(latest, 0.50), 3),
        "latest_p99_ms": round(_percentile(latest, 0.99), 3),
        "diff_cold_ms": round(diff_cold, 3),
        "diff_cached_ms": round(diff_cached, 3),
    }


def main() -> int:
    print(f"building the {ERAS}-step evolution series (seed {SEED}) ...")
    series = generate_series(evolution_scenario(eras=ERAS, seed=SEED))
    start = time.perf_counter()
    pairs = era_snapshots(series)
    pipeline_seconds = time.perf_counter() - start

    scratch = tempfile.mkdtemp(prefix="repro-bench-timeline-")

    # standalone full snapshot files: the storage yardstick
    full_bytes = []
    for index, (label, snapshot) in enumerate(pairs):
        path = os.path.join(scratch, f"era{index}.snap")
        save_snapshot(snapshot, path)
        full_bytes.append(os.path.getsize(path))

    start = time.perf_counter()
    timeline = build_timeline(pairs)
    build_seconds = time.perf_counter() - start
    timeline_path = os.path.join(scratch, "series.tln")
    start = time.perf_counter()
    save_timeline(timeline, timeline_path)
    save_seconds = time.perf_counter() - start
    timeline_bytes = os.path.getsize(timeline_path)

    start = time.perf_counter()
    loaded = load_timeline(timeline_path, verify=True)
    load_verify_seconds = time.perf_counter() - start

    eras_report = []
    delta_stored = delta_full = 0
    for info in loaded.eras:
        stored = loaded.era_bytes(info.index)
        ratio = stored / full_bytes[info.index]
        if info.kind == "delta":
            delta_stored += stored
            delta_full += full_bytes[info.index]
        eras_report.append({
            "era": info.index,
            "label": info.label,
            "date": info.date,
            "kind": info.kind,
            "n_ases": info.n_ases,
            "n_links": info.n_links,
            "stored_bytes": stored,
            "full_snapshot_bytes": full_bytes[info.index],
            "ratio": round(ratio, 4),
        })
        print(
            f"era {info.index} ({info.kind}): {stored:,} bytes stored "
            f"vs {full_bytes[info.index]:,} full ({ratio:.1%})"
        )
    delta_ratio = delta_stored / delta_full if delta_full else 0.0
    loaded.close()
    print(
        f"timeline file {timeline_bytes:,} bytes vs "
        f"{sum(full_bytes):,} all-full; delta eras at "
        f"{delta_ratio:.1%} of their full-snapshot bytes"
    )

    print("serving leg ...")
    serving = history_leg(timeline_path)
    print(
        f"latest p50 {serving['latest_p50_ms']}ms / "
        f"p99 {serving['latest_p99_ms']}ms; historical warm p50 "
        f"{serving['warm_p50_ms']}ms / p99 {serving['warm_p99_ms']}ms; "
        f"cold per era {serving['cold_ms']}; diff cold "
        f"{serving['diff_cold_ms']}ms -> cached "
        f"{serving['diff_cached_ms']}ms ({serving['errors']} errors)"
    )

    payload = {
        "series": {
            "eras": ERAS,
            "seed": SEED,
            "pipeline_seconds": round(pipeline_seconds, 4),
        },
        "timeline": {
            "version": timeline.version,
            "bytes": timeline_bytes,
            "all_full_bytes": sum(full_bytes),
            "delta_ratio": round(delta_ratio, 4),
            "build_seconds": round(build_seconds, 4),
            "save_seconds": round(save_seconds, 4),
            "load_verify_seconds": round(load_verify_seconds, 4),
        },
        "eras": eras_report,
        "serving": serving,
        "calibration": round(calibration_workload(), 4),
    }
    os.makedirs(os.path.dirname(REPORT_FILE), exist_ok=True)
    with open(REPORT_FILE, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {REPORT_FILE}")
    return 1 if serving["errors"] else 0


if __name__ == "__main__":
    sys.exit(main())
