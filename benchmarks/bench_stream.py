"""Stream-ingest benchmark: incremental apply vs full recompute.

Measures the live-ingest path (``repro.stream``) on two scales:

* ``large`` — the 1500-AS headline scenario's RIB;
* ``internet-10k`` — a 10k-AS power-law world, origin-sampled the same
  way as the internet collection smoke.

Each leg seeds a :class:`~repro.stream.StreamIngestor` with the full
RIB, then streams *delta-eligible* UPDATE batches: announcements of
truncated variants of already-observed paths, filtered so every link
is label-carrying and early-step (the zero-new-links envelope
``try_delta`` accepts).  Reported per leg:

* per-batch incremental apply latency (mean/p95, snapshot encode
  excluded — ``last_apply_seconds`` stops before the build);
* the full-recompute apply time over the same final table (a fresh
  cold ingestor), which is what each batch would have cost without the
  delta path;
* the speedup between the two — committed as the baseline for
  ``check_regression.py``'s self-calibrated >=3x live gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py
"""

from __future__ import annotations

import json
import os
import random
import statistics
import sys

from repro.bgp.collector import Collector, CollectorConfig
from repro.bgp.propagation import PropagationConfig
from repro.mrt.reader import RibRecord, UpdateRecord
from repro.mrt.updates import COLLECTOR_ASN
from repro.net.prefix import Prefix
from repro.relationships import canonical_pair
from repro.scenarios import get_scenario
from repro.stream import StreamIngestor
from repro.stream.delta import _LATE_STEPS, _partial_vps
from repro.topology.generator import (
    InternetScaleConfig,
    generate_internet_topology,
)

N_BATCHES = 8
BATCH_SIZE = 4
INTERNET_ASES = 10_000
INTERNET_ORIGINS = 300
REPORT_FILE = os.path.join(
    os.path.dirname(__file__), "reports", "BENCH_stream.json"
)


def rows_from_rib(rib) -> list:
    """Collector RIB entries → MRT RibRecord rows (the stream substrate)."""
    return [
        RibRecord(
            prefix=entry.prefix,
            peer_asn=entry.vp,
            as_path=tuple(entry.path),
            communities=tuple(entry.communities),
        )
        for entry in rib
    ]


def delta_eligible_batches(
    ingestor: StreamIngestor,
    n_batches: int = N_BATCHES,
    batch_size: int = BATCH_SIZE,
    seed: int = 5,
) -> list:
    """Build announcement batches ``try_delta`` provably accepts.

    Candidates are truncations (cut >=3) of already-filtered paths
    whose endpoint is already an origin elsewhere, whose VP is not in
    the partial-feed set, and whose links all carry early-step labels
    — i.e. new paths that add zero links and can only cast agreeing
    votes.  Each gets a fresh prefix so the corpus genuinely changes.
    Worlds with short paths yield few truncations, so any shortfall is
    filled with prefix-only announcements (an existing row's path
    announced for a new prefix) — the other delta-eligible family.
    """
    live = ingestor.live
    result = live.result
    origins = {path[-1] for path in live.filtered.paths}
    partial = _partial_vps(live.filtered, ingestor.config.partial_vp_coverage)
    existing = set(live.filtered.paths)
    candidates = []
    rng = random.Random(seed)
    paths = list(live.filtered.paths)
    rng.shuffle(paths)
    needed = n_batches * batch_size
    for path in paths:
        for cut in range(3, len(path)):
            truncated = path[:cut]
            if truncated in existing or truncated[-1] not in origins:
                continue
            if truncated[0] in partial:
                continue
            steps = [
                result._step.get(canonical_pair(a, b))
                for a, b in zip(truncated, truncated[1:])
            ]
            if any(s is None or s in _LATE_STEPS for s in steps):
                continue
            existing.add(truncated)
            candidates.append(truncated)
        if len(candidates) >= needed:
            break
    records = [
        UpdateRecord(
            peer_asn=truncated[0],
            local_asn=COLLECTOR_ASN,
            as_path=truncated,
            announced=(
                Prefix.parse(f"203.{index // 250}.{index % 250}.0/24"),
            ),
            communities=(),
        )
        for index, truncated in enumerate(candidates[:needed])
    ]
    donors = [row for row in ingestor.corpus.rows() if row.as_path]
    rng.shuffle(donors)
    for index, row in enumerate(donors[: needed - len(records)]):
        records.append(
            UpdateRecord(
                peer_asn=row.peer_asn,
                local_asn=COLLECTOR_ASN,
                as_path=row.as_path,
                announced=(
                    Prefix.parse(f"198.{18 + index // 250}.{index % 250}.0/24"),
                ),
                communities=row.communities,
            )
        )
    batches = []
    for index, record in enumerate(records):
        if index % batch_size == 0:
            batches.append([])
        batches[-1].append(record)
    return batches


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def bench_leg(name: str, graph, rows) -> dict:
    """Stream delta batches over a seeded table; compare with full."""
    ingestor = StreamIngestor(ixp_asns=graph.ixp_asns(), base_rows=rows)
    ingestor.publish()  # cold start: the full batch pipeline
    cold_apply = ingestor.stats.last_apply_seconds

    batches = delta_eligible_batches(ingestor)
    delta_applies = []
    delta_builds = []
    for batch in batches:
        ingestor.apply_batch(batch)
        ingestor.publish()
        if ingestor.stats.last_publish_mode != "delta":
            continue  # fell back; excluded from the incremental stats
        delta_applies.append(ingestor.stats.last_apply_seconds)
        delta_builds.append(ingestor.stats.last_build_seconds)

    # what every batch would have cost without the delta path: a full
    # recompute over the same final table, timed on a cold ingestor
    recompute = StreamIngestor(
        ixp_asns=graph.ixp_asns(), base_rows=ingestor.corpus.rows()
    )
    recompute.publish()
    full_apply = recompute.stats.last_apply_seconds
    assert (
        recompute.stats.last_publish_version
        == ingestor.stats.last_publish_version
    ), f"{name}: streamed table diverged from the batch oracle"

    mean_delta = statistics.mean(delta_applies) if delta_applies else None
    leg = {
        "table_rows": len(ingestor.corpus),
        "sanitized_paths": len(ingestor.live.filtered.paths),
        "batches": len(batches),
        "batch_size": BATCH_SIZE,
        "delta_publishes": ingestor.stats.delta_publishes,
        "full_fallbacks": dict(ingestor.stats.fallbacks),
        "cold_full_apply_s": round(cold_apply, 6),
        "full_apply_s": round(full_apply, 6),
        "delta_apply_mean_s": (
            round(mean_delta, 6) if mean_delta is not None else None
        ),
        "delta_apply_p95_s": (
            round(_percentile(delta_applies, 0.95), 6)
            if delta_applies
            else None
        ),
        "delta_build_mean_s": (
            round(statistics.mean(delta_builds), 6) if delta_builds else None
        ),
        "speedup_vs_full": (
            round(full_apply / mean_delta, 2) if mean_delta else None
        ),
    }
    print(
        f"{name}: {leg['table_rows']} rows, "
        f"{leg['delta_publishes']} delta publishes, "
        f"delta apply mean {leg['delta_apply_mean_s']}s "
        f"(p95 {leg['delta_apply_p95_s']}s), "
        f"full apply {leg['full_apply_s']}s, "
        f"speedup {leg['speedup_vs_full']}x"
    )
    return leg


def large_leg() -> dict:
    scenario = get_scenario("large")
    graph, corpus, _paths, _result = scenario.run()
    return bench_leg("large", graph, rows_from_rib(corpus.rib))


def internet_leg() -> dict:
    graph = generate_internet_topology(
        InternetScaleConfig(n_ases=INTERNET_ASES, seed=42)
    )
    config = CollectorConfig(
        n_vps=20,
        seed=1,
        propagation=PropagationConfig(array_state=True, batch_size=64),
    )
    origins = sorted(
        random.Random(7).sample(
            sorted(a.asn for a in graph.ases()), INTERNET_ORIGINS
        )
    )
    corpus = Collector(graph, config).run(origins=origins)
    leg = bench_leg("internet-10k", graph, rows_from_rib(corpus.rib))
    leg["n_ases"] = INTERNET_ASES
    leg["origins"] = INTERNET_ORIGINS
    return leg


def main() -> int:
    report = {
        "legs": {
            "large": large_leg(),
            "internet-10k": internet_leg(),
        },
    }
    os.makedirs(os.path.dirname(REPORT_FILE), exist_ok=True)
    with open(REPORT_FILE, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {REPORT_FILE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
