"""E7 — the three customer-cone definitions compared (the paper's
cone-definition figure: recursive over-counts, observed definitions
depend on vantage points).

Series: cone size by rank under each definition, plus totals and the
per-AS ratio to ground truth for the top networks.  The benchmark
measures the provider/peer-observed (PPDC) computation, the published
dataset's kernel.
"""

from conftest import write_report

from repro.core.cone import ConeDefinition, compute_cones


def test_e07_cone_definitions(benchmark, medium_run):
    result = medium_run.result

    ppdc = benchmark.pedantic(
        lambda: compute_cones(result, ConeDefinition.PROVIDER_PEER_OBSERVED),
        rounds=3, iterations=1,
    )
    recursive = compute_cones(result, ConeDefinition.RECURSIVE)
    bgp = compute_cones(result, ConeDefinition.BGP_OBSERVED)

    def top_sizes(cones, k=10):
        return sorted((len(c) for c in cones.values()), reverse=True)[:k]

    lines = ["E7: customer cone sizes by rank, per definition",
             "-" * 58,
             f"{'rank':<6}{'recursive':>11}{'ppdc':>8}{'bgp-obs':>9}{'truth':>8}"]
    truth_sizes = sorted(
        (
            len(medium_run.graph.customer_cone(asn))
            for asn in medium_run.paths.asns()
        ),
        reverse=True,
    )
    r_top, p_top, b_top = top_sizes(recursive), top_sizes(ppdc), top_sizes(bgp)
    for i in range(10):
        lines.append(
            f"{i + 1:<6}{r_top[i]:>11}{p_top[i]:>8}{b_top[i]:>9}"
            f"{truth_sizes[i]:>8}"
        )
    total_r = sum(len(c) for c in recursive.values())
    total_p = sum(len(c) for c in ppdc.values())
    total_b = sum(len(c) for c in bgp.values())
    lines.append("")
    lines.append(f"total cone membership: recursive {total_r}, "
                 f"ppdc {total_p}, bgp-observed {total_b}")
    write_report("E07_cone_definitions", lines)

    # the paper's shape: the recursive cone is the largest, both
    # observed cones bounded by it, and the observed cone is the
    # conservative estimate (well below the true recursive size but the
    # same order of magnitude)
    assert total_r >= total_p and total_r >= total_b
    assert r_top[0] >= p_top[0] >= 1
    assert p_top[0] >= 0.25 * truth_sizes[0]
    assert p_top[0] <= truth_sizes[0]
