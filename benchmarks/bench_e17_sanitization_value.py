"""E17 (extension) — what sanitization buys.

E11 counts what the sanitizers remove; this experiment measures what
that removal is *worth* by running inference on progressively less
clean corpora: fully sanitized, sanitized without the IXP list (route
server ASNs stay in paths), and raw (prepending, loops and injected
ASNs all left in).  The benchmark measures inference on the raw corpus
(the worst case).
"""

from conftest import write_report

from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.relationships import Relationship
from repro.validation.validator import validate_against_truth

import repro.core.paths as paths_module


def test_e17_sanitization_value(benchmark, medium_run):
    raw = medium_run.corpus.paths
    graph = medium_run.graph

    full = medium_run.paths
    no_ixp = PathSet.sanitize(raw)  # IXP ASNs unknown to the pipeline
    raw_set = PathSet(list(dict.fromkeys(tuple(p) for p in raw)))

    benchmark.pedantic(
        lambda: infer_relationships(raw_set), rounds=2, iterations=1
    )

    lines = ["E17: inference accuracy versus input cleanliness "
             "(medium scenario, oracle-scored)",
             "-" * 66,
             f"{'corpus':<22}{'links':>7}{'overall':>9}{'c2p':>8}{'p2p':>8}"]
    rows = {}
    for name, path_set in (
        ("fully sanitized", full),
        ("no IXP list", no_ixp),
        ("raw (unsanitized)", raw_set),
    ):
        result = infer_relationships(path_set, medium_run.scenario.inference)
        report = validate_against_truth(result, graph)
        rows[name] = report
        lines.append(
            f"{name:<22}{report.total_inferences:>7}"
            f"{report.overall_ppv:>9.4f}"
            f"{report.ppv(Relationship.P2C):>8.4f}"
            f"{report.ppv(Relationship.P2P):>8.4f}"
        )
    lines.append("")
    lines.append(
        "without the IXP list, route-server ASNs appear as fake transit "
        "hops; raw corpora additionally keep loops and injected ASNs"
    )
    write_report("E17_sanitization_value", lines)

    # dirtier corpora label more (phantom) links and score worse; the
    # oracle cannot even judge the route-server adjacencies, so the
    # honest comparisons are the link inflation and the raw-corpus drop
    assert len(no_ixp.links()) > len(full.links())
    assert len(raw_set.links()) > len(no_ixp.links())
    assert (
        rows["raw (unsanitized)"].overall_ppv
        < rows["fully sanitized"].overall_ppv - 0.005
    )
    assert rows["fully sanitized"].overall_ppv >= (
        rows["no IXP list"].overall_ppv - 0.005
    )
