"""Shared benchmark fixtures and the report writer.

Every bench regenerates one of the paper's tables/figures (see
DESIGN.md's per-experiment index).  The rows are printed (visible with
``pytest -s``) and always written to ``benchmarks/reports/E*.txt`` so a
normal ``pytest benchmarks/ --benchmark-only`` run leaves the artifacts
on disk.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Mapping

import pytest

from repro.scenarios import evolution_scenario, get_scenario
from repro.topology.evolution import generate_series
from repro.analysis.timeseries import series_metrics

REPORTS_DIR = os.path.join(os.path.dirname(__file__), "reports")


def write_report(name: str, lines: Iterable[str]) -> str:
    """Persist one experiment's rows; returns the file path."""
    os.makedirs(REPORTS_DIR, exist_ok=True)
    path = os.path.join(REPORTS_DIR, f"{name}.txt")
    text = "\n".join(lines) + "\n"
    with open(path, "w") as handle:
        handle.write(text)
    print(f"\n{text}")
    return path


def write_json_report(name: str, payload: Mapping) -> str:
    """Persist a machine-readable report next to the text ones.

    The perf trajectory across PRs is tracked from these files, so the
    payload should be stable, plain JSON (stage → seconds, sizes).
    """
    os.makedirs(REPORTS_DIR, exist_ok=True)
    path = os.path.join(REPORTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


class ScenarioRun:
    def __init__(self, name: str):
        self.scenario = get_scenario(name)
        self.graph, self.corpus, self.paths, self.result = self.scenario.run()


@pytest.fixture(scope="session")
def medium_run() -> ScenarioRun:
    """The default bench workload (~800 ASes)."""
    return ScenarioRun("medium")


@pytest.fixture(scope="session")
def small_run() -> ScenarioRun:
    return ScenarioRun("small")


@pytest.fixture(scope="session")
def era_series():
    """Longitudinal snapshots + per-era metrics for E5/E8."""
    config = evolution_scenario(eras=5)
    snapshots = generate_series(config)
    metrics = series_metrics(snapshots, vps_per_as=0.06)
    return snapshots, metrics
