"""CI smoke for the query service: build, serve, load, hot-reload.

Builds a ``small``-scenario snapshot, starts the server on an
ephemeral port, drives a short closed-loop load run (must finish with
zero transport/5xx errors and a sane p99), repeats it with path and
what-if traffic mixed in (the compute-pool routes must also finish
error-free), then exercises an atomic hot reload via ``POST
/admin/reload`` while that mixed load is in flight and checks the
served version flipped with no failed requests.

Then the pre-fork fleet legs: a 2-worker mmap-backed fleet must
survive a SIGKILL of one worker mid-load (bounded transport errors,
zero once the supervisor respawns it), and a 4-worker fleet must hot
reload under load with zero failed requests, every worker converging
to the new version — while a corrupt reload target must leave every
worker on the old snapshot.

Exit code 0 on success, 1 with a one-line reason on any failure.

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import signal
import sys
import tempfile
import threading
import time

from repro.asrank import ASRank
from repro.scenarios import get_scenario
from repro.serve.loadgen import LoadGenConfig, run_loadgen
from repro.serve.server import ServerThread
from repro.serve.store import SnapshotStore, save_snapshot
from repro.serve.workers import FleetError, WorkerFleet

REQUESTS = 3_000
CONNECTIONS = 4
P99_BOUND_MS = 250.0  # generous: CI runners are slow and noisy


def _fail(reason: str) -> int:
    print(f"FAIL: {reason}")
    return 1


def fleet_kill_leg(path: str) -> int:
    """2 workers: clean load, SIGKILL one mid-load, clean load again."""
    if not hasattr(os, "fork"):
        print("fleet legs skipped: no fork on this platform")
        return 0
    fleet = WorkerFleet(path, workers=2, mode="mmap",
                        restart_backoff=0.05)
    host, port = fleet.start()
    try:
        clean = run_loadgen(
            LoadGenConfig(host=host, port=port, requests=2_000,
                          connections=CONNECTIONS, seed=11)
        )
        if clean.errors:
            return _fail(f"{clean.errors} errors against a healthy fleet")

        victim = fleet.pids()[0]
        report_box = []
        loader = threading.Thread(
            target=lambda: report_box.append(run_loadgen(
                LoadGenConfig(host=host, port=port, requests=3_000,
                              connections=CONNECTIONS, seed=12)
            ))
        )
        loader.start()
        time.sleep(0.2)  # let the load get going before the kill
        os.kill(victim, signal.SIGKILL)
        loader.join(timeout=120)
        if not report_box:
            return _fail("load run never finished after the worker kill")
        killed = report_box[0]
        # each loadgen connection eats at most one reset from the dying
        # worker, plus possibly one more if its reconnect raced into
        # the dead worker's accept queue before the kernel drained it
        bound = CONNECTIONS * 2
        if killed.errors > bound:
            return _fail(
                f"{killed.errors} errors after killing one worker "
                f"(bound: {bound})"
            )

        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            pids = fleet.pids()
            if len(pids) == 2 and victim not in pids:
                break
            time.sleep(0.05)
        else:
            return _fail("killed worker was never respawned")

        after = run_loadgen(
            LoadGenConfig(host=host, port=port, requests=2_000,
                          connections=CONNECTIONS, seed=13)
        )
        if after.errors:
            return _fail(
                f"{after.errors} errors after the worker respawn"
            )
        print(
            f"fleet kill: {killed.errors} bounded errors at the kill, "
            f"0 errors after respawn (restarts={fleet.restarts})"
        )
    finally:
        fleet.stop()
    return 0


def fleet_reload_leg(path: str, next_path: str, scratch: str) -> int:
    """4 workers: hot reload under load, then a corrupt-target abort."""
    if not hasattr(os, "fork"):
        return 0
    fleet = WorkerFleet(path, workers=4, mode="mmap")
    host, port = fleet.start()
    try:
        old_versions = fleet.versions()
        if len(set(old_versions.values())) != 1:
            return _fail(f"fleet started split: {old_versions}")
        old_version = next(iter(old_versions.values()))

        report_box = []
        loader = threading.Thread(
            target=lambda: report_box.append(run_loadgen(
                LoadGenConfig(host=host, port=port, requests=3_000,
                              connections=CONNECTIONS, seed=21,
                              paths_weight=10, what_if_weight=5)
            ))
        )
        loader.start()
        time.sleep(0.1)
        new_version = fleet.reload(next_path)
        loader.join(timeout=120)
        if not report_box:
            return _fail("load run never finished across the reload")
        if report_box[0].errors:
            return _fail(
                f"{report_box[0].errors} request errors during the "
                f"fleet reload"
            )
        converged = fleet.versions()
        if set(converged.values()) != {new_version}:
            return _fail(f"fleet did not converge: {converged}")
        print(
            f"fleet reload under load: {old_version} -> {new_version} "
            f"on all {len(converged)} workers, 0 failed requests"
        )

        # a corrupt target must leave every worker on the old snapshot
        corrupt = os.path.join(scratch, "corrupt.snap")
        with open(next_path, "rb") as stream:
            blob = bytearray(stream.read())
        blob[-1] ^= 0xFF
        with open(corrupt, "wb") as stream:
            stream.write(bytes(blob))
        try:
            fleet.reload(corrupt)
        except FleetError:
            pass
        else:
            return _fail("corrupt reload target was accepted")
        held = fleet.versions()
        if set(held.values()) != {new_version}:
            return _fail(f"corrupt reload split the fleet: {held}")
        print("fleet reload of a corrupt target: aborted, all workers "
              "held the old version")
    finally:
        fleet.stop()
    return 0


def main() -> int:
    _graph, _corpus, paths, result = get_scenario("small").run()
    facade = ASRank(paths)
    facade._result = result
    snapshot = facade.snapshot(source="scenario:small")

    scratch = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    path = os.path.join(scratch, "small.snap")
    save_snapshot(snapshot, path)

    store = SnapshotStore(snapshot=snapshot, path=path)
    thread = ServerThread(store)
    host, port = thread.start()
    try:
        report = run_loadgen(
            LoadGenConfig(host=host, port=port, requests=REQUESTS,
                          connections=CONNECTIONS, seed=0)
        )
        print(
            f"load: {report.requests} requests -> "
            f"{report.throughput:,.0f} req/s, "
            f"p99 {report.percentile(0.99):.2f}ms, {report.errors} errors"
        )
        if report.errors:
            return _fail(f"{report.errors} errors during the load run")
        if report.requests != REQUESTS:
            return _fail(
                f"only {report.requests}/{REQUESTS} requests completed"
            )
        p99 = report.percentile(0.99)
        if p99 > P99_BOUND_MS:
            return _fail(f"p99 {p99:.1f}ms exceeds {P99_BOUND_MS}ms bound")

        # --- mixed load with path + what-if traffic -------------------
        mixed = run_loadgen(
            LoadGenConfig(host=host, port=port, requests=2_000,
                          connections=CONNECTIONS, seed=7,
                          paths_weight=15, what_if_weight=8)
        )
        print(
            f"mixed load (+paths/what-if): {mixed.requests} requests -> "
            f"{mixed.throughput:,.0f} req/s, "
            f"p99 {mixed.percentile(0.99):.2f}ms, {mixed.errors} errors, "
            f"routes {mixed.by_route.get('paths', 0)} paths / "
            f"{mixed.by_route.get('whatif', 0)} what-if"
        )
        if mixed.errors:
            return _fail(f"{mixed.errors} errors during the mixed run")
        if not mixed.by_route.get("paths") or not mixed.by_route.get(
            "whatif"
        ):
            return _fail("mixed run never reached the path/what-if routes")

        # --- hot reload under concurrent load -------------------------
        old_version = store.current.version
        tiny = get_scenario("tiny").run()
        tiny_facade = ASRank(tiny[2])
        tiny_facade._result = tiny[3]
        next_path = os.path.join(scratch, "next.snap")
        save_snapshot(tiny_facade.snapshot(source="scenario:tiny"),
                      next_path)

        failures = []
        loader = threading.Thread(
            target=lambda: failures.extend(
                ["loadgen"]
                * run_loadgen(
                    # path/what-if traffic stays in the mix while the
                    # snapshot flips underneath it
                    LoadGenConfig(host=host, port=port, requests=2_000,
                                  connections=CONNECTIONS, seed=3,
                                  paths_weight=15, what_if_weight=8)
                ).errors
            )
        )
        loader.start()
        conn = http.client.HTTPConnection(host, port, timeout=30)
        conn.request(
            "POST", "/admin/reload",
            body=json.dumps({"path": next_path}).encode(),
        )
        response = conn.getresponse()
        reload_payload = json.loads(response.read())
        conn.close()
        loader.join(timeout=120)
        if response.status != 200:
            return _fail(f"reload returned {response.status}")
        if failures:
            return _fail(f"{len(failures)} request errors during reload")
        new_version = store.current.version
        if new_version == old_version or (
            new_version != reload_payload.get("version")
        ):
            return _fail(
                f"version did not flip cleanly: {old_version} -> "
                f"{new_version} (reload said "
                f"{reload_payload.get('version')})"
            )
        print(
            f"hot reload under load: {old_version} -> {new_version}, "
            f"0 failed requests"
        )
    finally:
        thread.stop()

    status = fleet_kill_leg(path)
    if status:
        return status
    status = fleet_reload_leg(path, next_path, scratch)
    if status:
        return status

    print("ok: serve smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
