"""E2 — validation data sources (the paper's Table 1).

Rows: links asserted per source, pairwise overlaps, conflicts, and the
share of all inferences each source can judge.  The benchmark measures
corpus assembly (communities mining dominates: it scans every RIB row).
"""

from conftest import write_report

from repro.validation import (
    communities_corpus,
    direct_report_corpus,
    routing_policy_corpus,
    rpsl_corpus,
)


def test_e02_validation_sources(benchmark, medium_run):
    graph, corpus = medium_run.graph, medium_run.corpus

    def build_all():
        return (
            direct_report_corpus(graph)
            .merge(communities_corpus(corpus.rib, graph.ixp_asns()))
            .merge(rpsl_corpus(graph))
            .merge(routing_policy_corpus(graph))
        )

    merged = benchmark.pedantic(build_all, rounds=2, iterations=1)

    by_source = merged.count_by_source()
    observed_links = medium_run.paths.links()
    total_links = len(medium_run.result)

    lines = ["E2: validation data sources (medium scenario)", "-" * 48,
             f"{'source':<14}{'records':>9}{'of inferences':>15}"]
    for source in sorted(by_source):
        pairs = {r.pair for r in merged if r.source == source}
        judged = sum(1 for p in pairs if p in observed_links)
        lines.append(
            f"{source:<14}{by_source[source]:>9}{judged / total_links:>14.1%}"
        )
    lines.append(f"{'merged':<14}{len(merged):>9}")
    lines.append("")
    lines.append("pairwise overlap (links):")
    sources = sorted(by_source)
    for i, a in enumerate(sources):
        for b in sources[i + 1:]:
            lines.append(f"  {a:<12} ∩ {b:<12} {merged.overlap(a, b):>6}")
    conflicted = sum(
        1 for pair in merged.pairs() if merged.is_conflicted(*pair)
    )
    lines.append(f"conflicted links: {conflicted}")
    write_report("E02_validation_sources", lines)

    assert len(by_source) == 4
    assert len(merged) > 200
