"""E6 — algorithm comparison (the paper versus prior work).

Rows: PPV per class for ASRank, Gao (2001), and the naive degree
heuristic, all scored against the planted ground truth on the same
sanitized corpus, plus pairwise agreement.  The benchmark measures
Gao's algorithm (the baseline cost reference).
"""

from conftest import write_report

from repro.baselines import infer_degree, infer_gao
from repro.relationships import Relationship
from repro.validation.validator import agreement_matrix, validate_against_truth


def test_e06_baseline_comparison(benchmark, medium_run):
    paths, graph = medium_run.paths, medium_run.graph

    gao = benchmark.pedantic(lambda: infer_gao(paths), rounds=3, iterations=1)
    degree = infer_degree(paths)

    inferences = {
        "asrank": medium_run.result,
        "gao2001": gao,
        "degree": degree,
    }
    reports = {
        name: validate_against_truth(inf, graph)
        for name, inf in inferences.items()
    }

    lines = ["E6: algorithm comparison (medium scenario, oracle-scored)",
             "-" * 58,
             f"{'algorithm':<10}{'overall':>9}{'c2p PPV':>9}{'p2p PPV':>9}"
             f"{'judged':>8}"]
    for name, report in reports.items():
        lines.append(
            f"{name:<10}{report.overall_ppv:>9.4f}"
            f"{report.ppv(Relationship.P2C):>9.4f}"
            f"{report.ppv(Relationship.P2P):>9.4f}"
            f"{report.validated:>8}"
        )
    lines.append("")
    lines.append("pairwise agreement on commonly labeled links:")
    for (a, b), value in sorted(agreement_matrix(inferences).items()):
        if a != b:
            lines.append(f"  {a:<8} vs {b:<8} {value:.3f}")
    write_report("E06_baselines", lines)

    # the paper's ordering: ASRank wins, and by a real margin over Gao
    assert reports["asrank"].overall_ppv > reports["gao2001"].overall_ppv
    assert reports["asrank"].overall_ppv > reports["degree"].overall_ppv
    assert reports["asrank"].overall_ppv - reports["gao2001"].overall_ppv > 0.02
