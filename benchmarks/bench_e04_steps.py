"""E4 — per-step attribution (the paper's table of how many links each
algorithm step labels, and how accurate each step is).

The benchmark measures the full inference pipeline run.
"""

from conftest import write_report

from repro.core.inference import infer_relationships
from repro.validation import validate_against_truth


def test_e04_step_attribution(benchmark, medium_run):
    paths = medium_run.paths

    result = benchmark.pedantic(
        lambda: infer_relationships(paths, medium_run.scenario.inference),
        rounds=3, iterations=1,
    )

    oracle = validate_against_truth(result, medium_run.graph)
    # re-score with step attribution
    from repro.validation import validate
    from repro.validation.ground_truth import ValidationCorpus, ValidationRecord
    from repro.relationships import Relationship

    corpus = ValidationCorpus()
    for a, b in result.links():
        rel = medium_run.graph.relationship(a, b)
        if rel is None:
            continue
        provider = (
            medium_run.graph.provider_of(a, b)
            if rel is Relationship.P2C
            else None
        )
        corpus.add(ValidationRecord(a=a, b=b, relationship=rel,
                                    provider=provider, source="oracle"))
    report = validate(result, corpus, step_lookup=result.step_of)

    total = len(result)
    counts = {step.value: n for step, n in result.counts_by_step().items()}
    lines = ["E4: links labeled per pipeline step (medium scenario)",
             "-" * 56,
             f"{'step':<18}{'links':>7}{'share':>8}{'PPV':>8}"]
    for step, n in sorted(counts.items(), key=lambda kv: -kv[1]):
        metrics = report.by_step.get(step)
        ppv = f"{metrics.ppv:.4f}" if metrics and metrics.total else "  n/a"
        lines.append(f"{step:<18}{n:>7}{n / total:>7.1%}{ppv:>9}")
    lines.append("")
    lines.append(f"paths discarded as poisoned: {result.discarded_poisoned}")
    lines.append(f"conflicting votes recorded : {len(result.conflicts)}")
    write_report("E04_steps", lines)

    # the paper's shape: the top-down step labels the majority of links
    top_step = max(counts, key=counts.get)
    assert top_step in ("top-down", "partial VP")
    assert sum(counts.values()) == total
