"""E1 — BGP corpus summary (the paper's data-section table).

Rows: vantage points (full/partial), raw and unique paths, observed
ASes and links, RIB entries.  The benchmark measures a full collection
pass (propagation over every origin + path materialization), the
pipeline's data-plane cost.
"""

from conftest import write_report

from repro.analysis.metrics import snapshot_summary
from repro.bgp.collector import Collector
from repro.scenarios import get_scenario


def test_e01_corpus_summary(benchmark, medium_run):
    scenario = get_scenario("small")
    graph = scenario.build_graph()

    def collect_snapshot():
        return Collector(graph, scenario.collector).run()

    benchmark.pedantic(collect_snapshot, rounds=2, iterations=1)

    summary = snapshot_summary(medium_run.corpus, medium_run.paths)
    lines = ["E1: BGP corpus summary (medium scenario)", "-" * 44]
    for key in (
        "vps", "full_feeds", "partial_feeds", "raw_paths",
        "unique_paths", "ases", "links", "rib_entries",
    ):
        lines.append(f"{key:<16}{summary[key]:>10}")
    write_report("E01_corpus", lines)

    assert summary["unique_paths"] > 1000
    assert summary["ases"] > 700
