"""E13 (extension) — vantage-point sensitivity.

The paper attributes most residual inference error to limited
visibility.  This bench sweeps the number of vantage points on a fixed
topology and reports p2p link coverage and PPV per class — making the
visibility→accuracy mechanism quantitative.  The benchmark measures
one collection+inference round at the smallest VP count.
"""

from conftest import write_report

from repro.analysis.metrics import true_link_coverage
from repro.bgp.collector import Collector, CollectorConfig
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.relationships import Relationship
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.validation.validator import validate_against_truth

VP_COUNTS = (8, 16, 32, 64)


def _run(graph, n_vps):
    corpus = Collector(graph, CollectorConfig(n_vps=n_vps, seed=7)).run()
    paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
    result = infer_relationships(paths)
    report = validate_against_truth(result, graph)
    coverage = true_link_coverage(paths, graph)
    return report, coverage


def test_e13_vp_sensitivity(benchmark):
    graph = generate_topology(GeneratorConfig(n_ases=800, seed=1234))

    benchmark.pedantic(lambda: _run(graph, VP_COUNTS[0]),
                       rounds=2, iterations=1)

    lines = ["E13: accuracy versus vantage-point count (800 ASes)",
             "-" * 58,
             f"{'VPs':>4}{'p2p links seen':>16}{'c2p PPV':>10}{'p2p PPV':>10}"]
    series = []
    for n_vps in VP_COUNTS:
        report, coverage = _run(graph, n_vps)
        series.append((n_vps, coverage["p2p"], report))
        lines.append(
            f"{n_vps:>4}{coverage['p2p']:>15.1%}"
            f"{report.ppv(Relationship.P2C):>10.4f}"
            f"{report.ppv(Relationship.P2P):>10.4f}"
        )
    write_report("E13_vp_sensitivity", lines)

    # visibility grows monotonically with VP count...
    visibilities = [cov for _, cov, _ in series]
    assert visibilities == sorted(visibilities)
    # ...and accuracy improves from the sparsest to the densest deployment
    first, last = series[0][2], series[-1][2]
    assert last.ppv(Relationship.P2P) > first.ppv(Relationship.P2P)
    assert last.overall_ppv >= first.overall_ppv
