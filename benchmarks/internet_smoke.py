"""CI smoke for the internet-scale stack: 10k-AS power-law world
through the shared-memory collection pool.

Not a timing check (check_regression.py owns that) — a correctness
gate for the three internet-scale pieces working together:

* the linear-time power-law generator produces a valid world;
* the zero-copy shared-memory transport yields a corpus bit-identical
  to serial collection (and to the pickle transport when shared
  memory is unavailable);
* every shared segment is unlinked afterwards — no ``/dev/shm`` leaks.

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/internet_smoke.py
"""

from __future__ import annotations

import os
import random
import sys
import time
from dataclasses import replace

from repro.bgp.collector import Collector, CollectorConfig, shutdown_pool
from repro.bgp.propagation import PropagationConfig
from repro.graph import HAS_SHARED_MEMORY
from repro.topology.generator import (
    InternetScaleConfig,
    generate_internet_topology,
)

N_ASES = 10_000
N_ORIGINS = 120
WORKERS = 2


def _corpus_key(corpus):
    return (
        corpus.paths,
        corpus.path_counts,
        [(r.vp, r.prefix, r.path, r.communities) for r in corpus.rib],
    )


def _shm_entries():
    if not os.path.isdir("/dev/shm"):
        return set()
    return {f for f in os.listdir("/dev/shm") if f.startswith("repro_rg_")}


def main() -> int:
    start = time.perf_counter()
    graph = generate_internet_topology(
        InternetScaleConfig(n_ases=N_ASES, seed=42)
    )
    problems = graph.validate_invariants()
    if problems:
        print("FAIL: generated world violates invariants:")
        for line in problems[:10]:
            print(f"  {line}")
        return 1
    print(
        f"generated {N_ASES}-AS world in {time.perf_counter() - start:.2f}s "
        f"({graph.num_links()} links, {len(graph.via_ixp)} via IXP)"
    )

    config = CollectorConfig(
        n_vps=20,
        seed=1,
        n_route_leakers=2,
        propagation=PropagationConfig(array_state=True, batch_size=64),
    )
    origins = sorted(
        random.Random(7).sample(sorted(a.asn for a in graph.ases()), N_ORIGINS)
    )

    serial = Collector(graph, config).run(origins=origins)
    print(
        f"serial collection: {len(serial.paths)} paths "
        f"from {N_ORIGINS} origins"
    )

    parallel_config = replace(config, workers=WORKERS)
    collector = Collector(graph, parallel_config)
    parallel = collector.run(origins=origins)
    transport = (
        "shared-memory"
        if collector._shared_segment is not None
        else "pickle (shared memory unavailable)"
    )
    print(f"parallel collection via {transport}, workers={WORKERS}")
    if HAS_SHARED_MEMORY and collector._shared_segment is None:
        print("FAIL: shared memory available but the pool did not use it")
        return 1

    if _corpus_key(parallel) != _corpus_key(serial):
        print("FAIL: parallel corpus differs from serial")
        return 1
    print("ok: parallel corpus bit-identical to serial")

    collector.release_shared()
    shutdown_pool()
    leaked = _shm_entries()
    if leaked:
        print(f"FAIL: leaked shared-memory segments: {sorted(leaked)}")
        return 1
    print("ok: no shared-memory segments leaked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
