"""E0 (harness) — pipeline scaling.

Not a paper artifact: a cost profile of every pipeline stage across
topology sizes, so users know what a workload costs before running it.
The profile comes from the :mod:`repro.perf` recorder (the pipeline is
instrumented end to end), and lands in two artifacts:

* ``reports/E00_scale.txt`` — the human-readable stage table;
* ``reports/BENCH_e00.json`` — stage → seconds plus corpus sizes and
  the frozen seed-code baseline, so the perf trajectory stays
  machine-trackable across PRs.
"""

import random
import time

from conftest import write_json_report, write_report

from repro import perf
from repro.bgp.collector import Collector, CollectorConfig
from repro.bgp.propagation import PropagationConfig
from repro.core.cone import ConeDefinition, compute_cones
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.scenarios import get_scenario
from repro.topology.generator import (
    GeneratorConfig,
    InternetScaleConfig,
    generate_internet_topology,
    generate_topology,
)

SIZES = (300, 800, 1500)

# The internet-scale point: a 100k-AS power-law world with a sampled
# origin set (collecting all 100k origins is a capacity run, not a
# benchmark).  The sample is seeded, so the workload is identical
# across report regenerations.
INTERNET_ASES = 100_000
INTERNET_ORIGINS = 400

# A downscaled replica of the internet workload, cheap enough for
# check_regression.py to replay min-of-3 on every run.  Committing its
# collect time here gives the regression leg an exact-workload
# baseline instead of extrapolating from the 100k point.
INTERNET_SMOKE_ASES = 10_000
INTERNET_SMOKE_ORIGINS = 150


def internet_smoke_workload():
    """The (graph, config, origins) triple the regression leg replays."""
    graph = generate_internet_topology(
        InternetScaleConfig(n_ases=INTERNET_SMOKE_ASES, seed=42)
    )
    config = CollectorConfig(
        n_vps=20,
        seed=1,
        propagation=PropagationConfig(array_state=True, batch_size=64),
    )
    origins = sorted(
        random.Random(7).sample(
            sorted(a.asn for a in graph.ases()), INTERNET_SMOKE_ORIGINS
        )
    )
    return graph, config, origins

# The committed E00 numbers of the seed implementation (BFS cycle
# checks, set-based cones, serial collection) on this workload, frozen
# when the fast-path engine landed.  The acceptance gate for that PR
# compared `infer` + `cones` at the 1500-AS scale against these.
SEED_BASELINE = {
    "300": {"generate": 0.016, "propagate+collect": 0.083,
            "sanitize": 0.007, "infer": 0.062, "cones": 0.004},
    "800": {"generate": 0.071, "propagate+collect": 0.452,
            "sanitize": 0.038, "infer": 0.374, "cones": 0.024},
    "1500": {"generate": 0.271, "propagate+collect": 1.709,
             "sanitize": 0.170, "infer": 1.549, "cones": 0.114},
}

# `propagate+collect` as committed by the PR that landed the fast-path
# engine (per-origin reference sweeps, per-run fork pool).  Frozen on
# that PR's machine, which was measurably faster than the one that
# produced the current report — so the 1500-AS point was re-measured
# (min of 3) on this report's machine with that PR's exact collector
# code, and the headline `speedup_collect_1500` uses the same-machine
# number.  The same-run `reference_collect_1500` ratio is also
# recorded: it isolates the batched engine itself, with every other
# collector optimization held constant.
PR2_COLLECT_BASELINE = {"300": 0.0747, "800": 0.3572, "1500": 1.4639}
PR2_COLLECT_1500_SAME_MACHINE = 2.262


def _profile(n_ases: int, measure_reference: bool = False):
    """One full pipeline run at ``n_ases``, profiled stage by stage.

    With ``measure_reference`` the collection is re-run through the
    per-origin reference sweeps (``PropagationConfig(batched=False)``)
    to get a same-machine, same-run speedup denominator for the
    batched engine.
    """
    recorder = perf.PerfRecorder()
    with perf.use_recorder(recorder):
        with perf.stage("generate"):
            graph = generate_topology(GeneratorConfig(n_ases=n_ases, seed=99))
        config = CollectorConfig(n_vps=max(12, n_ases // 35), seed=1)
        corpus = Collector(graph, config).run()
        with perf.stage("sanitize"):
            paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
        result = infer_relationships(paths)
        compute_cones(result, ConeDefinition.PROVIDER_PEER_OBSERVED)

    reference_collect = None
    if measure_reference:
        from dataclasses import replace
        slow = replace(config, propagation=PropagationConfig(batched=False))
        start = time.perf_counter()
        Collector(graph, slow).run()
        reference_collect = time.perf_counter() - start

    flat = recorder.flat()
    timings = {
        "generate": flat["generate"],
        "propagate+collect": flat["collect"],
        "sanitize": flat["sanitize"],
        "infer": flat["infer"],
        "cones": flat["cones"],
    }
    substages = {
        key: seconds for key, seconds in flat.items() if "/" in key
    }
    return timings, substages, len(paths), len(result), reference_collect


def _profile_internet():
    """The 100k-AS pipeline, profiled stage by stage.

    Uses the internet-scale configuration end to end: the linear-time
    power-law generator, ``array_state`` RouteState rows (int32 slices
    instead of 120M-element Python lists), and 64-origin propagation
    blocks (the measured sweet spot at stride 2**17).
    """
    recorder = perf.PerfRecorder()
    with perf.use_recorder(recorder):
        with perf.stage("generate"):
            graph = generate_internet_topology(
                InternetScaleConfig(n_ases=INTERNET_ASES, seed=42)
            )
        config = CollectorConfig(
            n_vps=40,
            seed=1,
            propagation=PropagationConfig(array_state=True, batch_size=64),
        )
        origins = sorted(
            random.Random(7).sample(
                sorted(a.asn for a in graph.ases()), INTERNET_ORIGINS
            )
        )
        corpus = Collector(graph, config).run(origins=origins)
        with perf.stage("sanitize"):
            paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
        result = infer_relationships(paths)
        compute_cones(result, ConeDefinition.PROVIDER_PEER_OBSERVED)

    flat = recorder.flat()
    timings = {
        "generate": flat["generate"],
        "propagate+collect": flat["collect"],
        "sanitize": flat["sanitize"],
        "infer": flat["infer"],
        "cones": flat["cones"],
    }
    substages = {key: sec for key, sec in flat.items() if "/" in key}
    return timings, substages, len(paths), len(result)


def test_e00_scaling(benchmark):
    scenario = get_scenario("small")
    benchmark.pedantic(scenario.run, rounds=2, iterations=1)

    lines = ["E0: pipeline stage wall time (seconds)", "-" * 70,
             f"{'ASes':>6}{'paths':>8}{'links':>7}"
             f"{'generate':>10}{'collect':>9}{'sanitize':>10}"
             f"{'infer':>8}{'cones':>8}"]
    rows = []
    sizes_json = {}
    reference_collect = {}
    for n_ases in SIZES:
        timings, substages, n_paths, n_links, reference = _profile(
            n_ases, measure_reference=(n_ases in (300, 1500))
        )
        if reference is not None:
            reference_collect[n_ases] = reference
        rows.append((n_ases, timings))
        sizes_json[str(n_ases)] = {
            "paths": n_paths,
            "links": n_links,
            "stages": {k: round(v, 4) for k, v in timings.items()},
            "substages": {k: round(v, 4) for k, v in substages.items()},
        }
        lines.append(
            f"{n_ases:>6}{n_paths:>8}{n_links:>7}"
            f"{timings['generate']:>10.3f}{timings['propagate+collect']:>9.3f}"
            f"{timings['sanitize']:>10.3f}{timings['infer']:>8.3f}"
            f"{timings['cones']:>8.3f}"
        )
    inet_timings, inet_substages, inet_paths, inet_links = _profile_internet()
    smoke_graph, smoke_config, smoke_origins = internet_smoke_workload()
    smoke_collect = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        Collector(smoke_graph, smoke_config).run(origins=smoke_origins)
        smoke_collect = min(smoke_collect, time.perf_counter() - start)
    smoke_collect = round(smoke_collect, 4)
    lines.append(
        f"{INTERNET_ASES:>6}{inet_paths:>8}{inet_links:>7}"
        f"{inet_timings['generate']:>10.3f}"
        f"{inet_timings['propagate+collect']:>9.3f}"
        f"{inet_timings['sanitize']:>10.3f}{inet_timings['infer']:>8.3f}"
        f"{inet_timings['cones']:>8.3f}"
        f"  ({INTERNET_ORIGINS} sampled origins)"
    )

    batched_1500 = rows[-1][1]["propagate+collect"]
    reference_1500 = reference_collect[1500]
    lines.append("-" * 70)
    lines.append(
        f"collect@1500: batched {batched_1500:.3f}s, reference engine "
        f"{reference_1500:.3f}s ({reference_1500 / batched_1500:.2f}x), "
        f"PR2 collector {PR2_COLLECT_1500_SAME_MACHINE:.3f}s "
        f"({PR2_COLLECT_1500_SAME_MACHINE / batched_1500:.2f}x)"
    )
    write_report("E00_scale", lines)

    seed_hot = (SEED_BASELINE["1500"]["infer"]
                + SEED_BASELINE["1500"]["cones"])
    now = rows[-1][1]
    now_hot = now["infer"] + now["cones"]
    write_json_report("BENCH_e00", {
        "experiment": "E00",
        "workload": "generate/collect/sanitize/infer/cones at "
                    "n_ases in (300, 800, 1500), seeds (99, 1)",
        "seed_baseline": SEED_BASELINE,
        "pr2_collect_baseline": PR2_COLLECT_BASELINE,
        "pr2_collect_1500_same_machine": PR2_COLLECT_1500_SAME_MACHINE,
        "current": sizes_json,
        "speedup_infer_cones_1500": round(seed_hot / now_hot, 2),
        # headline: batched collection vs the PR2 collector, both
        # measured on the machine that produced this report
        "speedup_collect_1500": round(
            PR2_COLLECT_1500_SAME_MACHINE / batched_1500, 2
        ),
        # same-run isolation of the batched engine: the per-origin
        # reference sweeps on the identical workload, with every other
        # collector optimization held constant.  The 300-AS number also
        # calibrates machine speed in check_regression.py.
        "reference_collect_300": round(reference_collect[300], 4),
        "reference_collect_1500": round(reference_1500, 4),
        "speedup_collect_vs_reference_1500": round(
            reference_1500 / batched_1500, 2
        ),
        # the internet-scale point: 100k-AS power-law world, sampled
        # origins, array_state collection.  check_regression.py's
        # internet leg tracks this workload at a downscaled size.
        "internet": {
            "n_ases": INTERNET_ASES,
            "origins_sampled": INTERNET_ORIGINS,
            "paths": inet_paths,
            "links": inet_links,
            "stages": {k: round(v, 4) for k, v in inet_timings.items()},
            "substages": {
                k: round(v, 4) for k, v in inet_substages.items()
            },
            "total": round(sum(inet_timings.values()), 4),
        },
        "internet_smoke": {
            "n_ases": INTERNET_SMOKE_ASES,
            "origins_sampled": INTERNET_SMOKE_ORIGINS,
            "collect": smoke_collect,
        },
    })

    # collection and inference dominate the cost profile, and the full
    # pipeline stays laptop-friendly at the largest benchmark scale
    for _, timings in rows:
        heavy = timings["propagate+collect"] + timings["infer"]
        assert heavy >= 0.5 * sum(timings.values())
    total_large = sum(rows[-1][1].values())
    assert total_large < 120.0
    # the 100k world must stay interactive — single-digit seconds warm,
    # with wide headroom for machine variance (this box swings ~2x)
    assert sum(inet_timings.values()) < 60.0
