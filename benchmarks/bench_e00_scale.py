"""E0 (harness) — pipeline scaling.

Not a paper artifact: a cost profile of every pipeline stage across
topology sizes, so users know what a workload costs before running it.
The benchmark measures the full small-scenario pipeline; the table
reports per-stage wall times at three scales.
"""

import time

from conftest import write_report

from repro.bgp.collector import Collector, CollectorConfig
from repro.core.cone import ConeDefinition, compute_cones
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.scenarios import get_scenario
from repro.topology.generator import GeneratorConfig, generate_topology

SIZES = (300, 800, 1500)


def _profile(n_ases: int):
    timings = {}
    start = time.perf_counter()
    graph = generate_topology(GeneratorConfig(n_ases=n_ases, seed=99))
    timings["generate"] = time.perf_counter() - start

    start = time.perf_counter()
    corpus = Collector(
        graph, CollectorConfig(n_vps=max(12, n_ases // 35), seed=1)
    ).run()
    timings["propagate+collect"] = time.perf_counter() - start

    start = time.perf_counter()
    paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
    timings["sanitize"] = time.perf_counter() - start

    start = time.perf_counter()
    result = infer_relationships(paths)
    timings["infer"] = time.perf_counter() - start

    start = time.perf_counter()
    compute_cones(result, ConeDefinition.PROVIDER_PEER_OBSERVED)
    timings["cones"] = time.perf_counter() - start
    return timings, len(paths), len(result)


def test_e00_scaling(benchmark):
    scenario = get_scenario("small")
    benchmark.pedantic(scenario.run, rounds=2, iterations=1)

    lines = ["E0: pipeline stage wall time (seconds)", "-" * 70,
             f"{'ASes':>6}{'paths':>8}{'links':>7}"
             f"{'generate':>10}{'collect':>9}{'sanitize':>10}"
             f"{'infer':>8}{'cones':>8}"]
    rows = []
    for n_ases in SIZES:
        timings, n_paths, n_links = _profile(n_ases)
        rows.append((n_ases, timings))
        lines.append(
            f"{n_ases:>6}{n_paths:>8}{n_links:>7}"
            f"{timings['generate']:>10.3f}{timings['propagate+collect']:>9.3f}"
            f"{timings['sanitize']:>10.3f}{timings['infer']:>8.3f}"
            f"{timings['cones']:>8.3f}"
        )
    write_report("E00_scale", lines)

    # collection and inference dominate the cost profile, and the full
    # pipeline stays laptop-friendly at the largest benchmark scale
    for _, timings in rows:
        heavy = timings["propagate+collect"] + timings["infer"]
        assert heavy >= 0.5 * sum(timings.values())
    total_large = sum(rows[-1][1].values())
    assert total_large < 120.0
