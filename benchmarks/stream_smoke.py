"""CI smoke for live-stream ingest: MRT updates in, hot publishes out.

Builds a ``small``-scenario RIB, seeds a :class:`StreamIngestor` with
three fifths of it, and writes the rest as a BGP4MP UPDATE dump.  The
dump is then streamed batch by batch into the ingestor while a
closed-loop load run hammers the single server the ingestor publishes
into:

* every mid-stream hot publish must land with zero request errors;
* after every publish the served ``/snapshot`` version must equal the
  version the ingestor just published;
* the ``/stream`` route must report the ingest counters;
* the final served version must be bit-identical to a one-shot batch
  build over the full RIB (the family 10 contract, end to end).

Then the fleet leg (skipped without ``fork``): the final snapshot
boots a 2-worker mmap fleet, a :class:`FleetPublisher` pushes one more
streamed change through the two-phase coordinated reload under load,
and every worker must converge on the new version with zero failed
requests.

Exit code 0 on success, 1 with a one-line reason on any failure.

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/stream_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
import time
from urllib.request import urlopen

from bench_stream import rows_from_rib
from repro.mrt.reader import UpdateRecord
from repro.mrt.updates import COLLECTOR_ASN, iter_update_batches, write_update_dump
from repro.net.prefix import Prefix
from repro.scenarios import get_scenario
from repro.serve.loadgen import LoadGenConfig, run_loadgen
from repro.serve.server import ServerThread
from repro.serve.store import SnapshotStore, save_snapshot
from repro.serve.workers import WorkerFleet
from repro.stream import FleetPublisher, StorePublisher, StreamIngestor, asrank_from_rib_rows

REQUESTS = 5_000
CONNECTIONS = 4


def _fail(reason: str) -> int:
    print(f"FAIL: {reason}")
    return 1


def _get(host: str, port: int, route: str) -> dict:
    with urlopen(f"http://{host}:{port}{route}", timeout=10) as response:
        return json.load(response)


def fleet_leg(ingestor: StreamIngestor, scratch: str) -> int:
    """Stream one more change through a 2-worker coordinated reload."""
    if not hasattr(os, "fork"):
        print("fleet leg skipped: no fork on this platform")
        return 0
    path = os.path.join(scratch, "stream.snap")
    save_snapshot(ingestor.live.snapshot, path)
    fleet = WorkerFleet(path, workers=2, mode="mmap")
    host, port = fleet.start()
    try:
        ingestor.publisher = FleetPublisher(fleet, path)
        donor = next(row for row in ingestor.corpus.rows() if row.as_path)
        report_box = []
        loader = threading.Thread(
            target=lambda: report_box.append(run_loadgen(
                LoadGenConfig(host=host, port=port, requests=3_000,
                              connections=CONNECTIONS, seed=23)
            ))
        )
        loader.start()
        time.sleep(0.1)
        ingestor.apply_batch([
            UpdateRecord(
                peer_asn=donor.peer_asn,
                local_asn=COLLECTOR_ASN,
                as_path=donor.as_path,
                announced=(Prefix.parse("198.51.100.0/24"),),
                communities=donor.communities,
            )
        ])
        snapshot = ingestor.publish()
        loader.join(timeout=120)
        if not report_box:
            return _fail("fleet load run never finished")
        if report_box[0].errors:
            return _fail(
                f"{report_box[0].errors} request errors during the "
                f"fleet publish"
            )
        converged = fleet.versions()
        if set(converged.values()) != {snapshot.version}:
            return _fail(f"fleet did not converge: {converged}")
        print(
            f"fleet publish under load: all {len(converged)} workers on "
            f"{snapshot.version}, 0 failed requests "
            f"(mode={ingestor.stats.last_publish_mode})"
        )
    finally:
        fleet.stop()
    return 0


def main() -> int:
    graph, corpus, _paths, _result = get_scenario("small").run()
    entries = list(corpus.rib)
    cut = len(entries) * 3 // 5
    scratch = tempfile.mkdtemp(prefix="repro-stream-smoke-")
    dump = os.path.join(scratch, "updates.mrt")
    write_update_dump(dump, entries[cut:])

    ingestor = StreamIngestor(
        ixp_asns=graph.ixp_asns(),
        base_rows=rows_from_rib(entries[:cut]),
    )
    first = ingestor.publish()
    store = SnapshotStore(snapshot=first)
    ingestor.publisher = StorePublisher(store)

    # ~4 update batches -> >=4 mid-stream hot publishes under load
    held = sum(1 for _ in iter_update_batches(dump, batch_size=1))
    batch_size = max(1, held // 4)

    thread = ServerThread(store, ingest_status=ingestor.status)
    host, port = thread.start()
    try:
        if _get(host, port, "/snapshot")["version"] != first.version:
            return _fail("server did not start on the seeded snapshot")

        report_box = []
        loader = threading.Thread(
            target=lambda: report_box.append(run_loadgen(
                LoadGenConfig(host=host, port=port, requests=REQUESTS,
                              connections=CONNECTIONS, seed=31)
            ))
        )
        loader.start()
        time.sleep(0.1)  # let the load get going before streaming

        hot_publishes = 0
        for batch in iter_update_batches(dump, batch_size=batch_size):
            ingestor.apply_batch(batch)
            snapshot = ingestor.publish()
            hot_publishes += 1
            served = _get(host, port, "/snapshot")["version"]
            if served != snapshot.version:
                return _fail(
                    f"served version {served} did not converge to the "
                    f"published {snapshot.version}"
                )
        loader.join(timeout=120)

        if hot_publishes < 2:
            return _fail(f"only {hot_publishes} mid-stream hot publishes")
        if not report_box:
            return _fail("load run never finished during streaming")
        report = report_box[0]
        if report.errors:
            return _fail(
                f"{report.errors} request errors across {hot_publishes} "
                f"hot publishes"
            )
        if report.requests != REQUESTS:
            return _fail(
                f"only {report.requests}/{REQUESTS} requests completed"
            )

        status = _get(host, port, "/stream")
        if status["publishes"] != ingestor.stats.publishes:
            return _fail(f"/stream counters out of sync: {status}")
        if status["serving_version"] != ingestor.stats.last_publish_version:
            return _fail(f"/stream serving_version stale: {status}")

        batch_built = asrank_from_rib_rows(
            rows_from_rib(entries), ixp_asns=graph.ixp_asns()
        ).snapshot(source=ingestor.source)
        final = _get(host, port, "/snapshot")["version"]
        if final != batch_built.version:
            return _fail(
                f"streamed version {final} != batch-built "
                f"{batch_built.version} over the same RIB"
            )
        print(
            f"streamed {status['updates']} updates in "
            f"{status['batches']} batches: {hot_publishes} hot publishes "
            f"({status['delta_publishes']} delta / "
            f"{status['full_publishes']} full), "
            f"{report.requests} requests, 0 errors, "
            f"final version == batch build"
        )
    finally:
        thread.stop()

    status = fleet_leg(ingestor, scratch)
    if status:
        return status

    print("ok: stream smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
