"""Graph-core benchmark: snapshot build time on the medium world.

Measures what the shared columnar core (``repro.graph``) bought the
snapshot builder.  Before the core existed, ``Snapshot.build``
re-derived a sorted ASN index from the path corpus and re-encoded
every cone set into bitsets; now it adopts the facade's ``RelGraph``
index and the ``CustomerCones`` bitsets zero-copy, so the build is
mostly link packing and rank-row conversion.

Two timings, min-of-N over the 800-AS ``medium`` scenario:

* **cold** — a fresh facade per round: inference + all three cone
  definitions + the rank table + the snapshot compile (the end-to-end
  cost a pipeline pays);
* **warm** — cones and ranks prewarmed, so the round times the
  snapshot compile itself (the part the zero-copy refactor targets).

Writes ``reports/BENCH_graph.json`` next to the committed pre-core
baseline (captured on the same machine right before the refactor) and
a ``calibration`` workload number so ``check_regression.py`` can
rescale the committed numbers on other machines.

Usage::

    PYTHONPATH=src python benchmarks/bench_graph.py
"""

from __future__ import annotations

import json
import os
import time

from repro.asrank import ASRank
from repro.core.cone import ConeDefinition
from repro.scenarios import get_scenario
from repro.serve.loadgen import calibration_workload
from repro.serve.snapshot import Snapshot

ROUNDS = 5
REPORT = os.path.join(
    os.path.dirname(__file__), "reports", "BENCH_graph.json"
)

#: measured immediately before the graph-core refactor (same machine
#: that committed the current numbers): Snapshot.build re-indexed the
#: corpus and re-encoded every cone set on every call
PRE_CORE_BASELINE = {
    "build_cold_seconds": 0.04163,
    "build_warm_seconds": 0.01422,
    "calibration": 0.14185,
}


def _facade(paths, result):
    facade = ASRank(paths)
    facade._result = result
    return facade


def bench() -> dict:
    _graph, _corpus, paths, result = get_scenario("medium").run()

    cold = float("inf")
    for _ in range(ROUNDS):
        facade = _facade(paths, result)
        # a fresh facade recomputes cones/ranks, but shares the result:
        # drop the cached RelGraph so every round pays the full compile
        if hasattr(result, "_rel_graph"):
            del result._rel_graph
        facade._cones = {}
        start = time.perf_counter()
        Snapshot.build(facade)
        cold = min(cold, time.perf_counter() - start)

    facade = _facade(paths, result)
    for definition in ConeDefinition:
        facade.cones(definition)
    facade.rank()
    warm = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        snapshot = Snapshot.build(facade)
        warm = min(warm, time.perf_counter() - start)

    return {
        "scenario": "medium",
        "ases": len(snapshot.asns),
        "version": snapshot.version,
        "build_cold_seconds": round(cold, 5),
        "build_warm_seconds": round(warm, 5),
        "calibration": round(calibration_workload(), 5),
        "pre_core_baseline": PRE_CORE_BASELINE,
    }


def main() -> None:
    report = bench()
    with open(REPORT, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    base = report["pre_core_baseline"]
    for key in ("build_cold_seconds", "build_warm_seconds"):
        before, after = base[key], report[key]
        speedup = before / after if after else float("inf")
        print(f"{key}: {before:.5f}s -> {after:.5f}s ({speedup:.2f}x)")
    print(f"wrote {REPORT}")


if __name__ == "__main__":
    main()
