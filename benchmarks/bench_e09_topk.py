"""E9 — top-k ASes by customer cone (the paper's AS-rank table).

Rows: the fifteen largest cones with sizes in ASes, prefixes and IPv4
addresses, plus inferred neighbor counts — the asrank.caida.org row
format.  The benchmark measures the ranking computation including
prefix/address cone sizing.
"""

from conftest import write_report

from repro.core.cone import ConeDefinition, CustomerCones
from repro.core.rank import rank_ases


def test_e09_top_k(benchmark, medium_run):
    prefixes = {a.asn: a.prefixes for a in medium_run.graph.ases()}
    cones = CustomerCones.compute(
        medium_run.result,
        ConeDefinition.PROVIDER_PEER_OBSERVED,
        prefixes_by_asn=prefixes,
    )

    entries = benchmark.pedantic(
        lambda: rank_ases(medium_run.result, cones, limit=15),
        rounds=3, iterations=1,
    )

    lines = ["E9: top 15 ASes by customer cone (medium scenario)",
             "-" * 74,
             f"{'rank':>4} {'asn':>6} {'cone':>6} {'pfx':>6} {'addresses':>12} "
             f"{'transit':>8} {'cust':>5} {'peer':>5} {'prov':>5}"]
    for e in entries:
        lines.append(
            f"{e.rank:>4} {e.asn:>6} {e.cone_ases:>6} {e.cone_prefixes:>6} "
            f"{e.cone_addresses:>12,} {e.transit_degree:>8} "
            f"{e.num_customers:>5} {e.num_peers:>5} {e.num_providers:>5}"
        )
    clique = set(medium_run.graph.clique_asns())
    hits = sum(1 for e in entries[:10] if e.asn in clique)
    lines.append("")
    lines.append(f"tier-1 networks among the top 10: {hits}/10")
    write_report("E09_topk", lines)

    # shape: cone sizes non-increasing; tier-1s dominate the top
    sizes = [e.cone_ases for e in entries]
    assert sizes == sorted(sizes, reverse=True)
    assert hits >= 6
    assert all(e.cone_addresses > 0 for e in entries)
