"""E15 (extension) — path-prediction validation.

Rebuild the routing system from each algorithm's inferred labels and
try to re-derive the observed paths — the field's classic end-to-end
sanity check (used since Gao 2001).  Better relationships predict more
observed paths exactly and leave fewer (VP, origin) pairs unreachable.
The benchmark measures one full prediction run for ASRank.
"""

from conftest import write_report

from repro.baselines import infer_degree, infer_gao
from repro.core.prediction import predict_paths

MAX_ORIGINS = 120


def test_e15_path_prediction(benchmark, medium_run):
    observed = medium_run.paths.paths

    asrank = benchmark.pedantic(
        lambda: predict_paths(medium_run.result, observed,
                              max_origins=MAX_ORIGINS),
        rounds=2, iterations=1,
    )
    gao = predict_paths(infer_gao(medium_run.paths), observed,
                        max_origins=MAX_ORIGINS)
    degree = predict_paths(infer_degree(medium_run.paths), observed,
                           max_origins=MAX_ORIGINS)

    lines = ["E15: path prediction from inferred relationships "
             f"(medium scenario, {asrank.compared} paths)",
             "-" * 62,
             f"{'algorithm':<10}{'exact':>8}{'same len':>10}"
             f"{'reachable':>11}"]
    for name, report in (("asrank", asrank), ("gao2001", gao),
                         ("degree", degree)):
        lines.append(
            f"{name:<10}{report.exact_rate:>8.1%}"
            f"{report.length_rate:>10.1%}{report.reachability:>11.1%}"
        )
    write_report("E15_prediction", lines)

    assert asrank.exact_rate > gao.exact_rate
    assert asrank.exact_rate > degree.exact_rate
    assert asrank.reachability > 0.9
