"""E16 (extension) — IPv4/IPv6 relationship congruence.

The authors' follow-on question (PAM 2015): is the inferred
relationship between two networks the same in both address families?
Collect and infer each plane independently over one ground-truth
topology with partial v6 adoption, then compare link by link.  The
benchmark measures a full v6-plane collection+inference round.
"""

from conftest import write_report

from repro.analysis.congruence import congruence_report
from repro.bgp.collector import Collector, CollectorConfig
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.topology.generator import GeneratorConfig, generate_topology


def _infer_plane(graph, plane):
    config = CollectorConfig(n_vps=24, seed=5)
    corpus = Collector(graph, config, plane=plane).run()
    paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
    return infer_relationships(paths)


def test_e16_congruence(benchmark):
    graph = generate_topology(GeneratorConfig(n_ases=700, seed=2015))

    result_v6 = benchmark.pedantic(
        lambda: _infer_plane(graph, "v6"), rounds=2, iterations=1
    )
    result_v4 = _infer_plane(graph, "v4")
    report = congruence_report(result_v4, result_v6)

    lines = ["E16: IPv4/IPv6 relationship congruence (700 ASes, "
             f"{len(graph.v6_asns())} v6-enabled)",
             "-" * 60,
             f"dual links          {report.dual_links:>7}",
             f"congruent           {report.congruent:>7}  "
             f"({report.congruence:.1%}; PAM'15: ~96-97%)",
             f"v4-only links       {report.v4_only:>7}",
             f"v6-only links       {report.v6_only:>7}",
             "",
             "agreement by relationship class (dual links):"]
    for rel, (total, agree) in sorted(report.by_relationship.items()):
        lines.append(f"  {rel:<6} {agree}/{total} ({agree / total:.1%})")
    if report.disagreements:
        lines.append("")
        lines.append("disagreement matrix (v4 label → v6 label):")
        for (v4_label, v6_label), count in sorted(
            report.disagreements.items(), key=lambda kv: -kv[1]
        )[:5]:
            lines.append(f"  {v4_label} → {v6_label}: {count}")
    lines.append("")
    lines.append(f"clique v4: {report.clique_v4}")
    lines.append(f"clique v6: {report.clique_v6} "
                 f"(jaccard {report.clique_jaccard:.2f})")
    write_report("E16_congruence", lines)

    # the PAM'15 shape: dual links overwhelmingly congruent, the v4
    # plane sees far more links, and the cliques largely coincide
    assert report.congruence > 0.9
    assert report.v4_only > report.v6_only
    assert report.clique_jaccard > 0.5
