"""E14 (extension) — robustness to route leaks.

Route leaks put valleys in observed paths, violating the algorithm's
central assumption.  This bench sweeps the number of leaking ASes and
reports accuracy, quantifying graceful degradation.  The benchmark
measures a leak-burdened collection round.
"""

from conftest import write_report

from repro.bgp.collector import Collector, CollectorConfig
from repro.core.inference import infer_relationships
from repro.core.paths import PathSet
from repro.relationships import Relationship
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.validation.validator import validate_against_truth

LEAKER_COUNTS = (0, 2, 5, 10)


def _run(graph, n_leakers):
    config = CollectorConfig(
        n_vps=24, seed=7, n_route_leakers=n_leakers,
        leak_origin_fraction=0.15,
    )
    corpus = Collector(graph, config).run()
    paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
    result = infer_relationships(paths)
    return validate_against_truth(result, graph)


def test_e14_leak_robustness(benchmark):
    graph = generate_topology(GeneratorConfig(n_ases=600, seed=77))

    benchmark.pedantic(lambda: _run(graph, LEAKER_COUNTS[-1]),
                       rounds=2, iterations=1)

    lines = ["E14: accuracy versus route-leaking ASes (600 ASes, 24 VPs)",
             "-" * 60,
             f"{'leakers':>8}{'overall':>10}{'c2p PPV':>10}{'p2p PPV':>10}"]
    series = []
    for n_leakers in LEAKER_COUNTS:
        report = _run(graph, n_leakers)
        series.append(report)
        lines.append(
            f"{n_leakers:>8}{report.overall_ppv:>10.4f}"
            f"{report.ppv(Relationship.P2C):>10.4f}"
            f"{report.ppv(Relationship.P2P):>10.4f}"
        )
    write_report("E14_leaks", lines)

    clean, worst = series[0], series[-1]
    # leaks hurt, but degradation is graceful: the pipeline keeps the
    # hierarchy broadly right even with ten misbehaving networks
    assert clean.overall_ppv >= worst.overall_ppv - 0.01
    assert worst.ppv(Relationship.P2C) > 0.85
    assert worst.overall_ppv > 0.80
