"""Serving benchmark: snapshot build/load costs and sustained QPS.

Builds the ``medium``-scenario snapshot, measures the compile /
serialize / load legs, then drives the asyncio server with the
closed-loop load generator and records sustained throughput and
latency percentiles into ``reports/BENCH_serve.json``.

The committed JSON is the regression baseline for
``check_regression.py``: alongside the throughput it stores a
``calibration`` number — the wall time of a fixed pure-python workload
(:func:`repro.serve.loadgen.calibration_workload`) on the machine that
produced the report — so a slower CI runner rescales the committed
throughput instead of flagging phantom regressions.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

from repro.asrank import ASRank
from repro.scenarios import get_scenario
from repro.serve.loadgen import (
    LoadGenConfig,
    calibration_workload,
    run_loadgen,
)
from repro.serve.server import ServerThread
from repro.serve.store import SnapshotStore, load_snapshot, save_snapshot

SCENARIO = "medium"
REQUESTS = 30_000
CONNECTIONS = 8
REPORT_FILE = os.path.join(
    os.path.dirname(__file__), "reports", "BENCH_serve.json"
)


def main() -> int:
    print(f"building {SCENARIO} scenario ...")
    _graph, _corpus, paths, result = get_scenario(SCENARIO).run()
    facade = ASRank(paths)
    facade._result = result

    start = time.perf_counter()
    snapshot = facade.snapshot(source=f"scenario:{SCENARIO}")
    build_seconds = time.perf_counter() - start

    scratch = tempfile.mkdtemp(prefix="repro-bench-serve-")
    path = os.path.join(scratch, f"{SCENARIO}.snap")
    start = time.perf_counter()
    save_snapshot(snapshot, path)
    save_seconds = time.perf_counter() - start
    size_bytes = os.path.getsize(path)

    start = time.perf_counter()
    load_snapshot(path)
    load_eager_seconds = time.perf_counter() - start
    start = time.perf_counter()
    load_snapshot(path, lazy=True)
    load_lazy_seconds = time.perf_counter() - start

    store = SnapshotStore(snapshot=snapshot, path=path)
    thread = ServerThread(store)
    host, port = thread.start()
    try:
        # short warmup fills the response cache before the timed run
        run_loadgen(
            LoadGenConfig(host=host, port=port, requests=2_000,
                          connections=CONNECTIONS, seed=1)
        )
        report = run_loadgen(
            LoadGenConfig(host=host, port=port, requests=REQUESTS,
                          connections=CONNECTIONS, seed=2)
        )
        metrics = thread.server.metrics.view()
    finally:
        thread.stop()

    calibration = calibration_workload()

    payload = {
        "scenario": SCENARIO,
        "snapshot": {
            "version": snapshot.version,
            "ases": len(snapshot),
            "bytes": size_bytes,
            "build_seconds": round(build_seconds, 4),
            "save_seconds": round(save_seconds, 4),
            "load_eager_seconds": round(load_eager_seconds, 4),
            "load_lazy_seconds": round(load_lazy_seconds, 4),
        },
        "load": {
            "requests": report.requests,
            "connections": report.connections,
            "errors": report.errors,
            "not_found": report.not_found,
            "seconds": round(report.seconds, 4),
            "throughput_rps": round(report.throughput, 1),
            "p50_ms": round(report.percentile(0.50), 3),
            "p99_ms": round(report.percentile(0.99), 3),
            "cache_hit_rate": metrics["cache"]["hit_rate"],
        },
        "calibration": round(calibration, 4),
    }

    os.makedirs(os.path.dirname(REPORT_FILE), exist_ok=True)
    with open(REPORT_FILE, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"snapshot {snapshot.version}: {len(snapshot)} ASes, "
        f"{size_bytes} bytes, build {build_seconds:.3f}s, "
        f"save {save_seconds:.3f}s, load {load_eager_seconds:.3f}s "
        f"(lazy {load_lazy_seconds:.3f}s)"
    )
    print(
        f"load: {report.requests} requests / {report.connections} conns "
        f"-> {report.throughput:,.0f} req/s, p50 "
        f"{report.percentile(0.50):.2f}ms, p99 "
        f"{report.percentile(0.99):.2f}ms, {report.errors} errors, "
        f"cache hit rate {metrics['cache']['hit_rate']:.0%}"
    )
    print(f"calibration workload: {calibration:.4f}s")
    print(f"wrote {REPORT_FILE}")

    if report.errors:
        print(f"FAIL: {report.errors} transport/5xx errors during the run")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
