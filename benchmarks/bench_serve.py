"""Serving benchmark: snapshot build/load costs and sustained QPS.

Builds the ``medium``-scenario snapshot, measures the compile /
serialize / load legs, drives the asyncio server with the closed-loop
load generator, then measures the path-prediction endpoints (cold
per-origin propagation vs route-table-cached queries, against a plain
``/asns/{asn}`` yardstick) and records everything into
``reports/BENCH_serve.json``.

The committed JSON is the regression baseline for
``check_regression.py``: alongside the throughput it stores a
``calibration`` number — the wall time of a fixed pure-python workload
(:func:`repro.serve.loadgen.calibration_workload`) on the machine that
produced the report — so a slower CI runner rescales the committed
throughput instead of flagging phantom regressions.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

from repro.asrank import ASRank
from repro.scenarios import get_scenario
from repro.serve.loadgen import (
    LoadGenConfig,
    calibration_workload,
    run_loadgen,
    run_loadgen_procs,
)
from repro.serve.server import ServerThread
from repro.serve.store import SnapshotStore, load_snapshot, save_snapshot
from repro.serve.workers import WorkerFleet, memory_stats

SCENARIO = "medium"
REQUESTS = 30_000
CONNECTIONS = 8
WORKER_COUNTS = (1, 2, 4, 8)
WORKER_REQUESTS = 4_000  # per load generator; two generators per leg
LOADGEN_PROCS = 2
REPORT_FILE = os.path.join(
    os.path.dirname(__file__), "reports", "BENCH_serve.json"
)
PATH_DSTS = 24
PATH_SRCS_PER_DST = 8


def _percentile(samples, q):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def paths_leg(store):
    """Cold vs route-table-cached path latency, plus an /asns yardstick.

    Runs against a fresh server (empty response cache and route-table
    LRU) so every sample is a first request for its URL: ``cold``
    queries pay one ``propagate_batch`` per new origin, ``warm``
    queries (same destination, different source) hit the cached route
    table, and the ``asn`` yardstick is the plain per-AS lookup the
    committed throughput baselines are built from.  Sequential on one
    connection — these are service times, not queue times.
    """
    import http.client

    asns = store.current.asns
    step = max(1, len(asns) // PATH_DSTS)
    dsts = asns[::step][:PATH_DSTS]
    srcs = asns[1::step][:PATH_SRCS_PER_DST] or asns[:1]

    thread = ServerThread(store)
    host, port = thread.start()
    conn = http.client.HTTPConnection(host, port, timeout=30)
    errors = 0

    def timed(target):
        nonlocal errors
        start = time.perf_counter()
        conn.request("GET", target)
        response = conn.getresponse()
        response.read()
        if response.status != 200:
            errors += 1
        return (time.perf_counter() - start) * 1000.0

    cold, warm, asn_ms = [], [], []
    try:
        # spin up the connection and the compute-pool threads before
        # timing anything; the sacrificial origin is not in the sample
        spinup = next(a for a in reversed(asns) if a not in dsts)
        for _ in range(20):
            timed(f"/paths/{srcs[0]}/{spinup}")
            timed(f"/asns/{srcs[0]}")
        errors = 0
        for dst in dsts:
            cold.append(timed(f"/paths/{srcs[0]}/{dst}"))
            for src in srcs[1:]:
                if src != dst:
                    warm.append(timed(f"/paths/{src}/{dst}"))
        for asn in asns[: len(warm)]:
            asn_ms.append(timed(f"/asns/{asn}"))
    finally:
        conn.close()
        thread.stop()

    return {
        "errors": errors,
        "cold_samples": len(cold),
        "warm_samples": len(warm),
        "cold_p50_ms": round(_percentile(cold, 0.50), 3),
        "cold_p99_ms": round(_percentile(cold, 0.99), 3),
        "warm_p50_ms": round(_percentile(warm, 0.50), 3),
        "warm_p99_ms": round(_percentile(warm, 0.99), 3),
        "asn_p50_ms": round(_percentile(asn_ms, 0.50), 3),
        "asn_p99_ms": round(_percentile(asn_ms, 0.99), 3),
    }


def workers_leg(path: str, size_bytes: int) -> dict:
    """Fan the load generator out against 1/2/4/8 pre-fork workers.

    Every fleet maps the same snapshot file read-only (``mode="mmap"``)
    so the per-worker ``private_kb`` column is the proof of page
    sharing: it must stay far below the snapshot size no matter how
    many workers fault the payload in.  ``scaling_efficiency`` is
    throughput relative to perfect linear scaling over the 1-worker
    point; on a single-CPU machine every multi-worker point is
    expected to sit near ``1 / workers`` — ``cpus`` is recorded so
    consumers (``check_regression.py``) can tell the difference
    between a contended box and a real regression.
    """
    legs = []
    single_rps = None
    for count in WORKER_COUNTS:
        fleet = WorkerFleet(path, workers=count, mode="mmap")
        host, port = fleet.start()
        try:
            run_loadgen(
                LoadGenConfig(host=host, port=port, requests=1_000,
                              connections=CONNECTIONS, seed=3)
            )
            report = run_loadgen_procs(
                LoadGenConfig(host=host, port=port,
                              requests=WORKER_REQUESTS,
                              connections=CONNECTIONS, seed=4),
                procs=LOADGEN_PROCS,
            )
            stats = [memory_stats(pid) for pid in fleet.pids()]
            reuse_port = fleet.reuse_port
        finally:
            fleet.stop()
        if single_rps is None:
            single_rps = report.throughput
        stats = [entry for entry in stats if entry is not None]
        per_worker = None
        if stats:
            per_worker = {
                key: round(sum(s[key] for s in stats) / len(stats), 1)
                for key in ("rss_kb", "pss_kb", "private_kb", "shared_kb")
            }
        legs.append({
            "workers": count,
            "reuse_port": reuse_port,
            "requests": report.requests,
            "errors": report.errors,
            "seconds": round(report.seconds, 4),
            "throughput_rps": round(report.throughput, 1),
            "p50_ms": round(report.percentile(0.50), 3),
            "p99_ms": round(report.percentile(0.99), 3),
            "scaling_efficiency": round(
                report.throughput / (count * single_rps), 3
            ),
            "memory_per_worker": per_worker,
        })
        line = (
            f"workers={count}: {report.throughput:,.0f} req/s, "
            f"p50 {report.percentile(0.50):.2f}ms, "
            f"p99 {report.percentile(0.99):.2f}ms, "
            f"{report.errors} errors, "
            f"efficiency {legs[-1]['scaling_efficiency']:.2f}"
        )
        if per_worker:
            line += (
                f", private {per_worker['private_kb']:.0f} kB/worker "
                f"(snapshot {size_bytes // 1024} kB)"
            )
        print(line)
    return {
        "cpus": os.cpu_count(),
        "loadgen_procs": LOADGEN_PROCS,
        "snapshot_bytes": size_bytes,
        "legs": legs,
    }


def main() -> int:
    print(f"building {SCENARIO} scenario ...")
    _graph, _corpus, paths, result = get_scenario(SCENARIO).run()
    facade = ASRank(paths)
    facade._result = result

    start = time.perf_counter()
    snapshot = facade.snapshot(source=f"scenario:{SCENARIO}")
    build_seconds = time.perf_counter() - start

    scratch = tempfile.mkdtemp(prefix="repro-bench-serve-")
    path = os.path.join(scratch, f"{SCENARIO}.snap")
    start = time.perf_counter()
    save_snapshot(snapshot, path)
    save_seconds = time.perf_counter() - start
    size_bytes = os.path.getsize(path)

    start = time.perf_counter()
    load_snapshot(path)
    load_eager_seconds = time.perf_counter() - start
    start = time.perf_counter()
    load_snapshot(path, lazy=True)
    load_lazy_seconds = time.perf_counter() - start
    start = time.perf_counter()
    load_snapshot(path, mode="mmap")
    load_mmap_seconds = time.perf_counter() - start

    store = SnapshotStore(snapshot=snapshot, path=path)
    thread = ServerThread(store)
    host, port = thread.start()
    try:
        # short warmup fills the response cache before the timed run
        run_loadgen(
            LoadGenConfig(host=host, port=port, requests=2_000,
                          connections=CONNECTIONS, seed=1)
        )
        report = run_loadgen(
            LoadGenConfig(host=host, port=port, requests=REQUESTS,
                          connections=CONNECTIONS, seed=2)
        )
        metrics = thread.server.metrics.view()
    finally:
        thread.stop()

    paths_report = paths_leg(store)

    print("worker fleet scaling ...")
    workers_report = workers_leg(path, size_bytes)

    calibration = calibration_workload()

    payload = {
        "scenario": SCENARIO,
        "snapshot": {
            "version": snapshot.version,
            "ases": len(snapshot),
            "bytes": size_bytes,
            "build_seconds": round(build_seconds, 4),
            "save_seconds": round(save_seconds, 4),
            "load_eager_seconds": round(load_eager_seconds, 4),
            "load_lazy_seconds": round(load_lazy_seconds, 4),
            "load_mmap_seconds": round(load_mmap_seconds, 4),
        },
        "load": {
            "requests": report.requests,
            "connections": report.connections,
            "errors": report.errors,
            "not_found": report.not_found,
            "seconds": round(report.seconds, 4),
            "throughput_rps": round(report.throughput, 1),
            "p50_ms": round(report.percentile(0.50), 3),
            "p99_ms": round(report.percentile(0.99), 3),
            "cache_hit_rate": metrics["cache"]["hit_rate"],
        },
        "paths": paths_report,
        "workers": workers_report,
        "calibration": round(calibration, 4),
    }

    os.makedirs(os.path.dirname(REPORT_FILE), exist_ok=True)
    with open(REPORT_FILE, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"snapshot {snapshot.version}: {len(snapshot)} ASes, "
        f"{size_bytes} bytes, build {build_seconds:.3f}s, "
        f"save {save_seconds:.3f}s, load {load_eager_seconds:.3f}s "
        f"(lazy {load_lazy_seconds:.3f}s, mmap {load_mmap_seconds:.3f}s)"
    )
    print(
        f"load: {report.requests} requests / {report.connections} conns "
        f"-> {report.throughput:,.0f} req/s, p50 "
        f"{report.percentile(0.50):.2f}ms, p99 "
        f"{report.percentile(0.99):.2f}ms, {report.errors} errors, "
        f"cache hit rate {metrics['cache']['hit_rate']:.0%}"
    )
    print(
        f"paths: cold p50 {paths_report['cold_p50_ms']:.2f}ms / "
        f"p99 {paths_report['cold_p99_ms']:.2f}ms, "
        f"warm p50 {paths_report['warm_p50_ms']:.2f}ms / "
        f"p99 {paths_report['warm_p99_ms']:.2f}ms, "
        f"asn yardstick p99 {paths_report['asn_p99_ms']:.2f}ms"
    )
    print(f"calibration workload: {calibration:.4f}s")
    print(f"wrote {REPORT_FILE}")

    if report.errors:
        print(f"FAIL: {report.errors} transport/5xx errors during the run")
        return 1
    if paths_report["errors"]:
        print(f"FAIL: {paths_report['errors']} non-200s in the paths leg")
        return 1
    worker_errors = sum(leg["errors"] for leg in workers_report["legs"])
    if worker_errors:
        print(f"FAIL: {worker_errors} errors across the worker legs")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
