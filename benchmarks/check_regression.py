"""Bench-regression smoke checks: collection pipeline and serving.

Two checks, each failing — exit code 1 — on a >``TOLERANCE``
regression against the committed report:

* the E00 300-AS scale point's `propagate+collect` time vs
  ``reports/BENCH_e00.json`` (the cheapest point, a few hundred
  milliseconds);
* the internet-scale smoke: collection over a 10k-AS power-law world
  (a downscaled replica of the 100k point) vs the ``internet_smoke``
  time committed in ``reports/BENCH_e00.json`` — guards the
  internet-scale hot paths (``array_state`` rows, 64-origin blocks,
  the linear-time generator);
* the query service's sustained throughput on a ``small``-scenario
  snapshot vs the ``medium``-snapshot throughput committed in
  ``reports/BENCH_serve.json``;
* the path-prediction endpoints: committed warm (route-table-cached)
  path p99 must sit within 2x of the ``/asns/{asn}`` yardstick, and a
  live re-measure must show cached tables beating cold per-origin
  propagation;
* the warm ``Snapshot.build`` time on the ``medium`` scenario vs
  ``reports/BENCH_graph.json`` — guards the graph core's zero-copy
  build path (the snapshot adopts the facade's ``RelGraph`` index and
  cone bitsets instead of re-indexing);
* pre-fork worker scaling: on runners with >=4 CPUs a 2-worker mmap
  fleet must beat the 1-worker throughput by >=1.6x, both measured
  live on the same machine (skipped, with a message, on smaller
  runners where workers time-slice one core);
* the stream-ingest path: on a live ``small``-scenario ingestor,
  delta-eligible UPDATE batches must apply >=3x faster than a full
  recompute over the same final table (self-calibrated — both legs
  run on this machine), and the streamed snapshot version must equal
  the batch recompute's;
* the era timeline: committed delta eras must store <=35% of their
  full-snapshot bytes and committed warm historical-read p99 must sit
  within 2x of the latest-read p99; a small timeline is then rebuilt
  and served live — the storage ratio is machine-independent, and the
  live historical/latest comparison is self-calibrated because both
  legs run interleaved on this runner.

The committed baselines and the CI runner are different machines, so
the committed numbers are first rescaled by a calibration ratio.  The
collection check replays the same workload through the per-origin
reference engine, whose cost is engine-independent across this repo's
history, and uses measured/committed reference time as the machine
factor.  The serve check reruns the fixed pure-python
``calibration_workload`` recorded alongside the committed throughput.
Without that, a slower runner would flag phantom regressions and a
faster one would mask real ones.

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/check_regression.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import replace

from repro.bgp.collector import Collector, CollectorConfig
from repro.bgp.propagation import PropagationConfig
from repro.topology.generator import GeneratorConfig, generate_topology

N_ASES = 300
ROUNDS = 3
TOLERANCE = 0.25  # fail on >25% regression
BASELINE_FILE = os.path.join(
    os.path.dirname(__file__), "reports", "BENCH_e00.json"
)
SERVE_BASELINE_FILE = os.path.join(
    os.path.dirname(__file__), "reports", "BENCH_serve.json"
)
SERVE_REQUESTS = 5_000
SERVE_CONNECTIONS = 4
GRAPH_BASELINE_FILE = os.path.join(
    os.path.dirname(__file__), "reports", "BENCH_graph.json"
)
GRAPH_ROUNDS = 5
WORKER_MIN_SPEEDUP = 1.6  # 2-worker floor, only gated on >=4-CPU runners
TIMELINE_BASELINE_FILE = os.path.join(
    os.path.dirname(__file__), "reports", "BENCH_timeline.json"
)
TIMELINE_DELTA_RATIO_MAX = 0.35  # delta eras vs their full snapshots
TIMELINE_WARM_FACTOR = 2.0  # committed historical p99 vs latest p99
TIMELINE_LIVE_FACTOR = 3.0  # live re-measure, absorbs runner noise
TIMELINE_LIVE_EPSILON_MS = 0.25  # sub-ms samples need an absolute floor
STREAM_MIN_SPEEDUP = 3.0  # delta apply vs full apply, small dirty region


def _collect_seconds(graph, config) -> float:
    """Min-of-N wall time of one collection run."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        Collector(graph, config).run()
        best = min(best, time.perf_counter() - start)
    return best


def check_internet(factor: float) -> int:
    """Internet-smoke leg: 10k power-law world, calibrated.

    Replays the exact ``internet_smoke`` workload the committed report
    measured (same seeds, same sampled origins) and reuses the machine
    factor the 300-AS leg already computed — the reference engine's
    cost ratio calibrates any workload on the same pair of machines.
    The tolerance is doubled: origin-sampled internet worlds are
    noisier than the dense 300-AS point.
    """
    from bench_e00_scale import internet_smoke_workload

    with open(BASELINE_FILE) as handle:
        baseline = json.load(handle)
    smoke = baseline.get("internet_smoke")
    if not smoke:
        print("skip: no internet_smoke baseline committed yet")
        return 0
    committed = smoke["collect"]

    graph, config, origins = internet_smoke_workload()
    measured = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        Collector(graph, config).run(origins=origins)
        measured = min(measured, time.perf_counter() - start)

    tolerance = 2 * TOLERANCE
    allowed = committed * factor * (1.0 + tolerance)
    print(
        f"internet collect @ {smoke['n_ases']} ASes, "
        f"{len(origins)} origins: measured {measured:.4f}s, "
        f"committed {committed:.4f}s, machine factor {factor:.2f}, "
        f"allowed {allowed:.4f}s"
    )
    if measured > allowed:
        print(
            f"REGRESSION: {measured:.4f}s exceeds the committed baseline "
            f"by more than {tolerance:.0%} (machine-adjusted) — an "
            f"internet-scale hot path has regressed"
        )
        return 1
    print("ok: internet-scale collection within the regression budget")
    return 0


def check_serve() -> int:
    """Serve-throughput leg: small snapshot, calibrated vs committed."""
    from repro.asrank import ASRank
    from repro.scenarios import get_scenario
    from repro.serve.loadgen import (
        LoadGenConfig,
        calibration_workload,
        run_loadgen,
    )
    from repro.serve.server import ServerThread
    from repro.serve.store import SnapshotStore

    with open(SERVE_BASELINE_FILE) as handle:
        baseline = json.load(handle)
    committed_rps = baseline["load"]["throughput_rps"]
    committed_cal = baseline["calibration"]

    _graph, _corpus, paths, result = get_scenario("small").run()
    facade = ASRank(paths)
    facade._result = result
    store = SnapshotStore(snapshot=facade.snapshot())
    thread = ServerThread(store)
    host, port = thread.start()
    try:
        run_loadgen(  # warmup fills the response cache
            LoadGenConfig(host=host, port=port, requests=500,
                          connections=SERVE_CONNECTIONS, seed=1)
        )
        report = run_loadgen(
            LoadGenConfig(host=host, port=port, requests=SERVE_REQUESTS,
                          connections=SERVE_CONNECTIONS, seed=2)
        )
    finally:
        thread.stop()

    if report.errors:
        print(f"REGRESSION: {report.errors} serve errors during the run")
        return 1

    # a machine `factor` > 1 means this runner is slower than the one
    # that committed the baseline, so it owes proportionally less QPS
    factor = calibration_workload() / committed_cal if committed_cal else 1.0
    allowed = committed_rps / factor * (1.0 - TOLERANCE)

    print(
        f"serve throughput: measured {report.throughput:,.0f} req/s, "
        f"committed {committed_rps:,.0f} req/s (medium snapshot), "
        f"machine factor {factor:.2f}, floor {allowed:,.0f} req/s"
    )
    if report.throughput < allowed:
        print(
            f"REGRESSION: {report.throughput:,.0f} req/s is more than "
            f"{TOLERANCE:.0%} below the committed baseline "
            f"(machine-adjusted)"
        )
        return 1
    print("ok: serve throughput within the regression budget")
    return 0


def check_paths() -> int:
    """Path-latency leg: the route-table cache must keep warm queries
    near the plain per-AS lookup cost.

    Two gates.  The committed ``medium`` numbers must show warm path
    p99 within 2x of the ``/asns/{asn}`` yardstick p99 — that is the
    criterion the route-table cache exists to meet.  Then the same leg
    is re-measured live on a ``small`` snapshot: warm queries must
    stay under 3x the live yardstick (the looser bound absorbs runner
    noise on sub-millisecond samples; a broken table cache puts warm
    at cold's level, an order of magnitude out) and the warm median
    must actually beat the cold median.
    """
    from bench_serve import paths_leg

    from repro.asrank import ASRank
    from repro.scenarios import get_scenario
    from repro.serve.store import SnapshotStore

    with open(SERVE_BASELINE_FILE) as handle:
        baseline = json.load(handle)
    committed = baseline.get("paths")
    if not committed:
        print("skip: no paths baseline committed yet")
        return 0
    if committed["warm_p99_ms"] > 2 * committed["asn_p99_ms"]:
        print(
            f"REGRESSION: committed warm path p99 "
            f"{committed['warm_p99_ms']}ms exceeds 2x the committed "
            f"/asns yardstick p99 {committed['asn_p99_ms']}ms — "
            f"re-run bench_serve.py on a healthy engine"
        )
        return 1

    _graph, _corpus, paths, result = get_scenario("small").run()
    facade = ASRank(paths)
    facade._result = result
    measured = paths_leg(SnapshotStore(snapshot=facade.snapshot()))

    print(
        f"paths (small snapshot): cold p50 {measured['cold_p50_ms']}ms, "
        f"warm p50 {measured['warm_p50_ms']}ms / "
        f"p99 {measured['warm_p99_ms']}ms, "
        f"asn yardstick p99 {measured['asn_p99_ms']}ms "
        f"(committed medium: warm p99 {committed['warm_p99_ms']}ms / "
        f"yardstick {committed['asn_p99_ms']}ms)"
    )
    if measured["errors"]:
        print(f"REGRESSION: {measured['errors']} non-200s in the paths leg")
        return 1
    if measured["warm_p99_ms"] > 3 * measured["asn_p99_ms"]:
        print(
            "REGRESSION: warm path p99 is more than 3x the /asns "
            "yardstick — route-table caching is not being hit"
        )
        return 1
    if measured["warm_p50_ms"] >= measured["cold_p50_ms"]:
        print(
            "REGRESSION: warm path median is no faster than cold — "
            "cached route tables are not cheaper than a fresh propagation"
        )
        return 1
    print("ok: warm path queries ride the route-table cache")
    return 0


def check_timeline() -> int:
    """Timeline leg: delta storage stays small, historical reads stay
    near latest reads.

    The committed gates: delta eras at <=35% of their full-snapshot
    bytes, and warm historical-read p99 within 2x of latest-read p99.
    Then a small two-era timeline is rebuilt here: its storage ratio
    must meet the same 35% bound (byte counts are machine-independent),
    and a live serving run — historical and latest legs interleaved on
    one connection — must keep warm historical p99 under 3x the live
    latest p99 plus a small absolute epsilon for sub-millisecond noise.
    """
    import tempfile

    from bench_timeline import history_leg

    from repro.serve.store import save_snapshot
    from repro.timeline import build_timeline, era_snapshots, save_timeline
    from repro.topology.evolution import Era, EvolutionConfig, generate_series

    with open(TIMELINE_BASELINE_FILE) as handle:
        baseline = json.load(handle)
    committed_ratio = baseline["timeline"]["delta_ratio"]
    if committed_ratio > TIMELINE_DELTA_RATIO_MAX:
        print(
            f"REGRESSION: committed delta ratio {committed_ratio:.1%} "
            f"exceeds {TIMELINE_DELTA_RATIO_MAX:.0%} — delta encoding "
            f"is not earning its keep; re-run bench_timeline.py"
        )
        return 1
    committed = baseline["serving"]
    if committed["warm_p99_ms"] > TIMELINE_WARM_FACTOR * committed[
        "latest_p99_ms"
    ]:
        print(
            f"REGRESSION: committed historical warm p99 "
            f"{committed['warm_p99_ms']}ms exceeds "
            f"{TIMELINE_WARM_FACTOR:.0f}x the committed latest p99 "
            f"{committed['latest_p99_ms']}ms"
        )
        return 1

    config = EvolutionConfig(
        base=GeneratorConfig(n_ases=80, seed=5, clique_size=4),
        eras=[
            Era(label="e1", new_ases=20, peering_boost=0.02),
            Era(label="e2", new_ases=25, peering_boost=0.03),
        ],
    )
    pairs = era_snapshots(generate_series(config))
    scratch = tempfile.mkdtemp(prefix="repro-check-timeline-")
    timeline = build_timeline(pairs)
    path = os.path.join(scratch, "small.tln")
    save_timeline(timeline, path)

    delta_stored = delta_full = 0
    for index, (_label, snapshot) in enumerate(pairs):
        if timeline.eras[index].kind != "delta":
            continue
        full = os.path.join(scratch, f"era{index}.snap")
        save_snapshot(snapshot, full)
        delta_stored += timeline.era_bytes(index)
        delta_full += os.path.getsize(full)
    live_ratio = delta_stored / delta_full if delta_full else 0.0
    print(
        f"timeline (live 3-era build): delta ratio {live_ratio:.1%} "
        f"(committed {committed_ratio:.1%}, bound "
        f"{TIMELINE_DELTA_RATIO_MAX:.0%})"
    )
    if live_ratio > TIMELINE_DELTA_RATIO_MAX:
        print(
            f"REGRESSION: live delta ratio {live_ratio:.1%} exceeds "
            f"{TIMELINE_DELTA_RATIO_MAX:.0%}"
        )
        return 1

    measured = history_leg(path, samples=120)
    allowed = (
        TIMELINE_LIVE_FACTOR * measured["latest_p99_ms"]
        + TIMELINE_LIVE_EPSILON_MS
    )
    print(
        f"timeline serving: latest p99 {measured['latest_p99_ms']}ms, "
        f"historical warm p99 {measured['warm_p99_ms']}ms "
        f"(allowed {allowed:.3f}ms)"
    )
    if measured["errors"]:
        print(f"REGRESSION: {measured['errors']} non-200s in the timeline leg")
        return 1
    if measured["warm_p99_ms"] > allowed:
        print(
            "REGRESSION: warm historical reads are not riding the "
            "era cache — p99 is far above the latest-read cost"
        )
        return 1
    print("ok: delta storage small, historical reads near latest reads")
    return 0


def check_stream() -> int:
    """Stream-ingest leg: delta apply must beat full apply by >=3x.

    Re-measured live on the ``small`` scenario, so no cross-machine
    calibration is needed: a seeded ingestor streams delta-eligible
    batches (the committed ``BENCH_stream.json`` construction) and the
    mean incremental apply time — sanitize, delta checks and commit,
    snapshot encode excluded — must undercut a cold full recompute
    over the same final table by ``STREAM_MIN_SPEEDUP``x.  Guards the
    whole incremental path: the sorted-key table, the memoized
    sanitizer and ``try_delta``'s zero-new-links fast path.
    """
    import statistics

    from bench_stream import delta_eligible_batches, rows_from_rib
    from repro.scenarios import get_scenario
    from repro.stream import StreamIngestor

    graph, corpus, _paths, _result = get_scenario("small").run()
    rows = rows_from_rib(corpus.rib)
    ingestor = StreamIngestor(ixp_asns=graph.ixp_asns(), base_rows=rows)
    ingestor.publish()

    applies = []
    for batch in delta_eligible_batches(ingestor, n_batches=4):
        ingestor.apply_batch(batch)
        ingestor.publish()
        if ingestor.stats.last_publish_mode == "delta":
            applies.append(ingestor.stats.last_apply_seconds)
    if not applies:
        print(
            "REGRESSION: no delta publishes on the small scenario — "
            "every batch fell back to a full recompute "
            f"({dict(ingestor.stats.fallbacks)})"
        )
        return 1

    recompute = StreamIngestor(
        ixp_asns=graph.ixp_asns(), base_rows=ingestor.corpus.rows()
    )
    recompute.publish()
    if (
        recompute.stats.last_publish_version
        != ingestor.stats.last_publish_version
    ):
        print(
            "REGRESSION: streamed snapshot version diverged from the "
            "batch recompute over the same table"
        )
        return 1

    delta_mean = statistics.mean(applies)
    full_apply = recompute.stats.last_apply_seconds
    speedup = full_apply / delta_mean if delta_mean else float("inf")
    print(
        f"stream ingest: delta apply mean {delta_mean * 1000:.1f}ms over "
        f"{len(applies)} publishes, full apply {full_apply * 1000:.1f}ms, "
        f"speedup {speedup:.2f}x (floor {STREAM_MIN_SPEEDUP}x)"
    )
    if speedup < STREAM_MIN_SPEEDUP:
        print(
            f"REGRESSION: incremental apply speedup {speedup:.2f}x is "
            f"below the {STREAM_MIN_SPEEDUP}x floor — the delta path "
            "is paying batch-recompute costs (memoized sanitizer or "
            "zero-new-links checks regressed?)"
        )
        return 1
    print("ok: stream delta apply within the regression budget")
    return 0


def check_workers() -> int:
    """Worker-scaling leg: 2 pre-fork workers must beat 1 by >=1.6x.

    Only meaningful with real parallelism available: on runners with
    fewer than 4 CPUs the workers time-slice one core and the measured
    "scaling" is scheduler noise, so the gate prints a skip (the
    committed ``workers.cpus`` field in BENCH_serve.json records what
    the baseline machine had).  Where it does run, a 2-worker mmap
    fleet must deliver at least ``WORKER_MIN_SPEEDUP``x the 1-worker
    throughput on the same machine within the same process — no
    cross-machine calibration needed because both points are measured
    live.
    """
    from repro.asrank import ASRank
    from repro.scenarios import get_scenario
    from repro.serve.loadgen import LoadGenConfig, run_loadgen_procs
    from repro.serve.store import save_snapshot
    from repro.serve.workers import WorkerFleet

    cpus = os.cpu_count() or 1
    if cpus < 4 or not hasattr(os, "fork"):
        print(
            f"skip: worker scaling gate needs >=4 CPUs and fork "
            f"(this runner has {cpus})"
        )
        return 0

    import tempfile

    _graph, _corpus, paths, result = get_scenario("small").run()
    facade = ASRank(paths)
    facade._result = result
    scratch = tempfile.mkdtemp(prefix="repro-check-workers-")
    path = os.path.join(scratch, "small.snap")
    save_snapshot(facade.snapshot(), path)

    throughput = {}
    for count in (1, 2):
        fleet = WorkerFleet(path, workers=count, mode="mmap")
        host, port = fleet.start()
        try:
            run_loadgen_procs(  # warmup
                LoadGenConfig(host=host, port=port, requests=500,
                              connections=SERVE_CONNECTIONS, seed=5),
                procs=2,
            )
            report = run_loadgen_procs(
                LoadGenConfig(host=host, port=port,
                              requests=SERVE_REQUESTS,
                              connections=SERVE_CONNECTIONS, seed=6),
                procs=2,
            )
        finally:
            fleet.stop()
        if report.errors:
            print(
                f"REGRESSION: {report.errors} errors against the "
                f"{count}-worker fleet"
            )
            return 1
        throughput[count] = report.throughput

    speedup = throughput[2] / throughput[1] if throughput[1] else 0.0
    print(
        f"worker scaling: 1 worker {throughput[1]:,.0f} req/s, "
        f"2 workers {throughput[2]:,.0f} req/s, speedup {speedup:.2f}x "
        f"(floor {WORKER_MIN_SPEEDUP}x, {cpus} CPUs)"
    )
    if speedup < WORKER_MIN_SPEEDUP:
        print(
            f"REGRESSION: 2-worker speedup {speedup:.2f}x is below the "
            f"{WORKER_MIN_SPEEDUP}x floor — per-worker scaling has "
            f"regressed (shared accept path or serialized hot path?)"
        )
        return 1
    print("ok: pre-fork workers scale within the regression budget")
    return 0


def check_graph() -> int:
    """Snapshot-build leg: warm medium-world build, calibrated."""
    from repro.asrank import ASRank
    from repro.core.cone import ConeDefinition
    from repro.scenarios import get_scenario
    from repro.serve.loadgen import calibration_workload
    from repro.serve.snapshot import Snapshot

    with open(GRAPH_BASELINE_FILE) as handle:
        baseline = json.load(handle)
    committed = baseline["build_warm_seconds"]
    committed_cal = baseline["calibration"]

    _graph, _corpus, paths, result = get_scenario("medium").run()
    facade = ASRank(paths)
    facade._result = result
    for definition in ConeDefinition:
        facade.cones(definition)
    facade.rank()

    measured = float("inf")
    for _ in range(GRAPH_ROUNDS):
        start = time.perf_counter()
        Snapshot.build(facade)
        measured = min(measured, time.perf_counter() - start)

    factor = (
        calibration_workload() / committed_cal if committed_cal else 1.0
    )
    allowed = committed * factor * (1.0 + TOLERANCE)

    print(
        f"snapshot build (warm, medium): measured {measured:.4f}s, "
        f"committed {committed:.4f}s, machine factor {factor:.2f}, "
        f"allowed {allowed:.4f}s"
    )
    if measured > allowed:
        print(
            f"REGRESSION: {measured:.4f}s exceeds the committed baseline "
            f"by more than {TOLERANCE:.0%} (machine-adjusted) — the "
            f"zero-copy build path has regressed"
        )
        return 1
    print("ok: snapshot build within the regression budget")
    return 0


def main() -> int:
    with open(BASELINE_FILE) as handle:
        baseline = json.load(handle)
    point = baseline["current"][str(N_ASES)]
    committed = point["stages"]["propagate+collect"]
    committed_reference = baseline.get("reference_collect_300")

    graph = generate_topology(GeneratorConfig(n_ases=N_ASES, seed=99))
    config = CollectorConfig(n_vps=max(12, N_ASES // 35), seed=1)

    measured = _collect_seconds(graph, config)

    # calibrate out machine-speed differences between the committed
    # report and this runner via the reference engine's cost
    factor = 1.0
    if committed_reference:
        reference = _collect_seconds(
            graph,
            replace(config, propagation=PropagationConfig(batched=False)),
        )
        factor = reference / committed_reference
    allowed = committed * factor * (1.0 + TOLERANCE)

    print(
        f"propagate+collect @ {N_ASES} ASes: measured {measured:.4f}s, "
        f"committed {committed:.4f}s, machine factor {factor:.2f}, "
        f"allowed {allowed:.4f}s"
    )
    if measured > allowed:
        print(
            f"REGRESSION: {measured:.4f}s exceeds the committed baseline "
            f"by more than {TOLERANCE:.0%} (machine-adjusted)"
        )
        return 1
    print("ok: propagate+collect within the regression budget")
    status = check_internet(factor)
    if status:
        return status
    status = check_graph()
    if status:
        return status
    status = check_paths()
    if status:
        return status
    status = check_serve()
    if status:
        return status
    status = check_timeline()
    if status:
        return status
    status = check_stream()
    if status:
        return status
    return check_workers()


if __name__ == "__main__":
    sys.exit(main())
