"""Bench-regression smoke check for the collection pipeline.

Re-runs the E00 300-AS scale point (the cheapest one, a few hundred
milliseconds) and compares `propagate+collect` against the committed
``reports/BENCH_e00.json``.  Fails — exit code 1 — if the measured
time regresses more than ``TOLERANCE`` over the committed number.

The committed baseline and the CI runner are different machines, so
the committed seconds are first rescaled by a calibration ratio: the
check replays the same workload through the per-origin reference
engine, whose cost is engine-independent across this repo's history,
and uses measured/committed reference time as the machine factor.
Without that, a slower runner would flag phantom regressions and a
faster one would mask real ones.

Usage (what CI runs)::

    PYTHONPATH=src python benchmarks/check_regression.py
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import replace

from repro.bgp.collector import Collector, CollectorConfig
from repro.bgp.propagation import PropagationConfig
from repro.topology.generator import GeneratorConfig, generate_topology

N_ASES = 300
ROUNDS = 3
TOLERANCE = 0.25  # fail on >25% regression
BASELINE_FILE = os.path.join(
    os.path.dirname(__file__), "reports", "BENCH_e00.json"
)


def _collect_seconds(graph, config) -> float:
    """Min-of-N wall time of one collection run."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        Collector(graph, config).run()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    with open(BASELINE_FILE) as handle:
        baseline = json.load(handle)
    point = baseline["current"][str(N_ASES)]
    committed = point["stages"]["propagate+collect"]
    committed_reference = baseline.get("reference_collect_300")

    graph = generate_topology(GeneratorConfig(n_ases=N_ASES, seed=99))
    config = CollectorConfig(n_vps=max(12, N_ASES // 35), seed=1)

    measured = _collect_seconds(graph, config)

    # calibrate out machine-speed differences between the committed
    # report and this runner via the reference engine's cost
    factor = 1.0
    if committed_reference:
        reference = _collect_seconds(
            graph,
            replace(config, propagation=PropagationConfig(batched=False)),
        )
        factor = reference / committed_reference
    allowed = committed * factor * (1.0 + TOLERANCE)

    print(
        f"propagate+collect @ {N_ASES} ASes: measured {measured:.4f}s, "
        f"committed {committed:.4f}s, machine factor {factor:.2f}, "
        f"allowed {allowed:.4f}s"
    )
    if measured > allowed:
        print(
            f"REGRESSION: {measured:.4f}s exceeds the committed baseline "
            f"by more than {TOLERANCE:.0%} (machine-adjusted)"
        )
        return 1
    print("ok: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
