"""E10 — link visibility (the paper's argument about what BGP data can
and cannot see).

Rows: fraction of each true link class observed at all, and the
distribution of how many vantage points see each observed link —
peering links hide below the VPs while transit links are widely seen.
The benchmark measures the visibility scan.
"""

from conftest import write_report

from repro.analysis.metrics import (
    link_visibility,
    true_link_coverage,
    visibility_by_relationship,
)


def test_e10_visibility(benchmark, medium_run):
    paths, graph = medium_run.paths, medium_run.graph

    visibility = benchmark.pedantic(
        lambda: link_visibility(paths), rounds=3, iterations=1
    )

    coverage = true_link_coverage(paths, graph)
    grouped = visibility_by_relationship(paths, graph)

    lines = ["E10: link visibility (medium scenario)", "-" * 52]
    lines.append("fraction of true links observed at all:")
    for label in ("p2c", "p2p"):
        lines.append(f"  {label}: {coverage.get(label, 0.0):.1%}")
    lines.append("")
    lines.append("vantage points seeing each observed link (mean / median):")
    for label in ("p2c", "p2p"):
        samples = sorted(grouped[label])
        if not samples:
            continue
        mean = sum(samples) / len(samples)
        median = samples[len(samples) // 2]
        lines.append(f"  {label}: mean {mean:.1f}, median {median}, "
                     f"n={len(samples)}")
    single_vp = sum(1 for count in visibility.values() if count == 1)
    lines.append("")
    lines.append(
        f"links seen from exactly one VP: {single_vp}/{len(visibility)} "
        f"({single_vp / len(visibility):.1%})"
    )
    write_report("E10_visibility", lines)

    # the paper's visibility shape
    assert coverage["p2c"] > coverage["p2p"]
    mean_p2c = sum(grouped["p2c"]) / len(grouped["p2c"])
    mean_p2p = sum(grouped["p2p"]) / len(grouped["p2p"])
    assert mean_p2c > mean_p2p
