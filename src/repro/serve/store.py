"""Single-file snapshot container + the hot-swappable store.

File layout (all little-endian)::

    offset 0   magic        8 bytes  b"REPROSNP"
    offset 8   format       u32      container format version (1)
    offset 12  header_len   u32      length of the JSON header
    offset 16  header       JSON     {"version", "payload_sha256",
                                      "minor", "alignment",
                                      "sections": {name: {offset,
                                      length, sha256}}}
    then       payload      bytes    section blobs, concatenated

Since format minor 1 the header is space-padded and every section
offset is zero-padded so each section starts on a 64-byte boundary in
the file — mmap'd numpy views land aligned.  Minor-0 files (unpadded)
load unchanged: readers only ever trust the header's offset table.

Integrity is two-level: the header carries a sha256 over the whole
payload (verified on eager loads) and one per section (verified on
first access in lazy and mmap loads), so a flipped byte is rejected on
either path.  ``save_snapshot`` writes to a temp file in the target
directory and ``os.replace``s it into place, so a concurrently
reloading server never observes a half-written file.

Three load modes (``load_snapshot(path, mode=...)``):

* ``eager`` — read + checksum the whole payload, decode every section.
* ``lazy`` — decode ``meta``/``stats``/``asns``; other sections come
  off one long-lived file handle (and are checksum-verified) on first
  query.
* ``mmap`` — map the file read-only and hand sections out as
  zero-copy views of the mapping; numpy decodes links/ranks as array
  views over the mapped pages and cones stay packed with per-AS lazy
  access, so N worker processes mapping the same file share one
  physical copy of the payload.  Falls back to ``lazy`` when the
  platform cannot map the file, and to pure-Python tuple decoding when
  numpy is absent — results are bit-identical in every mode.

:class:`SnapshotStore` is what the server holds: the current
:class:`~repro.serve.snapshot.Snapshot` behind one attribute, swapped
atomically by ``reload()`` — in-flight requests keep the reference
they started with, new requests see the new version.
"""

from __future__ import annotations

import hashlib
import json
import mmap as _mmap_module
import os
import struct
import tempfile
import threading
from typing import Dict, Optional, Tuple

from repro import perf
from repro.serve.snapshot import Snapshot, SnapshotFormatError

MAGIC = b"REPROSNP"
FORMAT_VERSION = 1
#: header minor version: 1 marks 64-byte-aligned section offsets;
#: minor-0 (pre-alignment) files load unchanged
MINOR_VERSION = 1
#: section offsets are padded to this boundary in the file so mmap'd
#: numpy views start aligned
SECTION_ALIGNMENT = 64
_FIXED = struct.Struct("<8sII")

LOAD_MODES = ("eager", "lazy", "mmap")


class TimelineLookupError(ValueError):
    """An ``as_of``/era token that does not resolve against the
    mounted timeline.

    Lives here (not in :mod:`repro.timeline`) so the handler layer can
    catch it without a circular import; the serving layer maps it to a
    400 — a bad era reference is a client error, never a server fault.
    """


def _align(offset: int, alignment: int) -> int:
    return -(-offset // alignment) * alignment


def save_snapshot(snapshot: Snapshot, path: str) -> str:
    """Write ``snapshot`` to ``path`` atomically; returns its version."""
    with perf.stage("snapshot-save"):
        sections = snapshot.encode_sections()
        table: Dict[str, Dict[str, object]] = {}
        payload_parts = []
        offset = 0
        for name in sorted(sections):
            blob = sections[name]
            padded = _align(offset, SECTION_ALIGNMENT)
            if padded != offset:
                payload_parts.append(b"\0" * (padded - offset))
                offset = padded
            table[name] = {
                "offset": offset,
                "length": len(blob),
                "sha256": hashlib.sha256(blob).hexdigest(),
            }
            payload_parts.append(blob)
            offset += len(blob)
        payload = b"".join(payload_parts)
        version = snapshot.version or snapshot.content_version()
        header = json.dumps(
            {
                "version": version,
                "payload_sha256": hashlib.sha256(payload).hexdigest(),
                "minor": MINOR_VERSION,
                "alignment": SECTION_ALIGNMENT,
                "sections": table,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode()
        # space-pad the header (JSON tolerates trailing whitespace) so
        # the payload itself starts on an aligned file offset
        payload_start = _align(_FIXED.size + len(header), SECTION_ALIGNMENT)
        header += b" " * (payload_start - _FIXED.size - len(header))

        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".snap.tmp")
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(
                    _FIXED.pack(MAGIC, FORMAT_VERSION, len(header))
                )
                stream.write(header)
                stream.write(payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
    return version


def _read_header(stream) -> Dict[str, object]:
    fixed = stream.read(_FIXED.size)
    if len(fixed) < _FIXED.size:
        raise SnapshotFormatError("file too short for a snapshot header")
    magic, fmt, header_len = _FIXED.unpack(fixed)
    if magic != MAGIC:
        raise SnapshotFormatError(f"bad magic {magic!r}")
    if fmt != FORMAT_VERSION:
        raise SnapshotFormatError(f"unsupported container format {fmt}")
    header_blob = stream.read(header_len)
    if len(header_blob) < header_len:
        raise SnapshotFormatError("truncated snapshot header")
    try:
        header = json.loads(header_blob)
    except ValueError as exc:
        raise SnapshotFormatError(f"bad header JSON: {exc}") from None
    for key in ("version", "payload_sha256", "sections"):
        if key not in header:
            raise SnapshotFormatError(f"header missing {key!r}")
    return header


def read_snapshot_header(path: str) -> Tuple[Dict[str, object], int]:
    """The parsed JSON header and the payload's file offset.

    What ``repro-asrank snapshot info`` prints the section table from;
    no payload bytes are read or verified.
    """
    with open(path, "rb") as stream:
        header = _read_header(stream)
        return header, stream.tell()


class _SectionReader:
    """Seek-and-read section access with per-section checksum checks.

    Holds one file handle for its whole lifetime (the handle pins the
    inode, so a concurrent ``os.replace`` of the path never changes
    what this reader serves) and remembers which sections already
    passed their checksum, so each is verified exactly once — on first
    touch.  ``close()`` releases the handle deterministically.
    """

    def __init__(self, path: str, header: Dict[str, object],
                 payload_offset: int, stream):
        self._path = path
        self._sections: Dict[str, Dict[str, object]] = header["sections"]
        self._payload_offset = payload_offset
        self._stream = stream
        self._verified: set = set()
        self._lock = threading.Lock()

    def __call__(self, name: str) -> bytes:
        entry = self._sections.get(name)
        if entry is None:
            raise SnapshotFormatError(f"section {name!r} missing")
        with self._lock:
            if self._stream is None:
                raise SnapshotFormatError(
                    f"section {name!r} requested after the reader for "
                    f"{self._path} was closed"
                )
            self._stream.seek(self._payload_offset + int(entry["offset"]))
            blob = self._stream.read(int(entry["length"]))
        if len(blob) != int(entry["length"]):
            raise SnapshotFormatError(f"section {name!r} truncated")
        if name not in self._verified:
            if hashlib.sha256(blob).hexdigest() != entry["sha256"]:
                raise SnapshotFormatError(
                    f"section {name!r} checksum mismatch "
                    f"(corrupted snapshot)"
                )
            self._verified.add(name)
        return blob

    def verify_all(self) -> None:
        """Force every section through its first-touch checksum."""
        for name in self._sections:
            self(name)

    def close(self) -> None:
        with self._lock:
            if self._stream is not None:
                self._stream.close()
                self._stream = None


class MappedSectionReader:
    """Zero-copy section access over one read-only ``mmap``.

    ``__call__`` returns a ``memoryview`` slice of the mapping — no
    bytes are copied; the kernel shares the physical pages between
    every process mapping the same file.  Each section's sha256 is
    verified lazily on its first touch (hashing reads the mapped pages
    in place).  Where the platform supports it the mapping is advised
    ``MADV_WILLNEED`` so first-touch latency is a readahead, not a
    page-fault-per-4k walk.

    ``close()`` is best-effort: the mapping can only be released once
    every exported view (numpy arrays included) is gone, so an
    outstanding view downgrades close to a no-op and the OS reclaims
    the mapping when the last reference dies.
    """

    def __init__(self, path: str, header: Dict[str, object],
                 payload_offset: int, mapping):
        self._path = path
        self._sections: Dict[str, Dict[str, object]] = header["sections"]
        self._payload_offset = payload_offset
        self._map = mapping
        self._view = memoryview(mapping)
        self._verified: set = set()
        self._lock = threading.Lock()
        if hasattr(self._map, "madvise") and hasattr(
            _mmap_module, "MADV_WILLNEED"
        ):
            try:
                self._map.madvise(_mmap_module.MADV_WILLNEED)
            except OSError:
                pass

    def __call__(self, name: str) -> memoryview:
        entry = self._sections.get(name)
        if entry is None:
            raise SnapshotFormatError(f"section {name!r} missing")
        if self._view is None:
            raise SnapshotFormatError(
                f"section {name!r} requested after the mapping of "
                f"{self._path} was closed"
            )
        start = self._payload_offset + int(entry["offset"])
        stop = start + int(entry["length"])
        if stop > len(self._view):
            raise SnapshotFormatError(f"section {name!r} truncated")
        view = self._view[start:stop]
        with self._lock:
            if name not in self._verified:
                if hashlib.sha256(view).hexdigest() != entry["sha256"]:
                    raise SnapshotFormatError(
                        f"section {name!r} checksum mismatch "
                        f"(corrupted snapshot)"
                    )
                self._verified.add(name)
        return view

    def verify_all(self) -> None:
        """Force every section through its first-touch checksum."""
        for name in self._sections:
            self(name)

    def close(self) -> None:
        if self._view is not None:
            self._view.release()
            self._view = None
        if self._map is not None:
            try:
                self._map.close()
            except BufferError:
                # numpy views over the mapping are still alive; the
                # mapping is freed when the last of them is collected
                pass
            self._map = None


def _resolve_mode(lazy: bool, mode: Optional[str]) -> str:
    if mode is None:
        return "lazy" if lazy else "eager"
    if mode not in LOAD_MODES:
        raise ValueError(
            f"unknown snapshot load mode {mode!r}; one of {LOAD_MODES}"
        )
    return mode


def load_snapshot(
    path: str,
    lazy: bool = False,
    mode: Optional[str] = None,
    verify: bool = False,
) -> Snapshot:
    """Load a snapshot file.

    ``mode`` picks the load path (``eager``/``lazy``/``mmap``, see the
    module docstring); the legacy ``lazy`` flag is shorthand for
    ``mode="lazy"``.  ``verify=True`` forces every section through its
    checksum up front even in the lazy/mmap modes — what a pre-fork
    worker does before *committing* to a new snapshot, so a corrupt
    section can never surface mid-request after a hot reload.
    """
    mode = _resolve_mode(lazy, mode)
    with perf.stage("snapshot-load"):
        stream = open(path, "rb")
        try:
            header = _read_header(stream)
            payload_offset = stream.tell()
        except BaseException:
            stream.close()
            raise

        if mode == "mmap":
            mapping = None
            try:
                mapping = _mmap_module.mmap(
                    stream.fileno(), 0, access=_mmap_module.ACCESS_READ
                )
            except (OSError, ValueError, OverflowError):
                mode = "lazy"  # platform can't map this file: copy path
            if mapping is not None:
                # the mapping outlives the handle; drop the fd now
                stream.close()
                reader = MappedSectionReader(
                    path, header, payload_offset, mapping
                )
                if verify:
                    reader.verify_all()
                snapshot = Snapshot.from_sections(
                    meta_blob=bytes(reader("meta")),
                    stats_blob=bytes(reader("stats")),
                    asns_blob=reader("asns"),
                    version=str(header["version"]),
                    loader=reader,
                    mapped=True,
                )
                snapshot._section_reader = reader
                return snapshot

        if mode == "lazy":
            reader = _SectionReader(path, header, payload_offset, stream)
            if verify:
                reader.verify_all()
            snapshot = Snapshot.from_sections(
                meta_blob=reader("meta"),
                stats_blob=reader("stats"),
                asns_blob=reader("asns"),
                version=str(header["version"]),
                loader=reader,
            )
            snapshot._section_reader = reader
            return snapshot

        # eager: one read, whole-payload checksum, decode everything
        with stream:
            payload = stream.read()
        if hashlib.sha256(payload).hexdigest() != header["payload_sha256"]:
            raise SnapshotFormatError(
                f"{path}: payload checksum mismatch (corrupted snapshot)"
            )
        eager: Dict[str, bytes] = {}
        for name, entry in header["sections"].items():
            start = int(entry["offset"])
            eager[name] = payload[start:start + int(entry["length"])]

        def section(name: str) -> bytes:
            blob = eager.get(name)
            if blob is None:
                raise SnapshotFormatError(f"section {name!r} missing")
            return blob

        return Snapshot.from_sections(
            meta_blob=section("meta"),
            stats_blob=section("stats"),
            asns_blob=section("asns"),
            version=str(header["version"]),
            loader=section,
            eager_sections=eager,
        )


def read_payload_header(path: str) -> Tuple[Dict[str, object], int]:
    """Sniff the magic and parse either container's header — what the
    CLI uses to fail fast on a missing/garbled file before forking a
    fleet."""
    from repro import timeline as _timeline

    with open(path, "rb") as probe:
        magic = probe.read(len(_timeline.TIMELINE_MAGIC))
    if magic == _timeline.TIMELINE_MAGIC:
        return _timeline.read_timeline_header(path)
    return read_snapshot_header(path)


def load_payload(path: str, mode: Optional[str] = None,
                 verify: bool = False):
    """Sniff the container magic and load a snapshot *or* a timeline.

    Every serving entry point (store, worker prepare, CLI serve) goes
    through this, so a ``REPROTLN`` timeline file drops in anywhere a
    ``REPROSNP`` file does.  Returns a :class:`Snapshot` or a
    :class:`repro.timeline.Timeline` — both carry ``.version``.
    """
    from repro import timeline as _timeline

    with open(path, "rb") as probe:
        magic = probe.read(len(_timeline.TIMELINE_MAGIC))
    if magic == _timeline.TIMELINE_MAGIC:
        return _timeline.load_timeline(path, verify=verify)
    return load_snapshot(path, mode=mode, verify=verify)


class SnapshotStore:
    """The server's mount point: one current snapshot, swapped atomically.

    ``current`` is a single attribute read; Python attribute assignment
    is atomic, so handlers grab a reference once per request and keep
    serving the version they started with while ``reload()`` swaps in
    a new one mid-flight.

    A store can mount a whole :class:`repro.timeline.Timeline` instead
    of a single snapshot (``timeline=`` or a ``REPROTLN`` file at
    ``path``): ``current`` is then the latest era and ``timeline``
    exposes the historical eras to the ``as_of`` serving path.
    ``cache_version`` is what response caches and ETags must key on —
    the timeline version when one is mounted (any era changing changes
    it), the snapshot version otherwise.
    """

    def __init__(
        self,
        snapshot: Optional[Snapshot] = None,
        path: Optional[str] = None,
        lazy: bool = False,
        mode: Optional[str] = None,
        timeline=None,
    ):
        if snapshot is None and path is None and timeline is None:
            raise ValueError(
                "SnapshotStore needs a snapshot, a timeline or a path"
            )
        self.path = path
        self.mode = _resolve_mode(lazy, mode)
        self.lazy = self.mode != "eager"
        self._reload_lock = threading.Lock()
        self.reloads = 0
        self.timeline = None
        if timeline is not None:
            self._adopt(timeline)
        elif snapshot is not None:
            self.current: Snapshot = snapshot
        else:
            self._adopt(load_payload(path, mode=self.mode))

    def _adopt(self, payload) -> None:
        """Point ``current``/``timeline`` at a loaded payload."""
        from repro.timeline import Timeline

        if isinstance(payload, Timeline):
            self.timeline = payload
            self.current = payload.latest
        else:
            self.timeline = None
            self.current = payload

    @property
    def cache_version(self) -> str:
        timeline = self.timeline
        return timeline.version if timeline is not None \
            else self.current.version

    def reload(self, path: Optional[str] = None) -> Snapshot:
        """Load (or re-load) the file and swap it in atomically.

        Raises without touching ``current`` if the file is missing or
        corrupted — a bad rebuild never takes down a serving store.
        """
        with self._reload_lock:
            target = path or self.path
            if target is None:
                raise SnapshotFormatError(
                    "store has no file to reload from"
                )
            fresh = load_payload(target, mode=self.mode)
            self.path = target
            self._adopt(fresh)
            self.reloads += 1
            perf.counter("snapshot-reloads")
        return self.current

    def swap(self, payload, path: Optional[str] = None) -> None:
        """Install an already-loaded snapshot or timeline (worker
        commit, tests).

        ``path`` updates the store's reload source alongside — a
        worker committing a coordinated reload points later
        ``reload()`` calls at the file it just adopted.
        """
        with self._reload_lock:
            self._adopt(payload)
            if path is not None:
                self.path = path
            self.reloads += 1
