"""Single-file snapshot container + the hot-swappable store.

File layout (all little-endian)::

    offset 0   magic        8 bytes  b"REPROSNP"
    offset 8   format       u32      container format version (1)
    offset 12  header_len   u32      length of the JSON header
    offset 16  header       JSON     {"version", "payload_sha256",
                                      "sections": {name: {offset,
                                      length, sha256}}}
    then       payload      bytes    section blobs, concatenated

Integrity is two-level: the header carries a sha256 over the whole
payload (verified on eager loads) and one per section (verified on
first access in lazy loads), so a flipped byte is rejected on either
path.  ``save_snapshot`` writes to a temp file in the target directory
and ``os.replace``s it into place, so a concurrently reloading server
never observes a half-written file.

:class:`SnapshotStore` is what the server holds: the current
:class:`~repro.serve.snapshot.Snapshot` behind one attribute, swapped
atomically by ``reload()`` — in-flight requests keep the reference
they started with, new requests see the new version.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import threading
from typing import Callable, Dict, Optional

from repro import perf
from repro.serve.snapshot import Snapshot, SnapshotFormatError

MAGIC = b"REPROSNP"
FORMAT_VERSION = 1
_FIXED = struct.Struct("<8sII")


def save_snapshot(snapshot: Snapshot, path: str) -> str:
    """Write ``snapshot`` to ``path`` atomically; returns its version."""
    with perf.stage("snapshot-save"):
        sections = snapshot.encode_sections()
        table: Dict[str, Dict[str, object]] = {}
        payload_parts = []
        offset = 0
        for name in sorted(sections):
            blob = sections[name]
            table[name] = {
                "offset": offset,
                "length": len(blob),
                "sha256": hashlib.sha256(blob).hexdigest(),
            }
            payload_parts.append(blob)
            offset += len(blob)
        payload = b"".join(payload_parts)
        version = snapshot.version or snapshot.content_version()
        header = json.dumps(
            {
                "version": version,
                "payload_sha256": hashlib.sha256(payload).hexdigest(),
                "sections": table,
            },
            sort_keys=True,
            separators=(",", ":"),
        ).encode()

        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".snap.tmp")
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(
                    _FIXED.pack(MAGIC, FORMAT_VERSION, len(header))
                )
                stream.write(header)
                stream.write(payload)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
    return version


def _read_header(stream) -> Dict[str, object]:
    fixed = stream.read(_FIXED.size)
    if len(fixed) < _FIXED.size:
        raise SnapshotFormatError("file too short for a snapshot header")
    magic, fmt, header_len = _FIXED.unpack(fixed)
    if magic != MAGIC:
        raise SnapshotFormatError(f"bad magic {magic!r}")
    if fmt != FORMAT_VERSION:
        raise SnapshotFormatError(f"unsupported container format {fmt}")
    header_blob = stream.read(header_len)
    if len(header_blob) < header_len:
        raise SnapshotFormatError("truncated snapshot header")
    try:
        header = json.loads(header_blob)
    except ValueError as exc:
        raise SnapshotFormatError(f"bad header JSON: {exc}") from None
    for key in ("version", "payload_sha256", "sections"):
        if key not in header:
            raise SnapshotFormatError(f"header missing {key!r}")
    return header


class _SectionReader:
    """Seek-and-read section access with per-section checksum checks."""

    def __init__(self, path: str, header: Dict[str, object],
                 payload_offset: int):
        self._path = path
        self._sections: Dict[str, Dict[str, object]] = header["sections"]
        self._payload_offset = payload_offset
        self._lock = threading.Lock()

    def __call__(self, name: str) -> bytes:
        entry = self._sections.get(name)
        if entry is None:
            raise SnapshotFormatError(f"section {name!r} missing")
        with self._lock, open(self._path, "rb") as stream:
            stream.seek(self._payload_offset + int(entry["offset"]))
            blob = stream.read(int(entry["length"]))
        if len(blob) != int(entry["length"]):
            raise SnapshotFormatError(f"section {name!r} truncated")
        if hashlib.sha256(blob).hexdigest() != entry["sha256"]:
            raise SnapshotFormatError(
                f"section {name!r} checksum mismatch (corrupted snapshot)"
            )
        return blob


def load_snapshot(path: str, lazy: bool = False) -> Snapshot:
    """Load a snapshot file.

    Eager (default): the whole payload is read, checksummed and every
    section decoded up front.  Lazy: only ``meta``/``stats``/``asns``
    are decoded; links, cones and ranks come off disk (and are
    checksum-verified) on first query.
    """
    with perf.stage("snapshot-load"):
        with open(path, "rb") as stream:
            header = _read_header(stream)
            payload_offset = stream.tell()
            reader = _SectionReader(path, header, payload_offset)
            eager: Optional[Dict[str, bytes]] = None
            if not lazy:
                payload = stream.read()
                if (
                    hashlib.sha256(payload).hexdigest()
                    != header["payload_sha256"]
                ):
                    raise SnapshotFormatError(
                        f"{path}: payload checksum mismatch "
                        "(corrupted snapshot)"
                    )
                eager = {}
                for name, entry in header["sections"].items():
                    start = int(entry["offset"])
                    eager[name] = payload[start:start + int(entry["length"])]

        def section(name: str) -> bytes:
            if eager is not None:
                blob = eager.get(name)
                if blob is None:
                    raise SnapshotFormatError(f"section {name!r} missing")
                return blob
            return reader(name)

        return Snapshot.from_sections(
            meta_blob=section("meta"),
            stats_blob=section("stats"),
            asns_blob=section("asns"),
            version=str(header["version"]),
            loader=section,
            eager_sections=eager,
        )


class SnapshotStore:
    """The server's mount point: one current snapshot, swapped atomically.

    ``current`` is a single attribute read; Python attribute assignment
    is atomic, so handlers grab a reference once per request and keep
    serving the version they started with while ``reload()`` swaps in
    a new one mid-flight.
    """

    def __init__(
        self,
        snapshot: Optional[Snapshot] = None,
        path: Optional[str] = None,
        lazy: bool = False,
    ):
        if snapshot is None and path is None:
            raise ValueError("SnapshotStore needs a snapshot or a path")
        self.path = path
        self.lazy = lazy
        self._reload_lock = threading.Lock()
        self.reloads = 0
        self.current: Snapshot = (
            snapshot if snapshot is not None else load_snapshot(path, lazy)
        )

    def reload(self, path: Optional[str] = None) -> Snapshot:
        """Load (or re-load) the file and swap it in atomically.

        Raises without touching ``current`` if the file is missing or
        corrupted — a bad rebuild never takes down a serving store.
        """
        with self._reload_lock:
            target = path or self.path
            if target is None:
                raise SnapshotFormatError(
                    "store has no file to reload from"
                )
            fresh = load_snapshot(target, self.lazy)
            self.path = target
            self.current = fresh
            self.reloads += 1
            perf.counter("snapshot-reloads")
        return fresh

    def swap(self, snapshot: Snapshot) -> None:
        """Install an in-memory snapshot (tests / embedded rebuilds)."""
        with self._reload_lock:
            self.current = snapshot
            self.reloads += 1
