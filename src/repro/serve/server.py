"""Dependency-free asyncio HTTP/1.1 JSON server over a snapshot store.

One process, one event loop, stdlib only — like the rest of the repo.
The wire layer is deliberately thin: persistent connections, a
response cache in front of the handlers, ETag/304 revalidation, and
per-route latency metrics deposited into :mod:`repro.perf`.

* **Response cache** — an LRU keyed on ``(snapshot version, method,
  target)`` holding fully framed body bytes + ETag, so a cache hit
  costs one dict lookup and one ``writer.write``.  Keying on the
  version means a hot reload implicitly invalidates everything without
  a flush pause.
* **ETags** — ``"<version>:<crc32 of body>"``; ``If-None-Match``
  revalidation returns 304 with an empty body.
* **Hot reload** — ``POST /admin/reload`` (or SIGHUP when the loop
  owns the main thread's signals) rebuilds the store's snapshot from
  its file and swaps the reference atomically; requests already
  holding the old reference finish against it.

:class:`ServerThread` runs the loop on a background thread so tests,
benchmarks and the load generator can drive a real TCP server from
synchronous code.
"""

from __future__ import annotations

import asyncio
import signal
import threading
import time
import zlib
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple
from urllib.parse import unquote

from repro import perf
from repro.serve.handlers import Api, encode_payload
from repro.serve.store import SnapshotStore

_STATUS_LINES = {
    200: b"HTTP/1.1 200 OK\r\n",
    202: b"HTTP/1.1 202 Accepted\r\n",
    304: b"HTTP/1.1 304 Not Modified\r\n",
    400: b"HTTP/1.1 400 Bad Request\r\n",
    403: b"HTTP/1.1 403 Forbidden\r\n",
    404: b"HTTP/1.1 404 Not Found\r\n",
    405: b"HTTP/1.1 405 Method Not Allowed\r\n",
    409: b"HTTP/1.1 409 Conflict\r\n",
    431: b"HTTP/1.1 431 Request Header Fields Too Large\r\n",
    500: b"HTTP/1.1 500 Internal Server Error\r\n",
}

#: latency histogram bucket upper bounds, seconds
LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 1.0, float("inf"),
)


class Metrics:
    """Per-route request counters + latency histograms + cache stats.

    Guarded by a lock so the ``/metrics`` handler (and tests polling
    from other threads) read a consistent view; the per-request cost is
    one lock acquisition and a bucket increment.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._routes: Dict[str, List] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.not_modified = 0

    def observe(self, route: str, status: int, seconds: float) -> None:
        with self._lock:
            row = self._routes.get(route)
            if row is None:
                row = [0, 0, 0.0, [0] * len(LATENCY_BUCKETS)]
                self._routes[route] = row
            row[0] += 1
            if status >= 500:
                row[1] += 1
            row[2] += seconds
            for i, bound in enumerate(LATENCY_BUCKETS):
                if seconds <= bound:
                    row[3][i] += 1
                    break
        with perf.stage("serve"):
            perf.add_seconds(route, seconds)
            perf.counter("requests")

    def cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1

    def cache_miss(self) -> None:
        with self._lock:
            self.cache_misses += 1

    def revalidated(self) -> None:
        with self._lock:
            self.not_modified += 1

    def view(self) -> Dict[str, object]:
        """Detached JSON-serializable view (what ``/metrics`` returns)."""
        with self._lock:
            routes: Dict[str, object] = {}
            for route, (count, errors, seconds, hist) in (
                self._routes.items()
            ):
                routes[route] = {
                    "requests": count,
                    "errors": errors,
                    "seconds": seconds,
                    "mean_ms": (seconds / count * 1000.0) if count else 0.0,
                    "p50_ms": _quantile_ms(hist, 0.50),
                    "p99_ms": _quantile_ms(hist, 0.99),
                    "histogram": {
                        ("inf" if bound == float("inf")
                         else f"{bound * 1000:g}ms"): hist[i]
                        for i, bound in enumerate(LATENCY_BUCKETS)
                    },
                }
            lookups = self.cache_hits + self.cache_misses
            return {
                "routes": routes,
                "cache": {
                    "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "hit_rate": (
                        self.cache_hits / lookups if lookups else 0.0
                    ),
                    "not_modified": self.not_modified,
                },
            }


def _quantile_ms(hist: List[int], q: float) -> float:
    total = sum(hist)
    if not total:
        return 0.0
    threshold = q * total
    running = 0
    for i, count in enumerate(hist):
        running += count
        if running >= threshold:
            bound = LATENCY_BUCKETS[i]
            return bound * 1000.0 if bound != float("inf") else -1.0
    return -1.0


class SnapshotServer:
    """Serve one :class:`SnapshotStore` over HTTP/1.1 + JSON."""

    def __init__(
        self,
        store: SnapshotStore,
        host: str = "127.0.0.1",
        port: int = 8080,
        cache_size: int = 4096,
        allow_admin: bool = True,
        install_sighup: bool = False,
        compute_workers: int = 2,
        sock=None,
        reuse_port: bool = False,
        worker_info: Optional[Dict[str, object]] = None,
        reload_delegate=None,
        ingest_status=None,
    ):
        self.store = store
        self.host = host
        self.port = port
        self.cache_size = cache_size
        self.install_sighup = install_sighup
        # pre-fork fleet wiring: an inherited listening socket (shared-
        # socket fallback) or reuse_port=True for SO_REUSEPORT siblings
        self._sock = sock
        self._reuse_port = reuse_port
        self.metrics = Metrics()
        self.api = Api(
            store,
            metrics_view=self.metrics.view,
            allow_admin=allow_admin,
            worker_info=worker_info,
            reload_delegate=reload_delegate,
            ingest_status=ingest_status,
        )
        # path/what-if propagation runs on this bounded pool so a cold
        # route-table build never stalls the event loop: cached reads
        # keep flowing while at most ``compute_workers`` queries compute
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=max(1, compute_workers),
                thread_name_prefix="serve-compute",
            )
            if compute_workers > 0
            else None
        )
        # (version, method, target) -> (status, body, etag, route)
        self._cache: "OrderedDict[Tuple[str, str, str], Tuple[int, bytes, bytes, str]]" = OrderedDict()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._handler_tasks: set = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting; returns the actual (host, port)."""
        if self._sock is not None:
            self._server = await asyncio.start_server(
                self._handle_connection, sock=self._sock
            )
        elif self._reuse_port:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port,
                reuse_port=True,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port
            )
        sockname = self._server.sockets[0].getsockname()
        self.host = sockname[0]
        self.port = sockname[1]
        if self.install_sighup and hasattr(signal, "SIGHUP"):
            try:
                asyncio.get_running_loop().add_signal_handler(
                    signal.SIGHUP, self._sighup
                )
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without signals
        return self.host, self.port

    def _sighup(self) -> None:
        try:
            self.store.reload()
        except Exception as exc:  # keep serving the old snapshot
            print(f"serve: SIGHUP reload failed: {exc}")

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def run(self) -> None:
        """start() + serve_forever() in one call (the CLI entry)."""
        await self.start()
        print(
            f"serving snapshot {self.store.current.version} "
            f"on http://{self.host}:{self.port}"
        )
        await self.serve_forever()

    async def stop(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # nudge lingering keep-alive connections to EOF and let their
        # handler tasks finish; otherwise the loop teardown cancels
        # them mid-await and asyncio logs the cancellations
        for writer in list(self._connections):
            writer.close()
        if self._handler_tasks:
            await asyncio.gather(
                *list(self._handler_tasks), return_exceptions=True
            )

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        self._connections.add(writer)
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except asyncio.IncompleteReadError:
                    break
                except asyncio.LimitOverrunError:
                    writer.write(
                        _STATUS_LINES[431] + b"Content-Length: 0\r\n\r\n"
                    )
                    break
                response, keep_alive = await self._respond(head, reader)
                writer.write(response)
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(writer)
            if task is not None:
                self._handler_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    async def _respond(
        self, head: bytes, reader: asyncio.StreamReader
    ) -> Tuple[bytes, bool]:
        start = time.perf_counter()
        try:
            method, target, keep_alive, content_length, if_none_match = (
                _parse_head(head)
            )
        except ValueError:
            body = b'{"error":"malformed request"}'
            return _frame(400, body, b"", close=True), False
        body_in = b""
        if content_length:
            if content_length > 1 << 20:
                return (
                    _frame(400, b'{"error":"body too large"}', b"",
                           close=True),
                    False,
                )
            body_in = await reader.readexactly(content_length)

        # the cache/ETag version is the timeline version when one is
        # mounted: the request target carries the raw as_of token, so
        # (version, target) pins both the content generation and the
        # resolved era
        version = self.store.cache_version
        cache_key = (version, method, target)
        cached = self._cache.get(cache_key) if method == "GET" else None
        if cached is not None:
            self._cache.move_to_end(cache_key)
            self.metrics.cache_hit()
            status, body, etag, route = cached
            if if_none_match and if_none_match == etag:
                self.metrics.revalidated()
                response = _frame(304, b"", etag, keep_alive=keep_alive)
            else:
                response = _frame(status, body, etag, keep_alive=keep_alive)
            self.metrics.observe(route, status,
                                 time.perf_counter() - start)
            return response, keep_alive

        path, query = _split_target(target)
        try:
            if self._pool is not None and _compute_route(path):
                status, payload, route, cacheable = (
                    await asyncio.get_running_loop().run_in_executor(
                        self._pool,
                        self.api.handle,
                        method,
                        path,
                        query,
                        body_in,
                    )
                )
            else:
                status, payload, route, cacheable = self.api.handle(
                    method, path, query, body_in
                )
            body = encode_payload(payload)
        except Exception as exc:  # a handler bug must not kill the server
            status, route, cacheable = 500, "error", False
            body = encode_payload({"error": f"internal error: {exc}"})
        etag = b""
        if method == "GET" and cacheable:
            self.metrics.cache_miss()
            etag = f'"{version}:{zlib.crc32(body):08x}"'.encode()
            self._cache[cache_key] = (status, body, etag, route)
            if len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        if if_none_match and etag and if_none_match == etag:
            self.metrics.revalidated()
            response = _frame(304, b"", etag, keep_alive=keep_alive)
        else:
            response = _frame(status, body, etag, keep_alive=keep_alive)
        self.metrics.observe(route, status, time.perf_counter() - start)
        return response, keep_alive


# ---------------------------------------------------------------------------
# wire helpers
# ---------------------------------------------------------------------------


def _parse_head(head: bytes) -> Tuple[str, str, bool, int, bytes]:
    """Request line + the three headers the server cares about."""
    lines = head.split(b"\r\n")
    parts = lines[0].split(b" ")
    if len(parts) != 3:
        raise ValueError("bad request line")
    method = parts[0].decode("latin-1")
    target = parts[1].decode("latin-1")
    keep_alive = parts[2] != b"HTTP/1.0"
    content_length = 0
    if_none_match = b""
    for line in lines[1:]:
        if not line:
            continue
        key, _, value = line.partition(b":")
        key = key.strip().lower()
        if key == b"content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise ValueError("bad content-length") from None
        elif key == b"connection":
            token = value.strip().lower()
            if token == b"close":
                keep_alive = False
            elif token == b"keep-alive":
                keep_alive = True
        elif key == b"if-none-match":
            if_none_match = value.strip()
    return method, target, keep_alive, content_length, if_none_match


def _compute_route(path: str) -> bool:
    """Does this path run propagation or an era diff (and so belong
    on the pool)?"""
    head = path.lstrip("/").split("/", 1)[0]
    return head in ("paths", "what-if", "diff")


def _split_target(target: str) -> Tuple[str, Dict[str, str]]:
    path, _, query_string = target.partition("?")
    query: Dict[str, str] = {}
    if query_string:
        for pair in query_string.split("&"):
            key, _, value = pair.partition("=")
            if key:
                query[unquote(key)] = unquote(value)
    return unquote(path), query


def _frame(
    status: int,
    body: bytes,
    etag: bytes,
    keep_alive: bool = True,
    close: bool = False,
) -> bytes:
    head = [
        _STATUS_LINES.get(status, _STATUS_LINES[500]),
        b"Content-Type: application/json\r\n",
        b"Content-Length: %d\r\n" % len(body),
    ]
    if etag:
        head.append(b"ETag: %s\r\n" % etag)
    head.append(
        b"Connection: close\r\n" if (close or not keep_alive)
        else b"Connection: keep-alive\r\n"
    )
    head.append(b"\r\n")
    return b"".join(head) + body


class ServerThread:
    """A running server on a background thread (tests/benchmarks).

    ::

        with ServerThread(store) as (host, port):
            ... requests against http://host:port ...
    """

    def __init__(self, store: SnapshotStore, host: str = "127.0.0.1",
                 port: int = 0, **kwargs):
        self.server = SnapshotServer(store, host=host, port=port, **kwargs)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stop: Optional[asyncio.Event] = None

    def start(self) -> Tuple[str, int]:
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("server thread failed to start")
        return self.server.host, self.server.port

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._started.set()
        await self._stop.wait()
        await self.server.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
