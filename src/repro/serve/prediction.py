"""Path prediction and what-if scenarios over served snapshots.

The serving tier answers "what AS path does BGP pick from A to B"
straight from the inferred graph: a :class:`Snapshot`'s link rows
compile into its frozen :class:`~repro.graph.relgraph.RelGraph`
routing view, and per-origin route tables are computed through the
batched Gao–Rexford engine (:func:`propagate_batch`) — never a serial
sweep per request.

Two pieces live here:

* :class:`Scenario` — a parsed, canonicalized what-if description: a
  list of JSON operations (drop a link, add a peering or transit edge,
  flip a relationship, leak from an AS, poison an AS) hashed into a
  stable 12-hex ``key``.  :func:`apply_scenario` replays the graph
  operations over a copy of the snapshot's adjacency, on the *same*
  frozen index — so baseline and scenario route tables stay aligned
  by dense id and diff cheaply.
* :class:`PathEngine` — the bounded, thread-safe cache in front of the
  engine: compiled graphs keyed ``(snapshot version, scenario key)``
  and route tables keyed ``(version, scenario key, origin ASN)``, both
  LRU.  A warm path query is two dict hits and one next-hop walk; only
  cold ``(version, scenario, origin)`` triples pay for propagation.

Scenario semantics, for the record: a ``leak`` op makes the AS violate
export policy (its peer/provider routes are re-announced upward — the
engine's :func:`_leak_pass`); ``poison`` removes every edge of the AS,
modeling an announcement the AS filters out of existence — it holds no
route and nothing routes through it.  Both are part of the scenario
hash even though ``leak`` never touches the graph.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict, deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.propagation import (
    CLS_CUSTOMER,
    CLS_ORIGIN,
    CLS_PEER,
    CLS_PROVIDER,
    NO_ROUTE,
    GraphIndex,
    RouteState,
    propagate_batch,
)
from repro.graph.relgraph import RelGraph

#: JSON spellings of the route classes, for path payloads
CLASS_NAMES = {
    CLS_ORIGIN: "origin",
    CLS_CUSTOMER: "customer",
    CLS_PEER: "peer",
    CLS_PROVIDER: "provider",
}

#: hard cap on operations per scenario — bounds both the request body
#: and the graph-mutation work a single query can demand
MAX_OPS = 64


class ScenarioError(ValueError):
    """A structurally or semantically invalid what-if scenario (400)."""


def _asn_value(op: Dict[str, object], field: str, kind: str) -> int:
    value = op.get(field)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(f"{kind}: {field!r} must be an integer ASN")
    if not 0 <= value < 2**32:
        raise ScenarioError(f"{kind}: {field!r} out of ASN range")
    return value


def _parse_op(raw: object, position: int) -> Dict[str, object]:
    """Validate one raw op and return its canonical form."""
    if not isinstance(raw, dict):
        raise ScenarioError(f"ops[{position}] is not an object")
    kind = raw.get("op")
    if kind in ("drop_link", "add_peering"):
        a, b = _asn_value(raw, "a", kind), _asn_value(raw, "b", kind)
        if a == b:
            raise ScenarioError(f"{kind}: endpoints are the same AS")
        lo, hi = (a, b) if a <= b else (b, a)
        return {"op": kind, "a": lo, "b": hi}
    if kind == "add_transit":
        provider = _asn_value(raw, "provider", kind)
        customer = _asn_value(raw, "customer", kind)
        if provider == customer:
            raise ScenarioError("add_transit: provider equals customer")
        return {"op": kind, "provider": provider, "customer": customer}
    if kind == "set_relationship":
        a, b = _asn_value(raw, "a", kind), _asn_value(raw, "b", kind)
        if a == b:
            raise ScenarioError("set_relationship: endpoints are the same AS")
        lo, hi = (a, b) if a <= b else (b, a)
        relationship = raw.get("relationship")
        if relationship == "p2p":
            return {"op": kind, "a": lo, "b": hi, "relationship": "p2p"}
        if relationship == "p2c":
            provider = _asn_value(raw, "provider", kind)
            if provider not in (a, b):
                raise ScenarioError(
                    "set_relationship: provider must be one of the endpoints"
                )
            return {
                "op": kind, "a": lo, "b": hi,
                "relationship": "p2c", "provider": provider,
            }
        raise ScenarioError(
            "set_relationship: relationship must be 'p2p' or 'p2c'"
        )
    if kind in ("leak", "poison"):
        return {"op": kind, "asn": _asn_value(raw, "asn", kind)}
    raise ScenarioError(f"ops[{position}]: unknown op {kind!r}")


class Scenario:
    """A canonicalized what-if scenario with a content-derived key.

    ``key`` is the first 12 hex digits of the sha256 over the canonical
    ops JSON — the same ops in any input spelling hash identically, so
    cache entries are shared across equivalent requests.  The empty
    scenario has key ``""`` and is the baseline.
    """

    __slots__ = ("ops", "key", "leakers")

    def __init__(self, ops: Sequence[Dict[str, object]] = ()):
        self.ops: Tuple[Dict[str, object], ...] = tuple(ops)
        self.leakers = frozenset(
            op["asn"] for op in self.ops if op["op"] == "leak"
        )
        if self.ops:
            blob = json.dumps(
                list(self.ops), sort_keys=True, separators=(",", ":")
            )
            self.key = hashlib.sha256(blob.encode()).hexdigest()[:12]
        else:
            self.key = ""

    @classmethod
    def parse(cls, raw: object) -> "Scenario":
        """Parse the ``ops`` value of a what-if request body."""
        if not isinstance(raw, list):
            raise ScenarioError("ops must be a list of operation objects")
        if len(raw) > MAX_OPS:
            raise ScenarioError(f"scenario exceeds {MAX_OPS} operations")
        return cls([_parse_op(op, i) for i, op in enumerate(raw)])

    def __bool__(self) -> bool:
        return bool(self.ops)


def apply_scenario(snapshot, scenario: Scenario) -> RelGraph:
    """Replay a scenario's graph operations over a snapshot.

    Returns a fresh :class:`RelGraph` on the snapshot's own frozen
    index (the id space never changes — scenarios mutate edges, not
    membership), leaving the snapshot's baseline graph untouched.
    Raises :class:`ScenarioError` on unknown ASes, missing links,
    duplicate links, or a transit edge that would close a provider
    cycle.
    """
    base = snapshot.rel_graph()
    ids = base.index.ids
    providers = [list(row) for row in base.providers]
    customers = [list(row) for row in base.customers]
    peers = [list(row) for row in base.peers]

    def asn_id(op: Dict[str, object], field: str) -> int:
        value = op[field]
        i = ids.get(value)
        if i is None:
            raise ScenarioError(f"{op['op']}: AS {value} not in snapshot")
        return i

    def linked(a_id: int, b_id: int) -> bool:
        return (
            b_id in providers[a_id]
            or b_id in customers[a_id]
            or b_id in peers[a_id]
        )

    def unlink(a_id: int, b_id: int) -> bool:
        removed = False
        for rows_a, rows_b in (
            (providers, customers),
            (customers, providers),
            (peers, peers),
        ):
            if b_id in rows_a[a_id]:
                rows_a[a_id].remove(b_id)
                rows_b[b_id].remove(a_id)
                removed = True
        return removed

    def creates_cycle(prov_id: int, cust_id: int) -> bool:
        # the edge closes a provider cycle iff the provider is already
        # in the customer's cone (reachable over customer edges)
        queue = deque([cust_id])
        seen = {cust_id}
        while queue:
            node = queue.popleft()
            if node == prov_id:
                return True
            for nxt in customers[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def add_p2c(op: Dict[str, object], prov_id: int, cust_id: int) -> None:
        if creates_cycle(prov_id, cust_id):
            raise ScenarioError(
                f"{op['op']}: provider {base.index.asns[prov_id]} over "
                f"customer {base.index.asns[cust_id]} would close a "
                f"provider cycle"
            )
        customers[prov_id].append(cust_id)
        providers[cust_id].append(prov_id)

    for op in scenario.ops:
        kind = op["op"]
        if kind == "leak":
            asn_id(op, "asn")  # validated only; leaks don't touch edges
        elif kind == "poison":
            i = asn_id(op, "asn")
            for neighbor in providers[i]:
                customers[neighbor].remove(i)
            for neighbor in customers[i]:
                providers[neighbor].remove(i)
            for neighbor in peers[i]:
                peers[neighbor].remove(i)
            providers[i], customers[i], peers[i] = [], [], []
        elif kind == "drop_link":
            a_id, b_id = asn_id(op, "a"), asn_id(op, "b")
            if not unlink(a_id, b_id):
                raise ScenarioError(
                    f"drop_link: no link between {op['a']} and {op['b']}"
                )
        elif kind == "add_peering":
            a_id, b_id = asn_id(op, "a"), asn_id(op, "b")
            if linked(a_id, b_id):
                raise ScenarioError(
                    f"add_peering: {op['a']} and {op['b']} are already "
                    f"linked; use set_relationship"
                )
            peers[a_id].append(b_id)
            peers[b_id].append(a_id)
        elif kind == "add_transit":
            prov_id = asn_id(op, "provider")
            cust_id = asn_id(op, "customer")
            if linked(prov_id, cust_id):
                raise ScenarioError(
                    f"add_transit: {op['provider']} and {op['customer']} "
                    f"are already linked; use set_relationship"
                )
            add_p2c(op, prov_id, cust_id)
        elif kind == "set_relationship":
            a_id, b_id = asn_id(op, "a"), asn_id(op, "b")
            if not unlink(a_id, b_id):
                raise ScenarioError(
                    f"set_relationship: no link between {op['a']} "
                    f"and {op['b']}"
                )
            if op["relationship"] == "p2p":
                peers[a_id].append(b_id)
                peers[b_id].append(a_id)
            else:
                prov_id = ids[op["provider"]]
                cust_id = b_id if prov_id == a_id else a_id
                add_p2c(op, prov_id, cust_id)

    for rows in (providers, customers, peers):
        for row in rows:
            row.sort()
    return RelGraph(base.index, providers, customers, peers)


def best_origin(
    origins: Sequence[int], states: Sequence[RouteState], i: int
) -> Optional[int]:
    """Winning anycast origin at dense id ``i``, or ``None``.

    BGP's preference order decides the catchment: route class
    (origin > customer > peer > provider), then path length, then the
    lowest origin ASN — the same total order route selection applies
    to individual announcements.
    """
    best_key = None
    winner = None
    for asn, state in zip(origins, states):
        cls = state.cls[i]
        if cls == NO_ROUTE:
            continue
        key = (cls, state.pathlen[i], asn)
        if best_key is None or key < best_key:
            best_key = key
            winner = asn
    return winner


class PathEngine:
    """Bounded thread-safe cache of compiled graphs and route tables.

    One engine fronts one server: handlers ask it for route tables and
    it answers from cache or computes via :func:`propagate_batch` over
    the snapshot's RelGraph.  Keys carry the snapshot version, so a hot
    reload naturally cold-starts the new version while old entries age
    out of the LRU — no explicit invalidation.
    """

    def __init__(self, max_graphs: int = 8, max_tables: int = 512):
        self._graphs: "OrderedDict[Tuple[str, str], GraphIndex]" = (
            OrderedDict()
        )
        self._tables: "OrderedDict[Tuple[str, str, int], RouteState]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self._max_graphs = max_graphs
        self._max_tables = max_tables
        self.graph_hits = 0
        self.graph_misses = 0
        self.table_hits = 0
        self.table_misses = 0

    def graph_index(
        self, snapshot, scenario: Optional[Scenario] = None
    ) -> GraphIndex:
        """The (possibly scenario-mutated) propagation view, cached."""
        key = (snapshot.version, scenario.key if scenario else "")
        with self._lock:
            cached = self._graphs.get(key)
            if cached is not None:
                self._graphs.move_to_end(key)
                self.graph_hits += 1
                return cached
            self.graph_misses += 1
        # compute outside the lock: results are deterministic, so a
        # concurrent duplicate compute is wasted work, never a wrong one
        if scenario is None or not scenario.ops:
            rel = snapshot.rel_graph()
        else:
            rel = apply_scenario(snapshot, scenario)
        gindex = GraphIndex(rel=rel)
        with self._lock:
            self._graphs[key] = gindex
            self._graphs.move_to_end(key)
            while len(self._graphs) > self._max_graphs:
                self._graphs.popitem(last=False)
        return gindex

    def tables(
        self,
        snapshot,
        origins: Sequence[int],
        scenario: Optional[Scenario] = None,
    ) -> Tuple[GraphIndex, List[RouteState]]:
        """Route tables for ``origins``, aligned with the input order.

        Cache misses propagate together in one batched call; every
        origin of an anycast set or a cold what-if pays one shared
        sweep, not one sweep each.
        """
        gindex = self.graph_index(snapshot, scenario)
        skey = scenario.key if scenario else ""
        leakers = scenario.leakers if scenario else frozenset()
        have: Dict[int, RouteState] = {}
        missing: List[int] = []
        with self._lock:
            for asn in origins:
                if asn in have or asn in missing:
                    continue
                key = (snapshot.version, skey, asn)
                state = self._tables.get(key)
                if state is not None:
                    self._tables.move_to_end(key)
                    self.table_hits += 1
                    have[asn] = state
                else:
                    self.table_misses += 1
                    missing.append(asn)
        if missing:
            leak_map = (
                {asn: set(leakers) for asn in missing} if leakers else None
            )
            states = propagate_batch(gindex, missing, leak_map)
            with self._lock:
                for asn, state in zip(missing, states):
                    have[asn] = state
                    self._tables[(snapshot.version, skey, asn)] = state
                    self._tables.move_to_end(
                        (snapshot.version, skey, asn)
                    )
                while len(self._tables) > self._max_tables:
                    self._tables.popitem(last=False)
        return gindex, [have[asn] for asn in origins]

    def table(
        self, snapshot, origin: int, scenario: Optional[Scenario] = None
    ) -> Tuple[GraphIndex, RouteState]:
        """One origin's route table (the ``GET /paths`` hot path)."""
        gindex, states = self.tables(snapshot, [origin], scenario)
        return gindex, states[0]

    def stats(self) -> Dict[str, int]:
        """Cache occupancy and hit counters, for ``/metrics``."""
        with self._lock:
            return {
                "graphs": len(self._graphs),
                "tables": len(self._tables),
                "graph_hits": self.graph_hits,
                "graph_misses": self.graph_misses,
                "table_hits": self.table_hits,
                "table_misses": self.table_misses,
            }
