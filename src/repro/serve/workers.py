"""Pre-fork worker fleet: N processes, one port, one mapped snapshot.

``serve --workers N`` runs this instead of a single-process server.
The parent is a tiny supervisor — it never loads the snapshot — and
each worker is a full :class:`~repro.serve.server.SnapshotServer` over
its own :class:`~repro.serve.store.SnapshotStore`, opened in ``mmap``
mode against the *same* file, so the kernel shares one physical copy
of the payload pages across the whole fleet.

**Port sharing.** Where the platform has ``SO_REUSEPORT`` the parent
binds (without listening) a *reserver* socket to pin the port, and
every worker binds the same address with ``reuse_port=True`` — the
kernel load-balances accepts across the workers' listen queues.
Where it doesn't (or ``force_shared_socket=True``), the parent binds
and listens one socket before forking and the workers accept from the
inherited file description.

**Supervision.** A monitor thread owns all the control pipes: it
reaps dead workers with ``waitpid(WNOHANG)`` and respawns them (small
backoff), and it is the only thread that reads worker responses, so
request/response bookkeeping needs no cross-thread locking.

**Coordinated reload.** Hot reload is two-phase so it is atomic
across the fleet: the supervisor sends ``prepare`` to every worker
(each loads the target file with *every* section checksum verified and
stages it), and only when all workers ack the same version does it
send ``commit`` (an in-memory swap that cannot fail); any prepare
failure aborts everywhere and every worker keeps serving the old
snapshot.  ``POST /admin/reload`` on a worker returns 202 and files a
reload request with the supervisor (via
:meth:`WorkerAgent.request_reload` as the Api's ``reload_delegate``);
SIGHUP on the parent does the same.  Convergence is observable from
outside: ``/healthz`` carries ``worker: {index, pid}`` next to the
version, and :meth:`WorkerFleet.versions` asks every worker directly.

The control protocol is newline-delimited JSON over two pipes per
worker (parent→child commands, child→parent events/responses)::

    > {"cmd": "prepare", "id": 7, "path": "..."}
    < {"event": "resp", "id": 7, "ok": true, "version": "ab12..."}
    < {"event": "ready", "version": "ab12...", "pid": 4242}
    < {"event": "reload-request", "path": null}

A worker treats EOF on its command pipe as "supervisor is gone" and
shuts down, so an orphaned fleet cannot outlive its parent.
"""

from __future__ import annotations

import asyncio
import json
import os
import selectors
import signal
import socket
import threading
import time
import traceback
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.datasets.serialization import DatasetFormatError
from repro.serve.server import SnapshotServer
from repro.serve.store import SnapshotStore, load_payload


class FleetError(RuntimeError):
    """A fleet-level operation (start, reload) failed."""


def memory_stats(pid: int) -> Optional[Dict[str, int]]:
    """Resident/proportional/private memory of one process, in kB.

    Parsed from ``/proc/<pid>/smaps_rollup``; ``private_kb`` is what
    the process would free if it exited — for fleet workers mapping
    one snapshot it must stay far below the snapshot size, which is
    the observable proof that the payload pages are shared.  Returns
    ``None`` where /proc is unavailable.
    """
    try:
        with open(f"/proc/{pid}/smaps_rollup") as stream:
            text = stream.read()
    except OSError:
        return None
    fields: Dict[str, int] = {}
    for line in text.splitlines():
        key, _, rest = line.partition(":")
        parts = rest.split()
        if parts and parts[-1] == "kB":
            fields[key] = int(parts[0])
    if "Rss" not in fields:
        return None
    return {
        "rss_kb": fields["Rss"],
        "pss_kb": fields.get("Pss", 0),
        "private_kb": (
            fields.get("Private_Clean", 0) + fields.get("Private_Dirty", 0)
        ),
        "shared_kb": (
            fields.get("Shared_Clean", 0) + fields.get("Shared_Dirty", 0)
        ),
    }


# ---------------------------------------------------------------------------
# worker side (runs in the forked child)
# ---------------------------------------------------------------------------


class WorkerAgent:
    """The child's end of the control protocol, on the server's loop."""

    def __init__(self, store: SnapshotStore, cmd_fd: int, resp_fd: int):
        self.store = store
        self.cmd_fd = cmd_fd
        self.resp_fd = resp_fd
        self._buffer = b""
        self._staged: Optional[Tuple[object, str]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    def request_reload(self, path: Optional[str] = None) -> None:
        """File a reload request with the supervisor (the Api's
        ``reload_delegate``); safe from any thread."""
        self._send({"event": "reload-request", "path": path})

    def _send(self, msg: Dict[str, object]) -> None:
        # small one-line writes are atomic on a pipe (< PIPE_BUF)
        try:
            os.write(self.resp_fd, json.dumps(msg).encode() + b"\n")
        except OSError:
            pass

    async def main(self, server: SnapshotServer) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await server.start()
        self._send(
            {
                "event": "ready",
                "version": self.store.cache_version,
                "pid": os.getpid(),
                "port": server.port,
            }
        )
        os.set_blocking(self.cmd_fd, False)
        self._loop.add_reader(self.cmd_fd, self._on_command)
        try:
            await self._stop.wait()
        finally:
            self._loop.remove_reader(self.cmd_fd)
            await server.stop()

    def _on_command(self) -> None:
        try:
            data = os.read(self.cmd_fd, 65536)
        except BlockingIOError:
            return
        except OSError:
            data = b""
        if not data:
            # EOF: the supervisor died or is stopping us
            self._stop.set()
            return
        self._buffer += data
        while b"\n" in self._buffer:
            line, _, self._buffer = self._buffer.partition(b"\n")
            if not line.strip():
                continue
            try:
                msg = json.loads(line)
            except ValueError:
                continue
            self._loop.create_task(self._handle(msg))

    async def _handle(self, msg: Dict[str, object]) -> None:
        cmd = msg.get("cmd")
        rid = msg.get("id")

        def resp(ok: bool, **extra) -> None:
            self._send({"event": "resp", "id": rid, "ok": ok, **extra})

        if cmd == "ping":
            resp(True, version=self.store.cache_version)
        elif cmd == "prepare":
            path = msg.get("path")
            try:
                # full checksum verification before acking: a corrupt
                # section must fail the *prepare* phase, never surface
                # mid-request after commit.  load_payload sniffs the
                # magic, so a whole timeline stages the same way a
                # single snapshot does.
                payload = await self._loop.run_in_executor(
                    None,
                    lambda: load_payload(
                        path, mode=self.store.mode, verify=True
                    ),
                )
            except Exception as exc:
                self._staged = None
                resp(False, error=str(exc))
                return
            self._staged = (payload, path)
            resp(True, version=payload.version)
        elif cmd == "commit":
            if self._staged is None:
                resp(False, error="nothing staged")
                return
            payload, path = self._staged
            self._staged = None
            self.store.swap(payload, path=path)
            resp(True, version=payload.version)
        elif cmd == "abort":
            if self._staged is not None:
                payload, _path = self._staged
                self._staged = None
                close = getattr(payload, "close", None)
                if close is not None:
                    close()
            resp(True, version=self.store.cache_version)
        elif cmd == "stop":
            resp(True)
            self._stop.set()


def _worker_main(
    index: int,
    snapshot_path: str,
    mode: str,
    cmd_fd: int,
    resp_fd: int,
    sock: Optional[socket.socket],
    host: str,
    port: int,
    server_kwargs: Dict[str, object],
) -> None:
    """Everything a forked worker runs; never returns normally."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if hasattr(signal, "SIGHUP"):
        # reload arrives over the control pipe; the parent owns SIGHUP
        signal.signal(signal.SIGHUP, signal.SIG_IGN)
    store = SnapshotStore(path=snapshot_path, mode=mode)
    agent = WorkerAgent(store, cmd_fd, resp_fd)
    server = SnapshotServer(
        store,
        host=host,
        port=port,
        sock=sock,
        reuse_port=sock is None,
        worker_info={"index": index, "pid": os.getpid()},
        reload_delegate=agent.request_reload,
        install_sighup=False,
        **server_kwargs,
    )
    asyncio.run(agent.main(server))


# ---------------------------------------------------------------------------
# supervisor side
# ---------------------------------------------------------------------------


class _Worker:
    __slots__ = (
        "index", "pid", "cmd_w", "resp_r", "buffer", "alive", "ready",
        "version", "registered",
    )

    def __init__(self, index: int, pid: int, cmd_w: int, resp_r: int):
        self.index = index
        self.pid = pid
        self.cmd_w = cmd_w
        self.resp_r = resp_r
        self.buffer = b""
        self.alive = True
        self.ready = threading.Event()
        self.version: Optional[str] = None
        self.registered = True


class _Op:
    __slots__ = ("kind", "path", "done", "result", "error")

    def __init__(self, kind: str, path: Optional[str] = None):
        self.kind = kind
        self.path = path
        self.done = threading.Event()
        self.result = None
        self.error: Optional[str] = None


class WorkerFleet:
    """Supervisor for N pre-fork :class:`SnapshotServer` workers."""

    def __init__(
        self,
        snapshot_path: str,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        mode: str = "mmap",
        force_shared_socket: bool = False,
        restart_backoff: float = 0.1,
        start_timeout: float = 30.0,
        reload_timeout: float = 60.0,
        **server_kwargs,
    ):
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.snapshot_path = os.path.abspath(snapshot_path)
        self.n_workers = workers
        self.host = host
        self.port = port
        self.mode = mode
        self.force_shared_socket = force_shared_socket
        self.restart_backoff = restart_backoff
        self.start_timeout = start_timeout
        self.reload_timeout = reload_timeout
        self.reuse_port = False
        self.restarts = 0
        self._server_kwargs = server_kwargs
        self._workers: List[Optional[_Worker]] = []
        self._reserver: Optional[socket.socket] = None
        self._shared_sock: Optional[socket.socket] = None
        self._selector = selectors.DefaultSelector()
        self._collections: Dict[int, Dict[int, Dict[str, object]]] = {}
        self._last_fatal: Optional[str] = None
        self._ops: "deque[_Op]" = deque()
        self._next_id = 0
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, fork the fleet, wait until every worker serves."""
        self._bind()
        self._workers = [None] * self.n_workers
        for index in range(self.n_workers):
            self._spawn(index)
        deadline = time.monotonic() + self.start_timeout
        while time.monotonic() < deadline:
            if all(
                w is not None and w.alive and w.ready.is_set()
                for w in self._workers
            ):
                break
            self._pump(0.05)
            if self._last_fatal is not None:
                # a worker died before serving — its snapshot will not
                # load for the respawn either, so fail now, not after
                # start_timeout worth of respawn churn
                error = self._last_fatal
                self.stop()
                raise FleetError(f"fleet failed to start: {error}")
        else:
            self.stop()
            raise FleetError(
                f"fleet failed to start within {self.start_timeout}s"
            )
        self._last_fatal = None
        self._thread = threading.Thread(
            target=self._monitor, name="fleet-monitor", daemon=True
        )
        self._thread.start()
        return self.host, self.port

    def stop(self) -> None:
        self._stopping.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        # closing the command pipes EOFs every agent -> graceful stop
        for worker in self._workers:
            if worker is not None and worker.alive:
                self._close_fds(worker)
        deadline = time.monotonic() + 5.0
        pending = [w for w in self._workers if w is not None and w.alive]
        while pending and time.monotonic() < deadline:
            for worker in list(pending):
                try:
                    pid, _status = os.waitpid(worker.pid, os.WNOHANG)
                except ChildProcessError:
                    pid = worker.pid
                if pid:
                    worker.alive = False
                    pending.remove(worker)
            if pending:
                time.sleep(0.02)
        for worker in pending:  # refuse to leak processes
            try:
                os.kill(worker.pid, signal.SIGKILL)
                os.waitpid(worker.pid, 0)
            except (OSError, ChildProcessError):
                pass
            worker.alive = False
        self._selector.close()
        if self._reserver is not None:
            self._reserver.close()
            self._reserver = None
        if self._shared_sock is not None:
            self._shared_sock.close()
            self._shared_sock = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- public operations ---------------------------------------------

    def pids(self) -> List[int]:
        return [
            w.pid for w in self._workers if w is not None and w.alive
        ]

    def reload(
        self, path: Optional[str] = None, timeout: Optional[float] = None
    ) -> str:
        """Two-phase reload across the fleet; returns the new version.

        All-or-nothing: raises :class:`FleetError` (and every worker
        keeps the old snapshot) if any worker fails to load and verify
        the target file.
        """
        op = _Op("reload", path)
        self._ops.append(op)
        if not op.done.wait(timeout or self.reload_timeout * 2 + 10):
            raise FleetError("reload timed out")
        if op.error:
            raise FleetError(op.error)
        return op.result

    def request_reload(self, path: Optional[str] = None) -> None:
        """Queue a reload without waiting (the SIGHUP/delegate path)."""
        self._ops.append(_Op("reload", path))

    def versions(self, timeout: float = 10.0) -> Dict[int, str]:
        """Ask every live worker which version it is serving."""
        op = _Op("ping")
        self._ops.append(op)
        if not op.done.wait(timeout):
            raise FleetError("version poll timed out")
        if op.error:
            raise FleetError(op.error)
        return op.result

    # -- binding + forking ---------------------------------------------

    def _bind(self) -> None:
        if not self.force_shared_socket and hasattr(
            socket, "SO_REUSEPORT"
        ):
            reserver = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                reserver.setsockopt(
                    socket.SOL_SOCKET, socket.SO_REUSEPORT, 1
                )
                reserver.bind((self.host, self.port))
            except OSError:
                reserver.close()
            else:
                # bound but never listening: it pins the (possibly
                # ephemeral) port for the fleet's lifetime without
                # receiving connections; workers bind it for real
                self.host, self.port = reserver.getsockname()[:2]
                self._reserver = reserver
                self.reuse_port = True
                return
        shared = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        shared.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        shared.bind((self.host, self.port))
        shared.listen(512)
        self.host, self.port = shared.getsockname()[:2]
        self._shared_sock = shared

    def _spawn(self, index: int) -> _Worker:
        cmd_r, cmd_w = os.pipe()
        resp_r, resp_w = os.pipe()
        sibling_fds = [
            fd
            for w in self._workers
            if w is not None and w.alive
            for fd in (w.cmd_w, w.resp_r)
        ]
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                os.close(cmd_w)
                os.close(resp_r)
                for fd in sibling_fds:
                    try:
                        os.close(fd)
                    except OSError:
                        pass
                if self._reserver is not None:
                    self._reserver.close()
                _worker_main(
                    index,
                    self.snapshot_path,
                    self.mode,
                    cmd_r,
                    resp_w,
                    self._shared_sock,
                    self.host,
                    self.port,
                    self._server_kwargs,
                )
                status = 0
            except BaseException as exc:
                try:
                    os.write(
                        resp_w,
                        json.dumps(
                            {"event": "fatal", "error": str(exc)}
                        ).encode() + b"\n",
                    )
                except OSError:
                    pass
                # data/IO errors (missing or corrupt snapshot) already
                # travel up as a one-line fatal event; a traceback here
                # is only useful for genuine bugs
                if not isinstance(exc, (OSError, DatasetFormatError)):
                    traceback.print_exc()
            finally:
                os._exit(status)
        os.close(cmd_r)
        os.close(resp_w)
        os.set_blocking(resp_r, False)
        worker = _Worker(index, pid, cmd_w, resp_r)
        self._workers[index] = worker
        self._selector.register(resp_r, selectors.EVENT_READ, worker)
        return worker

    def _close_fds(self, worker: _Worker) -> None:
        if worker.registered:
            worker.registered = False
            try:
                self._selector.unregister(worker.resp_r)
            except (KeyError, ValueError, RuntimeError):
                pass
        for fd in (worker.cmd_w, worker.resp_r):
            try:
                os.close(fd)
            except OSError:
                pass

    # -- monitor thread (sole reader of the response pipes) ------------

    def _monitor(self) -> None:
        while not self._stopping.is_set():
            self._pump(0.1)
            try:
                op = self._ops.popleft()
            except IndexError:
                continue
            try:
                if op.kind == "reload":
                    self._execute_reload(op)
                else:
                    self._execute_ping(op)
            except Exception as exc:  # an op bug must not kill the fleet
                op.error = str(exc)
            finally:
                op.done.set()

    def _pump(self, timeout: float) -> None:
        try:
            events = self._selector.select(timeout)
        except OSError:
            events = []
        for key, _mask in events:
            self._drain(key.data)
        self._reap()

    def _drain(self, worker: _Worker) -> None:
        while True:
            try:
                data = os.read(worker.resp_r, 65536)
            except BlockingIOError:
                return
            except OSError:
                data = b""
            if not data:
                if worker.registered:
                    worker.registered = False
                    try:
                        self._selector.unregister(worker.resp_r)
                    except (KeyError, ValueError, RuntimeError):
                        pass
                return
            worker.buffer += data
            while b"\n" in worker.buffer:
                line, _, worker.buffer = worker.buffer.partition(b"\n")
                if not line.strip():
                    continue
                try:
                    msg = json.loads(line)
                except ValueError:
                    continue
                self._dispatch(worker, msg)

    def _dispatch(self, worker: _Worker, msg: Dict[str, object]) -> None:
        event = msg.get("event")
        if event == "ready":
            worker.version = msg.get("version")
            worker.ready.set()
        elif event == "resp":
            collection = self._collections.get(msg.get("id"))
            if collection is not None:
                collection[worker.index] = msg
        elif event == "reload-request":
            self._ops.append(_Op("reload", msg.get("path")))
        elif event == "fatal":
            self._last_fatal = str(msg.get("error"))
            print(
                f"serve: worker {worker.index} (pid {worker.pid}) "
                f"fatal: {msg.get('error')}"
            )

    def _reap(self) -> None:
        for worker in self._workers:
            if worker is None or not worker.alive:
                continue
            try:
                pid, _status = os.waitpid(worker.pid, os.WNOHANG)
            except ChildProcessError:
                pid = worker.pid
            if not pid:
                continue
            self._drain(worker)  # salvage any final lines
            worker.alive = False
            worker.ready.clear()
            self._close_fds(worker)
            if not self._stopping.is_set():
                self.restarts += 1
                time.sleep(self.restart_backoff)
                self._spawn(worker.index)

    # -- fleet operations (run on the monitor thread) -------------------

    def _request_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _send(self, worker: _Worker, msg: Dict[str, object]) -> bool:
        try:
            os.write(worker.cmd_w, json.dumps(msg).encode() + b"\n")
            return True
        except OSError:
            return False

    def _collect(
        self, rid: int, workers: List[_Worker], timeout: float
    ) -> Dict[int, Dict[str, object]]:
        got: Dict[int, Dict[str, object]] = {}
        self._collections[rid] = got
        deadline = time.monotonic() + timeout
        try:
            while time.monotonic() < deadline:
                if all(
                    not w.alive or w.index in got for w in workers
                ):
                    break
                self._pump(0.05)
        finally:
            self._collections.pop(rid, None)
        return got

    def _live_workers(self) -> List[_Worker]:
        return [
            w
            for w in self._workers
            if w is not None and w.alive and w.ready.is_set()
        ]

    def _execute_ping(self, op: _Op) -> None:
        workers = self._live_workers()
        rid = self._request_id()
        for worker in workers:
            self._send(worker, {"cmd": "ping", "id": rid})
        got = self._collect(rid, workers, 10.0)
        op.result = {
            index: msg.get("version") for index, msg in got.items()
        }

    def _execute_reload(self, op: _Op) -> None:
        target = os.path.abspath(op.path) if op.path else self.snapshot_path
        workers = self._live_workers()
        if not workers:
            op.error = "no live workers to reload"
            return

        # phase 1: every worker loads + fully verifies the target
        rid = self._request_id()
        for worker in workers:
            self._send(
                worker, {"cmd": "prepare", "id": rid, "path": target}
            )
        got = self._collect(rid, workers, self.reload_timeout)
        acks = [msg for msg in got.values() if msg.get("ok")]
        versions = {msg.get("version") for msg in acks}
        if len(got) < len(workers) or len(acks) < len(got) \
                or len(versions) != 1:
            rid = self._request_id()
            for worker in workers:
                if worker.alive:
                    self._send(worker, {"cmd": "abort", "id": rid})
            self._collect(
                rid, [w for w in workers if w.alive], 10.0
            )
            errors = sorted(
                {
                    str(msg.get("error"))
                    for msg in got.values()
                    if not msg.get("ok")
                }
            )
            missing = len(workers) - len(got)
            detail = "; ".join(errors) if errors else (
                f"{missing} worker(s) did not respond"
            )
            op.error = (
                f"reload aborted, fleet still on the old snapshot: "
                f"{detail}"
            )
            return

        # phase 2: commit everywhere (an in-memory swap; a worker dying
        # here respawns from snapshot_path, which now names the new
        # file, so the fleet still converges on one version)
        version = versions.pop()
        self.snapshot_path = target
        rid = self._request_id()
        for worker in workers:
            self._send(worker, {"cmd": "commit", "id": rid})
        got = self._collect(rid, workers, 10.0)
        committed = [msg for msg in got.values() if msg.get("ok")]
        for worker in workers:
            if worker.index in got and got[worker.index].get("ok"):
                worker.version = version
        if len(committed) < len(workers):
            op.error = (
                f"{len(workers) - len(committed)} worker(s) dropped "
                f"during commit; respawns converge to {version}"
            )
            return
        op.result = version
