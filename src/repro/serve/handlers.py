"""Route handlers: (method, path, query) → JSON payload.

Kept free of sockets and HTTP framing so the QA invariants and unit
tests can drive the exact serving logic in-process: :class:`Api` turns
a parsed request into ``(status, payload, route, cacheable)`` and the
asyncio server in :mod:`repro.serve.server` only adds wire framing,
the response cache and ETags on top.

Routes (all JSON)::

    GET  /asns/{asn}                     rank-table row for one AS
    GET  /asns/{asn}/cone?definition=    cone membership (paginated)
    GET  /asns/{asn}/history             per-era rank/degree/cone series
    GET  /links/{a}/{b}                  relationship + provider
    GET  /ranks?page=&per_page=          the rank table, paginated
    GET  /paths/{src}/{dst}              policy path (``?origins=`` anycast)
    POST /what-if                        scenario query diffed vs baseline
    GET  /eras                           the mounted timeline's era table
    GET  /diff/{era_a}/{era_b}           era-over-era comparison
    GET  /snapshot                       version + metadata + stats
    GET  /healthz                        liveness
    GET  /metrics                        perf counters, latencies, cache
    POST /admin/reload                   atomic hot snapshot reload

Every query route accepts ``?as_of=<era index | era label | date>``
when the store mounts a timeline: the handler runs against that era's
materialized snapshot instead of the latest one.  A malformed or
out-of-range ``as_of`` — or one sent to a single-snapshot server — is
a 400, never a 500.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro import perf
from repro.serve.prediction import (
    CLASS_NAMES,
    PathEngine,
    Scenario,
    ScenarioError,
    best_origin,
)
from repro.serve.snapshot import (
    Snapshot,
    SnapshotFormatError,
    resolve_definition,
)
from repro.serve.store import SnapshotStore, TimelineLookupError

#: (status, JSON-serializable payload, route label, cacheable)
HandlerResult = Tuple[int, object, str, bool]

MAX_PER_PAGE = 1000
DEFAULT_PER_PAGE = 50
#: cap on one anycast origin set — bounds the propagation work and the
#: catchment scan a single GET can demand
MAX_ORIGINS = 16
#: per-bucket example paths included in a what-if diff payload
MAX_EXAMPLES = 10
#: cached era-pair diffs; each is computed once per (version, pair)
MAX_DIFF_CACHE = 64

#: first path segments owned by GET — a POST here is 405, not 404
_GET_ROUTE_HEADS = frozenset(
    ("asns", "links", "ranks", "paths", "snapshot", "healthz", "metrics",
     "eras", "diff", "stream")
)


class Api:
    """The query service's routing + handler logic over one store."""

    def __init__(
        self,
        store: SnapshotStore,
        metrics_view: Optional[Callable[[], Dict[str, object]]] = None,
        allow_admin: bool = True,
        engine: Optional[PathEngine] = None,
        worker_info: Optional[Dict[str, object]] = None,
        reload_delegate: Optional[Callable[[Optional[str]], None]] = None,
        ingest_status: Optional[Callable[[], Dict[str, object]]] = None,
    ):
        self.store = store
        self._metrics_view = metrics_view
        # live-ingest wiring: a StreamIngestor.status callable surfaces
        # the publish counters on /stream and inside /metrics
        self._ingest_status = ingest_status
        self.allow_admin = allow_admin
        self.engine = engine if engine is not None else PathEngine()
        # pre-fork fleet wiring: worker_info rides on /healthz and
        # /snapshot so convergence is observable per worker, and
        # reload_delegate hands /admin/reload to the supervisor (a
        # worker must not reload alone — versions would diverge)
        self.worker_info = worker_info
        self.reload_delegate = reload_delegate
        # era-pair diff LRU; keys carry the timeline version so a hot
        # reload cold-starts it naturally (PathEngine idiom: compute
        # outside the lock, deterministic duplicate compute is safe)
        self._diff_cache: "OrderedDict[Tuple[str, int, int], Dict]" = (
            OrderedDict()
        )
        self._diff_lock = threading.Lock()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: bytes = b"",
    ) -> HandlerResult:
        parts = [p for p in path.split("/") if p]
        try:
            # one atomic store read per request; ?as_of= swaps in the
            # requested era's materialized snapshot before dispatch so
            # every handler below time-travels uniformly
            snapshot = self._resolve_snapshot(query)
            if method == "GET":
                if parts == ["healthz"]:
                    payload = {"status": "ok", "version": snapshot.version}
                    if self.worker_info is not None:
                        payload["worker"] = self.worker_info
                    return 200, payload, "healthz", False
                if parts == ["metrics"]:
                    return 200, self._metrics(), "metrics", False
                if parts == ["stream"]:
                    if self._ingest_status is None:
                        return (
                            404,
                            _error("no stream attached"),
                            "stream",
                            False,
                        )
                    payload = dict(self._ingest_status())
                    payload["serving_version"] = snapshot.version
                    return 200, payload, "stream", False
                if parts == ["snapshot"]:
                    return (
                        200,
                        self._snapshot_info(snapshot),
                        "snapshot",
                        True,
                    )
                if parts == ["ranks"]:
                    return self._ranks(snapshot, query)
                if parts == ["eras"]:
                    return self._eras()
                if len(parts) == 2 and parts[0] == "asns":
                    return self._asn(snapshot, parts[1])
                if (
                    len(parts) == 3
                    and parts[0] == "asns"
                    and parts[2] == "cone"
                ):
                    return self._cone(snapshot, parts[1], query)
                if (
                    len(parts) == 3
                    and parts[0] == "asns"
                    and parts[2] == "history"
                ):
                    return self._history(parts[1])
                if len(parts) == 3 and parts[0] == "links":
                    return self._link(snapshot, parts[1], parts[2])
                if len(parts) == 3 and parts[0] == "paths":
                    return self._paths(
                        snapshot, parts[1], parts[2], query
                    )
                if len(parts) == 3 and parts[0] == "diff":
                    return self._diff(parts[1], parts[2])
            elif method == "POST":
                if parts == ["admin", "reload"]:
                    return self._reload(body)
                if parts == ["what-if"]:
                    return self._what_if(snapshot, body)
                if parts and parts[0] in _GET_ROUTE_HEADS:
                    # an existing GET-only route: wrong method, not 404
                    return 405, _error("method not allowed"), "error", False
            else:
                return 405, _error("method not allowed"), "error", False
        except _BadRequest as exc:
            return 400, _error(str(exc)), "error", False
        except ScenarioError as exc:
            return 400, _error(str(exc)), "error", False
        except TimelineLookupError as exc:
            return 400, _error(str(exc)), "error", False
        return 404, _error(f"no route for {path}"), "error", False

    def _resolve_snapshot(self, query: Dict[str, str]) -> Snapshot:
        as_of = query.get("as_of")
        if as_of is None:
            return self.store.current
        timeline = self.store.timeline
        if timeline is None:
            raise _BadRequest(
                "as_of requires a timeline; this server mounts a "
                "single snapshot"
            )
        try:
            era = timeline.resolve(as_of)
        except TimelineLookupError as exc:
            raise _BadRequest(str(exc)) from None
        return timeline.snapshot(era)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _asn(self, snapshot: Snapshot, raw: str) -> HandlerResult:
        asn = _parse_asn(raw)
        entry = snapshot.rank_entry(asn)
        if entry is None:
            return 404, _error(f"AS{asn} not in snapshot"), "asn", True
        payload = {
            "asn": asn,
            "rank": entry.rank,
            "cone": {
                "ases": entry.cone_ases,
                "prefixes": entry.cone_prefixes,
                "addresses": entry.cone_addresses,
            },
            "degree": {
                "transit": entry.transit_degree,
                "node": entry.node_degree,
            },
            "neighbors": {
                "customers": entry.num_customers,
                "peers": entry.num_peers,
                "providers": entry.num_providers,
            },
            "clique": asn in snapshot.meta.get("clique", ()),
            "snapshot": snapshot.version,
        }
        return 200, payload, "asn", True

    def _cone(
        self, snapshot: Snapshot, raw: str, query: Dict[str, str]
    ) -> HandlerResult:
        asn = _parse_asn(raw)
        name = query.get("definition", "provider/peer-observed")
        try:
            definition = resolve_definition(name)
        except KeyError as exc:
            raise _BadRequest(str(exc).strip('"')) from None
        if asn not in snapshot:
            return 404, _error(f"AS{asn} not in snapshot"), "cone", True
        try:
            members = sorted(snapshot.cone(asn, definition))
        except KeyError as exc:
            raise _BadRequest(str(exc).strip('"')) from None
        page, per_page = _pagination(query, default_per_page=None)
        total = len(members)
        if per_page is not None:
            members = members[(page - 1) * per_page:page * per_page]
        payload = {
            "asn": asn,
            "definition": definition.value,
            "size": total,
            "members": members,
            "snapshot": snapshot.version,
        }
        if per_page is not None:
            payload["page"] = page
            payload["per_page"] = per_page
        return 200, payload, "cone", True

    def _link(
        self, snapshot: Snapshot, raw_a: str, raw_b: str
    ) -> HandlerResult:
        a, b = _parse_asn(raw_a), _parse_asn(raw_b)
        relationship = snapshot.relationship(a, b)
        if relationship is None:
            return (
                404,
                _error(f"no inferred link AS{a}-AS{b}"),
                "link",
                True,
            )
        payload = {
            "a": a,
            "b": b,
            "relationship": relationship.label,
            "provider": snapshot.provider_of(a, b),
            "snapshot": snapshot.version,
        }
        return 200, payload, "link", True

    def _paths(
        self,
        snapshot: Snapshot,
        raw_src: str,
        raw_dst: str,
        query: Dict[str, str],
    ) -> HandlerResult:
        src, dst = _parse_asn(raw_src), _parse_asn(raw_dst)
        for asn in (src, dst):
            if asn not in snapshot:
                return (
                    404, _error(f"AS{asn} not in snapshot"), "paths", True
                )
        origins_raw = query.get("origins")
        if origins_raw is not None:
            return self._anycast(snapshot, src, dst, origins_raw)
        gindex, state = self.engine.table(snapshot, dst)
        payload = _path_payload(gindex, state, src)
        payload.update(
            {"src": src, "dst": dst, "snapshot": snapshot.version}
        )
        return 200, payload, "paths", True

    def _anycast(
        self, snapshot: Snapshot, src: int, dst: int, origins_raw: str
    ) -> HandlerResult:
        extra = [
            _parse_asn(token)
            for token in origins_raw.split(",")
            if token.strip()
        ]
        if not extra:
            raise _BadRequest("origins must be comma-separated ASNs")
        origins = sorted({dst, *extra})
        if len(origins) > MAX_ORIGINS:
            raise _BadRequest(
                f"anycast sets are capped at {MAX_ORIGINS} origins"
            )
        for asn in origins:
            if asn not in snapshot:
                return (
                    404, _error(f"AS{asn} not in snapshot"), "paths", True
                )
        gindex, states = self.engine.tables(snapshot, origins)
        winner = best_origin(origins, states, gindex.index[src])
        payload: Dict[str, object] = {
            "src": src,
            "dst": dst,
            "origins": origins,
            "winner": winner,
            "snapshot": snapshot.version,
        }
        if winner is None:
            payload.update(
                {
                    "reachable": False, "path": None,
                    "length": None, "route_class": None,
                }
            )
        else:
            payload.update(
                _path_payload(
                    gindex, states[origins.index(winner)], src
                )
            )
        # the catchment: how the whole snapshot splits across origins
        catchment = {str(asn): 0 for asn in origins}
        unreachable = 0
        for i in range(len(gindex)):
            won = best_origin(origins, states, i)
            if won is None:
                unreachable += 1
            else:
                catchment[str(won)] += 1
        payload["catchment"] = catchment
        payload["unreachable"] = unreachable
        return 200, payload, "paths", True

    def _what_if(self, snapshot: Snapshot, body: bytes) -> HandlerResult:
        try:
            parsed = json.loads(body) if body else None
        except ValueError:
            raise _BadRequest("what-if body must be JSON") from None
        if not isinstance(parsed, dict):
            raise _BadRequest("what-if body must be a JSON object")
        unknown = set(parsed) - {"dst", "ops", "srcs", "sample"}
        if unknown:
            raise _BadRequest(
                f"unknown what-if fields: {sorted(unknown)}"
            )
        dst = parsed.get("dst")
        if isinstance(dst, bool) or not isinstance(dst, int):
            raise _BadRequest("what-if 'dst' must be an integer ASN")
        scenario = Scenario.parse(parsed.get("ops", []))
        if not scenario:
            raise _BadRequest("what-if needs at least one op")
        if dst not in snapshot:
            return 404, _error(f"AS{dst} not in snapshot"), "whatif", False
        src_asns = self._what_if_sources(snapshot, parsed)
        if isinstance(src_asns, tuple):  # an early HandlerResult
            return src_asns
        base_gindex, base = self.engine.table(snapshot, dst)
        scen_gindex, scen = self.engine.table(snapshot, dst, scenario)
        # both graphs share the snapshot's frozen index, so one id space
        ids = base_gindex.index
        changed = unchanged = newly_unreachable = newly_reachable = 0
        examples: List[Dict[str, object]] = []
        for asn in src_asns:
            i = ids[asn]
            before = base.path_from(base_gindex, i)
            after = scen.path_from(scen_gindex, i)
            before_cls = int(base.cls[i])
            after_cls = int(scen.cls[i])
            # a relationship flip can keep the path but change what the
            # source pays for it, so the route class is part of the diff
            if before == after and before_cls == after_cls:
                unchanged += 1
                continue
            changed += 1
            if after is None:
                newly_unreachable += 1
            elif before is None:
                newly_reachable += 1
            if len(examples) < MAX_EXAMPLES:
                examples.append(
                    {
                        "src": asn,
                        "before": None if before is None else list(before),
                        "after": None if after is None else list(after),
                        "before_class": CLASS_NAMES.get(before_cls),
                        "after_class": CLASS_NAMES.get(after_cls),
                    }
                )
        payload = {
            "dst": dst,
            "scenario": scenario.key,
            "ops": [dict(op) for op in scenario.ops],
            "sources": len(src_asns),
            "changed": changed,
            "unchanged": unchanged,
            "newly_unreachable": newly_unreachable,
            "newly_reachable": newly_reachable,
            "examples": examples,
            "snapshot": snapshot.version,
        }
        return 200, payload, "whatif", False

    def _what_if_sources(self, snapshot: Snapshot, parsed: Dict[str, object]):
        """The source ASes a what-if diffs over.

        Explicit ``srcs`` win; otherwise every AS, optionally thinned
        to a deterministic evenly-spaced ``sample``.  Returns a list of
        ASNs, or a full :data:`HandlerResult` tuple for a 404.
        """
        srcs = parsed.get("srcs")
        if srcs is not None:
            if not isinstance(srcs, list) or not srcs or not all(
                isinstance(s, int) and not isinstance(s, bool)
                for s in srcs
            ):
                raise _BadRequest(
                    "what-if 'srcs' must be a non-empty list of ASNs"
                )
            for asn in srcs:
                if asn not in snapshot:
                    return (
                        404,
                        _error(f"AS{asn} not in snapshot"),
                        "whatif",
                        False,
                    )
            return sorted(set(srcs))
        src_asns = snapshot.asns
        sample = parsed.get("sample")
        if sample is None:
            return src_asns
        if isinstance(sample, bool) or not isinstance(sample, int) \
                or sample < 1:
            raise _BadRequest("what-if 'sample' must be a positive integer")
        if sample >= len(src_asns):
            return src_asns
        step = len(src_asns) / sample
        return [src_asns[int(k * step)] for k in range(sample)]

    def _ranks(
        self, snapshot: Snapshot, query: Dict[str, str]
    ) -> HandlerResult:
        page, per_page = _pagination(
            query, default_per_page=DEFAULT_PER_PAGE
        )
        assert per_page is not None
        entries = snapshot.ranks(
            offset=(page - 1) * per_page, limit=per_page
        )
        payload = {
            "page": page,
            "per_page": per_page,
            "total": len(snapshot),
            "entries": [
                {
                    "rank": e.rank,
                    "asn": e.asn,
                    "cone_ases": e.cone_ases,
                    "cone_prefixes": e.cone_prefixes,
                    "cone_addresses": e.cone_addresses,
                    "transit_degree": e.transit_degree,
                    "node_degree": e.node_degree,
                    "customers": e.num_customers,
                    "peers": e.num_peers,
                    "providers": e.num_providers,
                }
                for e in entries
            ],
            "snapshot": snapshot.version,
        }
        return 200, payload, "ranks", True

    # -- timeline routes ------------------------------------------------

    def _timeline_or_404(self, route: str):
        timeline = self.store.timeline
        if timeline is None:
            return None, (
                404,
                _error("no timeline mounted (serving a single snapshot)"),
                route,
                True,
            )
        return timeline, None

    def _eras(self) -> HandlerResult:
        timeline, miss = self._timeline_or_404("eras")
        if timeline is None:
            return miss
        payload = {
            "timeline": timeline.version,
            "eras": [
                {
                    "era": info.index,
                    "label": info.label,
                    "date": info.date,
                    "kind": info.kind,
                    "snapshot": info.snapshot_version,
                    "n_ases": info.n_ases,
                    "n_links": info.n_links,
                }
                for info in timeline.eras
            ],
        }
        return 200, payload, "eras", True

    def _diff(self, raw_a: str, raw_b: str) -> HandlerResult:
        timeline, miss = self._timeline_or_404("diff")
        if timeline is None:
            return miss
        try:
            era_a = timeline.resolve(raw_a)
            era_b = timeline.resolve(raw_b)
        except TimelineLookupError as exc:
            raise _BadRequest(str(exc)) from None
        key = (timeline.version, era_a, era_b)
        with self._diff_lock:
            cached = self._diff_cache.get(key)
            if cached is not None:
                self._diff_cache.move_to_end(key)
        if cached is None:
            cached = timeline.diff(era_a, era_b, max_examples=MAX_EXAMPLES)
            cached["timeline"] = timeline.version
            with self._diff_lock:
                self._diff_cache[key] = cached
                self._diff_cache.move_to_end(key)
                while len(self._diff_cache) > MAX_DIFF_CACHE:
                    self._diff_cache.popitem(last=False)
        return 200, cached, "diff", True

    def _history(self, raw: str) -> HandlerResult:
        asn = _parse_asn(raw)
        timeline, miss = self._timeline_or_404("history")
        if timeline is None:
            return miss
        series = timeline.history(asn)
        if not any(row["present"] for row in series):
            return (
                404,
                _error(f"AS{asn} not in any era"),
                "history",
                True,
            )
        payload = {
            "asn": asn,
            "timeline": timeline.version,
            "eras": series,
        }
        return 200, payload, "history", True

    def _snapshot_info(self, snapshot: Snapshot) -> Dict[str, object]:
        info = {
            "version": snapshot.version,
            "source": snapshot.meta.get("source"),
            "definitions": snapshot.meta.get("definitions"),
            "clique": snapshot.meta.get("clique"),
            "stats": snapshot.stats,
            "reloads": self.store.reloads,
            "path": self.store.path,
        }
        timeline = self.store.timeline
        if timeline is not None:
            info["timeline"] = {
                "version": timeline.version,
                "eras": len(timeline.eras),
            }
        if self.worker_info is not None:
            info["worker"] = self.worker_info
        return info

    def _metrics(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "reloads": self.store.reloads,
            "perf": perf.snapshot(),
            "paths": self.engine.stats(),
        }
        if self._ingest_status is not None:
            out["ingest"] = self._ingest_status()
        if self._metrics_view is not None:
            out.update(self._metrics_view())
        return out

    def _reload(self, body: bytes) -> HandlerResult:
        if not self.allow_admin:
            return 403, _error("admin endpoints disabled"), "admin", False
        path: Optional[str] = None
        if body:
            try:
                parsed = json.loads(body)
            except ValueError:
                raise _BadRequest("reload body must be JSON") from None
            if not isinstance(parsed, dict):
                raise _BadRequest("reload body must be a JSON object")
            path = parsed.get("path")
            if path is not None and not isinstance(path, str):
                raise _BadRequest("reload 'path' must be a string")
        if self.reload_delegate is not None:
            # fleet mode: the supervisor coordinates a two-phase reload
            # across every worker; this worker only files the request
            self.reload_delegate(path)
            return (
                202,
                {
                    "accepted": True,
                    "version": self.store.current.version,
                    "detail": "reload delegated to the fleet supervisor",
                },
                "admin",
                False,
            )
        try:
            fresh = self.store.reload(path)
        except (SnapshotFormatError, OSError) as exc:
            return (
                409,
                _error(f"reload failed, still serving "
                       f"{self.store.current.version}: {exc}"),
                "admin",
                False,
            )
        return (
            200,
            {"version": fresh.version, "reloads": self.store.reloads},
            "admin",
            False,
        )


class _BadRequest(Exception):
    """Internal: turns into a 400 at the dispatch boundary."""


def _error(message: str) -> Dict[str, str]:
    return {"error": message}


def _path_payload(gindex, state, src: int) -> Dict[str, object]:
    """The path fields of a ``/paths`` response for one source AS."""
    i = gindex.index[src]
    path = state.path_from(gindex, i)
    if path is None:
        return {
            "reachable": False,
            "path": None,
            "length": None,
            "route_class": None,
        }
    return {
        "reachable": True,
        "path": [int(asn) for asn in path],
        "length": len(path) - 1,
        "route_class": CLASS_NAMES[int(state.cls[i])],
    }


def _parse_asn(raw: str) -> int:
    try:
        asn = int(raw)
    except ValueError:
        raise _BadRequest(f"ASN must be an integer, got {raw!r}") from None
    if asn < 0 or asn > 0xFFFFFFFF:
        raise _BadRequest(f"ASN {asn} outside the 32-bit range")
    return asn


def _pagination(
    query: Dict[str, str], default_per_page: Optional[int]
) -> Tuple[int, Optional[int]]:
    page_raw = query.get("page")
    per_raw = query.get("per_page")
    if per_raw is None and default_per_page is None:
        if page_raw is not None:
            # unpaginated by default: a bare ?page= would silently
            # truncate to DEFAULT_PER_PAGE — make the caller say how big
            raise _BadRequest(
                "page requires per_page on this endpoint"
            )
        return 1, None
    try:
        page = int(page_raw) if page_raw is not None else 1
        per_page = (
            int(per_raw) if per_raw is not None else (default_per_page or
                                                      DEFAULT_PER_PAGE)
        )
    except ValueError:
        raise _BadRequest("page/per_page must be integers") from None
    if page < 1:
        raise _BadRequest("page must be >= 1")
    if per_page < 1 or per_page > MAX_PER_PAGE:
        raise _BadRequest(f"per_page must be 1..{MAX_PER_PAGE}")
    return page, per_page


def encode_payload(payload: object) -> bytes:
    """Canonical JSON bytes (sorted keys, compact separators)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()
