"""Route handlers: (method, path, query) → JSON payload.

Kept free of sockets and HTTP framing so the QA invariants and unit
tests can drive the exact serving logic in-process: :class:`Api` turns
a parsed request into ``(status, payload, route, cacheable)`` and the
asyncio server in :mod:`repro.serve.server` only adds wire framing,
the response cache and ETags on top.

Routes (all JSON)::

    GET  /asns/{asn}                     rank-table row for one AS
    GET  /asns/{asn}/cone?definition=    cone membership (paginated)
    GET  /links/{a}/{b}                  relationship + provider
    GET  /ranks?page=&per_page=          the rank table, paginated
    GET  /snapshot                       version + metadata + stats
    GET  /healthz                        liveness
    GET  /metrics                        perf counters, latencies, cache
    POST /admin/reload                   atomic hot snapshot reload
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

from repro import perf
from repro.serve.snapshot import (
    Snapshot,
    SnapshotFormatError,
    resolve_definition,
)
from repro.serve.store import SnapshotStore

#: (status, JSON-serializable payload, route label, cacheable)
HandlerResult = Tuple[int, object, str, bool]

MAX_PER_PAGE = 1000
DEFAULT_PER_PAGE = 50


class Api:
    """The query service's routing + handler logic over one store."""

    def __init__(
        self,
        store: SnapshotStore,
        metrics_view: Optional[Callable[[], Dict[str, object]]] = None,
        allow_admin: bool = True,
    ):
        self.store = store
        self._metrics_view = metrics_view
        self.allow_admin = allow_admin

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        query: Dict[str, str],
        body: bytes = b"",
    ) -> HandlerResult:
        snapshot = self.store.current  # one atomic read per request
        parts = [p for p in path.split("/") if p]
        try:
            if method == "GET":
                if parts == ["healthz"]:
                    return (
                        200,
                        {"status": "ok", "version": snapshot.version},
                        "healthz",
                        False,
                    )
                if parts == ["metrics"]:
                    return 200, self._metrics(), "metrics", False
                if parts == ["snapshot"]:
                    return (
                        200,
                        self._snapshot_info(snapshot),
                        "snapshot",
                        True,
                    )
                if parts == ["ranks"]:
                    return self._ranks(snapshot, query)
                if len(parts) == 2 and parts[0] == "asns":
                    return self._asn(snapshot, parts[1])
                if (
                    len(parts) == 3
                    and parts[0] == "asns"
                    and parts[2] == "cone"
                ):
                    return self._cone(snapshot, parts[1], query)
                if len(parts) == 3 and parts[0] == "links":
                    return self._link(snapshot, parts[1], parts[2])
            elif method == "POST":
                if parts == ["admin", "reload"]:
                    return self._reload(body)
                if parts[:1] in (["asns"], ["links"], ["ranks"]):
                    return 405, _error("method not allowed"), "error", False
            else:
                return 405, _error("method not allowed"), "error", False
        except _BadRequest as exc:
            return 400, _error(str(exc)), "error", False
        return 404, _error(f"no route for {path}"), "error", False

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def _asn(self, snapshot: Snapshot, raw: str) -> HandlerResult:
        asn = _parse_asn(raw)
        entry = snapshot.rank_entry(asn)
        if entry is None:
            return 404, _error(f"AS{asn} not in snapshot"), "asn", True
        payload = {
            "asn": asn,
            "rank": entry.rank,
            "cone": {
                "ases": entry.cone_ases,
                "prefixes": entry.cone_prefixes,
                "addresses": entry.cone_addresses,
            },
            "degree": {
                "transit": entry.transit_degree,
                "node": entry.node_degree,
            },
            "neighbors": {
                "customers": entry.num_customers,
                "peers": entry.num_peers,
                "providers": entry.num_providers,
            },
            "clique": asn in snapshot.meta.get("clique", ()),
            "snapshot": snapshot.version,
        }
        return 200, payload, "asn", True

    def _cone(
        self, snapshot: Snapshot, raw: str, query: Dict[str, str]
    ) -> HandlerResult:
        asn = _parse_asn(raw)
        name = query.get("definition", "provider/peer-observed")
        try:
            definition = resolve_definition(name)
        except KeyError as exc:
            raise _BadRequest(str(exc).strip('"')) from None
        if asn not in snapshot:
            return 404, _error(f"AS{asn} not in snapshot"), "cone", True
        try:
            members = sorted(snapshot.cone(asn, definition))
        except KeyError as exc:
            raise _BadRequest(str(exc).strip('"')) from None
        page, per_page = _pagination(query, default_per_page=None)
        total = len(members)
        if per_page is not None:
            members = members[(page - 1) * per_page:page * per_page]
        payload = {
            "asn": asn,
            "definition": definition.value,
            "size": total,
            "members": members,
            "snapshot": snapshot.version,
        }
        if per_page is not None:
            payload["page"] = page
            payload["per_page"] = per_page
        return 200, payload, "cone", True

    def _link(
        self, snapshot: Snapshot, raw_a: str, raw_b: str
    ) -> HandlerResult:
        a, b = _parse_asn(raw_a), _parse_asn(raw_b)
        relationship = snapshot.relationship(a, b)
        if relationship is None:
            return (
                404,
                _error(f"no inferred link AS{a}-AS{b}"),
                "link",
                True,
            )
        payload = {
            "a": a,
            "b": b,
            "relationship": relationship.label,
            "provider": snapshot.provider_of(a, b),
            "snapshot": snapshot.version,
        }
        return 200, payload, "link", True

    def _ranks(
        self, snapshot: Snapshot, query: Dict[str, str]
    ) -> HandlerResult:
        page, per_page = _pagination(
            query, default_per_page=DEFAULT_PER_PAGE
        )
        assert per_page is not None
        entries = snapshot.ranks(
            offset=(page - 1) * per_page, limit=per_page
        )
        payload = {
            "page": page,
            "per_page": per_page,
            "total": len(snapshot),
            "entries": [
                {
                    "rank": e.rank,
                    "asn": e.asn,
                    "cone_ases": e.cone_ases,
                    "cone_prefixes": e.cone_prefixes,
                    "cone_addresses": e.cone_addresses,
                    "transit_degree": e.transit_degree,
                    "node_degree": e.node_degree,
                    "customers": e.num_customers,
                    "peers": e.num_peers,
                    "providers": e.num_providers,
                }
                for e in entries
            ],
            "snapshot": snapshot.version,
        }
        return 200, payload, "ranks", True

    def _snapshot_info(self, snapshot: Snapshot) -> Dict[str, object]:
        return {
            "version": snapshot.version,
            "source": snapshot.meta.get("source"),
            "definitions": snapshot.meta.get("definitions"),
            "clique": snapshot.meta.get("clique"),
            "stats": snapshot.stats,
            "reloads": self.store.reloads,
            "path": self.store.path,
        }

    def _metrics(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "reloads": self.store.reloads,
            "perf": perf.snapshot(),
        }
        if self._metrics_view is not None:
            out.update(self._metrics_view())
        return out

    def _reload(self, body: bytes) -> HandlerResult:
        if not self.allow_admin:
            return 403, _error("admin endpoints disabled"), "admin", False
        path: Optional[str] = None
        if body:
            try:
                parsed = json.loads(body)
            except ValueError:
                raise _BadRequest("reload body must be JSON") from None
            if not isinstance(parsed, dict):
                raise _BadRequest("reload body must be a JSON object")
            path = parsed.get("path")
        try:
            fresh = self.store.reload(path)
        except (SnapshotFormatError, OSError) as exc:
            return (
                409,
                _error(f"reload failed, still serving "
                       f"{self.store.current.version}: {exc}"),
                "admin",
                False,
            )
        return (
            200,
            {"version": fresh.version, "reloads": self.store.reloads},
            "admin",
            False,
        )


class _BadRequest(Exception):
    """Internal: turns into a 400 at the dispatch boundary."""


def _error(message: str) -> Dict[str, str]:
    return {"error": message}


def _parse_asn(raw: str) -> int:
    try:
        asn = int(raw)
    except ValueError:
        raise _BadRequest(f"ASN must be an integer, got {raw!r}") from None
    if asn < 0 or asn > 0xFFFFFFFF:
        raise _BadRequest(f"ASN {asn} outside the 32-bit range")
    return asn


def _pagination(
    query: Dict[str, str], default_per_page: Optional[int]
) -> Tuple[int, Optional[int]]:
    page_raw = query.get("page")
    per_raw = query.get("per_page")
    if page_raw is None and per_raw is None and default_per_page is None:
        return 1, None
    try:
        page = int(page_raw) if page_raw is not None else 1
        per_page = (
            int(per_raw) if per_raw is not None else (default_per_page or
                                                      DEFAULT_PER_PAGE)
        )
    except ValueError:
        raise _BadRequest("page/per_page must be integers") from None
    if page < 1:
        raise _BadRequest("page must be >= 1")
    if per_page < 1 or per_page > MAX_PER_PAGE:
        raise _BadRequest(f"per_page must be 1..{MAX_PER_PAGE}")
    return page, per_page


def encode_payload(payload: object) -> bytes:
    """Canonical JSON bytes (sorted keys, compact separators)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()
