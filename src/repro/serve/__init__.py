"""Read-optimized snapshot store + asrank-style HTTP query service.

The batch pipeline ends in an :class:`~repro.asrank.ASRank` facade;
this package is what turns that result into the paper's public
artifact shape — a service.  ``Snapshot`` compiles a facade result (or
CAIDA-format files) into an immutable, versioned, query-optimized
blob; ``SnapshotStore`` persists it to a single checksummed file and
hot-swaps versions atomically; ``SnapshotServer`` serves it over a
dependency-free asyncio HTTP/JSON API; ``PathEngine`` answers path
prediction and what-if scenario queries from cached batched-engine
route tables; ``loadgen`` measures it all.
"""

from repro.serve.snapshot import Snapshot, SnapshotFormatError
from repro.serve.store import SnapshotStore, load_snapshot, save_snapshot
from repro.serve.prediction import (
    PathEngine,
    Scenario,
    ScenarioError,
    apply_scenario,
)
from repro.serve.server import SnapshotServer, ServerThread
from repro.serve.loadgen import LoadGenConfig, LoadReport, run_loadgen

__all__ = [
    "Snapshot",
    "SnapshotFormatError",
    "SnapshotStore",
    "load_snapshot",
    "save_snapshot",
    "PathEngine",
    "Scenario",
    "ScenarioError",
    "apply_scenario",
    "SnapshotServer",
    "ServerThread",
    "LoadGenConfig",
    "LoadReport",
    "run_loadgen",
]
