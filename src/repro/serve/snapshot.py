"""Immutable, versioned, read-optimized view of one pipeline result.

A :class:`Snapshot` is the unit the query service serves: everything
the asrank-style API answers — relationships, customer cones under all
three definitions, the rank table, summary stats — compiled into dense
arrays over a sorted ASN index so every query is O(1) or O(answer):

* **ASN index** — sorted ASN list; ``asn -> dense id`` dict.
* **Links** — packed parallel arrays ``(a_id, b_id, rel_code,
  provider_flag)`` plus an ``(a_id << 32 | b_id) -> row`` dict for
  O(1) link lookup.
* **Cones** — one Python-int bitset per AS per definition; membership
  is one shift-and-mask, full cones decode in O(members).
* **Rank table** — the exact :func:`repro.core.rank.rank_ases` rows in
  ranking order, plus ``asn -> row`` for point lookups.

Snapshots are built from an :class:`~repro.asrank.ASRank` facade
(:meth:`Snapshot.build` — bit-identical to the facade by construction)
or from CAIDA-format ``as-rel``/``ppdc-ases`` files
(:meth:`Snapshot.from_files` — only the definitions derivable from
those files are available).  ``encode_sections``/``decode_sections``
turn a snapshot into named byte sections and back; the file container
(checksums, lazy loading) lives in :mod:`repro.serve.store`.

The *version* is content-derived — the first 12 hex digits of the
sha256 over the canonically encoded sections — so the same world
always produces the same version string and ETags survive rebuilds
that change nothing.
"""

from __future__ import annotations

import hashlib
import json
import struct
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.cone import ConeDefinition
from repro.core.rank import ASRankEntry
from repro.datasets.serialization import DatasetFormatError
from repro.graph import DenseIndex, closure_bits, decode_bits
from repro.relationships import Relationship

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


class SnapshotFormatError(DatasetFormatError):
    """Raised on a malformed, truncated or corrupted snapshot blob."""


#: query-string spellings accepted for each cone definition
DEFINITION_ALIASES: Dict[str, ConeDefinition] = {
    definition.value: definition for definition in ConeDefinition
}
DEFINITION_ALIASES["ppdc"] = ConeDefinition.PROVIDER_PEER_OBSERVED
DEFINITION_ALIASES["provider-peer-observed"] = (
    ConeDefinition.PROVIDER_PEER_OBSERVED
)

_LINK_STRUCT = struct.Struct("<IIbB")
_RANK_STRUCT = struct.Struct("<IQIqqIIIII")
_NO_PROVIDER, _PROVIDER_A, _PROVIDER_B = 0, 1, 2

if _np is not None:
    #: structured views over the packed sections — field layout must
    #: mirror the struct codecs exactly so an mmap'd file decodes to
    #: the same rows the pure-Python path produces
    LINK_DTYPE = _np.dtype(
        [("a", "<u4"), ("b", "<u4"), ("rel", "<i1"), ("flag", "<u1")]
    )
    RANK_DTYPE = _np.dtype(
        [
            ("rank", "<u4"),
            ("asn", "<u8"),
            ("cone_ases", "<u4"),
            ("cone_prefixes", "<i8"),
            ("cone_addresses", "<i8"),
            ("transit_degree", "<u4"),
            ("node_degree", "<u4"),
            ("num_customers", "<u4"),
            ("num_peers", "<u4"),
            ("num_providers", "<u4"),
        ]
    )
    assert LINK_DTYPE.itemsize == _LINK_STRUCT.size
    assert RANK_DTYPE.itemsize == _RANK_STRUCT.size
else:  # pragma: no cover - exercised by the no-numpy CI leg
    LINK_DTYPE = RANK_DTYPE = None


class LazyConeBits:
    """Per-AS cone bitsets served straight off a packed section.

    The ``cones:*`` sections hold one ``[u32 length][little-endian
    bitset]`` frame per AS.  Cones are variable-length Python-int
    bitsets, so unlike links/ranks they cannot be a fixed-stride numpy
    view — instead this parses only the framing (two small offset
    tables) and leaves the bitset bytes where they are, in the mmap'd
    pages.  Membership probes touch a single byte of the mapping;
    full bitsets materialize as ints on first use and are cached, so
    an idle worker's private memory stays at the offset tables while
    the payload pages remain shared.

    Indexing (``bits[i]``) matches the eager ``List[int]`` contract, so
    every snapshot query works unchanged; ``test`` is the zero-copy
    membership fast path.
    """

    def __init__(self, blob, n: int):
        self._blob = blob
        starts: List[int] = []
        lengths: List[int] = []
        offset = 0
        size = len(blob)
        for _ in range(n):
            if offset + 4 > size:
                raise SnapshotFormatError("cones section truncated")
            (length,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            if offset + length > size:
                raise SnapshotFormatError("cones section truncated")
            starts.append(offset)
            lengths.append(length)
            offset += length
        if offset != size:
            raise SnapshotFormatError("cones section has trailing bytes")
        self._starts = starts
        self._lengths = lengths
        self._cache: List[Optional[int]] = [None] * n

    def __len__(self) -> int:
        return len(self._starts)

    def __getitem__(self, i: int) -> int:
        mask = self._cache[i]
        if mask is None:
            start = self._starts[i]
            mask = int.from_bytes(
                self._blob[start:start + self._lengths[i]], "little"
            )
            self._cache[i] = mask
        return mask

    def __iter__(self):
        for i in range(len(self._starts)):
            yield self[i]

    def test(self, i: int, member_id: int) -> bool:
        """One-byte membership probe; never materializes the bitset."""
        mask = self._cache[i]
        if mask is not None:
            return bool(mask >> member_id & 1)
        byte = member_id >> 3
        if byte >= self._lengths[i]:
            return False
        return bool(
            self._blob[self._starts[i] + byte] >> (member_id & 7) & 1
        )


def resolve_definition(name: str) -> ConeDefinition:
    """Map a query-string spelling to a :class:`ConeDefinition`."""
    try:
        return DEFINITION_ALIASES[name]
    except KeyError:
        raise KeyError(
            f"unknown cone definition {name!r}; "
            f"one of {sorted(DEFINITION_ALIASES)}"
        ) from None


class Snapshot:
    """One compiled, immutable pipeline result.

    Sections may be attached lazily: the store hands a loader callback
    that materializes a named section's bytes on first access, so a
    server can open a multi-section file and decode only what traffic
    actually touches.
    """

    def __init__(
        self,
        asns: Optional[List[int]] = None,
        meta: Dict[str, object] = None,
        stats: Dict[str, object] = None,
        version: str = "",
        index: Optional[DenseIndex] = None,
    ):
        """Either ``asns`` (a sorted ASN list, indexed here) or ``index``
        (an existing :class:`DenseIndex`, adopted without re-indexing —
        the zero-copy path :meth:`build` uses)."""
        if index is None:
            index = DenseIndex.from_sorted(asns if asns is not None else [])
        self.index = index.freeze()
        self.asns = index.asns
        self.meta = meta if meta is not None else {}
        self.stats = stats if stats is not None else {}
        self.version = version
        self._ids: Dict[int, int] = index.ids
        # links
        self._link_rows: Optional[List[Tuple[int, int, int, int]]] = None
        self._link_index: Dict[int, int] = {}
        # cones: definition value -> one bitset per dense id
        self._cones: Dict[str, List[int]] = {}
        # rank table
        self._rank_rows: Optional[List[Tuple[int, ...]]] = None
        self._rank_of: Dict[int, int] = {}
        # lazy section source installed by the store
        self._section_loader: Optional[Callable[[str], bytes]] = None
        # mmap-backed loads decode links/ranks as numpy views and
        # cones as LazyConeBits instead of copying
        self._mapped = False
        # the store's section reader, for deterministic close()
        self._section_reader = None
        # routing view over the link rows (compiled on first path query)
        self._rel_graph = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, asrank, source: str = "asrank") -> "Snapshot":
        """Compile an :class:`~repro.asrank.ASRank` facade.

        Forces every lazy stage (inference, all three cone definitions,
        the full rank table), so the snapshot answers are bit-identical
        to the facade's by construction.  The facade's shared
        :class:`~repro.graph.relgraph.RelGraph` supplies the dense index
        and the cone bitsets directly — no re-indexing, no re-encoding.
        """
        result = asrank.result
        graph = asrank.rel_graph()
        ids = graph.index.ids

        link_rows: List[Tuple[int, int, int, int]] = []
        for rel in result:
            flag = _NO_PROVIDER
            if rel.provider == rel.a:
                flag = _PROVIDER_A
            elif rel.provider == rel.b:
                flag = _PROVIDER_B
            link_rows.append(
                (ids[rel.a], ids[rel.b], int(rel.relationship), flag)
            )
        link_rows.sort()

        snapshot = cls(
            index=graph.index,
            meta={
                "source": source,
                "clique": list(asrank.clique),
                "definitions": sorted(
                    definition.value for definition in ConeDefinition
                ),
            },
            stats={},
        )
        snapshot._attach_links(link_rows)

        for definition in ConeDefinition:
            cones = asrank.cones(definition)
            if cones.graph is graph and cones.bits is not None:
                # same id space: adopt the bitsets without expanding
                bits = cones.bits
            else:
                encode = graph.family.encode
                bits = [
                    encode(cones.cones.get(asn, (asn,)))
                    for asn in graph.index.asns
                ]
            snapshot._cones[definition.value] = bits

        snapshot._attach_ranks(
            [_rank_entry_to_row(entry) for entry in asrank.rank()]
        )
        snapshot.stats = snapshot._summary_stats()
        snapshot.version = snapshot.content_version()
        return snapshot

    @classmethod
    def from_files(
        cls, as_rel_path: str, ppdc_path: Optional[str] = None
    ) -> "Snapshot":
        """Compile CAIDA-format ``as-rel`` (+ optional ``ppdc-ases``) files.

        Only the definitions derivable from the files are served:
        ``recursive`` (closure of the p2c rows) always, and
        ``provider/peer-observed`` when a ppdc file is given;
        ``bgp-observed`` needs the path corpus and is unavailable.
        Ranks fall back to cone size, then node degree, then ASN
        (transit degree needs paths and reads as 0).
        """
        from repro.datasets.serialization import load_as_rel, load_ppdc_ases

        rows = load_as_rel(as_rel_path)
        ppdc = load_ppdc_ases(ppdc_path) if ppdc_path else None

        asn_set: Set[int] = set()
        for a, b, _rel in rows:
            asn_set.add(a)
            asn_set.add(b)
        if ppdc:
            for asn, members in ppdc.items():
                asn_set.add(asn)
                asn_set.update(members)
        index = DenseIndex(asn_set)
        asns = index.asns
        ids = index.ids

        link_rows: List[Tuple[int, int, int, int]] = []
        customers: Dict[int, List[int]] = {}
        for a, b, rel in rows:
            lo, hi = (a, b) if a <= b else (b, a)
            flag = _NO_PROVIDER
            if rel is Relationship.P2C:
                # in as-rel rows the first AS is the provider
                flag = _PROVIDER_A if a == lo else _PROVIDER_B
                customers.setdefault(a, []).append(b)
            link_rows.append((ids[lo], ids[hi], int(rel), flag))
        link_rows.sort()

        definitions = [ConeDefinition.RECURSIVE.value]
        if ppdc is not None:
            definitions.append(ConeDefinition.PROVIDER_PEER_OBSERVED.value)

        snapshot = cls(
            index=index,
            meta={
                "source": f"files:{as_rel_path}",
                "clique": [],
                "definitions": sorted(definitions),
            },
            stats={},
        )
        snapshot._attach_links(link_rows)
        # the shared closure over the p2c rows, keyed by dense id
        snapshot._cones[ConeDefinition.RECURSIVE.value] = closure_bits(
            len(asns),
            {
                ids[provider]: [ids[customer] for customer in custs]
                for provider, custs in customers.items()
            },
        )
        if ppdc is not None:
            bits = []
            for asn in asns:
                mask = 1 << ids[asn]
                for member in ppdc.get(asn, ()):
                    mask |= 1 << ids[member]
                bits.append(mask)
            snapshot._cones[
                ConeDefinition.PROVIDER_PEER_OBSERVED.value
            ] = bits

        cone_bits = snapshot._cones[
            definitions[-1] if ppdc is not None else definitions[0]
        ]
        customers_of, peers_of, providers_of = snapshot._degree_counts()
        order = sorted(
            range(len(asns)),
            key=lambda i: (
                -cone_bits[i].bit_count(),
                -(customers_of[i] + peers_of[i] + providers_of[i]),
                asns[i],
            ),
        )
        rank_rows = [
            (
                position,
                asns[i],
                cone_bits[i].bit_count(),
                -1,
                -1,
                0,
                customers_of[i] + peers_of[i] + providers_of[i],
                customers_of[i],
                peers_of[i],
                providers_of[i],
            )
            for position, i in enumerate(order, start=1)
        ]
        snapshot._attach_ranks(rank_rows)
        snapshot.stats = snapshot._summary_stats()
        snapshot.version = snapshot.content_version()
        return snapshot

    # ------------------------------------------------------------------
    # internal wiring
    # ------------------------------------------------------------------

    def _attach_links(self, rows) -> None:
        self._link_rows = rows
        if _np is not None and isinstance(rows, _np.ndarray):
            # one vectorized key computation; .tolist() hands back
            # Python ints for the dict keys
            keys = (
                (rows["a"].astype("<u8") << _np.uint64(32)) | rows["b"]
            ).tolist()
            self._link_index = {key: i for i, key in enumerate(keys)}
        else:
            self._link_index = {
                (a_id << 32) | b_id: i for i, (a_id, b_id, _c, _f) in
                enumerate(rows)
            }

    def _attach_ranks(self, rows) -> None:
        self._rank_rows = rows
        if _np is not None and isinstance(rows, _np.ndarray):
            self._rank_of = {
                asn: i for i, asn in enumerate(rows["asn"].tolist())
            }
        else:
            self._rank_of = {row[1]: i for i, row in enumerate(rows)}

    def _links(self):
        if self._link_rows is None:
            blob = self._load_section("links")
            if self._mapped and _np is not None:
                self._attach_links(_links_view(blob))
            else:
                self._attach_links(_decode_links(bytes(blob)))
        return self._link_rows

    def _ranks(self):
        if self._rank_rows is None:
            blob = self._load_section("ranks")
            if self._mapped and _np is not None:
                self._attach_ranks(_ranks_view(blob))
            else:
                self._attach_ranks(_decode_ranks(bytes(blob)))
        return self._rank_rows

    def _links_as_tuples(self) -> List[Tuple[int, int, int, int]]:
        """Link rows as plain-int tuples (for iteration-heavy callers)."""
        rows = self._links()
        if _np is not None and isinstance(rows, _np.ndarray):
            return rows.tolist()
        return rows

    def _ranks_as_tuples(self) -> List[Tuple[int, ...]]:
        rows = self._ranks()
        if _np is not None and isinstance(rows, _np.ndarray):
            return rows.tolist()
        return rows

    def _cone_bits(self, definition: ConeDefinition):
        if definition.value not in self.meta["definitions"]:
            raise KeyError(
                f"definition {definition.value!r} not in this snapshot "
                f"(built from {self.meta.get('source')})"
            )
        bits = self._cones.get(definition.value)
        if bits is None:
            blob = self._load_section(_cone_section(definition))
            if self._mapped:
                bits = LazyConeBits(blob, len(self.asns))
            else:
                bits = _decode_cones(bytes(blob), len(self.asns))
            self._cones[definition.value] = bits
        return bits

    def _load_section(self, name: str) -> bytes:
        if self._section_loader is None:
            raise SnapshotFormatError(f"section {name!r} missing")
        return self._section_loader(name)

    def _degree_counts(self) -> Tuple[List[int], List[int], List[int]]:
        customers = [0] * len(self.asns)
        peers = [0] * len(self.asns)
        providers = [0] * len(self.asns)
        for a_id, b_id, code, flag in self._links_as_tuples():
            if code == int(Relationship.P2C):
                prov, cust = (
                    (a_id, b_id) if flag == _PROVIDER_A else (b_id, a_id)
                )
                customers[prov] += 1
                providers[cust] += 1
            elif code == int(Relationship.P2P):
                peers[a_id] += 1
                peers[b_id] += 1
        return customers, peers, providers

    def _summary_stats(self) -> Dict[str, object]:
        links = self._links_as_tuples()
        counts: Dict[str, int] = {}
        for _a, _b, code, _f in links:
            label = Relationship(code).label
            counts[label] = counts.get(label, 0) + 1
        sizes = sorted(
            (row[2] for row in self._ranks()), reverse=True
        )
        return {
            "n_ases": len(self.asns),
            "n_links": len(links),
            "links_by_relationship": counts,
            "cone_sizes": {
                "max": sizes[0] if sizes else 0,
                "median": sizes[len(sizes) // 2] if sizes else 0,
                "mean": (sum(sizes) / len(sizes)) if sizes else 0.0,
            },
        }

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def __contains__(self, asn: int) -> bool:
        return asn in self._ids

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        row = self._link_row(a, b)
        return None if row is None else Relationship(row[2])

    def provider_of(self, a: int, b: int) -> Optional[int]:
        row = self._link_row(a, b)
        if row is None or row[3] == _NO_PROVIDER:
            return None
        return self.asns[row[0] if row[3] == _PROVIDER_A else row[1]]

    def _link_row(
        self, a: int, b: int
    ) -> Optional[Tuple[int, int, int, int]]:
        a_id, b_id = self._ids.get(a), self._ids.get(b)
        if a_id is None or b_id is None:
            return None
        if a_id > b_id:
            a_id, b_id = b_id, a_id
        links = self._links()
        index = self._link_index.get((a_id << 32) | b_id)
        return None if index is None else links[index]

    def cone(
        self,
        asn: int,
        definition: ConeDefinition = ConeDefinition.PROVIDER_PEER_OBSERVED,
    ) -> Set[int]:
        """Cone members incl. self — matches ``CustomerCones.cone``."""
        asn_id = self._ids.get(asn)
        if asn_id is None:
            return {asn}
        return decode_bits(self._cone_bits(definition)[asn_id], self.asns)

    def in_cone(
        self,
        asn: int,
        member: int,
        definition: ConeDefinition = ConeDefinition.PROVIDER_PEER_OBSERVED,
    ) -> bool:
        asn_id, member_id = self._ids.get(asn), self._ids.get(member)
        if asn_id is None or member_id is None:
            return asn == member
        bits = self._cone_bits(definition)
        if isinstance(bits, LazyConeBits):
            return bits.test(asn_id, member_id)
        return bool(bits[asn_id] >> member_id & 1)

    def cone_size(
        self,
        asn: int,
        definition: ConeDefinition = ConeDefinition.PROVIDER_PEER_OBSERVED,
    ) -> int:
        asn_id = self._ids.get(asn)
        if asn_id is None:
            return 1
        return self._cone_bits(definition)[asn_id].bit_count()

    def rank_entry(self, asn: int) -> Optional[ASRankEntry]:
        index = self._rank_of_index(asn)
        return None if index is None else _row_to_rank_entry(
            self._ranks()[index]
        )

    def _rank_of_index(self, asn: int) -> Optional[int]:
        self._ranks()
        return self._rank_of.get(asn)

    def ranks(self, offset: int = 0, limit: Optional[int] = None
              ) -> List[ASRankEntry]:
        rows = self._ranks()
        window = rows[offset:] if limit is None else rows[
            offset:offset + limit
        ]
        return [_row_to_rank_entry(row) for row in window]

    def __len__(self) -> int:
        return len(self.asns)

    @property
    def definitions(self) -> List[ConeDefinition]:
        return [ConeDefinition(v) for v in self.meta["definitions"]]

    def rel_graph(self):
        """The snapshot's routing view: a frozen
        :class:`~repro.graph.relgraph.RelGraph` over the link rows.

        Compiled once per snapshot (cached) on the snapshot's own dense
        index, so route-table bitsets and CSR arrays built against it
        stay valid for the snapshot's life.  Sibling (s2s) links merge
        into the peer adjacency — the same treatment
        :meth:`RelGraph.from_as_graph` applies for propagation.
        """
        if self._rel_graph is None:
            from repro.graph.relgraph import RelGraph

            n = len(self.asns)
            providers: List[List[int]] = [[] for _ in range(n)]
            customers: List[List[int]] = [[] for _ in range(n)]
            peers: List[List[int]] = [[] for _ in range(n)]
            p2c = int(Relationship.P2C)
            for a_id, b_id, code, flag in self._links_as_tuples():
                if code == p2c:
                    prov, cust = (
                        (a_id, b_id) if flag == _PROVIDER_A else (b_id, a_id)
                    )
                    customers[prov].append(cust)
                    providers[cust].append(prov)
                else:
                    peers[a_id].append(b_id)
                    peers[b_id].append(a_id)
            for rows in (providers, customers, peers):
                for row in rows:
                    row.sort()
            self._rel_graph = RelGraph(self.index, providers, customers,
                                       peers)
        return self._rel_graph

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    def encode_sections(self) -> Dict[str, bytes]:
        """All sections as canonical bytes (the store writes these)."""
        sections: Dict[str, bytes] = {
            "asns": struct.pack(f"<{len(self.asns)}Q", *self.asns),
            "links": _encode_links(self._links_as_tuples()),
            "ranks": _encode_ranks(self._ranks_as_tuples()),
            "stats": _json_bytes(self.stats),
            "meta": _json_bytes(self.meta),
        }
        for definition in self.definitions:
            sections[_cone_section(definition)] = _encode_cones(
                self._cone_bits(definition)
            )
        return sections

    def content_version(self) -> str:
        """Content hash over the canonical sections (12 hex digits)."""
        digest = hashlib.sha256()
        for name, blob in sorted(self.encode_sections().items()):
            digest.update(name.encode())
            digest.update(struct.pack("<Q", len(blob)))
            digest.update(blob)
        return digest.hexdigest()[:12]

    @classmethod
    def from_sections(
        cls,
        meta_blob: bytes,
        stats_blob: bytes,
        asns_blob: bytes,
        version: str,
        loader: Callable[[str], bytes],
        eager_sections: Optional[Mapping[str, bytes]] = None,
        mapped: bool = False,
    ) -> "Snapshot":
        """Rebuild from decoded header sections + a section loader.

        ``eager_sections`` (the store passes it for non-lazy loads)
        decodes everything up front; otherwise links/cones/ranks
        materialize on first query via ``loader``.  ``mapped=True``
        (the store's mmap path) decodes links/ranks as read-only numpy
        views over the loader's buffers and cones as
        :class:`LazyConeBits` — zero copies, bit-identical answers.
        """
        try:
            meta = json.loads(meta_blob)
            stats = json.loads(stats_blob)
        except ValueError as exc:
            raise SnapshotFormatError(f"bad meta/stats JSON: {exc}") from None
        if len(asns_blob) % 8:
            raise SnapshotFormatError("asns section not a multiple of 8")
        asns = list(struct.unpack(f"<{len(asns_blob) // 8}Q", asns_blob))
        snapshot = cls(asns=asns, meta=meta, stats=stats, version=version)
        snapshot._section_loader = loader
        snapshot._mapped = mapped
        if eager_sections is not None:
            snapshot._attach_links(
                _decode_links(eager_sections["links"])
            )
            snapshot._attach_ranks(
                _decode_ranks(eager_sections["ranks"])
            )
            for definition in snapshot.definitions:
                snapshot._cones[definition.value] = _decode_cones(
                    eager_sections[_cone_section(definition)], len(asns)
                )
        return snapshot

    def close(self) -> None:
        """Release the store's section reader (file handle or mapping).

        Safe to call on eagerly loaded snapshots (no-op) and
        idempotent; an mmap-backed snapshot's mapping is released
        best-effort — outstanding numpy views keep the pages alive
        until they are collected.
        """
        if self._section_reader is not None:
            self._section_reader.close()


# ---------------------------------------------------------------------------
# section codecs
# ---------------------------------------------------------------------------


def _cone_section(definition: ConeDefinition) -> str:
    return f"cones:{definition.value}"


def _json_bytes(value: object) -> bytes:
    return json.dumps(value, sort_keys=True, separators=(",", ":")).encode()


def _encode_links(rows: Iterable[Tuple[int, int, int, int]]) -> bytes:
    return b"".join(_LINK_STRUCT.pack(*row) for row in rows)


def _decode_links(blob: bytes) -> List[Tuple[int, int, int, int]]:
    if len(blob) % _LINK_STRUCT.size:
        raise SnapshotFormatError("links section truncated")
    return [tuple(row) for row in _LINK_STRUCT.iter_unpack(blob)]


def _links_view(blob):
    """Read-only structured numpy view over a links section buffer."""
    if len(blob) % _LINK_STRUCT.size:
        raise SnapshotFormatError("links section truncated")
    return _np.frombuffer(blob, dtype=LINK_DTYPE)


def _ranks_view(blob):
    """Read-only structured numpy view over a ranks section buffer."""
    if len(blob) % _RANK_STRUCT.size:
        raise SnapshotFormatError("ranks section truncated")
    return _np.frombuffer(blob, dtype=RANK_DTYPE)


def _encode_ranks(rows: Iterable[Tuple[int, ...]]) -> bytes:
    return b"".join(_RANK_STRUCT.pack(*row) for row in rows)


def _decode_ranks(blob: bytes) -> List[Tuple[int, ...]]:
    if len(blob) % _RANK_STRUCT.size:
        raise SnapshotFormatError("ranks section truncated")
    return [tuple(row) for row in _RANK_STRUCT.iter_unpack(blob)]


def _encode_cones(bits) -> bytes:
    # index-based so LazyConeBits encodes through the same path as a
    # plain list (materializing each bitset once)
    chunks: List[bytes] = []
    for i in range(len(bits)):
        mask = bits[i]
        blob = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
        chunks.append(struct.pack("<I", len(blob)))
        chunks.append(blob)
    return b"".join(chunks)


def _decode_cones(blob: bytes, n: int) -> List[int]:
    bits: List[int] = []
    offset = 0
    for _ in range(n):
        if offset + 4 > len(blob):
            raise SnapshotFormatError("cones section truncated")
        (length,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        if offset + length > len(blob):
            raise SnapshotFormatError("cones section truncated")
        bits.append(int.from_bytes(blob[offset:offset + length], "little"))
        offset += length
    if offset != len(blob):
        raise SnapshotFormatError("cones section has trailing bytes")
    return bits


def _rank_entry_to_row(entry: ASRankEntry) -> Tuple[int, ...]:
    return (
        entry.rank,
        entry.asn,
        entry.cone_ases,
        -1 if entry.cone_prefixes is None else entry.cone_prefixes,
        -1 if entry.cone_addresses is None else entry.cone_addresses,
        entry.transit_degree,
        entry.node_degree,
        entry.num_customers,
        entry.num_peers,
        entry.num_providers,
    )


def _row_to_rank_entry(row: Tuple[int, ...]) -> ASRankEntry:
    # int() coercion: a row may be a numpy structured-view record, and
    # the entry's fields end up in json.dumps, which rejects np ints
    return ASRankEntry(
        rank=int(row[0]),
        asn=int(row[1]),
        cone_ases=int(row[2]),
        cone_prefixes=None if row[3] < 0 else int(row[3]),
        cone_addresses=None if row[4] < 0 else int(row[4]),
        transit_degree=int(row[5]),
        node_degree=int(row[6]),
        num_customers=int(row[7]),
        num_peers=int(row[8]),
        num_providers=int(row[9]),
    )
