"""Closed-loop load generator for the snapshot query service.

``run_loadgen`` opens N persistent connections and drives each in a
closed loop — send one request, await the full response, send the
next — so measured throughput is what a synchronous client population
of that size actually sustains, and p50/p99 come from real end-to-end
latencies rather than queue-free service times.

The request mix is seeded and deterministic: the generator pulls the
target ASN population from ``/ranks`` pages first, then draws a
weighted mix of per-AS lookups, cone queries (all three definitions),
link queries (including misses — 404 is a valid, counted answer, not
an error), rank pages and snapshot metadata.  Only transport failures
and 5xx responses count as errors.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: (route label, weight); targets are formatted per draw.  This default
#: mix is part of the committed throughput baselines — path/what-if
#: traffic joins only via the opt-in weights on :class:`LoadGenConfig`,
#: so the seeded default schedule never changes under them
_MIX: Tuple[Tuple[str, int], ...] = (
    ("asn", 35),
    ("cone", 25),
    ("link", 15),
    ("ranks", 15),
    ("snapshot", 5),
    ("healthz", 5),
)

_DEFINITIONS = (
    "recursive",
    "bgp-observed",
    "provider%2Fpeer-observed",
    "ppdc",
)


@dataclass
class LoadGenConfig:
    """Shape of one load run."""

    host: str = "127.0.0.1"
    port: int = 8080
    connections: int = 8
    requests: int = 5000
    seed: int = 0
    #: per-request timeout, seconds
    timeout: float = 10.0
    #: cap on ASNs sampled from /ranks to build the target population
    population: int = 500
    #: extra mix weight for GET /paths queries (0 = off, the default)
    paths_weight: int = 0
    #: extra mix weight for POST /what-if queries (0 = off, the default)
    what_if_weight: int = 0


@dataclass
class LoadReport:
    """What one run measured."""

    requests: int = 0
    errors: int = 0
    not_found: int = 0
    seconds: float = 0.0
    connections: int = 0
    latencies_ms: List[float] = field(default_factory=list, repr=False)
    by_route: Dict[str, int] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.requests / self.seconds if self.seconds else 0.0

    def percentile(self, q: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "not_found": self.not_found,
            "seconds": round(self.seconds, 4),
            "throughput_rps": round(self.throughput, 1),
            "connections": self.connections,
            "latency_ms": {
                "p50": round(self.percentile(0.50), 4),
                "p90": round(self.percentile(0.90), 4),
                "p99": round(self.percentile(0.99), 4),
                "mean": round(
                    sum(self.latencies_ms) / len(self.latencies_ms), 4
                ) if self.latencies_ms else 0.0,
            },
            "by_route": dict(sorted(self.by_route.items())),
        }

    def summary(self) -> str:
        return (
            f"{self.requests} requests over {self.connections} connections "
            f"in {self.seconds:.2f}s: {self.throughput:,.0f} req/s, "
            f"p50 {self.percentile(0.5):.2f}ms, "
            f"p99 {self.percentile(0.99):.2f}ms, "
            f"{self.errors} errors"
        )


async def _request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    target: str,
    host: str,
    timeout: float,
    method: str = "GET",
    body: bytes = b"",
) -> Tuple[int, bytes]:
    """One request on a persistent connection; returns (status, body)."""
    head = (
        f"{method} {target} HTTP/1.1\r\nHost: {host}\r\n"
        f"Connection: keep-alive\r\n"
    )
    if body:
        head += f"Content-Length: {len(body)}\r\n"
    writer.write(head.encode() + b"\r\n" + body)
    await writer.drain()
    head = await asyncio.wait_for(
        reader.readuntil(b"\r\n\r\n"), timeout=timeout
    )
    lines = head.split(b"\r\n")
    status = int(lines[0].split(b" ")[1])
    content_length = 0
    for line in lines[1:]:
        if line.lower().startswith(b"content-length:"):
            content_length = int(line.split(b":")[1])
            break
    body = b""
    if content_length:
        body = await asyncio.wait_for(
            reader.readexactly(content_length), timeout=timeout
        )
    return status, body


#: one schedule entry: (route label, method, target, request body)
_Planned = Tuple[str, str, str, bytes]


def _mix_for(config: "LoadGenConfig") -> Tuple[Tuple[str, int], ...]:
    """The request mix, extended by the opt-in path/what-if weights."""
    mix = list(_MIX)
    if config.paths_weight > 0:
        mix.append(("paths", config.paths_weight))
    if config.what_if_weight > 0:
        mix.append(("whatif", config.what_if_weight))
    return tuple(mix)


def _build_targets(
    rng: random.Random,
    asns: Sequence[int],
    count: int,
    mix: Tuple[Tuple[str, int], ...] = _MIX,
) -> List[_Planned]:
    """Pre-draw the whole request schedule."""
    routes = [route for route, _w in mix]
    weights = [weight for _r, weight in mix]
    population = list(asns) or [0]

    def get(route: str, target: str) -> _Planned:
        return route, "GET", target, b""

    targets: List[_Planned] = []
    for _ in range(count):
        route = rng.choices(routes, weights)[0]
        if route == "asn":
            targets.append(get(route, f"/asns/{rng.choice(population)}"))
        elif route == "cone":
            definition = rng.choice(_DEFINITIONS)
            targets.append(
                get(
                    route,
                    f"/asns/{rng.choice(population)}/cone"
                    f"?definition={definition}",
                )
            )
        elif route == "link":
            a, b = rng.choice(population), rng.choice(population)
            targets.append(get(route, f"/links/{a}/{b}"))
        elif route == "ranks":
            targets.append(
                get(route, f"/ranks?page={rng.randint(1, 4)}&per_page=50")
            )
        elif route == "snapshot":
            targets.append(get(route, "/snapshot"))
        elif route == "paths":
            src, dst = rng.choice(population), rng.choice(population)
            target = f"/paths/{src}/{dst}"
            if rng.random() < 0.25:  # some draws exercise anycast sets
                extra = rng.sample(population, min(2, len(population)))
                target += "?origins=" + ",".join(str(a) for a in extra)
            targets.append(get(route, target))
        elif route == "whatif":
            # a leak scenario validates on any in-snapshot AS, so the
            # drawn body never depends on which links exist
            body = json.dumps(
                {
                    "dst": rng.choice(population),
                    "ops": [
                        {"op": "leak", "asn": rng.choice(population)}
                    ],
                    "sample": 50,
                },
                sort_keys=True,
            ).encode()
            targets.append((route, "POST", "/what-if", body))
        else:
            targets.append(get(route, "/healthz"))
    return targets


async def _discover_population(
    config: LoadGenConfig,
) -> List[int]:
    """Pull ASNs off the server's own rank pages."""
    reader, writer = await asyncio.open_connection(config.host, config.port)
    asns: List[int] = []
    try:
        page = 1
        while len(asns) < config.population:
            status, body = await _request(
                reader, writer,
                f"/ranks?page={page}&per_page=200",
                config.host, config.timeout,
            )
            if status != 200:
                break
            entries = json.loads(body).get("entries", [])
            if not entries:
                break
            asns.extend(entry["asn"] for entry in entries)
            page += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass
    return asns[:config.population]


async def _worker(
    config: LoadGenConfig,
    schedule: List[_Planned],
    cursor: List[int],
    report: LoadReport,
) -> None:
    reader, writer = await asyncio.open_connection(config.host, config.port)
    try:
        while True:
            index = cursor[0]
            if index >= len(schedule):
                return
            cursor[0] = index + 1
            route, method, target, body = schedule[index]
            start = time.perf_counter()
            try:
                status, _body = await _request(
                    reader, writer, target, config.host, config.timeout,
                    method=method, body=body,
                )
            except (
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
                ConnectionResetError,
                OSError,
            ):
                report.errors += 1
                report.requests += 1
                # reconnect and keep going: one broken connection must
                # not starve the rest of the schedule
                writer.close()
                reader, writer = await asyncio.open_connection(
                    config.host, config.port
                )
                continue
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            report.requests += 1
            report.latencies_ms.append(elapsed_ms)
            report.by_route[route] = report.by_route.get(route, 0) + 1
            if status >= 500:
                report.errors += 1
            elif status == 404:
                report.not_found += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, OSError):
            pass


async def run_loadgen_async(
    config: LoadGenConfig, asns: Optional[Sequence[int]] = None
) -> LoadReport:
    if asns is None:
        asns = await _discover_population(config)
    rng = random.Random(config.seed)
    schedule = _build_targets(rng, asns, config.requests, _mix_for(config))
    report = LoadReport(connections=config.connections)
    cursor = [0]
    start = time.perf_counter()
    await asyncio.gather(
        *(
            _worker(config, schedule, cursor, report)
            for _ in range(config.connections)
        )
    )
    report.seconds = time.perf_counter() - start
    return report


def run_loadgen(
    config: LoadGenConfig, asns: Optional[Sequence[int]] = None
) -> LoadReport:
    """Synchronous entry point: run one closed-loop load measurement."""
    return asyncio.run(run_loadgen_async(config, asns))


def run_loadgen_procs(
    config: LoadGenConfig,
    procs: int = 2,
    asns: Optional[Sequence[int]] = None,
) -> LoadReport:
    """``run_loadgen`` fanned out over forked generator processes.

    One asyncio loadgen process saturates around one core, so against
    a multi-worker fleet the *generator* becomes the bottleneck before
    the servers do.  This forks ``procs`` generators (each with its
    own seed and ``config.requests`` schedule), merges their reports —
    requests and errors summed, latencies concatenated, wall time the
    max across generators — and reports aggregate throughput.

    Falls back to a single in-process run where fork is unavailable.
    """
    if procs <= 1 or not hasattr(os, "fork"):
        return run_loadgen(config, asns)
    from dataclasses import replace as _replace

    pipes: List[Tuple[int, int]] = []
    pids: List[int] = []
    for index in range(procs):
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                os.close(read_fd)
                for other_read, other_write in pipes:
                    os.close(other_read)
                report = run_loadgen(
                    _replace(config, seed=config.seed * 1000 + index),
                    asns,
                )
                payload = json.dumps(
                    {
                        "requests": report.requests,
                        "errors": report.errors,
                        "not_found": report.not_found,
                        "seconds": report.seconds,
                        "latencies_ms": report.latencies_ms,
                        "by_route": report.by_route,
                    }
                ).encode()
                with os.fdopen(write_fd, "wb") as stream:
                    stream.write(payload)
                status = 0
            finally:
                os._exit(status)
        os.close(write_fd)
        pipes.append((read_fd, write_fd))
        pids.append(pid)

    merged = LoadReport(connections=config.connections * procs)
    failures = 0
    for pid, (read_fd, _write_fd) in zip(pids, pipes):
        with os.fdopen(read_fd, "rb") as stream:
            blob = stream.read()
        _pid, status = os.waitpid(pid, 0)
        if status != 0 or not blob:
            failures += 1
            continue
        part = json.loads(blob)
        merged.requests += part["requests"]
        merged.errors += part["errors"]
        merged.not_found += part["not_found"]
        merged.seconds = max(merged.seconds, part["seconds"])
        merged.latencies_ms.extend(part["latencies_ms"])
        for route, count in part["by_route"].items():
            merged.by_route[route] = merged.by_route.get(route, 0) + count
    if failures:
        # a dead generator is a measurement failure, not a server one,
        # but surfacing it as errors keeps zero-error gates honest
        merged.errors += failures * config.requests
    return merged


def calibration_workload(rounds: int = 20000) -> float:
    """Seconds for a fixed CPU-bound slice of the serve hot path.

    Used by the bench-regression check to factor out machine speed:
    the workload (JSON encode + small-dict churn, what a handler does
    per request) is engine-independent across this repo's history, so
    measured/committed time is a machine-speed ratio.
    """
    payload = {
        "asn": 64512,
        "rank": 17,
        "cone": {"ases": 421, "prefixes": 910, "addresses": 2 ** 20},
        "neighbors": {"customers": 12, "peers": 31, "providers": 2},
        "snapshot": "abcdef012345",
    }
    start = time.perf_counter()
    for i in range(rounds):
        payload["rank"] = i & 0xFF
        json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return time.perf_counter() - start
