"""Shared light-weight relationship container for baseline algorithms.

Exposes the same query surface as
:class:`repro.core.inference.InferenceResult` (``relationship``,
``provider_of``, ``links``), so the validation framework can score
ASRank and the baselines through one code path.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.relationships import Relationship, canonical_pair


class RelationshipMap:
    """A plain mapping of links to inferred relationships."""

    def __init__(self) -> None:
        self._rel: Dict[Tuple[int, int], Relationship] = {}
        self._provider: Dict[Tuple[int, int], int] = {}

    def set_p2c(self, provider: int, customer: int) -> None:
        pair = canonical_pair(provider, customer)
        self._rel[pair] = Relationship.P2C
        self._provider[pair] = provider

    def set_p2p(self, a: int, b: int) -> None:
        pair = canonical_pair(a, b)
        self._rel[pair] = Relationship.P2P
        self._provider.pop(pair, None)

    def set_s2s(self, a: int, b: int) -> None:
        pair = canonical_pair(a, b)
        self._rel[pair] = Relationship.S2S
        self._provider.pop(pair, None)

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        return self._rel.get(canonical_pair(a, b))

    def provider_of(self, a: int, b: int) -> Optional[int]:
        return self._provider.get(canonical_pair(a, b))

    def links(self) -> List[Tuple[int, int]]:
        return list(self._rel)

    def __len__(self) -> int:
        return len(self._rel)

    def __iter__(self) -> Iterator[Tuple[int, int, Relationship, Optional[int]]]:
        for pair, rel in self._rel.items():
            yield pair[0], pair[1], rel, self._provider.get(pair)

    def counts(self) -> Dict[Relationship, int]:
        out: Dict[Relationship, int] = {}
        for rel in self._rel.values():
            out[rel] = out.get(rel, 0) + 1
        return out
