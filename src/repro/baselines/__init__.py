"""Baseline relationship-inference algorithms the paper compares against.

* :mod:`repro.baselines.gao` — Gao's classic degree-based algorithm
  (ToN 2001), the field's original heuristic: the highest-degree AS in
  each path is the top of the hill, everything slopes away from it.
* :mod:`repro.baselines.degree` — the naive strawman: on every link the
  higher-degree endpoint is the provider unless degrees are comparable.

Both consume the same sanitized :class:`~repro.core.paths.PathSet` as
ASRank, so the E6 comparison is apples-to-apples.
"""

from repro.baselines.gao import GaoConfig, infer_gao
from repro.baselines.degree import DegreeConfig, infer_degree

__all__ = ["GaoConfig", "infer_gao", "DegreeConfig", "infer_degree"]
