"""Naive degree-threshold baseline.

The strawman every relationship paper measures against: on each
observed link, the endpoint with the higher node degree is the
provider, unless the degrees are within ``peer_ratio`` of each other,
in which case the link is a peer link.  No path semantics, no clique,
no valley-freeness — just local degree comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baselines.common import RelationshipMap
from repro.core.paths import PathSet


@dataclass
class DegreeConfig:
    peer_ratio: float = 2.0  # degrees within this factor → p2p


def infer_degree(
    paths: PathSet, config: Optional[DegreeConfig] = None
) -> RelationshipMap:
    """Label every observed link by local degree comparison."""
    config = config or DegreeConfig()
    result = RelationshipMap()
    for a, b in sorted(paths.links()):
        da, db = max(paths.node_degree(a), 1), max(paths.node_degree(b), 1)
        ratio = max(da, db) / min(da, db)
        if ratio <= config.peer_ratio:
            result.set_p2p(a, b)
        elif da > db:
            result.set_p2c(a, b)
        else:
            result.set_p2c(b, a)
    return result
