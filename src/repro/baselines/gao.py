"""Gao's relationship inference algorithm (IEEE/ACM ToN 2001).

The original heuristic the field — and the paper's related-work
comparison — starts from.  Three phases over the observed paths:

1. **Uphill/downhill voting.**  Each path's *top provider* is the AS
   with the highest node degree; links before it ascend (right endpoint
   provides), links after it descend (left endpoint provides).  Every
   path casts one vote per link.
2. **Relationship assignment.**  A link voted in only one direction is
   c2p.  A link voted both ways is transit-in-both-directions: with
   more than ``sibling_votes`` votes each way it is labeled sibling
   (s2s), otherwise the majority direction wins.
3. **Peering refinement.**  Links adjacent to a path's top provider
   whose endpoints have comparable degree (within ``degree_ratio``) and
   that never transit for each other are relabeled p2p.

This is the "refined algorithm" of the Gao paper with her final
peering heuristic; parameters default to the published values
(L = 1 vote, R = 60 degree ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.common import RelationshipMap
from repro.core.paths import PathSet
from repro.relationships import Relationship, canonical_pair


@dataclass
class GaoConfig:
    """Published parameter values from the 2001 paper."""

    sibling_votes: int = 1  # L: votes each way beyond which s2s is inferred
    degree_ratio: float = 60.0  # R: max degree ratio between peers
    infer_siblings: bool = True


def infer_gao(
    paths: PathSet, config: Optional[GaoConfig] = None
) -> RelationshipMap:
    """Run Gao's algorithm over a sanitized path corpus."""
    config = config or GaoConfig()
    degree = {asn: paths.node_degree(asn) for asn in paths.asns()}

    # phase 1: uphill/downhill voting around each path's top provider
    votes: Dict[Tuple[int, int], List[int]] = {}

    def vote(provider: int, customer: int) -> None:
        pair = canonical_pair(provider, customer)
        tally = votes.setdefault(pair, [0, 0])
        tally[0 if provider == pair[0] else 1] += 1

    for path in paths:
        top = max(range(len(path)), key=lambda i: (degree[path[i]], -i))
        for j in range(top):
            vote(path[j + 1], path[j])  # ascending: right side provides
        for j in range(top, len(path) - 1):
            vote(path[j], path[j + 1])  # descending: left side provides

    # phase 2: assign c2p / s2s from the vote tallies
    result = RelationshipMap()
    for (a, b), (a_provides, b_provides) in votes.items():
        if (
            config.infer_siblings
            and a_provides > config.sibling_votes
            and b_provides > config.sibling_votes
        ):
            result.set_s2s(a, b)
        elif a_provides >= b_provides:
            result.set_p2c(a, b)
        else:
            result.set_p2c(b, a)

    # phase 3: peering refinement near each path's top provider
    #
    # a link is a peering candidate when it touches some path's top
    # provider; it is relabeled p2p when the endpoints have comparable
    # degree and the link is never observed strictly inside a path's
    # uphill or downhill segment (which would prove one side transits
    # for the other).
    top_adjacent: Set[Tuple[int, int]] = set()
    interior: Set[Tuple[int, int]] = set()
    for path in paths:
        top = max(range(len(path)), key=lambda i: (degree[path[i]], -i))
        for j in range(len(path) - 1):
            pair = canonical_pair(path[j], path[j + 1])
            if j == top or j + 1 == top:
                top_adjacent.add(pair)
            else:
                interior.add(pair)

    for a, b in top_adjacent - interior:
        if result.relationship(a, b) is Relationship.S2S:
            continue
        da, db = max(degree[a], 1), max(degree[b], 1)
        if max(da, db) / min(da, db) <= config.degree_ratio:
            result.set_p2p(a, b)
    return result
