"""ASRank relationship inference (the paper's core algorithm).

Given a sanitized AS-path corpus, label every observed AS link as
customer-to-provider (c2p) or peer-to-peer (p2p) under the paper's
three assumptions: (1) a clique of large transit providers sits at the
top of the hierarchy, (2) ASes buy transit to be globally reachable,
and (3) provider links form no cycles.

The pipeline runs ordered, individually attributable steps (the exact
step wording of the paper is reconstructed — see DESIGN.md — but each
heuristic here is the published system's known mechanism):

* **S3_CLIQUE** — adjacent clique members are peers.
* **S4_POISONED** — discard paths that traverse the clique other than
  as one contiguous run of ≤ 2 members (valley or poisoning artifact).
* **S5_TOPDOWN** — for each path, locate the highest-ranked AS (the
  "peak"); every link not adjacent to the peak descends away from it,
  so its upper endpoint is the provider.  The two peak-adjacent links
  are left open (either may be the path's single p2p crossing).
  Paths are processed in order of peak rank, so inferences made by the
  largest networks take precedence.
* **S6_FOLD** — valley-free constraint propagation to fixpoint: in any
  path, once a link descends (or peers), every later link descends;
  while a link ascends (or peers), every earlier link ascends.
* **S7_STUB** — an AS that never appears to transit (transit degree 0)
  is the customer on its unclassified links.
* **S8_PROVIDERLESS** — a non-clique AS with no inferred provider gets
  one: the highest-ranked neighbor on an unclassified link
  (reachability assumption).
* **S9_REMAINING_P2P** — everything still unclassified is p2p.

Provider cycles are refused at every step, and every conflicting vote
is recorded for diagnostics rather than silently dropped.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.clique import CliqueResult, infer_clique
from repro.core.paths import PathSet
from repro.relationships import Relationship, canonical_pair


class Step(enum.Enum):
    """Attribution tag: which pipeline stage labeled a link."""

    S2B_SIBLING = "sibling"
    S3_CLIQUE = "clique"
    S4B_PARTIAL_VP = "partial VP"
    S5_TOPDOWN = "top-down"
    S6_FOLD = "valley-free fold"
    S7_STUB = "stub"
    S7B_GAP = "degree gap"
    S8_PROVIDERLESS = "provider-less"
    S9_REMAINING_P2P = "remaining p2p"


@dataclass
class InferenceConfig:
    """Pipeline knobs; the disables exist for the E12 ablations."""

    clique_seed_size: int = 10
    clique_stop_after: int = 10
    # canonical AS pairs known to be under one organization (from WHOIS
    # org data, see repro.topology.orgs); labeled s2s before any other
    # inference, as CAIDA's sibling handling does
    known_siblings: FrozenSet[Tuple[int, int]] = frozenset()
    enable_clique: bool = True
    enable_poisoned_filter: bool = True
    enable_partial_vp: bool = True
    # a VP whose paths reach fewer than this fraction of all observed
    # origins is inferred to export only customer routes
    partial_vp_coverage: float = 0.5
    enable_topdown: bool = True
    enable_fold: bool = True
    enable_stub: bool = True
    enable_degree_gap: bool = True
    enable_providerless: bool = True
    max_fold_rounds: int = 10
    # S7B: a network this many times larger (by transit degree) than its
    # neighbor is its provider, not its peer — settlement-free peering
    # presumes comparable size.  Applied only when the smaller side is
    # itself small in absolute terms.
    gap_factor: float = 8.0
    gap_small_max: int = 12


@dataclass(frozen=True)
class InferredRelationship:
    """One labeled link.  For P2C, ``provider``/``customer`` are set."""

    a: int
    b: int
    relationship: Relationship
    step: Step
    provider: Optional[int] = None

    @property
    def customer(self) -> Optional[int]:
        if self.provider is None:
            return None
        return self.b if self.provider == self.a else self.a


@dataclass
class Conflict:
    """A vote that contradicted an existing inference (kept for audit)."""

    pair: Tuple[int, int]
    existing: Relationship
    existing_provider: Optional[int]
    attempted_provider: Optional[int]
    step: Step


class InferenceResult:
    """All inferred relationships plus provenance and diagnostics."""

    def __init__(
        self,
        paths: PathSet,
        clique: CliqueResult,
        config: InferenceConfig,
    ):
        self.paths = paths
        self.clique = clique
        self.config = config
        self._clique_set = set(clique.members)
        self._rel: Dict[Tuple[int, int], Relationship] = {}
        self._provider: Dict[Tuple[int, int], int] = {}
        self._step: Dict[Tuple[int, int], Step] = {}
        self.conflicts: List[Conflict] = []
        self.discarded_poisoned = 0
        # provider -> customers adjacency for cycle checks / cones
        self.customers: Dict[int, Set[int]] = {}
        self.providers: Dict[int, Set[int]] = {}
        self.peers: Dict[int, Set[int]] = {}
        self.siblings: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # mutation (used by the engine)
    # ------------------------------------------------------------------

    def _would_cycle(self, provider: int, customer: int) -> bool:
        """Would ``provider→customer`` close a loop in the p2c DAG?"""
        if provider == customer:
            return True
        queue = deque([customer])
        seen = {customer}
        while queue:
            node = queue.popleft()
            for nxt in self.customers.get(node, ()):
                if nxt == provider:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def set_p2c(self, provider: int, customer: int, step: Step) -> bool:
        """Record ``provider→customer``; False if refused or conflicting.

        Clique members are transit-free by assumption: any vote that
        would give one a provider is refused (and logged)."""
        pair = canonical_pair(provider, customer)
        if customer in self._clique_set:
            self.conflicts.append(
                Conflict(
                    pair=pair,
                    existing=Relationship.P2P,
                    existing_provider=None,
                    attempted_provider=provider,
                    step=step,
                )
            )
            return False
        existing = self._rel.get(pair)
        if existing is not None:
            if (
                existing is Relationship.P2C
                and self._provider[pair] == provider
            ):
                return True  # agreeing vote
            self.conflicts.append(
                Conflict(
                    pair=pair,
                    existing=existing,
                    existing_provider=self._provider.get(pair),
                    attempted_provider=provider,
                    step=step,
                )
            )
            return False
        if self._would_cycle(provider, customer):
            self.conflicts.append(
                Conflict(
                    pair=pair,
                    existing=Relationship.P2C,
                    existing_provider=None,
                    attempted_provider=provider,
                    step=step,
                )
            )
            return False
        self._rel[pair] = Relationship.P2C
        self._provider[pair] = provider
        self._step[pair] = step
        self.customers.setdefault(provider, set()).add(customer)
        self.providers.setdefault(customer, set()).add(provider)
        return True

    def set_p2p(self, a: int, b: int, step: Step) -> bool:
        """Record a peer link; False if the pair is already labeled c2p."""
        pair = canonical_pair(a, b)
        existing = self._rel.get(pair)
        if existing is not None:
            if existing is Relationship.P2P:
                return True
            self.conflicts.append(
                Conflict(
                    pair=pair,
                    existing=existing,
                    existing_provider=self._provider.get(pair),
                    attempted_provider=None,
                    step=step,
                )
            )
            return False
        self._rel[pair] = Relationship.P2P
        self._step[pair] = step
        self.peers.setdefault(a, set()).add(b)
        self.peers.setdefault(b, set()).add(a)
        return True

    def set_s2s(self, a: int, b: int, step: Step) -> bool:
        """Record a sibling link (always applied first, so never conflicts
        unless the caller mixes orders)."""
        pair = canonical_pair(a, b)
        existing = self._rel.get(pair)
        if existing is not None:
            return existing is Relationship.S2S
        self._rel[pair] = Relationship.S2S
        self._step[pair] = step
        self.siblings.setdefault(a, set()).add(b)
        self.siblings.setdefault(b, set()).add(a)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        return self._rel.get(canonical_pair(a, b))

    def links(self) -> List[Tuple[int, int]]:
        """All labeled links as canonical pairs."""
        return list(self._rel)

    def provider_of(self, a: int, b: int) -> Optional[int]:
        pair = canonical_pair(a, b)
        if self._rel.get(pair) is not Relationship.P2C:
            return None
        return self._provider[pair]

    def step_of(self, a: int, b: int) -> Optional[Step]:
        return self._step.get(canonical_pair(a, b))

    def __len__(self) -> int:
        return len(self._rel)

    def __iter__(self) -> Iterator[InferredRelationship]:
        for pair, rel in self._rel.items():
            provider = self._provider.get(pair)
            yield InferredRelationship(
                a=pair[0],
                b=pair[1],
                relationship=rel,
                step=self._step[pair],
                provider=provider,
            )

    def counts_by_relationship(self) -> Dict[Relationship, int]:
        counts: Dict[Relationship, int] = {}
        for rel in self._rel.values():
            counts[rel] = counts.get(rel, 0) + 1
        return counts

    def counts_by_step(self) -> Dict[Step, int]:
        counts: Dict[Step, int] = {}
        for step in self._step.values():
            counts[step] = counts.get(step, 0) + 1
        return counts

    def complex_candidates(self) -> Dict[Tuple[int, int], int]:
        """Links with contradicting votes: candidates for *complex*
        relationships (hybrid/partial transit), which the paper flags
        as future work.  Returns pair → number of conflicting votes."""
        counts: Dict[Tuple[int, int], int] = {}
        for conflict in self.conflicts:
            counts[conflict.pair] = counts.get(conflict.pair, 0) + 1
        return counts

    def providers_of_asn(self, asn: int) -> Set[int]:
        return set(self.providers.get(asn, ()))

    def customers_of_asn(self, asn: int) -> Set[int]:
        return set(self.customers.get(asn, ()))

    def peers_of_asn(self, asn: int) -> Set[int]:
        return set(self.peers.get(asn, ()))


# link direction codes used while folding along a path
_UNKNOWN, _UP, _DOWN, _PEERLINK, _SIBLINK = 0, 1, 2, 3, 4


class _Engine:
    """Runs the pipeline; kept separate so the result object stays lean."""

    def __init__(self, paths: PathSet, config: InferenceConfig):
        self.config = config
        self.raw_paths = paths

    def run(self) -> InferenceResult:
        config = self.config
        clique = (
            infer_clique(
                self.raw_paths,
                seed_size=config.clique_seed_size,
                stop_after=config.clique_stop_after,
            )
            if config.enable_clique
            else CliqueResult(members=[], seed_members=[], added_members=[])
        )

        paths = self.raw_paths
        discarded = 0
        if config.enable_poisoned_filter and clique.members:
            paths, discarded = _discard_poisoned(paths, clique.member_set)

        result = InferenceResult(paths=paths, clique=clique, config=config)
        result.discarded_poisoned = discarded

        rank = {asn: i for i, asn in enumerate(paths.ranked_asns())}

        if config.known_siblings:
            _step_siblings(result, paths, config)
        if config.enable_clique:
            _step_clique(result, paths, clique)
        if config.enable_partial_vp:
            _step_partial_vp(result, paths, config)
        if config.enable_topdown:
            _step_topdown(result, paths, rank)
        if config.enable_fold:
            _step_fold(result, paths)
        if config.enable_stub:
            _step_stub(result, paths)
            if config.enable_fold:
                _step_fold(result, paths)
        if config.enable_degree_gap:
            _step_degree_gap(result, paths, config)
            if config.enable_fold:
                _step_fold(result, paths)
        if config.enable_providerless:
            _step_providerless(result, paths, rank)
            if config.enable_fold:
                _step_fold(result, paths)
        _step_remaining_p2p(result, paths)
        return result


def infer_relationships(
    paths: PathSet, config: Optional[InferenceConfig] = None
) -> InferenceResult:
    """Run the full ASRank pipeline over a sanitized path corpus."""
    return _Engine(paths, config or InferenceConfig()).run()


# ---------------------------------------------------------------------------
# pipeline steps
# ---------------------------------------------------------------------------


def _discard_poisoned(
    paths: PathSet, clique: Set[int]
) -> Tuple[PathSet, int]:
    """Drop paths that traverse the clique illegally (S4).

    A clean valley-free path crosses the top of the hierarchy at most
    once, so clique members must appear as one contiguous run of length
    ≤ 2.  Anything else is a poisoned announcement or a route leak.
    """
    kept: List[Tuple[int, ...]] = []
    discarded = 0
    for path in paths:
        positions = [i for i, asn in enumerate(path) if asn in clique]
        if len(positions) > 2:
            discarded += 1
            continue
        if len(positions) == 2 and positions[1] - positions[0] != 1:
            discarded += 1
            continue
        kept.append(path)
    return paths.filtered(kept), discarded


def _step_siblings(
    result: InferenceResult, paths: PathSet, config: InferenceConfig
) -> None:
    """S2B: links between ASes of one organization are siblings.

    Applied before everything else, as CAIDA does with WHOIS org data —
    a sibling link must never be mistaken for transit or peering, and
    it carries no valley-free information (siblings exchange all
    routes in both directions)."""
    for a, b in sorted(paths.links()):
        if canonical_pair(a, b) in config.known_siblings:
            result.set_s2s(a, b, Step.S2B_SIBLING)


def _step_clique(
    result: InferenceResult, paths: PathSet, clique: CliqueResult
) -> None:
    """S3: adjacent clique members are peers."""
    members = clique.member_set
    for a, b in paths.links():
        if a in members and b in members:
            result.set_p2p(a, b, Step.S3_CLIQUE)


def _step_partial_vp(
    result: InferenceResult, paths: PathSet, config: InferenceConfig
) -> None:
    """S4B: paths from partial-feed VPs are pure customer chains.

    Some vantage points export only the routes they would send a peer:
    customer-learned and originated ones.  Such a VP is recognizable
    because its paths reach only a small fraction of all observed
    origins.  Every path it exports descends from the first hop, so
    every link on it is p2c with the left endpoint as provider.
    """
    origins_total = {path[-1] for path in paths}
    if not origins_total:
        return
    by_vp: Dict[int, Set[int]] = {}
    for path in paths:
        by_vp.setdefault(path[0], set()).add(path[-1])
    partial_vps = {
        vp
        for vp, origins in by_vp.items()
        if len(origins) < config.partial_vp_coverage * len(origins_total)
    }
    for path in paths:
        if path[0] not in partial_vps:
            continue
        for j in range(len(path) - 1):
            if not result.set_p2c(path[j], path[j + 1], Step.S4B_PARTIAL_VP):
                break


def _step_topdown(
    result: InferenceResult, paths: PathSet, rank: Dict[int, int]
) -> None:
    """S5: peak-relative sweep, highest peaks first."""

    def peak_index(path: Tuple[int, ...]) -> int:
        best = 0
        for i, asn in enumerate(path):
            if rank.get(asn, 1 << 30) < rank.get(path[best], 1 << 30):
                best = i
        return best

    order: List[Tuple[int, int, Tuple[int, ...]]] = []
    for path in paths:
        i = peak_index(path)
        order.append((rank.get(path[i], 1 << 30), i, path))
    order.sort(key=lambda item: (item[0], item[2]))

    for _, i, path in order:
        # descend right of the peak: path[j] provides for path[j+1];
        # stop at the first contradiction — the path's shape no longer
        # matches our peak assumption beyond that point
        for j in range(i + 1, len(path) - 1):
            if not result.set_p2c(path[j], path[j + 1], Step.S5_TOPDOWN):
                break
        # descend left of the peak: path[j+1] provides for path[j]
        for j in range(i - 2, -1, -1):
            if not result.set_p2c(path[j + 1], path[j], Step.S5_TOPDOWN):
                break


def _link_state(result: InferenceResult, left: int, right: int) -> int:
    rel = result.relationship(left, right)
    if rel is None:
        return _UNKNOWN
    if rel is Relationship.P2P:
        return _PEERLINK
    if rel is Relationship.S2S:
        return _SIBLINK
    provider = result.provider_of(left, right)
    return _DOWN if provider == left else _UP


def _step_fold(result: InferenceResult, paths: PathSet) -> None:
    """S6: valley-free constraint propagation to fixpoint.

    In collector order a clean path ascends, crosses at most one peer
    link, then descends.  So any link after a DOWN/PEER link must be
    DOWN, and any link before an UP/PEER link must be UP.
    """
    for _ in range(result.config.max_fold_rounds):
        changed = False
        for path in paths:
            states = [
                _link_state(result, path[j], path[j + 1])
                for j in range(len(path) - 1)
            ]
            # forward: after the first DOWN or PEER everything descends —
            # but a sibling link is a wildcard that resets the constraint
            # (siblings re-export anything in any direction)
            seen_descent = False
            for j, state in enumerate(states):
                if state == _SIBLINK:
                    seen_descent = False
                    continue
                if seen_descent and state == _UNKNOWN:
                    if result.set_p2c(path[j], path[j + 1], Step.S6_FOLD):
                        states[j] = _DOWN
                        changed = True
                if state in (_DOWN, _PEERLINK):
                    seen_descent = True
            # backward: before the last UP or PEER everything ascends
            seen_ascent = False
            for j in range(len(states) - 1, -1, -1):
                state = states[j]
                if state == _SIBLINK:
                    seen_ascent = False
                    continue
                if seen_ascent and state == _UNKNOWN:
                    if result.set_p2c(path[j + 1], path[j], Step.S6_FOLD):
                        states[j] = _UP
                        changed = True
                if state in (_UP, _PEERLINK):
                    seen_ascent = True
        if not changed:
            return


def _step_stub(result: InferenceResult, paths: PathSet) -> None:
    """S7: a stub attached to a clique member is its customer.

    Restricted to the clique on purpose: a tier-1 does not peer with a
    network that never transits, but two mid-size networks where one
    merely *looks* transit-free from the vantage points might well be
    peers — the paper keeps this heuristic narrow for that reason.
    """
    clique = result.clique.member_set
    for a, b in sorted(paths.links()):
        if result.relationship(a, b) is not None:
            continue
        ta, tb = paths.transit_degree(a), paths.transit_degree(b)
        if ta == 0 and b in clique:
            result.set_p2c(b, a, Step.S7_STUB)
        elif tb == 0 and a in clique:
            result.set_p2c(a, b, Step.S7_STUB)


def _step_degree_gap(
    result: InferenceResult, paths: PathSet, config: InferenceConfig
) -> None:
    """S7B: vastly mismatched neighbors are provider and customer.

    Settlement-free peering presumes roughly comparable networks; when
    one side's transit degree dwarfs the other's *and* the smaller side
    is small in absolute terms, the link is transit.  This reconstructs
    the paper's stub↔clique reasoning in a degree-ratio form (a clique
    member does not peer with a regional stub)."""
    for a, b in sorted(paths.links()):
        if result.relationship(a, b) is not None:
            continue
        ta, tb = paths.transit_degree(a), paths.transit_degree(b)
        big, small = (a, b) if ta >= tb else (b, a)
        t_big, t_small = max(ta, tb), min(ta, tb)
        if t_small > config.gap_small_max:
            continue
        if t_big >= config.gap_factor * max(1, t_small):
            result.set_p2c(big, small, Step.S7B_GAP)


def _step_providerless(
    result: InferenceResult, paths: PathSet, rank: Dict[int, int]
) -> None:
    """S8: give every provider-less non-clique AS its best provider."""
    clique = result.clique.member_set
    neighbors = paths.node_neighbors
    for asn in paths.ranked_asns():
        if asn in clique or result.providers.get(asn):
            continue
        open_neighbors = [
            n
            for n in neighbors.get(asn, ())
            if result.relationship(asn, n) is None
        ]
        if not open_neighbors:
            continue
        open_neighbors.sort(key=lambda n: (rank.get(n, 1 << 30), n))
        for candidate in open_neighbors:
            if result.set_p2c(candidate, asn, Step.S8_PROVIDERLESS):
                break


def _step_remaining_p2p(result: InferenceResult, paths: PathSet) -> None:
    """S9: unclassified links default to peer-to-peer."""
    for a, b in sorted(paths.links()):
        if result.relationship(a, b) is None:
            result.set_p2p(a, b, Step.S9_REMAINING_P2P)
