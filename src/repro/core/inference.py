"""ASRank relationship inference (the paper's core algorithm).

Given a sanitized AS-path corpus, label every observed AS link as
customer-to-provider (c2p) or peer-to-peer (p2p) under the paper's
three assumptions: (1) a clique of large transit providers sits at the
top of the hierarchy, (2) ASes buy transit to be globally reachable,
and (3) provider links form no cycles.

The pipeline runs ordered, individually attributable steps (the exact
step wording of the paper is reconstructed — see DESIGN.md — but each
heuristic here is the published system's known mechanism):

* **S3_CLIQUE** — adjacent clique members are peers.
* **S4_POISONED** — discard paths that traverse the clique other than
  as one contiguous run of ≤ 2 members (valley or poisoning artifact).
* **S5_TOPDOWN** — for each path, locate the highest-ranked AS (the
  "peak"); every link not adjacent to the peak descends away from it,
  so its upper endpoint is the provider.  The two peak-adjacent links
  are left open (either may be the path's single p2p crossing).
  Paths are processed in order of peak rank, so inferences made by the
  largest networks take precedence.
* **S6_FOLD** — valley-free constraint propagation to fixpoint: in any
  path, once a link descends (or peers), every later link descends;
  while a link ascends (or peers), every earlier link ascends.
* **S7_STUB** — an AS that never appears to transit (transit degree 0)
  is the customer on its unclassified links.
* **S8_PROVIDERLESS** — a non-clique AS with no inferred provider gets
  one: the highest-ranked neighbor on an unclassified link
  (reachability assumption).
* **S9_REMAINING_P2P** — everything still unclassified is p2p.

Provider cycles are refused at every step, and every conflicting vote
is recorded for diagnostics rather than silently dropped.
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass, field
from itertools import compress
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

try:  # optional: vectorized corpus passes (pure-Python fallbacks below)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

from repro import perf
from repro.core.clique import CliqueResult, infer_clique
from repro.core.paths import PathSet
from repro.graph.bitset import ClosureBitsets
from repro.graph.index import DenseIndex
from repro.relationships import Relationship, canonical_pair


class Step(enum.Enum):
    """Attribution tag: which pipeline stage labeled a link."""

    S2B_SIBLING = "sibling"
    S3_CLIQUE = "clique"
    S4B_PARTIAL_VP = "partial VP"
    S5_TOPDOWN = "top-down"
    S6_FOLD = "valley-free fold"
    S7_STUB = "stub"
    S7B_GAP = "degree gap"
    S8_PROVIDERLESS = "provider-less"
    S9_REMAINING_P2P = "remaining p2p"


@dataclass
class InferenceConfig:
    """Pipeline knobs; the disables exist for the E12 ablations."""

    clique_seed_size: int = 10
    clique_stop_after: int = 10
    # canonical AS pairs known to be under one organization (from WHOIS
    # org data, see repro.topology.orgs); labeled s2s before any other
    # inference, as CAIDA's sibling handling does
    known_siblings: FrozenSet[Tuple[int, int]] = frozenset()
    enable_clique: bool = True
    enable_poisoned_filter: bool = True
    enable_partial_vp: bool = True
    # a VP whose paths reach fewer than this fraction of all observed
    # origins is inferred to export only customer routes
    partial_vp_coverage: float = 0.5
    enable_topdown: bool = True
    enable_fold: bool = True
    enable_stub: bool = True
    enable_degree_gap: bool = True
    enable_providerless: bool = True
    max_fold_rounds: int = 10
    # S7B: a network this many times larger (by transit degree) than its
    # neighbor is its provider, not its peer — settlement-free peering
    # presumes comparable size.  Applied only when the smaller side is
    # itself small in absolute terms.
    gap_factor: float = 8.0
    gap_small_max: int = 12
    # fast-path engine: incremental (bitset) cycle detection and the
    # dirty-path fold.  Produces identical links/steps to the reference
    # implementations (see tests/test_fast_equivalence.py); False runs
    # the seed per-vote BFS + full-rescan fold for equivalence checks.
    fast: bool = True


@dataclass(frozen=True)
class InferredRelationship:
    """One labeled link.  For P2C, ``provider``/``customer`` are set."""

    a: int
    b: int
    relationship: Relationship
    step: Step
    provider: Optional[int] = None

    @property
    def customer(self) -> Optional[int]:
        if self.provider is None:
            return None
        return self.b if self.provider == self.a else self.a


@dataclass
class Conflict:
    """A vote that contradicted an existing inference (kept for audit)."""

    pair: Tuple[int, int]
    existing: Relationship
    existing_provider: Optional[int]
    attempted_provider: Optional[int]
    step: Step


class InferenceResult:
    """All inferred relationships plus provenance and diagnostics."""

    def __init__(
        self,
        paths: PathSet,
        clique: CliqueResult,
        config: InferenceConfig,
    ):
        self.paths = paths
        self.clique = clique
        self.config = config
        self._clique_set = set(clique.members)
        self._rel: Dict[Tuple[int, int], Relationship] = {}
        self._provider: Dict[Tuple[int, int], int] = {}
        self._step: Dict[Tuple[int, int], Step] = {}
        self.conflicts: List[Conflict] = []
        self.discarded_poisoned = 0
        # provider -> customers adjacency for cycle checks / cones
        self.customers: Dict[int, Set[int]] = {}
        self.providers: Dict[int, Set[int]] = {}
        self.peers: Dict[int, Set[int]] = {}
        self.siblings: Dict[int, Set[int]] = {}
        # --- fast-path state ---------------------------------------------
        # the shared dense ASN index (repro.graph) used by the cycle
        # bitsets, the fold link-state array, and the cone bitsets;
        # grown on demand so hand-built results (no _init_fast) work
        self.index = DenseIndex()
        # incremental transitive closure of the p2c DAG (cycle refusal)
        self._closure = ClosureBitsets()
        # corpus link index: canonical (a<<32|b) key -> link id, link
        # state per id (0 unknown, -1 peer, -2 sibling, >0 provider ASN),
        # and which paths each link appears on (built by _init_fast)
        self._key_lid: Optional[Dict[int, int]] = None
        self._lstate: Optional[List[int]] = None
        self._lpaths: List[List[int]] = []
        self._path_nodes: List[Tuple[int, ...]] = []
        self._path_lids: List[List[int]] = []
        self._path_pids: List[List[int]] = []
        self._np_pid_flat = None  # dense id per flat corpus position
        self._np_fold = None  # (lid, left, right, pos, off) per hop
        # fold bookkeeping: links whose state changed (append-only log),
        # the consumed prefix, paths awaiting a fold pass
        self._dirty_lids: List[int] = []
        self._fold_cursor = 0
        self._fold_pending: Set[int] = set()
        self._fold_primed = False

    # ------------------------------------------------------------------
    # fast-path index
    # ------------------------------------------------------------------

    def _asn_id(self, asn: int) -> int:
        """Dense id for ``asn``, assigning one on first sight."""
        idx = self.index.intern(asn)
        self._closure.ensure(len(self.index))
        return idx

    def _init_fast(self, paths: PathSet) -> None:
        """Index the corpus for the fast fold and cone passes.

        Assigns dense ids to every AS (sorted, for determinism), interns
        every corpus link behind an integer key, and records which paths
        each link appears on so the fold can reprocess only paths whose
        link states changed.
        """
        view = paths.numpy_view()
        if view is not None and self._init_fast_np(paths, view):
            return
        self.index = DenseIndex(paths.asns())
        self._closure.ensure(len(self.index))
        if 0 in self.index:
            # ASN 0 would collide with the "unknown" link-state encoding;
            # it never survives sanitization, so just skip the link index
            # (the reference fold/cone paths handle the corpus instead)
            return
        key_lid: Dict[int, int] = {}
        key_lid_item = key_lid.__getitem__
        key_lid_get = key_lid.get
        lpaths: List[List[int]] = []
        path_nodes: List[Tuple[int, ...]] = []
        path_lids: List[List[int]] = []
        path_pids: List[List[int]] = []
        ids_item = self.index.ids.__getitem__
        for pi, path in enumerate(paths):
            keys = [
                (a << 32) | b if a <= b else (b << 32) | a
                for a, b in zip(path, path[1:])
            ]
            try:
                # the hot case once every corpus link has an id: pure
                # C-level lookups
                lids = list(map(key_lid_item, keys))
            except KeyError:
                lids = []
                for key in keys:
                    lid = key_lid_get(key)
                    if lid is None:
                        lid = len(lpaths)
                        key_lid[key] = lid
                        lpaths.append([])
                    lids.append(lid)
            # a sanitized path has no repeated node, hence no repeated
            # link, so every lid gets this path exactly once
            for lid in lids:
                lpaths[lid].append(pi)
            path_nodes.append(path)
            path_lids.append(lids)
            path_pids.append(list(map(ids_item, path)))
        self._key_lid = key_lid
        self._lstate = [0] * len(lpaths)
        self._lpaths = lpaths
        self._path_nodes = path_nodes
        self._path_lids = path_lids
        self._path_pids = path_pids

    def _init_fast_np(self, paths: PathSet, view) -> bool:
        """Vectorized :meth:`_init_fast`.  Returns False to request the
        pure-Python fallback (ASNs outside the packable 32-bit range)."""
        flat, plen, off = view
        lo_asn, hi_asn = int(flat.min()), int(flat.max())
        if lo_asn < 0 or hi_asn >= 1 << 32:
            return False
        uasn, pid_flat = _np.unique(flat, return_inverse=True)
        self.index = DenseIndex.from_sorted(uasn.tolist())
        self._closure.ensure(len(self.index))
        if lo_asn == 0:
            # ASN 0 would collide with the "unknown" link-state encoding;
            # it never survives sanitization, so just skip the link index
            # (the reference fold/cone paths handle the corpus instead)
            return True
        a, b = flat[:-1], flat[1:]
        valid = _np.ones(len(flat) - 1, dtype=bool)
        valid[off[1:-1] - 1] = False
        lo = _np.minimum(a, b)[valid].astype(_np.uint64)
        hi = _np.maximum(a, b)[valid].astype(_np.uint64)
        keys = (lo << _np.uint64(32)) | hi
        ukeys, lid_hop = _np.unique(keys, return_inverse=True)
        n_links = len(ukeys)
        self._key_lid = {k: i for i, k in enumerate(ukeys.tolist())}
        self._lstate = [0] * n_links
        # per-path slices of the flat lid / pid streams
        link_off = _np.empty(len(plen) + 1, dtype=_np.int64)
        link_off[0] = 0
        _np.cumsum(plen - 1, out=link_off[1:])
        lbounds = link_off.tolist()
        lid_list = lid_hop.tolist()
        path_lids = [
            lid_list[s:e] for s, e in zip(lbounds, lbounds[1:])
        ]
        pbounds = off.tolist()
        pid_list = pid_flat.tolist()
        path_pids = [
            pid_list[s:e] for s, e in zip(pbounds, pbounds[1:])
        ]
        # lpaths: hops grouped by lid (group-internal order is free)
        path_of_hop = _np.repeat(
            _np.arange(len(plen), dtype=_np.int64), plen - 1
        )
        grouped = path_of_hop[_np.argsort(lid_hop)].tolist()
        group_off = _np.empty(n_links + 1, dtype=_np.int64)
        group_off[0] = 0
        _np.cumsum(
            _np.bincount(lid_hop, minlength=n_links), out=group_off[1:]
        )
        gbounds = group_off.tolist()
        lpaths = [grouped[s:e] for s, e in zip(gbounds, gbounds[1:])]
        self._lpaths = lpaths
        self._path_nodes = list(paths.paths)
        self._path_lids = path_lids
        self._path_pids = path_pids
        self._np_pid_flat = pid_flat
        if bool((plen >= 2).all()):
            # hop-level view for the fold's vectorized candidate filter
            pos = _np.arange(len(lid_hop), dtype=_np.int64)
            pos -= _np.repeat(link_off[:-1], plen - 1)
            self._np_fold = (lid_hop, a[valid], b[valid], pos, link_off)
        return True

    def _mark_link(self, a: int, b: int, state: int) -> None:
        """Record a link's new fold state and flag it dirty."""
        if self._key_lid is None:
            return
        key = (a << 32) | b if a <= b else (b << 32) | a
        lid = self._key_lid.get(key)
        if lid is None:
            return  # link outside the indexed corpus: no path reads it
        assert self._lstate is not None
        self._lstate[lid] = state
        self._dirty_lids.append(lid)

    def _note_p2c(self, provider: int, customer: int) -> None:
        """Maintain the transitive-closure bitsets on an accepted edge."""
        pid = self._asn_id(provider)
        cid = self._asn_id(customer)
        self._closure.add_edge(pid, cid)

    # ------------------------------------------------------------------
    # mutation (used by the engine)
    # ------------------------------------------------------------------

    def _would_cycle(self, provider: int, customer: int) -> bool:
        """Would ``provider→customer`` close a loop in the p2c DAG?"""
        if provider == customer:
            return True
        if self.config.fast:
            pid = self._asn_id(provider)
            cid = self._asn_id(customer)
            return self._closure.descends(cid, pid)
        return self._would_cycle_bfs(provider, customer)

    def _would_cycle_bfs(self, provider: int, customer: int) -> bool:
        """Reference per-vote BFS over the customer adjacency (the seed
        implementation; kept for the fast-path equivalence tests)."""
        if provider == customer:
            return True
        queue = deque([customer])
        seen = {customer}
        while queue:
            node = queue.popleft()
            for nxt in self.customers.get(node, ()):
                if nxt == provider:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def set_p2c(self, provider: int, customer: int, step: Step) -> bool:
        """Record ``provider→customer``; False if refused or conflicting.

        Clique members are transit-free by assumption: any vote that
        would give one a provider is refused (and logged)."""
        pair = canonical_pair(provider, customer)
        if customer in self._clique_set:
            self.conflicts.append(
                Conflict(
                    pair=pair,
                    existing=Relationship.P2P,
                    existing_provider=None,
                    attempted_provider=provider,
                    step=step,
                )
            )
            return False
        existing = self._rel.get(pair)
        if existing is not None:
            if (
                existing is Relationship.P2C
                and self._provider[pair] == provider
            ):
                return True  # agreeing vote
            self.conflicts.append(
                Conflict(
                    pair=pair,
                    existing=existing,
                    existing_provider=self._provider.get(pair),
                    attempted_provider=provider,
                    step=step,
                )
            )
            return False
        if self._would_cycle(provider, customer):
            self.conflicts.append(
                Conflict(
                    pair=pair,
                    existing=Relationship.P2C,
                    existing_provider=None,
                    attempted_provider=provider,
                    step=step,
                )
            )
            return False
        self._rel[pair] = Relationship.P2C
        self._provider[pair] = provider
        self._step[pair] = step
        self.customers.setdefault(provider, set()).add(customer)
        self.providers.setdefault(customer, set()).add(provider)
        self._note_p2c(provider, customer)
        self._mark_link(provider, customer, provider)
        return True

    def set_p2p(self, a: int, b: int, step: Step) -> bool:
        """Record a peer link; False if the pair is already labeled c2p."""
        pair = canonical_pair(a, b)
        existing = self._rel.get(pair)
        if existing is not None:
            if existing is Relationship.P2P:
                return True
            self.conflicts.append(
                Conflict(
                    pair=pair,
                    existing=existing,
                    existing_provider=self._provider.get(pair),
                    attempted_provider=None,
                    step=step,
                )
            )
            return False
        self._rel[pair] = Relationship.P2P
        self._step[pair] = step
        self.peers.setdefault(a, set()).add(b)
        self.peers.setdefault(b, set()).add(a)
        self._mark_link(a, b, -1)
        return True

    def set_s2s(self, a: int, b: int, step: Step) -> bool:
        """Record a sibling link (always applied first, so never conflicts
        unless the caller mixes orders)."""
        pair = canonical_pair(a, b)
        existing = self._rel.get(pair)
        if existing is not None:
            return existing is Relationship.S2S
        self._rel[pair] = Relationship.S2S
        self._step[pair] = step
        self.siblings.setdefault(a, set()).add(b)
        self.siblings.setdefault(b, set()).add(a)
        self._mark_link(a, b, -2)
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        return self._rel.get(canonical_pair(a, b))

    def links(self) -> List[Tuple[int, int]]:
        """All labeled links as canonical pairs."""
        return list(self._rel)

    def provider_of(self, a: int, b: int) -> Optional[int]:
        pair = canonical_pair(a, b)
        if self._rel.get(pair) is not Relationship.P2C:
            return None
        return self._provider[pair]

    def step_of(self, a: int, b: int) -> Optional[Step]:
        return self._step.get(canonical_pair(a, b))

    def __len__(self) -> int:
        return len(self._rel)

    def __iter__(self) -> Iterator[InferredRelationship]:
        for pair, rel in self._rel.items():
            provider = self._provider.get(pair)
            yield InferredRelationship(
                a=pair[0],
                b=pair[1],
                relationship=rel,
                step=self._step[pair],
                provider=provider,
            )

    def counts_by_relationship(self) -> Dict[Relationship, int]:
        counts: Dict[Relationship, int] = {}
        for rel in self._rel.values():
            counts[rel] = counts.get(rel, 0) + 1
        return counts

    def counts_by_step(self) -> Dict[Step, int]:
        counts: Dict[Step, int] = {}
        for step in self._step.values():
            counts[step] = counts.get(step, 0) + 1
        return counts

    def complex_candidates(self) -> Dict[Tuple[int, int], int]:
        """Links with contradicting votes: candidates for *complex*
        relationships (hybrid/partial transit), which the paper flags
        as future work.  Returns pair → number of conflicting votes."""
        counts: Dict[Tuple[int, int], int] = {}
        for conflict in self.conflicts:
            counts[conflict.pair] = counts.get(conflict.pair, 0) + 1
        return counts

    def providers_of_asn(self, asn: int) -> Set[int]:
        return set(self.providers.get(asn, ()))

    def customers_of_asn(self, asn: int) -> Set[int]:
        return set(self.customers.get(asn, ()))

    def peers_of_asn(self, asn: int) -> Set[int]:
        return set(self.peers.get(asn, ()))


# link direction codes used while folding along a path
_UNKNOWN, _UP, _DOWN, _PEERLINK, _SIBLINK = 0, 1, 2, 3, 4


class _Engine:
    """Runs the pipeline; kept separate so the result object stays lean."""

    def __init__(self, paths: PathSet, config: InferenceConfig):
        self.config = config
        self.raw_paths = paths

    def run(self) -> InferenceResult:
        config = self.config
        with perf.stage("clique"):
            clique = (
                infer_clique(
                    self.raw_paths,
                    seed_size=config.clique_seed_size,
                    stop_after=config.clique_stop_after,
                )
                if config.enable_clique
                else CliqueResult(members=[], seed_members=[], added_members=[])
            )

        paths = self.raw_paths
        discarded = 0
        if config.enable_poisoned_filter and clique.members:
            with perf.stage("filter-poisoned"):
                paths, discarded = _discard_poisoned(paths, clique.member_set)

        result = InferenceResult(paths=paths, clique=clique, config=config)
        result.discarded_poisoned = discarded
        if config.fast:
            with perf.stage("index"):
                result._init_fast(paths)

        with perf.stage("rank"):
            # position in transit-degree order, not a graph id space
            rank = DenseIndex.from_ordered(paths.ranked_asns()).ids
        perf.counter("paths", len(paths))

        if config.known_siblings:
            with perf.stage("siblings"):
                _step_siblings(result, paths, config)
        if config.enable_clique:
            with perf.stage("clique-peers"):
                _step_clique(result, paths, clique)
        if config.enable_partial_vp:
            with perf.stage("partial-vp"):
                _step_partial_vp(result, paths, config)
        if config.enable_topdown:
            with perf.stage("topdown"):
                _step_topdown(result, paths, rank)
        if config.enable_fold:
            with perf.stage("fold"):
                _step_fold(result, paths)
        if config.enable_stub:
            with perf.stage("stub"):
                _step_stub(result, paths)
            if config.enable_fold:
                with perf.stage("fold"):
                    _step_fold(result, paths)
        if config.enable_degree_gap:
            with perf.stage("degree-gap"):
                _step_degree_gap(result, paths, config)
            if config.enable_fold:
                with perf.stage("fold"):
                    _step_fold(result, paths)
        if config.enable_providerless:
            with perf.stage("providerless"):
                _step_providerless(result, paths, rank)
            if config.enable_fold:
                with perf.stage("fold"):
                    _step_fold(result, paths)
        with perf.stage("remaining-p2p"):
            _step_remaining_p2p(result, paths)
        perf.counter("links", len(result))
        return result


def infer_relationships(
    paths: PathSet, config: Optional[InferenceConfig] = None
) -> InferenceResult:
    """Run the full ASRank pipeline over a sanitized path corpus."""
    with perf.stage("infer"):
        return _Engine(paths, config or InferenceConfig()).run()


# ---------------------------------------------------------------------------
# pipeline steps
# ---------------------------------------------------------------------------


def _discard_poisoned(
    paths: PathSet, clique: Set[int]
) -> Tuple[PathSet, int]:
    """Drop paths that traverse the clique illegally (S4).

    A clean valley-free path crosses the top of the hierarchy at most
    once, so clique members must appear as one contiguous run of length
    ≤ 2.  Anything else is a poisoned announcement or a route leak.
    """
    view = paths.numpy_view()
    if view is not None:
        flat, plen, off = view
        member = _np.isin(flat, _np.fromiter(clique, dtype=_np.int64,
                                             count=len(clique)))
        counts = _np.add.reduceat(member, off[:-1])
        bad = counts > 2
        twos = _np.flatnonzero(counts == 2)
        if len(twos):
            # the two clique hops must be adjacent; compare the flat
            # positions of each such path's first and second member hop
            member_idx = _np.flatnonzero(member)
            member_path = _np.searchsorted(off[1:], member_idx,
                                           side="right")
            starts = _np.searchsorted(member_path, twos)
            gap = member_idx[starts + 1] - member_idx[starts]
            bad[twos[gap != 1]] = True
        discarded = int(bad.sum())
        if not discarded:
            return paths, 0  # keep the original object (and its caches)
        keep = ~bad
        kept = list(compress(paths.paths, keep.tolist()))
        out = paths.filtered(kept)
        # seed the filtered corpus's flat view from the parent's by
        # masking, sparing the index stage a full rebuild
        new_plen = plen[keep]
        new_off = _np.empty(len(new_plen) + 1, dtype=_np.int64)
        new_off[0] = 0
        _np.cumsum(new_plen, out=new_off[1:])
        out._np_view = (flat[_np.repeat(keep, plen)], new_plen, new_off)
        return out, discarded

    kept: List[Tuple[int, ...]] = []
    kept_append = kept.append
    isdisjoint = clique.isdisjoint
    discarded = 0
    for path in paths:
        if isdisjoint(path):
            kept_append(path)
            continue
        positions = [i for i, asn in enumerate(path) if asn in clique]
        if len(positions) > 2:
            discarded += 1
            continue
        if len(positions) == 2 and positions[1] - positions[0] != 1:
            discarded += 1
            continue
        kept_append(path)
    if not discarded:
        return paths, 0  # keep the original object (and its caches)
    return paths.filtered(kept), discarded


def _step_siblings(
    result: InferenceResult, paths: PathSet, config: InferenceConfig
) -> None:
    """S2B: links between ASes of one organization are siblings.

    Applied before everything else, as CAIDA does with WHOIS org data —
    a sibling link must never be mistaken for transit or peering, and
    it carries no valley-free information (siblings exchange all
    routes in both directions)."""
    for a, b in sorted(paths.links()):
        if canonical_pair(a, b) in config.known_siblings:
            result.set_s2s(a, b, Step.S2B_SIBLING)


def _step_clique(
    result: InferenceResult, paths: PathSet, clique: CliqueResult
) -> None:
    """S3: adjacent clique members are peers."""
    members = clique.member_set
    for a, b in paths.links():
        if a in members and b in members:
            result.set_p2p(a, b, Step.S3_CLIQUE)


def _step_partial_vp(
    result: InferenceResult, paths: PathSet, config: InferenceConfig
) -> None:
    """S4B: paths from partial-feed VPs are pure customer chains.

    Some vantage points export only the routes they would send a peer:
    customer-learned and originated ones.  Such a VP is recognizable
    because its paths reach only a small fraction of all observed
    origins.  Every path it exports descends from the first hop, so
    every link on it is p2c with the left endpoint as provider.
    """
    origins_total = {path[-1] for path in paths}
    if not origins_total:
        return
    by_vp: Dict[int, Set[int]] = {}
    for path in paths:
        by_vp.setdefault(path[0], set()).add(path[-1])
    partial_vps = {
        vp
        for vp, origins in by_vp.items()
        if len(origins) < config.partial_vp_coverage * len(origins_total)
    }
    for path in paths:
        if path[0] not in partial_vps:
            continue
        for j in range(len(path) - 1):
            if not result.set_p2c(path[j], path[j + 1], Step.S4B_PARTIAL_VP):
                break


def _step_topdown(
    result: InferenceResult, paths: PathSet, rank: Dict[int, int]
) -> None:
    """S5: peak-relative sweep, highest peaks first."""
    big = 1 << 30
    lstate = result._lstate
    path_lids = result._path_lids

    order: List[Tuple[int, Tuple[int, ...], int, int]] = []
    if result._np_pid_flat is not None and lstate is not None:
        # vectorized peak scan: pack (rank, position) so a single
        # segmented minimum yields both the peak rank and its first
        # index per path (first minimum wins, like the reference scan)
        flat, plen, off = paths.numpy_view()
        rank_arr = _np.full(len(result.index), big, dtype=_np.int64)
        for asn, idx in result.index.ids.items():
            rank_arr[idx] = rank.get(asn, big)
        pos = _np.arange(len(flat), dtype=_np.int64)
        pos -= _np.repeat(off[:-1], plen)
        packed = (rank_arr[result._np_pid_flat] << 20) | pos
        mins = _np.minimum.reduceat(packed, off[:-1])
        order = list(
            zip(
                (mins >> 20).tolist(),
                paths.paths,
                (mins & ((1 << 20) - 1)).tolist(),
                range(len(plen)),
            )
        )
    else:
        order_append = order.append
        if lstate is not None:
            # dense-id rank array: the peak scan runs in C via
            # map/min/index (first minimum wins, like the reference)
            rank_arr_list = [big] * len(result.index)
            for asn, idx in result.index.ids.items():
                rank_arr_list[idx] = rank.get(asn, big)
            rank_item = rank_arr_list.__getitem__
            for pi, path in enumerate(paths):
                ranks = list(map(rank_item, result._path_pids[pi]))
                best_rank = min(ranks)
                order_append((best_rank, path, ranks.index(best_rank), pi))
        else:
            rank_get = rank.get
            for pi, path in enumerate(paths):
                best, best_rank = 0, rank_get(path[0], big)
                for i, asn in enumerate(path):
                    r = rank_get(asn, big)
                    if r < best_rank:
                        best, best_rank = i, r
                order_append((best_rank, path, best, pi))
    order.sort()
    set_p2c = result.set_p2c
    for _, path, i, pi in order:
        # a link already labeled with the vote's provider is an agreeing
        # vote (a guaranteed no-op), any other label is a refusal: both
        # are readable straight off the link-state array
        lids = path_lids[pi] if lstate is not None else None
        # descend right of the peak: path[j] provides for path[j+1];
        # stop at the first contradiction — the path's shape no longer
        # matches our peak assumption beyond that point
        for j in range(i + 1, len(path) - 1):
            if lids is not None:
                s = lstate[lids[j]]
                if s == path[j]:
                    continue
                if s != 0:
                    break
            if not set_p2c(path[j], path[j + 1], Step.S5_TOPDOWN):
                break
        # descend left of the peak: path[j+1] provides for path[j]
        for j in range(i - 2, -1, -1):
            if lids is not None:
                s = lstate[lids[j]]
                if s == path[j + 1]:
                    continue
                if s != 0:
                    break
            if not set_p2c(path[j + 1], path[j], Step.S5_TOPDOWN):
                break


def _link_state(result: InferenceResult, left: int, right: int) -> int:
    rel = result.relationship(left, right)
    if rel is None:
        return _UNKNOWN
    if rel is Relationship.P2P:
        return _PEERLINK
    if rel is Relationship.S2S:
        return _SIBLINK
    provider = result.provider_of(left, right)
    return _DOWN if provider == left else _UP


def _step_fold(result: InferenceResult, paths: PathSet) -> None:
    """S6: valley-free constraint propagation to fixpoint.

    In collector order a clean path ascends, crosses at most one peer
    link, then descends.  So any link after a DOWN/PEER link must be
    DOWN, and any link before an UP/PEER link must be UP.
    """
    if result.config.fast and result._lstate is not None:
        _step_fold_fast(result)
    else:
        _step_fold_reference(result, paths)


def _step_fold_fast(result: InferenceResult) -> None:
    """Dirty-path fold: reprocess only paths whose link states changed.

    A path whose link states are unchanged since its last fold pass is a
    guaranteed no-op: every vote it would cast was already cast and
    either succeeded (so a state changed — contradiction) or was refused
    for a reason that cannot un-happen (clique membership is fixed, and
    the p2c DAG only grows, so cycle refusals are permanent).  Dropping
    those paths preserves the exact label/step outcome of the full
    rescan; only duplicate refusal entries in ``conflicts`` are elided.

    Within a round, paths run in corpus order, and a vote cast at path
    ``i`` re-queues any dirtied path ``j > i`` into the *same* round —
    exactly when the reference full scan would reach ``j`` and see the
    new state.  Paths ``j <= i`` go to the next round, as they would be
    rescanned then.
    """
    lstate = result._lstate
    assert lstate is not None
    path_nodes = result._path_nodes
    path_lids = result._path_lids
    lpaths = result._lpaths
    dirty = result._dirty_lids
    set_p2c = result.set_p2c
    n_paths = len(path_nodes)

    pending = result._fold_pending
    if not result._fold_primed:
        nfold = result._np_fold
        if nfold is not None and not result.siblings:
            # vectorized candidate filter: with no sibling links in the
            # corpus, a path can vote forward iff some unknown hop lies
            # after a DOWN/PEER hop, and backward iff some unknown hop
            # lies before an UP/PEER hop — everything else is a no-op
            lid_hop, left, right, hop_pos, link_off = nfold
            s = _np.array(lstate, dtype=_np.int64)[lid_hop]
            unknown = s == 0
            pending = set()
            if unknown.any():
                far = 1 << 40
                peer = s == -1
                marker_f = peer | (s == left)
                marker_b = peer | (s == right)
                starts = link_off[:-1]
                first_mf = _np.minimum.reduceat(
                    _np.where(marker_f, hop_pos, far), starts
                )
                last_unk = _np.maximum.reduceat(
                    _np.where(unknown, hop_pos, -1), starts
                )
                last_mb = _np.maximum.reduceat(
                    _np.where(marker_b, hop_pos, -1), starts
                )
                first_unk = _np.minimum.reduceat(
                    _np.where(unknown, hop_pos, far), starts
                )
                cand = (last_unk > first_mf) | (first_unk < last_mb)
                pending = set(_np.flatnonzero(cand).tolist())
        else:
            # only paths that still carry an unknown link can cast a
            # vote (scans vote on unknown states alone)
            pending = set()
            for lid, state in enumerate(lstate):
                if state == 0:
                    pending.update(lpaths[lid])
        result._fold_primed = True
        result._fold_cursor = len(dirty)
    else:
        cursor = result._fold_cursor
        while cursor < len(dirty):
            pending.update(lpaths[dirty[cursor]])
            cursor += 1
        result._fold_cursor = cursor

    def scan(i: int) -> None:
        """One forward+backward constraint pass over path ``i``."""
        nodes = path_nodes[i]
        states = [lstate[l] for l in path_lids[i]]
        # forward: after the first DOWN or PEER everything descends
        # (sibling links reset the constraint, as in the reference)
        seen_descent = False
        for j, s in enumerate(states):
            if s == -2:
                seen_descent = False
                continue
            if s == 0:
                if seen_descent and set_p2c(
                    nodes[j], nodes[j + 1], Step.S6_FOLD
                ):
                    states[j] = nodes[j]
                continue
            if s == -1 or s == nodes[j]:
                seen_descent = True
        # backward: before the last UP or PEER everything ascends
        seen_ascent = False
        for j in range(len(states) - 1, -1, -1):
            s = states[j]
            if s == -2:
                seen_ascent = False
                continue
            if s == 0:
                if seen_ascent and set_p2c(
                    nodes[j + 1], nodes[j], Step.S6_FOLD
                ):
                    states[j] = nodes[j + 1]
                continue
            if s == -1 or s == nodes[j + 1]:
                seen_ascent = True

    for _ in range(result.config.max_fold_rounds):
        if not pending:
            break
        next_pending: Set[int] = set()
        if len(pending) == n_paths:
            # full round: plain ascending iteration already visits every
            # freshly dirtied later path, so no queue is needed
            for i in range(n_paths):
                watermark = len(dirty)
                scan(i)
                while watermark < len(dirty):
                    for pj in lpaths[dirty[watermark]]:
                        if pj <= i:
                            next_pending.add(pj)
                    watermark += 1
        else:
            # sparse round: min-heap in corpus order; a vote cast at path
            # i re-queues dirtied paths j > i into this same round (the
            # reference full scan would reach them with the new state),
            # while paths j <= i wait for the next round
            heap = sorted(pending)
            in_heap = set(heap)
            while heap:
                i = heapq.heappop(heap)
                in_heap.discard(i)
                watermark = len(dirty)
                scan(i)
                while watermark < len(dirty):
                    for pj in lpaths[dirty[watermark]]:
                        if pj > i:
                            if pj not in in_heap:
                                in_heap.add(pj)
                                heapq.heappush(heap, pj)
                        else:
                            next_pending.add(pj)
                    watermark += 1
        pending = next_pending
        result._fold_cursor = len(dirty)
    result._fold_pending = pending


def _step_fold_reference(result: InferenceResult, paths: PathSet) -> None:
    """Full-rescan fold (the seed implementation, kept for equivalence)."""
    for _ in range(result.config.max_fold_rounds):
        changed = False
        for path in paths:
            states = [
                _link_state(result, path[j], path[j + 1])
                for j in range(len(path) - 1)
            ]
            # forward: after the first DOWN or PEER everything descends —
            # but a sibling link is a wildcard that resets the constraint
            # (siblings re-export anything in any direction)
            seen_descent = False
            for j, state in enumerate(states):
                if state == _SIBLINK:
                    seen_descent = False
                    continue
                if seen_descent and state == _UNKNOWN:
                    if result.set_p2c(path[j], path[j + 1], Step.S6_FOLD):
                        states[j] = _DOWN
                        changed = True
                if state in (_DOWN, _PEERLINK):
                    seen_descent = True
            # backward: before the last UP or PEER everything ascends
            seen_ascent = False
            for j in range(len(states) - 1, -1, -1):
                state = states[j]
                if state == _SIBLINK:
                    seen_ascent = False
                    continue
                if seen_ascent and state == _UNKNOWN:
                    if result.set_p2c(path[j + 1], path[j], Step.S6_FOLD):
                        states[j] = _UP
                        changed = True
                if state in (_UP, _PEERLINK):
                    seen_ascent = True
        if not changed:
            return


def _step_stub(result: InferenceResult, paths: PathSet) -> None:
    """S7: a stub attached to a clique member is its customer.

    Restricted to the clique on purpose: a tier-1 does not peer with a
    network that never transits, but two mid-size networks where one
    merely *looks* transit-free from the vantage points might well be
    peers — the paper keeps this heuristic narrow for that reason.
    """
    clique = result.clique.member_set
    for a, b in sorted(paths.links()):
        if result.relationship(a, b) is not None:
            continue
        ta, tb = paths.transit_degree(a), paths.transit_degree(b)
        if ta == 0 and b in clique:
            result.set_p2c(b, a, Step.S7_STUB)
        elif tb == 0 and a in clique:
            result.set_p2c(a, b, Step.S7_STUB)


def _step_degree_gap(
    result: InferenceResult, paths: PathSet, config: InferenceConfig
) -> None:
    """S7B: vastly mismatched neighbors are provider and customer.

    Settlement-free peering presumes roughly comparable networks; when
    one side's transit degree dwarfs the other's *and* the smaller side
    is small in absolute terms, the link is transit.  This reconstructs
    the paper's stub↔clique reasoning in a degree-ratio form (a clique
    member does not peer with a regional stub)."""
    for a, b in sorted(paths.links()):
        if result.relationship(a, b) is not None:
            continue
        ta, tb = paths.transit_degree(a), paths.transit_degree(b)
        big, small = (a, b) if ta >= tb else (b, a)
        t_big, t_small = max(ta, tb), min(ta, tb)
        if t_small > config.gap_small_max:
            continue
        if t_big >= config.gap_factor * max(1, t_small):
            result.set_p2c(big, small, Step.S7B_GAP)


def _step_providerless(
    result: InferenceResult, paths: PathSet, rank: Dict[int, int]
) -> None:
    """S8: give every provider-less non-clique AS its best provider."""
    clique = result.clique.member_set
    neighbors = paths.node_neighbors
    for asn in paths.ranked_asns():
        if asn in clique or result.providers.get(asn):
            continue
        open_neighbors = [
            n
            for n in neighbors.get(asn, ())
            if result.relationship(asn, n) is None
        ]
        if not open_neighbors:
            continue
        open_neighbors.sort(key=lambda n: (rank.get(n, 1 << 30), n))
        for candidate in open_neighbors:
            if result.set_p2c(candidate, asn, Step.S8_PROVIDERLESS):
                break


def _step_remaining_p2p(result: InferenceResult, paths: PathSet) -> None:
    """S9: unclassified links default to peer-to-peer."""
    for a, b in sorted(paths.links()):
        if result.relationship(a, b) is None:
            result.set_p2p(a, b, Step.S9_REMAINING_P2P)
