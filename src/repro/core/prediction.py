"""Path prediction from inferred relationships.

A classic end-to-end check on a relationship inference (used since
Gao 2001): rebuild the routing system *from the inferred labels*,
re-run policy routing, and compare the predicted AS paths against the
observed ones.  Good relationships predict real paths; wrong labels
send predicted routes through links BGP would never use.

The predictor compiles any inference result (ASRank or a baseline)
straight into the shared columnar :class:`~repro.graph.relgraph.RelGraph`
(:func:`rel_graph_from_inference`) and re-derives every observed
(vantage point, origin) pair through the batched Gao–Rexford engine —
all origins of one report propagate in :func:`propagate_batch` blocks
over flat arrays instead of one serial sweep per origin.  The batched
engine is bit-identical to the reference sweeps, so reports are
unchanged from the serial implementation; only the wall clock moves.

:func:`graph_from_inference` (the original :class:`ASGraph`
materializer) is kept for callers that want a mutable topology-model
view of an inference; the predictor itself no longer builds one.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bgp.propagation import GraphIndex, propagate_batch
from repro.graph.index import DenseIndex
from repro.graph.relgraph import RelGraph
from repro.relationships import Relationship
from repro.topology.model import AS, ASGraph, ASType, TopologyError


def graph_from_inference(inference) -> ASGraph:
    """Materialize an :class:`ASGraph` from inferred relationships.

    ``inference`` is anything with ``links()`` / ``relationship()`` /
    ``provider_of()``.  Inferred p2c edges that would close a provider
    cycle (possible for baseline algorithms, which lack a cycle guard)
    are demoted to p2p rather than dropped, so the predicted topology
    keeps every adjacency.
    """
    graph = ASGraph()
    asns: Set[int] = set()
    for a, b in inference.links():
        asns.add(a)
        asns.add(b)
    for asn in sorted(asns):
        graph.add_as(AS(asn=asn, type=ASType.SMALL_TRANSIT))
    for a, b in sorted(inference.links()):
        rel = inference.relationship(a, b)
        if rel is Relationship.P2C:
            provider = inference.provider_of(a, b)
            customer = b if provider == a else a
            try:
                graph.add_p2c(provider, customer)
            except TopologyError:
                graph.add_p2p(a, b)  # cycle: keep the adjacency as peering
        elif rel is Relationship.S2S:
            graph.add_s2s(a, b)
        else:
            graph.add_p2p(a, b)
    return graph


def rel_graph_from_inference(inference) -> RelGraph:
    """Compile inferred relationships straight into a :class:`RelGraph`.

    Same semantics as routing over :func:`graph_from_inference` — the
    id space is exactly the link endpoints, links are applied in sorted
    order, a p2c edge that would close a provider cycle is demoted to
    p2p, and sibling links merge into the peer adjacency (siblings
    route as peers) — without materializing per-AS objects or a
    mutable graph in between.
    """
    asns: Set[int] = set()
    for a, b in inference.links():
        asns.add(a)
        asns.add(b)
    index = DenseIndex(asns)
    ids = index.ids
    n = len(index)
    providers: List[List[int]] = [[] for _ in range(n)]
    customers: List[List[int]] = [[] for _ in range(n)]
    peers: List[List[int]] = [[] for _ in range(n)]

    def closes_cycle(provider_id: int, customer_id: int) -> bool:
        # same check as ASGraph.add_p2c: the edge closes a provider
        # cycle iff the provider is already reachable from the customer
        # over the customer edges added so far
        queue = deque([customer_id])
        seen = {customer_id}
        while queue:
            node = queue.popleft()
            if node == provider_id:
                return True
            for nxt in customers[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    for a, b in sorted(inference.links()):
        rel = inference.relationship(a, b)
        if rel is Relationship.P2C:
            provider = inference.provider_of(a, b)
            customer = b if provider == a else a
            prov_id, cust_id = ids[provider], ids[customer]
            if closes_cycle(prov_id, cust_id):
                peers[ids[a]].append(ids[b])
                peers[ids[b]].append(ids[a])
            else:
                customers[prov_id].append(cust_id)
                providers[cust_id].append(prov_id)
        else:  # p2p and s2s both route as peering links
            peers[ids[a]].append(ids[b])
            peers[ids[b]].append(ids[a])
    for rows in (providers, customers, peers):
        for row in rows:
            row.sort()
    return RelGraph(index, providers, customers, peers)


@dataclass
class PredictionReport:
    """Aggregate accuracy of predicted paths versus observed paths."""

    compared: int = 0
    exact: int = 0  # predicted path identical to the observed one
    same_length: int = 0  # lengths agree (path diversity tolerated)
    unreachable: int = 0  # prediction found no route where one was seen

    @property
    def exact_rate(self) -> float:
        return self.exact / self.compared if self.compared else 0.0

    @property
    def length_rate(self) -> float:
        return self.same_length / self.compared if self.compared else 0.0

    @property
    def reachability(self) -> float:
        if not self.compared:
            return 0.0
        return 1.0 - self.unreachable / self.compared


def predict_paths(
    inference,
    observations: Iterable[Tuple[int, ...]],
    max_origins: Optional[int] = None,
) -> PredictionReport:
    """Score ``inference`` by re-deriving the observed paths.

    ``observations`` are collector-order paths (VP first, origin last);
    for each (VP, origin) pair, policy routing runs over the inferred
    graph and the predicted path is compared with the observed one.
    Each (VP, origin) pair is judged once (the first observation wins),
    and ``max_origins`` bounds the propagation work.  All origins
    propagate through the batched engine in one pass.
    """
    index = GraphIndex(rel=rel_graph_from_inference(inference))

    by_origin: Dict[int, Dict[int, Tuple[int, ...]]] = {}
    for path in observations:
        if len(path) < 2:
            continue
        vp, origin = path[0], path[-1]
        if vp not in index.index or origin not in index.index:
            continue
        by_origin.setdefault(origin, {}).setdefault(vp, path)

    report = PredictionReport()
    origins = sorted(by_origin)
    if max_origins is not None:
        origins = origins[:max_origins]
    for origin, state in zip(origins, propagate_batch(index, origins)):
        for vp, observed in sorted(by_origin[origin].items()):
            predicted = state.path_from(index, index.index[vp])
            report.compared += 1
            if predicted is None:
                report.unreachable += 1
                continue
            if predicted == observed:
                report.exact += 1
                report.same_length += 1
            elif len(predicted) == len(observed):
                report.same_length += 1
    return report
