"""AS rank: ordering ASes by customer cone size.

asrank.caida.org orders ASes by the size of their provider/peer
observed customer cone, breaking ties by transit degree and then ASN.
This module produces that ranking together with the per-AS metrics the
paper's top-k tables report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.cone import CustomerCones
from repro.core.inference import InferenceResult
from repro.net.prefix import Prefix


@dataclass(frozen=True)
class ASRankEntry:
    """One row of the AS ranking."""

    rank: int
    asn: int
    cone_ases: int
    cone_prefixes: Optional[int]
    cone_addresses: Optional[int]
    transit_degree: int
    node_degree: int
    num_customers: int
    num_peers: int
    num_providers: int


def rank_ases(
    result: InferenceResult,
    cones: CustomerCones,
    limit: Optional[int] = None,
) -> List[ASRankEntry]:
    """Rank every observed AS by cone size (desc), transit degree, ASN."""
    paths = result.paths
    with_prefixes = cones.prefixes_by_asn is not None
    order = sorted(
        paths.asns(),
        key=lambda asn: (
            -cones.size_ases(asn),
            -paths.transit_degree(asn),
            asn,
        ),
    )
    if limit is not None:
        order = order[:limit]
    entries: List[ASRankEntry] = []
    for position, asn in enumerate(order, start=1):
        entries.append(
            ASRankEntry(
                rank=position,
                asn=asn,
                cone_ases=cones.size_ases(asn),
                cone_prefixes=cones.size_prefixes(asn) if with_prefixes else None,
                cone_addresses=cones.size_addresses(asn) if with_prefixes else None,
                transit_degree=paths.transit_degree(asn),
                node_degree=paths.node_degree(asn),
                num_customers=len(result.customers_of_asn(asn)),
                num_peers=len(result.peers_of_asn(asn)),
                num_providers=len(result.providers_of_asn(asn)),
            )
        )
    return entries
