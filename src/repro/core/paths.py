"""AS-path corpus and sanitization (the algorithm's stage 1).

The paper sanitizes raw BGP paths before inference: compress AS-path
prepending, discard paths with loops or reserved/private ASNs, and
splice out IXP route-server ASNs.  Every action is counted so the
sanitization table (experiment E11) can be regenerated.

The sanitized :class:`PathSet` also precomputes the two degree notions
the algorithm ranks ASes by:

* **node degree** — distinct neighbors in any path;
* **transit degree** — distinct neighbors across the positions where
  the AS appears *between* two other ASes, i.e. where it demonstrably
  provides transit.  Transit degree is the paper's primary ranking key
  because node degree conflates peering richness with transit size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import chain
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

try:  # optional: vectorized corpus passes (pure-Python fallbacks below)
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

# Reserved / private ASN space (RFC 6996, RFC 5398, AS_TRANS, 32-bit
# private).  Paths carrying these are measurement artifacts.
_RESERVED_RANGES: Tuple[Tuple[int, int], ...] = (
    (0, 0),
    (23456, 23456),  # AS_TRANS
    (64496, 64511),  # documentation
    (64512, 65534),  # 16-bit private use
    (65535, 65535),
    (65536, 65551),  # documentation (32-bit)
    (4200000000, 4294967295),  # 32-bit private use + reserved
)


def is_reserved_asn(asn: int) -> bool:
    """True for ASNs that must never appear in a clean public path."""
    for low, high in _RESERVED_RANGES:
        if low <= asn <= high:
            return True
    return False


@dataclass
class SanitizeStats:
    """Counters for every sanitization action (experiment E11)."""

    input_paths: int = 0
    prepending_compressed: int = 0  # paths that had prepending removed
    discarded_loops: int = 0
    discarded_reserved_asn: int = 0
    discarded_short: int = 0  # fewer than two hops after cleaning
    ixp_hops_removed: int = 0  # paths that had an IXP RS spliced out
    duplicates_merged: int = 0
    kept: int = 0

    def as_rows(self) -> List[Tuple[str, int]]:
        return [
            ("input paths", self.input_paths),
            ("prepending compressed", self.prepending_compressed),
            ("discarded: loop", self.discarded_loops),
            ("discarded: reserved ASN", self.discarded_reserved_asn),
            ("discarded: short", self.discarded_short),
            ("IXP hop removed", self.ixp_hops_removed),
            ("duplicates merged", self.duplicates_merged),
            ("kept (unique)", self.kept),
        ]


def compress_prepending(path: Sequence[int]) -> Tuple[int, ...]:
    """Collapse runs of the same ASN into a single hop."""
    out: List[int] = []
    for asn in path:
        if not out or out[-1] != asn:
            out.append(asn)
    return tuple(out)


def has_loop(path: Sequence[int]) -> bool:
    """True when any ASN appears more than once (after compression)."""
    return len(set(path)) != len(path)


class PathSet:
    """A deduplicated corpus of sanitized AS paths with degree indexes."""

    def __init__(
        self,
        paths: Iterable[Tuple[int, ...]],
        counts: Optional[Dict[Tuple[int, ...], int]] = None,
        stats: Optional[SanitizeStats] = None,
    ):
        self.paths: List[Tuple[int, ...]] = list(paths)
        self.counts: Dict[Tuple[int, ...], int] = counts or {
            p: 1 for p in self.paths
        }
        self.stats = stats or SanitizeStats(
            input_paths=len(self.paths), kept=len(self.paths)
        )
        self._node_neighbors: Optional[Dict[int, Set[int]]] = None
        self._transit_neighbors: Optional[Dict[int, Set[int]]] = None
        # a PathSet is immutable after construction, so the corpus-wide
        # scans below are computed once and cached (callers treat the
        # returned collections as read-only)
        self._asns: Optional[Set[int]] = None
        self._links: Optional[Set[Tuple[int, int]]] = None
        self._ranked: Optional[List[int]] = None
        # flat numpy encoding of the corpus (``numpy_view``), shared by
        # every vectorized pass over the hops
        self._np_view: Optional[Tuple[object, object, object]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def sanitize(
        cls,
        raw_paths: Iterable[Sequence[int]],
        ixp_asns: FrozenSet[int] = frozenset(),
    ) -> "PathSet":
        """Apply the paper's stage-1 cleaning to raw observed paths."""
        stats = SanitizeStats()
        kept: List[Tuple[int, ...]] = []
        counts: Dict[Tuple[int, ...], int] = {}
        for raw in raw_paths:
            stats.input_paths += 1
            path = tuple(raw)
            if not path:
                stats.discarded_short += 1
                continue
            compressed = compress_prepending(path)
            if len(compressed) != len(path):
                stats.prepending_compressed += 1
            path = compressed
            if any(is_reserved_asn(asn) for asn in path):
                stats.discarded_reserved_asn += 1
                continue
            if ixp_asns and any(asn in ixp_asns for asn in path):
                path = tuple(asn for asn in path if asn not in ixp_asns)
                stats.ixp_hops_removed += 1
                path = compress_prepending(path)
            if has_loop(path):
                stats.discarded_loops += 1
                continue
            if len(path) < 2:
                stats.discarded_short += 1
                continue
            if path in counts:
                counts[path] += 1
                stats.duplicates_merged += 1
            else:
                counts[path] = 1
                kept.append(path)
        stats.kept = len(kept)
        return cls(kept, counts, stats)

    def filtered(self, keep: Iterable[Tuple[int, ...]]) -> "PathSet":
        """A new PathSet restricted to ``keep`` (shares the stats object)."""
        keep_list = list(keep)
        keep_set = set(keep_list)
        counts = {p: self.counts.get(p, 1) for p in keep_set}
        return PathSet(keep_list, counts, self.stats)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.paths)

    def __iter__(self) -> Iterator[Tuple[int, ...]]:
        return iter(self.paths)

    def numpy_view(self):
        """The corpus as flat numpy arrays ``(flat, plen, off)``.

        ``flat`` concatenates every path, ``plen`` holds each path's
        length and ``off`` the start offset of each path (with a final
        sentinel), so a vectorized pass can address any hop or window.
        Returns ``None`` when numpy is unavailable or the corpus is
        empty.  Built once and cached (the corpus is immutable).
        """
        if _np is None or not self.paths:
            return None
        if self._np_view is None:
            plen = _np.fromiter(
                (len(p) for p in self.paths),
                dtype=_np.int64,
                count=len(self.paths),
            )
            total = int(plen.sum())
            flat = _np.fromiter(
                chain.from_iterable(self.paths),
                dtype=_np.int64,
                count=total,
            )
            off = _np.empty(len(plen) + 1, dtype=_np.int64)
            off[0] = 0
            _np.cumsum(plen, out=off[1:])
            self._np_view = (flat, plen, off)
        return self._np_view

    def _hop_keys(self):
        """Packed ``(lo << 32) | hi`` key per hop, plus a validity mask
        (False where the "hop" would span two different paths)."""
        flat, plen, off = self.numpy_view()
        a, b = flat[:-1], flat[1:]
        valid = _np.ones(len(flat) - 1, dtype=bool)
        valid[off[1:-1] - 1] = False
        lo = _np.minimum(a, b).astype(_np.uint64)
        hi = _np.maximum(a, b).astype(_np.uint64)
        return (lo << _np.uint64(32)) | hi, valid

    def asns(self) -> Set[int]:
        if self._asns is None:
            if self.numpy_view() is not None:
                flat = self.numpy_view()[0]
                self._asns = set(map(int, _np.unique(flat).tolist()))
            else:
                self._asns = (
                    set().union(*self.paths) if self.paths else set()
                )
        return self._asns

    def links(self) -> Set[Tuple[int, int]]:
        """Unordered adjacencies across the corpus."""
        if self._links is None:
            if self.numpy_view() is not None:
                keys, valid = self._hop_keys()
                uniq = _np.unique(keys[valid])
                self._links = {
                    (int(k >> 32), int(k & 0xFFFFFFFF))
                    for k in uniq.tolist()
                }
            else:
                # collect the (few thousand) distinct ordered hops at C
                # speed first, canonicalize the small set afterwards
                hops = set(
                    chain.from_iterable(zip(p, p[1:]) for p in self.paths)
                )
                self._links = {
                    (a, b) if a < b else (b, a) for a, b in hops
                }
        return self._links

    def triples(self) -> Iterator[Tuple[int, int, int]]:
        """All consecutive (left, middle, right) hops across the corpus."""
        for path in self.paths:
            for i in range(1, len(path) - 1):
                yield path[i - 1], path[i], path[i + 1]

    # ------------------------------------------------------------------
    # degrees
    # ------------------------------------------------------------------

    def _transit_pairs(self) -> Iterable[Tuple[int, int]]:
        """Distinct ``(mid, neighbor)`` pairs over all interior hops."""
        view = self.numpy_view()
        if view is not None and len(view[0]) >= 3:
            flat, plen, off = view
            mid = flat[1:-1].astype(_np.uint64)
            left = flat[:-2].astype(_np.uint64)
            right = flat[2:].astype(_np.uint64)
            valid = _np.ones(len(flat) - 2, dtype=bool)
            bounds = off[1:-1]
            valid[bounds - 1] = False
            valid[_np.maximum(bounds - 2, 0)] = False
            shift = _np.uint64(32)
            keys = _np.concatenate(
                (
                    ((mid << shift) | left)[valid],
                    ((mid << shift) | right)[valid],
                )
            )
            for k in _np.unique(keys).tolist():
                yield k >> 32, k & 0xFFFFFFFF
            return
        # fallback: dedupe (left, mid, right) windows at C speed, then
        # expand the small distinct-triple set
        windows = set(
            chain.from_iterable(zip(p, p[1:], p[2:]) for p in self.paths)
        )
        for left, mid, right in windows:
            yield mid, left
            yield mid, right

    def _build_degrees(self) -> None:
        # node adjacency straight from the (much smaller) link set
        node: Dict[int, Set[int]] = {}
        for a, b in self.links():
            node.setdefault(a, set()).add(b)
            node.setdefault(b, set()).add(a)
        for asn in self.asns():
            node.setdefault(asn, set())
        transit: Dict[int, Set[int]] = {}
        transit_get = transit.get
        for mid, neighbor in self._transit_pairs():
            neighbors = transit_get(mid)
            if neighbors is None:
                neighbors = transit[mid] = set()
            neighbors.add(neighbor)
        self._node_neighbors = node
        self._transit_neighbors = transit

    @property
    def node_neighbors(self) -> Dict[int, Set[int]]:
        if self._node_neighbors is None:
            self._build_degrees()
        assert self._node_neighbors is not None
        return self._node_neighbors

    def node_degree(self, asn: int) -> int:
        return len(self.node_neighbors.get(asn, ()))

    def transit_degree(self, asn: int) -> int:
        if self._transit_neighbors is None:
            self._build_degrees()
        assert self._transit_neighbors is not None
        return len(self._transit_neighbors.get(asn, ()))

    def transit_degrees(self) -> Dict[int, int]:
        """Transit degree for every AS in the corpus (0 for pure edges)."""
        return {asn: self.transit_degree(asn) for asn in self.asns()}

    def ranked_asns(self) -> List[int]:
        """ASes sorted by the paper's ranking: transit degree desc, then
        node degree desc, then ASN asc (determinism)."""
        if self._ranked is None:
            self._ranked = sorted(
                self.asns(),
                key=lambda asn: (
                    -self.transit_degree(asn), -self.node_degree(asn), asn
                ),
            )
        return self._ranked
