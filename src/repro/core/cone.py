"""Customer cones under the paper's three definitions.

The *customer cone* of an AS is the set of ASes it can reach through
customer links alone — its "market share" of the routing system.  The
paper contrasts three ways of computing it:

* **RECURSIVE** — transitive closure over all inferred p2c links.
  Over-counts: an AS need not announce every customer route to every
  provider, so not all closure members are actually reachable.
* **BGP_OBSERVED** — B is in A's cone if some observed path contains a
  contiguous descending (all-p2c) segment from A to B.  Conservative:
  bounded by where the vantage points happen to look from.
* **PROVIDER_PEER_OBSERVED** ("PPDC", the paper's preferred definition
  and CAIDA's published dataset) — B is in A's cone if some path
  enters A from one of A's providers or peers and later reaches B.
  By the export rules, everything A announces to a provider or peer is
  a customer route, so the whole observed suffix is in A's cone.

All cones include the AS itself, matching CAIDA's convention.  Cones
can be sized in ASes, announced prefixes, or IPv4 addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro import perf
from repro.core.inference import InferenceResult
from repro.net.prefix import Prefix, summarize_address_space
from repro.relationships import Relationship


class ConeDefinition(enum.Enum):
    RECURSIVE = "recursive"
    BGP_OBSERVED = "bgp-observed"
    PROVIDER_PEER_OBSERVED = "provider/peer-observed"


# ---------------------------------------------------------------------------
# fast paths: cone membership as Python-int bitsets over the dense
# ASN->id index built by the inference engine; converted back to sets
# only at the API boundary, so every caller sees identical results
# ---------------------------------------------------------------------------


def _bits_to_set(bits: int, id_asns: List[int]) -> Set[int]:
    out: Set[int] = set()
    while bits:
        low = bits & -bits
        out.add(id_asns[low.bit_length() - 1])
        bits ^= low
    return out


def _recursive_cones_bits(result: InferenceResult) -> Dict[int, Set[int]]:
    ids, id_asns = result._ids, result._id_asns
    customers = result.customers
    asns = result.paths.asns()
    cone_bits: Dict[int, int] = {}
    # iterative post-order over the DAG (the engine refuses cycles)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    for root in asns:
        if color.get(root, WHITE) is not WHITE:
            continue
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                cone = 1 << ids[node]
                for child in customers.get(node, ()):
                    cone |= cone_bits[child]
                cone_bits[node] = cone
                color[node] = BLACK
                continue
            if color.get(node, WHITE) is not WHITE:
                continue
            color[node] = GRAY
            stack.append((node, True))
            for child in customers.get(node, ()):
                if color.get(child, WHITE) is WHITE:
                    stack.append((child, False))
    cones = {asn: _bits_to_set(bits, id_asns) for asn, bits in cone_bits.items()}
    for asn in asns:
        cones.setdefault(asn, {asn})
    return cones


def _bgp_observed_cones_bits(result: InferenceResult) -> Dict[int, Set[int]]:
    id_asns = result._id_asns
    lstate = result._lstate
    assert lstate is not None
    path_lids, path_pids = result._path_lids, result._path_pids
    cone_bits: List[int] = [1 << i for i in range(len(id_asns))]
    for pi, nodes in enumerate(result._path_nodes):
        lids = path_lids[pi]
        pids = path_pids[pi]
        # one right-to-left pass: within a maximal descending run, the
        # suffix bitset accumulates everything downstream of each hop
        suffix = 0
        for j in range(len(lids) - 1, -1, -1):
            if lstate[lids[j]] == nodes[j]:  # p2c, left end is provider
                suffix |= 1 << pids[j + 1]
                cone_bits[pids[j]] |= suffix
            else:
                suffix = 0
    return {
        id_asns[i]: _bits_to_set(bits, id_asns)
        for i, bits in enumerate(cone_bits)
    }


def _ppdc_cones_bits(result: InferenceResult) -> Dict[int, Set[int]]:
    id_asns = result._id_asns
    lstate = result._lstate
    assert lstate is not None
    path_lids, path_pids = result._path_lids, result._path_pids
    cone_bits: List[int] = [1 << i for i in range(len(id_asns))]
    for pi, nodes in enumerate(result._path_nodes):
        lids = path_lids[pi]
        pids = path_pids[pi]
        suffix = 0
        for i in range(len(nodes) - 2, 0, -1):
            suffix |= 1 << pids[i + 1]
            s = lstate[lids[i - 1]]  # the link the route entered on
            if s == -1 or s == nodes[i - 1]:
                # entered from a peer or a provider: the whole observed
                # suffix is a customer chain
                cone_bits[pids[i]] |= suffix
    return {
        id_asns[i]: _bits_to_set(bits, id_asns)
        for i, bits in enumerate(cone_bits)
    }


# ---------------------------------------------------------------------------
# set-based fallbacks: used when a result lacks the fast index (e.g.
# hand-assembled results or ``InferenceConfig(fast=False)`` runs)
# ---------------------------------------------------------------------------


def _recursive_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    """Transitive closure over the inferred p2c DAG, memoized bottom-up."""
    return reference_recursive_cones(result)


def _bgp_observed_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    cones: Dict[int, Set[int]] = {asn: {asn} for asn in result.paths.asns()}
    provider_of = result.provider_of
    for path in result.paths:
        # single right-to-left pass over maximal descending runs instead
        # of the O(L^2) per-start restart loop
        suffix: Set[int] = set()
        for j in range(len(path) - 2, -1, -1):
            if provider_of(path[j], path[j + 1]) == path[j]:
                suffix.add(path[j + 1])
                cones[path[j]].update(suffix)
            else:
                suffix = set()
    return cones


def _ppdc_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    return reference_ppdc_cones(result)


# ---------------------------------------------------------------------------
# reference implementations (the seed code, verbatim): the equivalence
# tests check every fast/fallback path against these
# ---------------------------------------------------------------------------


def reference_recursive_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    """Transitive closure over the inferred p2c DAG, memoized bottom-up."""
    customers = result.customers
    asns = result.paths.asns()
    cones: Dict[int, Set[int]] = {}
    # iterative post-order over the DAG
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    for root in asns:
        if color.get(root, WHITE) is not WHITE:
            continue
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                cone = {node}
                for child in customers.get(node, ()):
                    cone |= cones[child]
                cones[node] = cone
                color[node] = BLACK
                continue
            if color.get(node, WHITE) is not WHITE:
                continue
            color[node] = GRAY
            stack.append((node, True))
            for child in customers.get(node, ()):
                if color.get(child, WHITE) is WHITE:
                    stack.append((child, False))
    for asn in asns:
        cones.setdefault(asn, {asn})
    return cones


def _descending_runs(
    result: InferenceResult, path: Tuple[int, ...]
) -> List[int]:
    """For each link index j, 1 if the link is inferred p2c descending
    toward the origin (left endpoint is the provider), else 0."""
    flags: List[int] = []
    for j in range(len(path) - 1):
        provider = result.provider_of(path[j], path[j + 1])
        flags.append(1 if provider == path[j] else 0)
    return flags


def reference_bgp_observed_cones(
    result: InferenceResult,
) -> Dict[int, Set[int]]:
    cones: Dict[int, Set[int]] = {asn: {asn} for asn in result.paths.asns()}
    for path in result.paths:
        descending = _descending_runs(result, path)
        # for each start, extend while links keep descending
        for i in range(len(path) - 1):
            j = i
            while j < len(descending) and descending[j]:
                cones[path[i]].add(path[j + 1])
                j += 1
    return cones


def reference_ppdc_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    cones: Dict[int, Set[int]] = {asn: {asn} for asn in result.paths.asns()}
    for path in result.paths:
        for i in range(1, len(path) - 1):
            upstream, here = path[i - 1], path[i]
            rel = result.relationship(upstream, here)
            if rel is Relationship.P2P or (
                rel is Relationship.P2C
                and result.provider_of(upstream, here) == upstream
            ):
                # the route entered `here` from above: the whole suffix
                # is an observed customer chain
                cones[here].update(path[i + 1:])
    return cones


def compute_cones(
    result: InferenceResult, definition: ConeDefinition
) -> Dict[int, Set[int]]:
    """Customer cone (including self) for every AS, under ``definition``."""
    if not isinstance(definition, ConeDefinition):
        raise ValueError(f"unknown cone definition {definition!r}")
    fast = result.config.fast and result._lstate is not None
    with perf.stage("cones"):
        with perf.stage(definition.value):
            if definition is ConeDefinition.RECURSIVE:
                if fast:
                    return _recursive_cones_bits(result)
                return _recursive_cones(result)
            if definition is ConeDefinition.BGP_OBSERVED:
                if fast:
                    return _bgp_observed_cones_bits(result)
                return _bgp_observed_cones(result)
            if definition is ConeDefinition.PROVIDER_PEER_OBSERVED:
                if fast:
                    return _ppdc_cones_bits(result)
                return _ppdc_cones(result)
            raise ValueError(f"unknown cone definition {definition!r}")


@dataclass
class CustomerCones:
    """Cones under one definition, sizable in ASes/prefixes/addresses."""

    definition: ConeDefinition
    cones: Dict[int, Set[int]]
    prefixes_by_asn: Optional[Mapping[int, Sequence[Prefix]]] = None

    @classmethod
    def compute(
        cls,
        result: InferenceResult,
        definition: ConeDefinition = ConeDefinition.PROVIDER_PEER_OBSERVED,
        prefixes_by_asn: Optional[Mapping[int, Sequence[Prefix]]] = None,
    ) -> "CustomerCones":
        return cls(
            definition=definition,
            cones=compute_cones(result, definition),
            prefixes_by_asn=prefixes_by_asn,
        )

    def cone(self, asn: int) -> Set[int]:
        return set(self.cones.get(asn, {asn}))

    def size_ases(self, asn: int) -> int:
        return len(self.cones.get(asn, {asn}))

    def _cone_prefixes(self, asn: int) -> List[Prefix]:
        if self.prefixes_by_asn is None:
            raise ValueError("prefix data not attached to these cones")
        prefixes: List[Prefix] = []
        for member in self.cones.get(asn, {asn}):
            prefixes.extend(self.prefixes_by_asn.get(member, ()))
        return prefixes

    def size_prefixes(self, asn: int) -> int:
        return len(set(self._cone_prefixes(asn)))

    def size_addresses(self, asn: int) -> int:
        return summarize_address_space(self._cone_prefixes(asn))

    def sizes(self) -> Dict[int, int]:
        """AS-count cone size for every AS."""
        return {asn: len(cone) for asn, cone in self.cones.items()}

    def top(self, k: int = 15) -> List[Tuple[int, int]]:
        """The ``k`` largest cones as ``(asn, size_in_ases)`` rows."""
        return sorted(
            self.sizes().items(), key=lambda item: (-item[1], item[0])
        )[:k]
