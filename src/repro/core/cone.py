"""Customer cones under the paper's three definitions.

The *customer cone* of an AS is the set of ASes it can reach through
customer links alone — its "market share" of the routing system.  The
paper contrasts three ways of computing it:

* **RECURSIVE** — transitive closure over all inferred p2c links.
  Over-counts: an AS need not announce every customer route to every
  provider, so not all closure members are actually reachable.
* **BGP_OBSERVED** — B is in A's cone if some observed path contains a
  contiguous descending (all-p2c) segment from A to B.  Conservative:
  bounded by where the vantage points happen to look from.
* **PROVIDER_PEER_OBSERVED** ("PPDC", the paper's preferred definition
  and CAIDA's published dataset) — B is in A's cone if some path
  enters A from one of A's providers or peers and later reaches B.
  By the export rules, everything A announces to a provider or peer is
  a customer route, so the whole observed suffix is in A's cone.

All cones include the AS itself, matching CAIDA's convention.  Cones
can be sized in ASes, announced prefixes, or IPv4 addresses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.inference import InferenceResult
from repro.net.prefix import Prefix, summarize_address_space
from repro.relationships import Relationship


class ConeDefinition(enum.Enum):
    RECURSIVE = "recursive"
    BGP_OBSERVED = "bgp-observed"
    PROVIDER_PEER_OBSERVED = "provider/peer-observed"


def _recursive_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    """Transitive closure over the inferred p2c DAG, memoized bottom-up."""
    customers = result.customers
    asns = result.paths.asns()
    cones: Dict[int, Set[int]] = {}
    # iterative post-order over the DAG
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    for root in asns:
        if color.get(root, WHITE) is not WHITE:
            continue
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                cone = {node}
                for child in customers.get(node, ()):
                    cone |= cones[child]
                cones[node] = cone
                color[node] = BLACK
                continue
            if color.get(node, WHITE) is not WHITE:
                continue
            color[node] = GRAY
            stack.append((node, True))
            for child in customers.get(node, ()):
                if color.get(child, WHITE) is WHITE:
                    stack.append((child, False))
    for asn in asns:
        cones.setdefault(asn, {asn})
    return cones


def _descending_runs(
    result: InferenceResult, path: Tuple[int, ...]
) -> List[int]:
    """For each link index j, 1 if the link is inferred p2c descending
    toward the origin (left endpoint is the provider), else 0."""
    flags: List[int] = []
    for j in range(len(path) - 1):
        provider = result.provider_of(path[j], path[j + 1])
        flags.append(1 if provider == path[j] else 0)
    return flags


def _bgp_observed_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    cones: Dict[int, Set[int]] = {asn: {asn} for asn in result.paths.asns()}
    for path in result.paths:
        descending = _descending_runs(result, path)
        # for each start, extend while links keep descending
        for i in range(len(path) - 1):
            j = i
            while j < len(descending) and descending[j]:
                cones[path[i]].add(path[j + 1])
                j += 1
    return cones


def _ppdc_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    cones: Dict[int, Set[int]] = {asn: {asn} for asn in result.paths.asns()}
    for path in result.paths:
        for i in range(1, len(path) - 1):
            upstream, here = path[i - 1], path[i]
            rel = result.relationship(upstream, here)
            if rel is Relationship.P2P or (
                rel is Relationship.P2C
                and result.provider_of(upstream, here) == upstream
            ):
                # the route entered `here` from above: the whole suffix
                # is an observed customer chain
                cones[here].update(path[i + 1:])
    return cones


def compute_cones(
    result: InferenceResult, definition: ConeDefinition
) -> Dict[int, Set[int]]:
    """Customer cone (including self) for every AS, under ``definition``."""
    if definition is ConeDefinition.RECURSIVE:
        return _recursive_cones(result)
    if definition is ConeDefinition.BGP_OBSERVED:
        return _bgp_observed_cones(result)
    if definition is ConeDefinition.PROVIDER_PEER_OBSERVED:
        return _ppdc_cones(result)
    raise ValueError(f"unknown cone definition {definition!r}")


@dataclass
class CustomerCones:
    """Cones under one definition, sizable in ASes/prefixes/addresses."""

    definition: ConeDefinition
    cones: Dict[int, Set[int]]
    prefixes_by_asn: Optional[Mapping[int, Sequence[Prefix]]] = None

    @classmethod
    def compute(
        cls,
        result: InferenceResult,
        definition: ConeDefinition = ConeDefinition.PROVIDER_PEER_OBSERVED,
        prefixes_by_asn: Optional[Mapping[int, Sequence[Prefix]]] = None,
    ) -> "CustomerCones":
        return cls(
            definition=definition,
            cones=compute_cones(result, definition),
            prefixes_by_asn=prefixes_by_asn,
        )

    def cone(self, asn: int) -> Set[int]:
        return set(self.cones.get(asn, {asn}))

    def size_ases(self, asn: int) -> int:
        return len(self.cones.get(asn, {asn}))

    def _cone_prefixes(self, asn: int) -> List[Prefix]:
        if self.prefixes_by_asn is None:
            raise ValueError("prefix data not attached to these cones")
        prefixes: List[Prefix] = []
        for member in self.cones.get(asn, {asn}):
            prefixes.extend(self.prefixes_by_asn.get(member, ()))
        return prefixes

    def size_prefixes(self, asn: int) -> int:
        return len(set(self._cone_prefixes(asn)))

    def size_addresses(self, asn: int) -> int:
        return summarize_address_space(self._cone_prefixes(asn))

    def sizes(self) -> Dict[int, int]:
        """AS-count cone size for every AS."""
        return {asn: len(cone) for asn, cone in self.cones.items()}

    def top(self, k: int = 15) -> List[Tuple[int, int]]:
        """The ``k`` largest cones as ``(asn, size_in_ases)`` rows."""
        return sorted(
            self.sizes().items(), key=lambda item: (-item[1], item[0])
        )[:k]
