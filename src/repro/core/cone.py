"""Customer cones under the paper's three definitions.

The *customer cone* of an AS is the set of ASes it can reach through
customer links alone — its "market share" of the routing system.  The
paper contrasts three ways of computing it:

* **RECURSIVE** — transitive closure over all inferred p2c links.
  Over-counts: an AS need not announce every customer route to every
  provider, so not all closure members are actually reachable.
* **BGP_OBSERVED** — B is in A's cone if some observed path contains a
  contiguous descending (all-p2c) segment from A to B.  Conservative:
  bounded by where the vantage points happen to look from.
* **PROVIDER_PEER_OBSERVED** ("PPDC", the paper's preferred definition
  and CAIDA's published dataset) — B is in A's cone if some path
  enters A from one of A's providers or peers and later reaches B.
  By the export rules, everything A announces to a provider or peer is
  a customer route, so the whole observed suffix is in A's cone.

All cones include the AS itself, matching CAIDA's convention.  Cones
can be sized in ASes, announced prefixes, or IPv4 addresses.

Fast-path cones are bitsets over the shared columnar core
(:mod:`repro.graph`): :meth:`CustomerCones.compute` takes a
:class:`~repro.graph.relgraph.RelGraph` (or an
:class:`~repro.core.inference.InferenceResult`, which compiles to its
cached RelGraph) and keeps the per-dense-id bitsets; ASN-set views
materialize lazily at the API boundary, so the snapshot store can
adopt the bitsets without ever expanding them.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro import perf
from repro.core.inference import InferenceResult
from repro.graph.bitset import decode_bits
from repro.graph.relgraph import RelGraph
from repro.net.prefix import Prefix, summarize_address_space
from repro.relationships import Relationship


class ConeDefinition(enum.Enum):
    RECURSIVE = "recursive"
    BGP_OBSERVED = "bgp-observed"
    PROVIDER_PEER_OBSERVED = "provider/peer-observed"


# ---------------------------------------------------------------------------
# fast paths: cone membership as Python-int bitsets over the shared
# dense index (repro.graph); converted back to sets only at the API
# boundary, so every caller sees identical results
# ---------------------------------------------------------------------------


def _bgp_observed_bits(result: InferenceResult) -> List[int]:
    lstate = result._lstate
    assert lstate is not None
    path_lids, path_pids = result._path_lids, result._path_pids
    cone_bits: List[int] = [1 << i for i in range(len(result.index))]
    for pi, nodes in enumerate(result._path_nodes):
        lids = path_lids[pi]
        pids = path_pids[pi]
        # one right-to-left pass: within a maximal descending run, the
        # suffix bitset accumulates everything downstream of each hop
        suffix = 0
        for j in range(len(lids) - 1, -1, -1):
            if lstate[lids[j]] == nodes[j]:  # p2c, left end is provider
                suffix |= 1 << pids[j + 1]
                cone_bits[pids[j]] |= suffix
            else:
                suffix = 0
    return cone_bits


def _ppdc_bits(result: InferenceResult) -> List[int]:
    lstate = result._lstate
    assert lstate is not None
    path_lids, path_pids = result._path_lids, result._path_pids
    cone_bits: List[int] = [1 << i for i in range(len(result.index))]
    for pi, nodes in enumerate(result._path_nodes):
        lids = path_lids[pi]
        pids = path_pids[pi]
        suffix = 0
        for i in range(len(nodes) - 2, 0, -1):
            suffix |= 1 << pids[i + 1]
            s = lstate[lids[i - 1]]  # the link the route entered on
            if s == -1 or s == nodes[i - 1]:
                # entered from a peer or a provider: the whole observed
                # suffix is a customer chain
                cone_bits[pids[i]] |= suffix
    return cone_bits


def _fast_bits(
    result: InferenceResult, definition: ConeDefinition
) -> Optional[List[int]]:
    """Per-dense-id cone bitsets when the fast path applies, else None.

    The fast path needs the engine-built corpus index (``_lstate``);
    hand-assembled results and ``InferenceConfig(fast=False)`` runs
    fall back to the set-based reference implementations.
    """
    if not (result.config.fast and result._lstate is not None):
        return None
    if definition is ConeDefinition.RECURSIVE:
        # the one transitive closure of the system, cached on the graph
        return RelGraph.of(result).closure()
    if definition is ConeDefinition.BGP_OBSERVED:
        return _bgp_observed_bits(result)
    return _ppdc_bits(result)


def _bits_to_cones(bits: List[int], id_asns: List[int]) -> Dict[int, Set[int]]:
    return {
        id_asns[i]: decode_bits(mask, id_asns)
        for i, mask in enumerate(bits)
    }


# ---------------------------------------------------------------------------
# set-based fallbacks: used when a result lacks the fast index (e.g.
# hand-assembled results or ``InferenceConfig(fast=False)`` runs)
# ---------------------------------------------------------------------------


def _recursive_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    """Transitive closure over the inferred p2c DAG, memoized bottom-up."""
    return reference_recursive_cones(result)


def _bgp_observed_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    cones: Dict[int, Set[int]] = {asn: {asn} for asn in result.paths.asns()}
    provider_of = result.provider_of
    for path in result.paths:
        # single right-to-left pass over maximal descending runs instead
        # of the O(L^2) per-start restart loop
        suffix: Set[int] = set()
        for j in range(len(path) - 2, -1, -1):
            if provider_of(path[j], path[j + 1]) == path[j]:
                suffix.add(path[j + 1])
                cones[path[j]].update(suffix)
            else:
                suffix = set()
    return cones


def _ppdc_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    return reference_ppdc_cones(result)


def _fallback_cones(
    result: InferenceResult, definition: ConeDefinition
) -> Dict[int, Set[int]]:
    if definition is ConeDefinition.RECURSIVE:
        return _recursive_cones(result)
    if definition is ConeDefinition.BGP_OBSERVED:
        return _bgp_observed_cones(result)
    return _ppdc_cones(result)


# ---------------------------------------------------------------------------
# reference implementations (the seed code, verbatim): the equivalence
# tests check every fast/fallback path against these oracles
# ---------------------------------------------------------------------------


def reference_recursive_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    """Transitive closure over the inferred p2c DAG, memoized bottom-up."""
    customers = result.customers
    asns = result.paths.asns()
    cones: Dict[int, Set[int]] = {}
    # iterative post-order over the DAG
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[int, int] = {}
    for root in asns:
        if color.get(root, WHITE) is not WHITE:
            continue
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                cone = {node}
                for child in customers.get(node, ()):
                    cone |= cones[child]
                cones[node] = cone
                color[node] = BLACK
                continue
            if color.get(node, WHITE) is not WHITE:
                continue
            color[node] = GRAY
            stack.append((node, True))
            for child in customers.get(node, ()):
                if color.get(child, WHITE) is WHITE:
                    stack.append((child, False))
    for asn in asns:
        cones.setdefault(asn, {asn})
    return cones


def _descending_runs(
    result: InferenceResult, path: Tuple[int, ...]
) -> List[int]:
    """For each link index j, 1 if the link is inferred p2c descending
    toward the origin (left endpoint is the provider), else 0."""
    flags: List[int] = []
    for j in range(len(path) - 1):
        provider = result.provider_of(path[j], path[j + 1])
        flags.append(1 if provider == path[j] else 0)
    return flags


def reference_bgp_observed_cones(
    result: InferenceResult,
) -> Dict[int, Set[int]]:
    cones: Dict[int, Set[int]] = {asn: {asn} for asn in result.paths.asns()}
    for path in result.paths:
        descending = _descending_runs(result, path)
        # for each start, extend while links keep descending
        for i in range(len(path) - 1):
            j = i
            while j < len(descending) and descending[j]:
                cones[path[i]].add(path[j + 1])
                j += 1
    return cones


def reference_ppdc_cones(result: InferenceResult) -> Dict[int, Set[int]]:
    cones: Dict[int, Set[int]] = {asn: {asn} for asn in result.paths.asns()}
    for path in result.paths:
        for i in range(1, len(path) - 1):
            upstream, here = path[i - 1], path[i]
            rel = result.relationship(upstream, here)
            if rel is Relationship.P2P or (
                rel is Relationship.P2C
                and result.provider_of(upstream, here) == upstream
            ):
                # the route entered `here` from above: the whole suffix
                # is an observed customer chain
                cones[here].update(path[i + 1:])
    return cones


def compute_cones(
    result: InferenceResult, definition: ConeDefinition
) -> Dict[int, Set[int]]:
    """Customer cone (including self) for every AS, under ``definition``."""
    if not isinstance(definition, ConeDefinition):
        raise ValueError(f"unknown cone definition {definition!r}")
    with perf.stage("cones"):
        with perf.stage(definition.value):
            bits = _fast_bits(result, definition)
            if bits is not None:
                return _bits_to_cones(bits, result.index.asns)
            return _fallback_cones(result, definition)


class CustomerCones:
    """Cones under one definition, sizable in ASes/prefixes/addresses.

    Backed either by per-dense-id bitsets over a shared
    :class:`~repro.graph.relgraph.RelGraph` (the fast path — what the
    snapshot store adopts zero-copy) or by plain ASN-set mappings (the
    fallback and the hand-construction path used in tests).  Whichever
    representation is absent materializes lazily from the other, so
    both views answer identically.
    """

    def __init__(
        self,
        definition: ConeDefinition,
        cones: Optional[Dict[int, Set[int]]] = None,
        prefixes_by_asn: Optional[Mapping[int, Sequence[Prefix]]] = None,
        graph: Optional[RelGraph] = None,
        bits: Optional[List[int]] = None,
    ):
        if cones is None and (bits is None or graph is None):
            raise ValueError(
                "CustomerCones needs either a cone mapping or "
                "graph-indexed bitsets"
            )
        self.definition = definition
        self.prefixes_by_asn = prefixes_by_asn
        self.graph = graph
        self._cones = cones
        self._bits = bits

    @classmethod
    def compute(
        cls,
        source,
        definition: ConeDefinition = ConeDefinition.PROVIDER_PEER_OBSERVED,
        prefixes_by_asn: Optional[Mapping[int, Sequence[Prefix]]] = None,
    ) -> "CustomerCones":
        """Compute cones over a :class:`RelGraph` (or an
        :class:`InferenceResult`, which compiles to its cached graph)."""
        if not isinstance(definition, ConeDefinition):
            raise ValueError(f"unknown cone definition {definition!r}")
        graph = RelGraph.of(source)
        result = graph.result
        if result is None:
            raise ValueError(
                "this RelGraph carries no inference result; cones need "
                "the path corpus"
            )
        with perf.stage("cones"):
            with perf.stage(definition.value):
                bits = _fast_bits(result, definition)
                cones = (
                    _fallback_cones(result, definition)
                    if bits is None
                    else None
                )
        return cls(
            definition,
            cones=cones,
            prefixes_by_asn=prefixes_by_asn,
            graph=graph,
            bits=bits,
        )

    # ------------------------------------------------------------------
    # representations
    # ------------------------------------------------------------------

    @property
    def bits(self) -> Optional[List[int]]:
        """Per-dense-id cone bitsets over ``graph.index`` (None when no
        graph is attached to convert against)."""
        if self._bits is None and self.graph is not None:
            assert self._cones is not None
            encode = self.graph.family.encode
            self._bits = [
                encode(self._cones.get(asn, (asn,)))
                for asn in self.graph.index.asns
            ]
        return self._bits

    @property
    def cones(self) -> Dict[int, Set[int]]:
        """ASN -> cone member set (materialized lazily from bitsets)."""
        if self._cones is None:
            assert self._bits is not None and self.graph is not None
            self._cones = _bits_to_cones(self._bits, self.graph.index.asns)
        return self._cones

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def cone(self, asn: int) -> Set[int]:
        if self._cones is None:
            assert self._bits is not None and self.graph is not None
            dense_id = self.graph.index.get(asn)
            if dense_id is None:
                return {asn}
            return self.graph.family.decode(self._bits[dense_id])
        return set(self._cones.get(asn, {asn}))

    def size_ases(self, asn: int) -> int:
        if self._cones is None:
            assert self._bits is not None and self.graph is not None
            dense_id = self.graph.index.get(asn)
            if dense_id is None:
                return 1
            return self._bits[dense_id].bit_count()
        return len(self._cones.get(asn, {asn}))

    def _cone_prefixes(self, asn: int) -> List[Prefix]:
        if self.prefixes_by_asn is None:
            raise ValueError("prefix data not attached to these cones")
        prefixes: List[Prefix] = []
        for member in self.cone(asn):
            prefixes.extend(self.prefixes_by_asn.get(member, ()))
        return prefixes

    def size_prefixes(self, asn: int) -> int:
        return len(set(self._cone_prefixes(asn)))

    def size_addresses(self, asn: int) -> int:
        return summarize_address_space(self._cone_prefixes(asn))

    def sizes(self) -> Dict[int, int]:
        """AS-count cone size for every AS."""
        if self._cones is None:
            assert self._bits is not None and self.graph is not None
            id_asns = self.graph.index.asns
            return {
                id_asns[i]: mask.bit_count()
                for i, mask in enumerate(self._bits)
            }
        return {asn: len(cone) for asn, cone in self._cones.items()}

    def top(self, k: int = 15) -> List[Tuple[int, int]]:
        """The ``k`` largest cones as ``(asn, size_in_ases)`` rows."""
        return sorted(
            self.sizes().items(), key=lambda item: (-item[1], item[0])
        )[:k]
