"""The paper's primary contribution: ASRank relationship inference.

Pipeline: sanitize observed AS paths → rank ASes by transit degree →
infer the tier-1 clique (Bron–Kerbosch) → discard poisoned paths →
infer c2p links top-down with a cascade of heuristics → remaining links
are p2p → compute customer cones under three definitions → rank ASes by
cone size.
"""

from repro.core.paths import PathSet, SanitizeStats, is_reserved_asn
from repro.core.clique import CliqueResult, infer_clique
from repro.core.inference import (
    InferenceConfig,
    InferenceResult,
    InferredRelationship,
    Step,
    infer_relationships,
)
from repro.core.cone import ConeDefinition, CustomerCones, compute_cones
from repro.core.prediction import PredictionReport, predict_paths
from repro.core.rank import ASRankEntry, rank_ases

__all__ = [
    "PathSet",
    "SanitizeStats",
    "is_reserved_asn",
    "CliqueResult",
    "infer_clique",
    "InferenceConfig",
    "InferenceResult",
    "InferredRelationship",
    "Step",
    "infer_relationships",
    "ConeDefinition",
    "CustomerCones",
    "compute_cones",
    "PredictionReport",
    "predict_paths",
    "ASRankEntry",
    "rank_ases",
]
