"""Tier-1 clique inference (the algorithm's anchor step).

The paper assumes a clique of transit-free providers at the top of the
hierarchy and infers it from the path data itself:

1. take the top ``seed_size`` ASes by transit degree;
2. among them, find the largest clique in the observed adjacency graph
   (Bron–Kerbosch with pivoting; ties broken by total transit degree);
3. walk the remaining ranking in order, admitting any AS adjacent to
   every current member, and stop after ``stop_after`` consecutive
   candidates fail — large transit providers that peer with everyone at
   the top are in, regional networks are out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.paths import PathSet


@dataclass
class CliqueResult:
    """The inferred clique plus provenance for diagnostics."""

    members: List[int]
    seed_members: List[int]  # found by Bron–Kerbosch among the top ASes
    added_members: List[int]  # admitted during the rank-order walk
    considered: int = 0  # candidates examined during the walk

    def __contains__(self, asn: int) -> bool:
        return asn in self._member_set

    def __post_init__(self) -> None:
        self._member_set = set(self.members)

    @property
    def member_set(self) -> Set[int]:
        return set(self._member_set)


def bron_kerbosch(
    vertices: Sequence[int], adjacency: Dict[int, Set[int]]
) -> List[FrozenSet[int]]:
    """All maximal cliques of the graph induced on ``vertices``.

    Classic Bron–Kerbosch with pivoting; fine for the small candidate
    sets this module feeds it (tens of vertices).
    """
    vertex_set = set(vertices)
    neighbors = {v: adjacency.get(v, set()) & vertex_set for v in vertex_set}
    cliques: List[FrozenSet[int]] = []

    def expand(r: Set[int], p: Set[int], x: Set[int]) -> None:
        if not p and not x:
            cliques.append(frozenset(r))
            return
        pivot = max(p | x, key=lambda v: len(neighbors[v] & p))
        for v in sorted(p - neighbors[pivot]):
            expand(r | {v}, p & neighbors[v], x & neighbors[v])
            p = p - {v}
            x = x | {v}

    expand(set(), set(vertex_set), set())
    return cliques


def _index_triples(
    triples: Iterable[Tuple[int, int, int]],
) -> Dict[int, List[Tuple[int, int, int]]]:
    """Index path triples by their middle AS.

    Every evidence query below filters on ``mid in clique``, so a scan
    of the full triple multiset — quadratic once the rank walk repeats
    it per candidate, and brutal on internet-scale corpora — collapses
    to a lookup of the handful of clique members' own triples.
    """
    by_mid: Dict[int, List[Tuple[int, int, int]]] = {}
    for triple in triples:
        by_mid.setdefault(triple[1], []).append(triple)
    return by_mid


def _customer_evidence(
    by_mid: Dict[int, List[Tuple[int, int, int]]], clique: Set[int]
) -> Dict[int, int]:
    """Count, per AS, path evidence that it is a *customer* of a clique
    member rather than a peer.

    The pattern ``[x, y, cand]`` (or its mirror) with ``x`` and ``y``
    both clique members proves ``y`` exported cand's route to its peer
    ``x`` — only customer routes are exported to peers, so cand buys
    transit from ``y``.  A true clique member can never appear in this
    pattern: it would require a route to cross two peer links in a row.

    ``by_mid`` is the :func:`_index_triples` index; counts are sums
    over an order-independent filter, so indexed iteration returns
    exactly what a full scan would.
    """
    evidence: Dict[int, int] = {}
    for mid in clique:
        for left, _, right in by_mid.get(mid, ()):
            if left in clique and right not in clique:
                evidence[right] = evidence.get(right, 0) + 1
            elif right in clique and left not in clique:
                evidence[left] = evidence.get(left, 0) + 1
    return evidence


def _prune_customers(
    clique: Set[int], by_mid: Dict[int, List[Tuple[int, int, int]]]
) -> Set[int]:
    """Iteratively drop clique members that the path data shows buying
    transit from other members (multihomed-to-the-whole-clique transit
    networks survive Bron–Kerbosch but fail this test)."""
    clique = set(clique)
    while len(clique) > 2:
        evidence = _customer_evidence(by_mid, clique)
        guilty = {m: n for m, n in evidence.items() if m in clique}
        if not guilty:
            break
        worst = max(sorted(guilty), key=lambda m: guilty[m])
        clique.discard(worst)
    return clique


def infer_clique(
    paths: PathSet,
    seed_size: int = 10,
    stop_after: int = 10,
    max_walk: int = 50,
) -> CliqueResult:
    """Infer the tier-1 clique from a sanitized path corpus."""
    ranking = paths.ranked_asns()
    if not ranking:
        return CliqueResult(members=[], seed_members=[], added_members=[])
    adjacency = paths.node_neighbors

    seeds = ranking[:seed_size]
    cliques = bron_kerbosch(seeds, adjacency)
    if not cliques:
        return CliqueResult(members=[], seed_members=[], added_members=[])

    def clique_weight(members: FrozenSet[int]) -> Tuple[int, int, Tuple[int, ...]]:
        # transit-degree mass first: a large clique of middleweights
        # (e.g. a transit network plus the subset of tier-1s it buys
        # from) must not outrank the true heavyweight clique
        return (
            sum(paths.transit_degree(m) for m in members),
            len(members),
            tuple(sorted(members)),
        )

    by_mid = _index_triples(paths.triples())
    best = max(cliques, key=clique_weight)
    clique: Set[int] = _prune_customers(set(best), by_mid)

    added: List[int] = []
    failures = 0
    considered = 0
    for asn in ranking[seed_size:]:
        if failures >= stop_after or considered >= max_walk:
            break
        considered += 1
        if (
            clique <= adjacency.get(asn, set())
            and paths.transit_degree(asn) > 0  # a tier-1 transits, always
            and _customer_evidence(by_mid, clique | {asn}).get(asn, 0) == 0
        ):
            clique.add(asn)
            added.append(asn)
            failures = 0
        else:
            failures += 1

    return CliqueResult(
        members=sorted(clique),
        seed_members=sorted(best),
        added_members=added,
        considered=considered,
    )
