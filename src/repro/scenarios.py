"""Named, reproducible end-to-end scenarios.

Examples, tests and benchmarks all pull workloads from here so that
"the medium Internet" means the same topology, vantage points and noise
everywhere.  A scenario bundles the generator, collector and inference
configurations plus helpers that run the full pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro import perf
from repro.bgp.collector import Collector, CollectorConfig, PathCorpus
from repro.bgp.noise import NoiseConfig
from repro.core.inference import InferenceConfig, InferenceResult, infer_relationships
from repro.core.paths import PathSet
from repro.topology.evolution import EvolutionConfig
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.model import ASGraph


@dataclass
class Scenario:
    """One fully specified workload."""

    name: str
    description: str
    generator: GeneratorConfig
    collector: CollectorConfig
    inference: InferenceConfig = field(default_factory=InferenceConfig)

    def build_graph(self) -> ASGraph:
        with perf.stage("generate"):
            return generate_topology(self.generator)

    def collect(self, graph: Optional[ASGraph] = None) -> Tuple[ASGraph, PathCorpus]:
        graph = graph or self.build_graph()
        return graph, Collector(graph, self.collector).run()

    def run(self) -> Tuple[ASGraph, PathCorpus, PathSet, InferenceResult]:
        """Full pipeline: generate → simulate → sanitize → infer.

        Each stage reports into the active :mod:`repro.perf` recorder
        (``generate`` / ``collect`` / ``sanitize`` / ``infer``), so
        callers get a per-stage cost profile for free.
        """
        graph, corpus = self.collect()
        with perf.stage("sanitize"):
            paths = PathSet.sanitize(corpus.paths, ixp_asns=graph.ixp_asns())
        result = infer_relationships(paths, self.inference)
        return graph, corpus, paths, result


def _vps_for(n_ases: int) -> int:
    """VP count proportional to topology size, like RouteViews' growth."""
    return max(12, n_ases // 35)


SCENARIOS: Dict[str, Scenario] = {
    "tiny": Scenario(
        name="tiny",
        description="Smoke-test topology: fast enough for unit tests.",
        generator=GeneratorConfig(n_ases=150, seed=1, clique_size=6),
        collector=CollectorConfig(n_vps=10, seed=101),
    ),
    "small": Scenario(
        name="small",
        description="Small Internet (~300 ASes): quick experiments.",
        generator=GeneratorConfig(n_ases=300, seed=7),
        # proportionally generous VP deployment: a 300-AS world needs
        # more relative coverage than the real one for clique visibility
        collector=CollectorConfig(n_vps=20, seed=102),
    ),
    "medium": Scenario(
        name="medium",
        description="Medium Internet (~800 ASes): the default bench workload.",
        generator=GeneratorConfig(n_ases=800, seed=42),
        collector=CollectorConfig(n_vps=_vps_for(800), seed=103),
    ),
    "large": Scenario(
        name="large",
        description="Large Internet (~1500 ASes): headline-result scale.",
        generator=GeneratorConfig(n_ases=1500, seed=2013),
        collector=CollectorConfig(n_vps=_vps_for(1500), seed=104),
    ),
    "clean": Scenario(
        name="clean",
        description="Medium Internet with all measurement noise disabled.",
        generator=GeneratorConfig(n_ases=800, seed=42, ixps_enabled=False),
        collector=CollectorConfig(
            n_vps=_vps_for(800), seed=103, noise=NoiseConfig.none(),
            partial_feed_fraction=0.0,
        ),
    ),
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario; raises KeyError with the available names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def evolution_scenario(eras: int = 6, seed: int = 7) -> EvolutionConfig:
    """The default longitudinal series for E5/E8."""
    return EvolutionConfig.default_series(start_ases=400, eras=eras, seed=seed)
