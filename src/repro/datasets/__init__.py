"""Dataset IO: CAIDA's published file formats plus graph archives."""

from repro.datasets.graph_io import load_graph, save_graph
from repro.datasets.serialization import (
    load_as_rel,
    load_paths,
    load_ppdc_ases,
    save_as_rel,
    save_paths,
    save_ppdc_ases,
)

__all__ = [
    "load_as_rel",
    "load_graph",
    "load_paths",
    "load_ppdc_ases",
    "save_as_rel",
    "save_graph",
    "save_paths",
    "save_ppdc_ases",
]
