"""Ground-truth graph serialization.

Persists a complete :class:`~repro.topology.model.ASGraph` — ASes with
role/region/prefixes, every labeled link, and the via-IXP metadata — as
a line-oriented text format, so an expensive topology can be generated
once and shared across processes, or archived next to the experiment
artifacts it produced.

Format (sections in order, ``#``-comments ignored)::

    @as <asn> <type> <region> [prefix ...]
    @v6 <asn> <prefix6> [...]  # IPv6 space of a previously declared AS
    @link <a> <b> <rel>        # rel: -1 p2c (a provider), 0 p2p, 2 s2s
    @ixp <a> <b> <rs_asn>      # peer link a-b traverses route server
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.datasets.serialization import DatasetFormatError
from repro.net.prefix import Prefix, PrefixError
from repro.net.prefix6 import Prefix6
from repro.relationships import Relationship, canonical_pair
from repro.topology.model import AS, ASGraph, ASType, TopologyError


def save_graph(path: str, graph: ASGraph, comments=()) -> int:
    """Write the graph; returns the number of ASes written."""
    lines: List[str] = [f"# {comment}" for comment in comments]
    count = 0
    for asys in sorted(graph.ases(), key=lambda a: a.asn):
        prefixes = " ".join(str(p) for p in asys.prefixes)
        entry = f"@as {asys.asn} {asys.type.value} {asys.region}"
        lines.append(f"{entry} {prefixes}".rstrip())
        if asys.prefixes6:
            prefixes6 = " ".join(str(p) for p in asys.prefixes6)
            lines.append(f"@v6 {asys.asn} {prefixes6}")
        count += 1
    for a, b, rel in sorted(graph.links()):
        lines.append(f"@link {a} {b} {int(rel)}")
    via_ixp: Dict[Tuple[int, int], int] = getattr(graph, "via_ixp", {})
    for (a, b), rs in sorted(via_ixp.items()):
        lines.append(f"@ixp {a} {b} {rs}")
    with open(path, "w") as stream:
        stream.write("\n".join(lines) + "\n")
    return count


def load_graph(path: str) -> ASGraph:
    """Read a graph written by :func:`save_graph`."""
    graph = ASGraph()
    via_ixp: Dict[Tuple[int, int], int] = {}
    with open(path) as stream:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            tag = fields[0]
            try:
                if tag == "@as":
                    asn = int(fields[1])
                    as_type = ASType(fields[2])
                    region = int(fields[3])
                    prefixes = [Prefix.parse(p) for p in fields[4:]]
                    graph.add_as(
                        AS(asn=asn, type=as_type, region=region,
                           prefixes=prefixes)
                    )
                elif tag == "@v6":
                    asn = int(fields[1])
                    graph.get_as(asn).prefixes6.extend(
                        Prefix6.parse(p) for p in fields[2:]
                    )
                elif tag == "@link":
                    a, b, code = int(fields[1]), int(fields[2]), int(fields[3])
                    rel = Relationship(code)
                    if rel is Relationship.P2C:
                        graph.add_p2c(a, b)
                    elif rel is Relationship.P2P:
                        graph.add_p2p(a, b)
                    else:
                        graph.add_s2s(a, b)
                elif tag == "@ixp":
                    a, b, rs = int(fields[1]), int(fields[2]), int(fields[3])
                    via_ixp[canonical_pair(a, b)] = rs
                else:
                    raise DatasetFormatError(
                        f"{path}:{line_number}: unknown tag {tag!r}"
                    )
            except (ValueError, IndexError, PrefixError, TopologyError) as err:
                if isinstance(err, DatasetFormatError):
                    raise
                raise DatasetFormatError(
                    f"{path}:{line_number}: {err}"
                ) from err
    graph.via_ixp = via_ixp  # type: ignore[attr-defined]
    return graph
