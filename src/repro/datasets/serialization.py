"""CAIDA file formats: ``as-rel``, ``ppdc-ases`` and raw path files.

The paper's outputs ship as two text formats still published monthly:

* ``as-rel``: one link per line, ``<a>|<b>|<rel>`` where rel is ``-1``
  (a is b's provider) or ``0`` (peers), with ``#`` comments;
* ``ppdc-ases``: one cone per line, ``<asn> <member> <member> …``.

Writing and reading these exactly keeps the reproduction's artifacts
drop-in compatible with tooling built for CAIDA's data.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Set, TextIO, Tuple

from repro.relationships import Relationship


class DatasetFormatError(ValueError):
    """Raised on malformed dataset text."""


# ---------------------------------------------------------------------------
# as-rel
# ---------------------------------------------------------------------------


def save_as_rel(path: str, inference, comments: Iterable[str] = ()) -> int:
    """Write inferred relationships in ``as-rel`` format.

    ``inference`` is anything with ``links()`` / ``relationship()`` /
    ``provider_of()``.  Returns the number of links written.
    """
    lines: List[str] = [f"# {comment}" for comment in comments]
    rows: List[Tuple[int, int, int]] = []
    for a, b in inference.links():
        rel = inference.relationship(a, b)
        if rel is Relationship.P2C:
            provider = inference.provider_of(a, b)
            customer = b if provider == a else a
            rows.append((provider, customer, -1))
        elif rel is Relationship.P2P:
            rows.append((a, b, 0))
        elif rel is Relationship.S2S:
            rows.append((a, b, 2))
    rows.sort()
    lines.extend(f"{a}|{b}|{code}" for a, b, code in rows)
    with open(path, "w") as stream:
        stream.write("\n".join(lines) + "\n")
    return len(rows)


def load_as_rel(path: str) -> List[Tuple[int, int, Relationship]]:
    """Read an ``as-rel`` file into ``(a, b, rel)`` rows.

    For P2C rows, ``a`` is the provider — CAIDA's convention.
    """
    rows: List[Tuple[int, int, Relationship]] = []
    with open(path) as stream:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split("|")
            if len(parts) < 3:
                raise DatasetFormatError(
                    f"{path}:{line_number}: expected a|b|rel, got {line!r}"
                )
            try:
                a, b, code = int(parts[0]), int(parts[1]), int(parts[2])
            except ValueError:
                raise DatasetFormatError(
                    f"{path}:{line_number}: non-numeric field in {line!r}"
                ) from None
            if a < 0 or b < 0:
                raise DatasetFormatError(
                    f"{path}:{line_number}: negative ASN in {line!r}"
                )
            if a == b:
                raise DatasetFormatError(
                    f"{path}:{line_number}: self-link AS{a}|AS{b} in {line!r}"
                )
            try:
                rel = Relationship(code)
            except ValueError:
                raise DatasetFormatError(
                    f"{path}:{line_number}: unknown relationship code {code}"
                ) from None
            rows.append((a, b, rel))
    return rows


# ---------------------------------------------------------------------------
# ppdc-ases
# ---------------------------------------------------------------------------


def save_ppdc_ases(
    path: str, cones: Mapping[int, Set[int]], comments: Iterable[str] = ()
) -> int:
    """Write customer cones in ``ppdc-ases`` format."""
    lines: List[str] = [f"# {comment}" for comment in comments]
    for asn in sorted(cones):
        members = " ".join(str(m) for m in sorted(cones[asn]))
        lines.append(f"{asn} {members}" if members else str(asn))
    with open(path, "w") as stream:
        stream.write("\n".join(lines) + "\n")
    return len(cones)


def load_ppdc_ases(path: str) -> Dict[int, Set[int]]:
    """Read a ``ppdc-ases`` file back into a cone mapping."""
    cones: Dict[int, Set[int]] = {}
    with open(path) as stream:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            try:
                values = [int(field) for field in fields]
            except ValueError:
                raise DatasetFormatError(
                    f"{path}:{line_number}: non-numeric ASN in {line!r}"
                ) from None
            if any(value < 0 for value in values):
                raise DatasetFormatError(
                    f"{path}:{line_number}: negative ASN in {line!r}"
                )
            if values[0] in cones:
                raise DatasetFormatError(
                    f"{path}:{line_number}: duplicate cone for AS{values[0]}"
                )
            cones[values[0]] = set(values[1:])
    return cones


# ---------------------------------------------------------------------------
# raw path files
# ---------------------------------------------------------------------------


def save_paths(
    path: str, paths: Iterable[Tuple[int, ...]], comments: Iterable[str] = ()
) -> int:
    """Write AS paths one per line, hops separated by spaces."""
    lines: List[str] = [f"# {comment}" for comment in comments]
    count = 0
    for as_path in paths:
        lines.append(" ".join(str(asn) for asn in as_path))
        count += 1
    with open(path, "w") as stream:
        stream.write("\n".join(lines) + "\n")
    return count


def load_paths(path: str) -> List[Tuple[int, ...]]:
    """Read a path file written by :func:`save_paths`."""
    paths: List[Tuple[int, ...]] = []
    with open(path) as stream:
        for line_number, raw in enumerate(stream, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                hops = tuple(int(tok) for tok in line.split())
            except ValueError:
                raise DatasetFormatError(
                    f"{path}:{line_number}: non-numeric hop in {line!r}"
                ) from None
            if any(hop < 0 for hop in hops):
                raise DatasetFormatError(
                    f"{path}:{line_number}: negative ASN in {line!r}"
                )
            paths.append(hops)
    return paths
