"""RouteViews-style collection: vantage points, RIBs, path corpora.

A :class:`Collector` peers with a set of vantage-point ASes.  Each full
feed exports the VP's entire best-route table; each partial feed
exports only customer-learned and originated routes (many real VPs
peer with collectors and send only what they would send a peer — this
is the visibility artifact behind the paper's discussion of partial
views).

Collection runs one propagation per origin AS and materializes, per
vantage point, the observed AS path (with measurement noise applied)
and per-prefix RIB entries carrying relationship-encoding BGP
communities for the ASes that tag (the validation substrate).
"""

from __future__ import annotations

import multiprocessing
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro import perf
from repro.bgp.noise import NoiseConfig, PathNoiser
from repro.bgp.propagation import (
    CLS_CUSTOMER,
    CLS_ORIGIN,
    GraphIndex,
    RouteState,
    propagate_origin,
)
from repro.net.prefix import Prefix
from repro.relationships import RelClass
from repro.topology.model import ASGraph, ASType

# community encoding used by tagging ASes: (tagger_asn, _REL_CODE[relclass])
REL_CODE = {
    RelClass.CUSTOMER: 1001,
    RelClass.PEER: 1002,
    RelClass.PROVIDER: 1003,
}
CODE_REL = {code: rel for rel, code in REL_CODE.items()}


@dataclass(frozen=True)
class VantagePoint:
    """An AS exporting its table to the collector."""

    asn: int
    full_feed: bool = True


@dataclass(frozen=True)
class RibEntry:
    """One collector RIB row: who said it, for what, via which path."""

    vp: int
    prefix: Prefix
    path: Tuple[int, ...]  # collector order: VP first, origin last
    communities: Tuple[Tuple[int, int], ...] = ()

    @property
    def origin(self) -> int:
        return self.path[-1]


@dataclass
class PathCorpus:
    """Everything collected in one snapshot.

    ``paths`` is the deduplicated multiset of observed AS paths (the
    inference input); ``rib`` the prefix-level entries (the MRT and
    communities substrate).
    """

    vps: List[VantagePoint]
    paths: List[Tuple[int, ...]] = field(default_factory=list)
    path_counts: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    rib: List[RibEntry] = field(default_factory=list)

    def add_path(self, path: Tuple[int, ...]) -> None:
        if path in self.path_counts:
            self.path_counts[path] += 1
        else:
            self.path_counts[path] = 1
            self.paths.append(path)

    def __len__(self) -> int:
        return len(self.paths)

    def observed_asns(self) -> Set[int]:
        return {asn for path in self.paths for asn in path}

    def observed_links(self) -> Set[Tuple[int, int]]:
        """Unordered AS adjacencies present in the observed paths."""
        links: Set[Tuple[int, int]] = set()
        for path in self.paths:
            for a, b in zip(path, path[1:]):
                if a != b:
                    links.add((a, b) if a < b else (b, a))
        return links


@dataclass
class CollectorConfig:
    """How many VPs to deploy and how they are chosen.

    Mirrors reality: collectors preferentially attract feeds from large
    transit networks, with a minority of partial feeds.
    """

    n_vps: int = 20
    partial_feed_fraction: float = 0.25
    seed: int = 99
    # chance per (tagging AS) of attaching relationship communities
    community_tagger_fraction: float = 0.3
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    # when False, skip per-prefix RIB materialization (path corpus only)
    build_rib: bool = True
    # route leaks: this many multihomed ASes mis-export routes upward,
    # each for ``leak_origin_fraction`` of origins (a partial-table leak)
    n_route_leakers: int = 0
    leak_origin_fraction: float = 0.05
    # >1: fan per-origin propagation across this many worker processes.
    # The merge is deterministic (origin order) and per-path noise is
    # drawn from per-origin RNGs in serial and parallel runs alike, so
    # every worker count (including 0/1, i.e. serial) yields the same
    # corpus bit for bit.
    workers: int = 0


class Collector:
    """Runs the propagation and assembles the snapshot corpus.

    ``preset_vps`` lets a longitudinal caller keep the same feeds across
    snapshots (as RouteViews peers persist for years): existing VPs are
    retained when their AS still exists, and new ones are recruited only
    to reach the configured count.
    """

    def __init__(
        self,
        graph: ASGraph,
        config: Optional[CollectorConfig] = None,
        preset_vps: Optional[Sequence[VantagePoint]] = None,
        plane: str = "v4",
    ):
        """``plane`` selects the address family: ``"v6"`` routes over the
        subgraph of v6-enabled ASes and announces IPv6 prefixes."""
        if plane not in ("v4", "v6"):
            raise ValueError(f"unknown plane {plane!r}")
        self.graph = graph
        self.plane = plane
        self.config = config or CollectorConfig()
        restrict = graph.v6_asns() if plane == "v6" else None
        self.index = GraphIndex(graph, restrict=restrict)
        self._rng = random.Random(self.config.seed)
        retained = [
            vp for vp in (preset_vps or []) if vp.asn in self.index.index
        ]
        needed = max(0, self.config.n_vps - len(retained))
        exclude = {vp.asn for vp in retained}
        self.vps = sorted(
            retained + self._choose_vps(needed, exclude),
            key=lambda vp: vp.asn,
        )
        self.taggers = self._choose_taggers()
        self.leakers = self._choose_leakers()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _choose_vps(self, count: int, exclude: Set[int]) -> List[VantagePoint]:
        """Prefer transit networks (weighted by customer count), mimic the
        RouteViews feed mix; deterministic under the seed."""
        candidates = [
            asys.asn
            for asys in self.graph.ases()
            if asys.type
            in (ASType.CLIQUE, ASType.LARGE_TRANSIT, ASType.SMALL_TRANSIT,
                ASType.ACCESS)
            and asys.asn not in exclude
            and asys.asn in self.index.index  # v6 plane: v6 VPs only
        ]
        candidates.sort()
        weights = [len(self.graph.customers[asn]) + 1 for asn in candidates]
        chosen: List[int] = []
        pool = list(zip(candidates, weights))
        n = min(count, len(pool))
        for _ in range(n):
            total = sum(w for _, w in pool)
            pick = self._rng.uniform(0, total)
            acc = 0.0
            for i, (asn, w) in enumerate(pool):
                acc += w
                if pick <= acc:
                    chosen.append(asn)
                    pool.pop(i)
                    break
        vps = []
        for asn in sorted(chosen):
            partial = self._rng.random() < self.config.partial_feed_fraction
            vps.append(VantagePoint(asn=asn, full_feed=not partial))
        return vps

    def _choose_taggers(self) -> FrozenSet[int]:
        """ASes that attach relationship-encoding communities at ingress."""
        taggers = {
            asys.asn
            for asys in self.graph.ases()
            if asys.type is not ASType.IXP_RS
            and self._rng.random() < self.config.community_tagger_fraction
        }
        return frozenset(taggers)

    def _choose_leakers(self) -> List[int]:
        """Multihomed ASes that mis-export routes to their providers."""
        if self.config.n_route_leakers <= 0:
            return []
        candidates = sorted(
            asys.asn
            for asys in self.graph.ases()
            if len(self.graph.providers[asys.asn]) >= 2
        )
        count = min(self.config.n_route_leakers, len(candidates))
        return sorted(self._rng.sample(candidates, count))

    def _leakers_for_origin(self, origin_asn: int) -> Set[int]:
        """Which leakers mis-export this origin's routes (deterministic)."""
        if not self.leakers:
            return set()
        active = set()
        for leaker in self.leakers:
            draw = random.Random(
                (self.config.seed << 20) ^ (origin_asn << 8) ^ leaker
            ).random()
            if draw < self.config.leak_origin_fraction:
                active.add(leaker)
        return active

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------

    def run(self, origins: Optional[Sequence[int]] = None) -> PathCorpus:
        """Collect one snapshot.

        ``origins`` restricts which ASes announce (defaults to every
        routing AS with at least one prefix).  With
        ``CollectorConfig(workers=N)`` (N > 1) the per-origin
        propagations fan out across worker processes; results merge in
        origin order and noise is drawn from per-origin RNGs either
        way, so every worker count yields exactly the serial corpus.
        """
        with perf.stage("collect"):
            prefix_origins = (
                self.graph.prefix6_origins()
                if self.plane == "v6"
                else self.graph.prefix_origins()
            )
            by_origin: Dict[int, List[Prefix]] = {}
            for prefix, asn in prefix_origins.items():
                if asn in self.index.index:
                    by_origin.setdefault(asn, []).append(prefix)
            if origins is None:
                origin_list = sorted(by_origin)
            else:
                origin_list = sorted(set(origins) & set(by_origin))
            perf.counter("origins", len(origin_list))
            perf.counter("vps", len(self.vps))

            corpus = PathCorpus(vps=list(self.vps))
            workers = self.config.workers
            if workers and workers > 1 and origin_list:
                per_origin = self._run_parallel(
                    workers, origin_list, by_origin
                )
            else:
                per_origin = (
                    self._collect_origin(
                        origin_asn,
                        by_origin[origin_asn],
                        self._origin_noiser(origin_asn),
                    )
                    for origin_asn in origin_list
                )
            for observed_paths, rib_rows in per_origin:
                for path in observed_paths:
                    corpus.add_path(path)
                corpus.rib.extend(rib_rows)
            perf.counter("paths", len(corpus))
            return corpus

    def _run_parallel(
        self,
        workers: int,
        origin_list: List[int],
        by_origin: Dict[int, List[Prefix]],
    ) -> List[Tuple[List[Tuple[int, ...]], List["RibEntry"]]]:
        """Fan ``_collect_origin`` across processes, preserving order."""
        # a few chunks per worker smooths load imbalance between origins
        chunk_size = max(1, len(origin_list) // (workers * 4))
        chunks = [
            origin_list[i: i + chunk_size]
            for i in range(0, len(origin_list), chunk_size)
        ]
        payloads = [
            [(origin, by_origin[origin]) for origin in chunk]
            for chunk in chunks
        ]
        with multiprocessing.Pool(
            processes=workers, initializer=_pool_init, initargs=(self,)
        ) as pool:
            chunk_results = pool.map(_pool_collect_chunk, payloads)
        return [result for chunk in chunk_results for result in chunk]

    def _origin_noiser(self, origin_asn: int) -> PathNoiser:
        """A per-origin noiser: reproducible regardless of worker split."""
        cfg = self.config.noise
        return PathNoiser(
            self.graph, cfg, rng_seed=(cfg.seed << 20) ^ origin_asn
        )

    def _collect_origin(
        self,
        origin_asn: int,
        prefixes: List[Prefix],
        noiser: PathNoiser,
    ) -> Tuple[List[Tuple[int, ...]], List[RibEntry]]:
        """Propagate one origin and materialize what every VP exports."""
        state = propagate_origin(
            self.index, origin_asn,
            leakers=self._leakers_for_origin(origin_asn),
        )
        observed_paths: List[Tuple[int, ...]] = []
        rib_rows: List[RibEntry] = []
        for vp in self.vps:
            vp_idx = self.index.index.get(vp.asn)
            if vp_idx is None:
                continue
            route_cls = state.cls[vp_idx]
            if route_cls == 0:
                continue  # no route at this VP
            if not vp.full_feed and route_cls not in (
                CLS_ORIGIN, CLS_CUSTOMER
            ):
                continue  # partial feeds export only customer/originated
            true_path = state.path_from(self.index, vp_idx)
            assert true_path is not None
            observed = noiser.apply(true_path)
            observed_paths.append(observed)
            if self.config.build_rib:
                communities = self._communities_for(state, vp_idx)
                for prefix in prefixes:
                    rib_rows.append(
                        RibEntry(
                            vp=vp.asn,
                            prefix=prefix,
                            path=observed,
                            communities=communities,
                        )
                    )
        return observed_paths, rib_rows

    def _communities_for(
        self, state: RouteState, vp_idx: int
    ) -> Tuple[Tuple[int, int], ...]:
        """Relationship communities accumulated along the selected path.

        Each tagging AS on the path marks the class of the session the
        route entered on — exactly the convention community-based
        validation mines.
        """
        tags: List[Tuple[int, int]] = []
        node = vp_idx
        while node != -1 and node != state.origin:
            asn = self.index.asns[node]
            relclass = state.relclass(node)
            nexthop = state.nexthop[node]
            if asn in self.taggers and relclass in REL_CODE:
                # internal (sibling) sessions carry no external
                # relationship communities
                neighbor = self.index.asns[nexthop] if nexthop != -1 else None
                if neighbor is None or neighbor not in self.graph.siblings[asn]:
                    tags.append((asn, REL_CODE[relclass]))
            node = nexthop
        return tuple(tags)


# ---------------------------------------------------------------------------
# multiprocessing plumbing: the collector is shipped to each worker once
# (pool initializer), then chunks of origins stream through it
# ---------------------------------------------------------------------------

_POOL_COLLECTOR: Optional[Collector] = None


def _pool_init(collector: Collector) -> None:
    global _POOL_COLLECTOR
    _POOL_COLLECTOR = collector


def _pool_collect_chunk(
    items: List[Tuple[int, List[Prefix]]],
) -> List[Tuple[List[Tuple[int, ...]], List[RibEntry]]]:
    collector = _POOL_COLLECTOR
    assert collector is not None
    return [
        collector._collect_origin(
            origin, prefixes, collector._origin_noiser(origin)
        )
        for origin, prefixes in items
    ]


def collect(
    graph: ASGraph, config: Optional[CollectorConfig] = None
) -> PathCorpus:
    """One-call convenience: build a collector and run a full snapshot."""
    return Collector(graph, config).run()
