"""RouteViews-style collection: vantage points, RIBs, path corpora.

A :class:`Collector` peers with a set of vantage-point ASes.  Each full
feed exports the VP's entire best-route table; each partial feed
exports only customer-learned and originated routes (many real VPs
peer with collectors and send only what they would send a peer — this
is the visibility artifact behind the paper's discussion of partial
views).

Collection runs one propagation per origin AS and materializes, per
vantage point, the observed AS path (with measurement noise applied)
and per-prefix RIB entries carrying relationship-encoding BGP
communities for the ASes that tag (the validation substrate).

The per-origin work all lives in :class:`CollectionKernel`, which is
deliberately detached from the topology object: it needs only a dense
graph index (real or shared-memory-attached), the VP/tagger/leaker
choices, the clique and the IXP link map.  Serial runs drive one
kernel over the collector's own :class:`GraphIndex`; parallel runs
ship a small :class:`_ChunkSpec` to pool workers which rebuild the
kernel over a :class:`~repro.graph.shm.SharedGraphIndex` mapped
zero-copy from a :class:`~repro.graph.shm.SharedRelGraph` segment
(falling back to pickling the whole collector when shared memory or
numpy is unavailable).  Kernel code is identical on every path, so
worker count and transport never change a single emitted path.
"""

from __future__ import annotations

import atexit
import multiprocessing
import random
import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import perf
from repro.bgp.noise import NoiseConfig, PathNoiser
from repro.bgp.propagation import (
    CLS_CUSTOMER,
    CLS_ORIGIN,
    CLS_PEER,
    CLS_PROVIDER,
    GraphIndex,
    PropagationConfig,
    RouteState,
    propagate_batch,
    propagate_origin,
)
from repro.graph import shm
from repro.net.prefix import Prefix
from repro.relationships import RelClass
from repro.topology.model import ASGraph, ASType

# community encoding used by tagging ASes: (tagger_asn, _REL_CODE[relclass])
REL_CODE = {
    RelClass.CUSTOMER: 1001,
    RelClass.PEER: 1002,
    RelClass.PROVIDER: 1003,
}
CODE_REL = {code: rel for rel, code in REL_CODE.items()}
# the same encoding keyed by the propagation engine's route-class ints
_CLS_CODE = {
    CLS_CUSTOMER: REL_CODE[RelClass.CUSTOMER],
    CLS_PEER: REL_CODE[RelClass.PEER],
    CLS_PROVIDER: REL_CODE[RelClass.PROVIDER],
}


@dataclass(frozen=True)
class VantagePoint:
    """An AS exporting its table to the collector."""

    asn: int
    full_feed: bool = True


@dataclass(frozen=True)
class RibEntry:
    """One collector RIB row: who said it, for what, via which path."""

    vp: int
    prefix: Prefix
    path: Tuple[int, ...]  # collector order: VP first, origin last
    communities: Tuple[Tuple[int, int], ...] = ()

    @property
    def origin(self) -> int:
        return self.path[-1]


@dataclass
class PathCorpus:
    """Everything collected in one snapshot.

    ``paths`` is the deduplicated multiset of observed AS paths (the
    inference input); ``rib`` the prefix-level entries (the MRT and
    communities substrate).
    """

    vps: List[VantagePoint]
    paths: List[Tuple[int, ...]] = field(default_factory=list)
    path_counts: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    rib: List[RibEntry] = field(default_factory=list)
    # memoized observed_asns()/observed_links(); add_path invalidates
    _asns_cache: Optional[Set[int]] = field(
        default=None, repr=False, compare=False
    )
    _links_cache: Optional[Set[Tuple[int, int]]] = field(
        default=None, repr=False, compare=False
    )

    def add_path(self, path: Tuple[int, ...]) -> None:
        self._asns_cache = None
        self._links_cache = None
        if path in self.path_counts:
            self.path_counts[path] += 1
        else:
            self.path_counts[path] = 1
            self.paths.append(path)

    def __len__(self) -> int:
        return len(self.paths)

    def observed_asns(self) -> Set[int]:
        if self._asns_cache is None:
            self._asns_cache = {
                asn for path in self.paths for asn in path
            }
        return self._asns_cache

    def observed_links(self) -> Set[Tuple[int, int]]:
        """Unordered AS adjacencies present in the observed paths."""
        if self._links_cache is None:
            links: Set[Tuple[int, int]] = set()
            for path in self.paths:
                for a, b in zip(path, path[1:]):
                    if a != b:
                        links.add((a, b) if a < b else (b, a))
            self._links_cache = links
        return self._links_cache


@dataclass
class CollectorConfig:
    """How many VPs to deploy and how they are chosen.

    Mirrors reality: collectors preferentially attract feeds from large
    transit networks, with a minority of partial feeds.
    """

    n_vps: int = 20
    partial_feed_fraction: float = 0.25
    seed: int = 99
    # chance per (tagging AS) of attaching relationship communities
    community_tagger_fraction: float = 0.3
    noise: NoiseConfig = field(default_factory=NoiseConfig)
    # when False, skip per-prefix RIB materialization (path corpus only)
    build_rib: bool = True
    # route leaks: this many multihomed ASes mis-export routes upward,
    # each for ``leak_origin_fraction`` of origins (a partial-table leak)
    n_route_leakers: int = 0
    leak_origin_fraction: float = 0.05
    # >1: fan per-origin propagation across this many worker processes.
    # The merge is deterministic (strided chunks reassembled in origin
    # order) and per-path noise is drawn from per-origin RNGs in serial
    # and parallel runs alike, so every worker count (including 0/1,
    # i.e. serial) yields the same corpus bit for bit.  Workers come
    # from a process-wide persistent pool reused across runs.
    workers: int = 0
    # how the graph reaches those workers: None (auto) maps the frozen
    # graph into a shared-memory segment when numpy and
    # multiprocessing.shared_memory are available, pickling only a
    # small spec per chunk; False forces the legacy
    # pickle-the-collector transport; True requests shared memory and
    # degrades to the pickle transport when unavailable.  The kernel
    # code is shared, so the transport never changes the corpus.
    shared_memory: Optional[bool] = None
    # which propagation engine computes per-origin route state
    propagation: PropagationConfig = field(default_factory=PropagationConfig)


class CollectionKernel:
    """Per-origin collection over a dense graph index.

    Holds exactly what materializing one origin's observation needs —
    the config, a :class:`GraphIndex`-shaped adjacency (real or
    attached from shared memory), the VP set, tagger/sibling node ids,
    the leaker list, the clique, and the IXP link map — plus the
    process-local noise caches.  Every execution path (serial, pickle
    workers, shared-memory workers) runs this same code, which is what
    makes the corpus transport-invariant.
    """

    def __init__(
        self,
        config: CollectorConfig,
        index,
        vps: Sequence[VantagePoint],
        tagger_nodes: Set[int],
        sibling_nodes: Dict[int, Set[int]],
        leakers: Sequence[int],
        clique: Sequence[int],
        via_ixp: Dict[Tuple[int, int], int],
    ):
        self.config = config
        self.index = index
        self.vps = list(vps)
        self.tagger_nodes = tagger_nodes
        self.sibling_nodes = sibling_nodes
        self.leakers = list(leakers)
        self.clique = clique
        self.via_ixp = via_ixp
        # shared across per-origin noisers: all deterministic in
        # (graph, noise seed), so sharing never changes an emitted path
        self._noise_prepends: Dict[Tuple[int, int], int] = {}
        self._noise_edges: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------
    # per-origin machinery
    # ------------------------------------------------------------------

    def _leakers_for_origin(self, origin_asn: int) -> Set[int]:
        """Which leakers mis-export this origin's routes (deterministic)."""
        if not self.leakers:
            return set()
        active = set()
        for leaker in self.leakers:
            draw = random.Random(
                (self.config.seed << 20) ^ (origin_asn << 8) ^ leaker
            ).random()
            if draw < self.config.leak_origin_fraction:
                active.add(leaker)
        return active

    def _origin_noiser(self, origin_asn: int) -> PathNoiser:
        """A per-origin noiser: reproducible regardless of worker split."""
        cfg = self.config.noise
        return PathNoiser(
            None,
            cfg,
            rng_seed=(cfg.seed << 20) ^ origin_asn,
            prepend_cache=self._noise_prepends,
            clique=self.clique,
            edge_cache=self._noise_edges,
            via_ixp=self.via_ixp,
        )

    def collect_block(
        self,
        origin_list: Sequence[int],
        by_origin: Dict[int, List[Prefix]],
    ) -> List[Tuple[List[Tuple[int, ...]], List[RibEntry]]]:
        """Collect ``origin_list`` in engine-sized blocks, in order.

        One batched propagation per block, then per-origin
        materialization in three phases (path walk, noise, RIB) whose
        time lands on the ``collect/propagate|paths|noise|rib``
        substages.  Phase order per origin matches the reference
        per-VP loop, so the per-origin noise RNG is consumed in the
        same sequence and the corpus is bit-identical.
        """
        pcfg = self.config.propagation
        build_rib = self.config.build_rib
        clock = time.perf_counter
        results: List[Tuple[List[Tuple[int, ...]], List[RibEntry]]] = []
        block_size = max(1, pcfg.batch_size)
        for start in range(0, len(origin_list), block_size):
            block = list(origin_list[start: start + block_size])
            t0 = clock()
            leakers = {
                asn: active
                for asn in block
                if (active := self._leakers_for_origin(asn))
            }
            states = propagate_batch(self.index, block, leakers, pcfg)
            perf.add_seconds("propagate", clock() - t0)
            t_paths = t_noise = t_rib = 0.0
            for origin_asn, state in zip(block, states):
                noiser = self._origin_noiser(origin_asn)
                t0 = clock()
                exported = self._exported_paths(state)
                t_paths += clock() - t0
                t0 = clock()
                observed = [
                    (vp_asn, vp_idx, noiser.apply(path))
                    for vp_asn, vp_idx, path in exported
                ]
                t_noise += clock() - t0
                rib_rows: List[RibEntry] = []
                if build_rib:
                    t0 = clock()
                    rib_rows = self._rib_rows(
                        state, observed, by_origin[origin_asn]
                    )
                    t_rib += clock() - t0
                results.append(
                    ([path for _, _, path in observed], rib_rows)
                )
            perf.add_seconds("paths", t_paths)
            perf.add_seconds("noise", t_noise)
            perf.add_seconds("rib", t_rib)
        return results

    def collect_origin(
        self,
        origin_asn: int,
        prefixes: List[Prefix],
        noiser: PathNoiser,
    ) -> Tuple[List[Tuple[int, ...]], List[RibEntry]]:
        """Propagate one origin and materialize what every VP exports.

        The one-origin composition of the phase helpers — the reference
        path the batched :meth:`collect_block` is checked against.
        """
        state = propagate_origin(
            self.index, origin_asn,
            leakers=self._leakers_for_origin(origin_asn),
        )
        observed = [
            (vp_asn, vp_idx, noiser.apply(path))
            for vp_asn, vp_idx, path in self._exported_paths(state)
        ]
        rib_rows: List[RibEntry] = []
        if self.config.build_rib:
            rib_rows = self._rib_rows(state, observed, prefixes)
        return [path for _, _, path in observed], rib_rows

    def _exported_paths(
        self, state: RouteState
    ) -> List[Tuple[int, int, Tuple[int, ...]]]:
        """``(vp_asn, vp_index, true_path)`` per VP exporting this route."""
        out: List[Tuple[int, int, Tuple[int, ...]]] = []
        index_of = self.index.index
        cls = state.cls
        for vp in self.vps:
            vp_idx = index_of.get(vp.asn)
            if vp_idx is None:
                continue
            route_cls = cls[vp_idx]
            if route_cls == 0:
                continue  # no route at this VP
            if not vp.full_feed and route_cls not in (
                CLS_ORIGIN, CLS_CUSTOMER
            ):
                continue  # partial feeds export only customer/originated
            true_path = state.path_from(self.index, vp_idx)
            assert true_path is not None
            out.append((vp.asn, vp_idx, true_path))
        return out

    def _rib_rows(
        self,
        state: RouteState,
        observed: List[Tuple[int, int, Tuple[int, ...]]],
        prefixes: List[Prefix],
    ) -> List[RibEntry]:
        """Per-prefix RIB entries for every exported (noised) path."""
        rib_rows: List[RibEntry] = []
        for vp_asn, vp_idx, path in observed:
            communities = self._communities_for(state, vp_idx)
            for prefix in prefixes:
                rib_rows.append(
                    RibEntry(
                        vp=vp_asn,
                        prefix=prefix,
                        path=path,
                        communities=communities,
                    )
                )
        return rib_rows

    def _communities_for(
        self, state: RouteState, vp_idx: int
    ) -> Tuple[Tuple[int, int], ...]:
        """Relationship communities accumulated along the selected path.

        Each tagging AS on the path marks the class of the session the
        route entered on — exactly the convention community-based
        validation mines.
        """
        tags: List[Tuple[int, int]] = []
        node = vp_idx
        origin = state.origin
        cls = state.cls
        nexthop = state.nexthop
        tagger_nodes = self.tagger_nodes
        asns = self.index.asns
        while node != -1 and node != origin:
            nh = nexthop[node]
            if node in tagger_nodes:
                code = _CLS_CODE.get(cls[node])
                # internal (sibling) sessions carry no external
                # relationship communities
                if code is not None and (
                    nh == -1 or nh not in self.sibling_nodes[node]
                ):
                    tags.append((asns[node], code))
            node = nh
        return tuple(tags)


@dataclass(frozen=True)
class _ChunkSpec:
    """What a shared-memory worker needs besides the mapped segment.

    Everything here is small — the graph itself travels as the segment
    name.  Workers rebuild a :class:`CollectionKernel` from this spec
    plus the cached attachment.
    """

    segment: str
    config: CollectorConfig
    vps: Tuple[VantagePoint, ...]
    tagger_nodes: FrozenSet[int]
    sibling_nodes: Dict[int, Set[int]]
    leakers: Tuple[int, ...]
    clique: Tuple[int, ...]


class Collector:
    """Runs the propagation and assembles the snapshot corpus.

    ``preset_vps`` lets a longitudinal caller keep the same feeds across
    snapshots (as RouteViews peers persist for years): existing VPs are
    retained when their AS still exists, and new ones are recruited only
    to reach the configured count.
    """

    def __init__(
        self,
        graph: ASGraph,
        config: Optional[CollectorConfig] = None,
        preset_vps: Optional[Sequence[VantagePoint]] = None,
        plane: str = "v4",
    ):
        """``plane`` selects the address family: ``"v6"`` routes over the
        subgraph of v6-enabled ASes and announces IPv6 prefixes."""
        if plane not in ("v4", "v6"):
            raise ValueError(f"unknown plane {plane!r}")
        self.graph = graph
        self.plane = plane
        self.config = config or CollectorConfig()
        restrict = graph.v6_asns() if plane == "v6" else None
        self.index = GraphIndex(graph, restrict=restrict)
        self._rng = random.Random(self.config.seed)
        retained = [
            vp for vp in (preset_vps or []) if vp.asn in self.index.index
        ]
        needed = max(0, self.config.n_vps - len(retained))
        exclude = {vp.asn for vp in retained}
        self.vps = sorted(
            retained + self._choose_vps(needed, exclude),
            key=lambda vp: vp.asn,
        )
        self.taggers = self._choose_taggers()
        self.leakers = self._choose_leakers()
        tagger_nodes = {
            self.index.index[asn]
            for asn in self.taggers
            if asn in self.index.index
        }
        sibling_nodes: Dict[int, Set[int]] = {
            node: {
                self.index.index[s]
                for s in graph.siblings[self.index.asns[node]]
                if s in self.index.index
            }
            for node in tagger_nodes
        }
        self.kernel = CollectionKernel(
            config=self.config,
            index=self.index,
            vps=self.vps,
            tagger_nodes=tagger_nodes,
            sibling_nodes=sibling_nodes,
            leakers=self.leakers,
            clique=graph.clique_asns(),
            via_ixp=getattr(graph, "via_ixp", {}),
        )
        # lazily packed shared-memory segment, unlinked when this
        # collector is collected (plus the module atexit backstop)
        self._shared_segment: Optional[str] = None
        self._segment_finalizer: Optional[weakref.finalize] = None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def _choose_vps(self, count: int, exclude: Set[int]) -> List[VantagePoint]:
        """Prefer transit networks (weighted by customer count), mimic the
        RouteViews feed mix; deterministic under the seed."""
        candidates = [
            asys.asn
            for asys in self.graph.ases()
            if asys.type
            in (ASType.CLIQUE, ASType.LARGE_TRANSIT, ASType.SMALL_TRANSIT,
                ASType.ACCESS)
            and asys.asn not in exclude
            and asys.asn in self.index.index  # v6 plane: v6 VPs only
        ]
        candidates.sort()
        weights = [len(self.graph.customers[asn]) + 1 for asn in candidates]
        chosen: List[int] = []
        pool = list(zip(candidates, weights))
        n = min(count, len(pool))
        for _ in range(n):
            total = sum(w for _, w in pool)
            pick = self._rng.uniform(0, total)
            acc = 0.0
            for i, (asn, w) in enumerate(pool):
                acc += w
                if pick <= acc:
                    chosen.append(asn)
                    pool.pop(i)
                    break
        vps = []
        for asn in sorted(chosen):
            partial = self._rng.random() < self.config.partial_feed_fraction
            vps.append(VantagePoint(asn=asn, full_feed=not partial))
        return vps

    def _choose_taggers(self) -> FrozenSet[int]:
        """ASes that attach relationship-encoding communities at ingress."""
        taggers = {
            asys.asn
            for asys in self.graph.ases()
            if asys.type is not ASType.IXP_RS
            and self._rng.random() < self.config.community_tagger_fraction
        }
        return frozenset(taggers)

    def _choose_leakers(self) -> List[int]:
        """Multihomed ASes that mis-export routes to their providers."""
        if self.config.n_route_leakers <= 0:
            return []
        candidates = sorted(
            asys.asn
            for asys in self.graph.ases()
            if len(self.graph.providers[asys.asn]) >= 2
        )
        count = min(self.config.n_route_leakers, len(candidates))
        return sorted(self._rng.sample(candidates, count))

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------

    def run(self, origins: Optional[Sequence[int]] = None) -> PathCorpus:
        """Collect one snapshot.

        ``origins`` restricts which ASes announce (defaults to every
        routing AS with at least one prefix).  With
        ``CollectorConfig(workers=N)`` (N > 1) the per-origin
        propagations fan out across worker processes; results merge in
        origin order and noise is drawn from per-origin RNGs either
        way, so every worker count yields exactly the serial corpus.
        """
        with perf.stage("collect"):
            prefix_origins = (
                self.graph.prefix6_origins()
                if self.plane == "v6"
                else self.graph.prefix_origins()
            )
            by_origin: Dict[int, List[Prefix]] = {}
            for prefix, asn in prefix_origins.items():
                if asn in self.index.index:
                    by_origin.setdefault(asn, []).append(prefix)
            if origins is None:
                origin_list = sorted(by_origin)
            else:
                origin_list = sorted(set(origins) & set(by_origin))
            perf.counter("origins", len(origin_list))
            perf.counter("vps", len(self.vps))

            corpus = PathCorpus(vps=list(self.vps))
            workers = self.config.workers
            if workers and workers > 1 and origin_list:
                per_origin = self._run_parallel(
                    workers, origin_list, by_origin
                )
            else:
                per_origin = self.kernel.collect_block(
                    origin_list, by_origin
                )
            for observed_paths, rib_rows in per_origin:
                for path in observed_paths:
                    corpus.add_path(path)
                corpus.rib.extend(rib_rows)
            perf.counter("paths", len(corpus))
            return corpus

    def _use_shared_memory(self) -> bool:
        """Auto/forced/disabled transport choice, with graceful fallback."""
        if self.config.shared_memory is False:
            return False
        # auto and forced alike degrade to the pickle transport when
        # the codec cannot run (no numpy, no shared_memory module)
        return shm.HAS_SHARED_MEMORY

    def _chunk_spec(self) -> _ChunkSpec:
        """The worker spec, packing the graph segment on first use."""
        if self._shared_segment is None:
            packed = shm.SharedRelGraph.pack(
                self.index.rel, via_ixp=self.kernel.via_ixp
            )
            self._shared_segment = packed.name
            self._segment_finalizer = weakref.finalize(
                self, shm.release, packed.name
            )
        return _ChunkSpec(
            segment=self._shared_segment,
            config=self.config,
            vps=tuple(self.vps),
            tagger_nodes=frozenset(self.kernel.tagger_nodes),
            sibling_nodes=self.kernel.sibling_nodes,
            leakers=tuple(self.leakers),
            clique=tuple(self.kernel.clique),
        )

    def _run_parallel(
        self,
        workers: int,
        origin_list: List[int],
        by_origin: Dict[int, List[Prefix]],
    ) -> List[Tuple[List[Tuple[int, ...]], List["RibEntry"]]]:
        """Fan origin blocks across the persistent pool, preserving order.

        Each worker gets one strided chunk ``origin_list[w::workers]``
        — every stride interleaves cheap and expensive origins, so no
        worker is left holding a heavy tail.  The chunks come back in
        worker order and are re-interleaved the same way, which is
        exactly origin order.

        With the shared-memory transport, the graph crosses the
        process boundary once as a named segment; each task pickles
        only a :class:`_ChunkSpec` and its origin slice.
        """
        workers = min(workers, len(origin_list))
        pool = _worker_pool(workers)
        if self._use_shared_memory():
            spec = self._chunk_spec()
            payloads = [
                (spec, [(o, by_origin[o]) for o in origin_list[w::workers]])
                for w in range(workers)
            ]
            chunk_results = pool.map(_pool_collect_shared, payloads)
        else:
            payloads = [
                (self, [(o, by_origin[o]) for o in origin_list[w::workers]])
                for w in range(workers)
            ]
            chunk_results = pool.map(_pool_collect_chunk, payloads)
        results: List[Tuple[List[Tuple[int, ...]], List[RibEntry]]] = (
            [None] * len(origin_list)  # type: ignore[list-item]
        )
        for w, chunk in enumerate(chunk_results):
            results[w:: workers] = chunk
        return results

    def release_shared(self) -> None:
        """Unlink this collector's graph segment now (idempotent)."""
        if self._segment_finalizer is not None:
            self._segment_finalizer()
            self._segment_finalizer = None
        self._shared_segment = None


# ---------------------------------------------------------------------------
# multiprocessing plumbing: one persistent worker pool per process,
# reused across every Collector.run() (each era of a timeseries, each
# plane of a congruence run) instead of forking a fresh pool per call.
# With the shared-memory transport each task ships a small spec and the
# workers map the one packed graph segment; the legacy transport rides
# the collector along in each payload instead.
# ---------------------------------------------------------------------------

_WORKER_POOL: Optional[multiprocessing.pool.Pool] = None
_WORKER_POOL_SIZE = 0


def _worker_pool(workers: int) -> multiprocessing.pool.Pool:
    """The persistent pool, grown (never shrunk) to ``workers`` processes.

    A run needing fewer workers than the pool holds just submits fewer
    chunks — idle processes cost nothing — so alternating worker counts
    does not thrash fork/teardown.
    """
    global _WORKER_POOL, _WORKER_POOL_SIZE
    if _WORKER_POOL is not None and _WORKER_POOL_SIZE < workers:
        shutdown_worker_pool()
    if _WORKER_POOL is None:
        _WORKER_POOL = multiprocessing.Pool(processes=workers)
        _WORKER_POOL_SIZE = workers
    return _WORKER_POOL


def shutdown_worker_pool() -> None:
    """Tear down the persistent collection pool (no-op when absent)."""
    global _WORKER_POOL, _WORKER_POOL_SIZE
    if _WORKER_POOL is not None:
        _WORKER_POOL.terminate()
        _WORKER_POOL.join()
        _WORKER_POOL = None
        _WORKER_POOL_SIZE = 0


def shutdown_pool() -> None:
    """Public teardown hook: the pool *and* any graph segments this
    process still owns — leaves no semaphores or ``/dev/shm`` entries
    behind (also registered via ``atexit``)."""
    shutdown_worker_pool()
    shm.unlink_all()


atexit.register(shutdown_worker_pool)


def _pool_collect_shared(
    payload: Tuple[_ChunkSpec, List[Tuple[int, List[Prefix]]]],
) -> List[Tuple[List[Tuple[int, ...]], List[RibEntry]]]:
    """Collect one strided chunk over the mapped graph segment.

    The attachment is cached per worker process per segment name, so a
    longitudinal run attaches each era's graph once no matter how many
    ``run()`` calls fan out over it.
    """
    spec, items = payload
    index = shm.attach_index(spec.segment)
    kernel = CollectionKernel(
        config=spec.config,
        index=index,
        vps=spec.vps,
        tagger_nodes=spec.tagger_nodes,
        sibling_nodes=spec.sibling_nodes,
        leakers=spec.leakers,
        clique=spec.clique,
        via_ixp=index.via_ixp,
    )
    by_origin = dict(items)
    return kernel.collect_block([o for o, _ in items], by_origin)


def _pool_collect_chunk(
    payload: Tuple[Collector, List[Tuple[int, List[Prefix]]]],
) -> List[Tuple[List[Tuple[int, ...]], List[RibEntry]]]:
    """Legacy transport: the whole collector rides in the payload.

    Runs the same kernel as every other path, so transport changes
    neither the engine nor any emitted path; the substage timers land
    on the worker's process-local recorder by design (the parent's
    profile shows fan-out wall clock).
    """
    collector, items = payload
    by_origin = dict(items)
    return collector.kernel.collect_block([o for o, _ in items], by_origin)


def collect(
    graph: ASGraph, config: Optional[CollectorConfig] = None
) -> PathCorpus:
    """One-call convenience: build a collector and run a full snapshot."""
    return Collector(graph, config).run()
