"""Gao–Rexford route propagation.

For one origin AS, computes the route every other AS selects under the
standard policy model:

* **preference** — customer-learned routes beat peer-learned routes
  beat provider-learned routes; within a class, shorter AS paths win,
  and ties break on the lowest next-hop ASN (deterministic);
* **export** — routes learned from customers (or originated) are
  exported to everyone; routes learned from peers or providers are
  exported only to customers.

These two rules produce exactly the valley-free paths whose shape the
paper's inference algorithm exploits, and the limited-visibility
artifacts (peering links seen only from below) its heuristics survive.

The implementation is three deterministic sweeps:

1. customer routes climb provider edges (level-synchronous BFS);
2. peer routes hop one peering edge off any AS with a customer route;
3. selected routes descend customer edges (bucketed by path length).

Results are flat arrays indexed by a dense AS index, so a full
propagation is O(V + E) per origin with small constants.

Two engines implement those sweeps:

* :func:`propagate_origin` — the reference pure-Python sweep, one
  origin at a time;
* :func:`propagate_batch` — the batched engine: K origins propagate
  simultaneously over ``(K, n)`` numpy route-class / path-length /
  next-hop matrices and a CSR adjacency built once per
  :class:`GraphIndex`.  Each sweep level processes every origin's
  frontier in one set of vectorized scatter/gather passes, and AS
  paths are reconstructed lazily (only at the rows a caller walks,
  e.g. vantage points) instead of for every AS.

The batched engine is bit-for-bit equivalent to the reference — same
classes, next hops, path lengths and therefore same reconstructed
paths — which the equivalence tests and the QA ``propagation/*``
invariant family assert on every generated world shape.
``PropagationConfig(batched=False)`` (or a missing numpy) falls back
to the reference sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.graph.csr import MAX_INT32, Csr, CsrOverflowError
from repro.graph.relgraph import RelGraph
from repro.relationships import RelClass
from repro.topology.model import ASGraph

try:  # numpy backs the batched engine; the pure-Python sweeps are the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the standard image
    _np = None

# route classes as small ints for the flat arrays
NO_ROUTE = 0
CLS_ORIGIN = 1
CLS_CUSTOMER = 2
CLS_PEER = 3
CLS_PROVIDER = 4

_CLASS_TO_RELCLASS = {
    CLS_ORIGIN: RelClass.ORIGIN,
    CLS_CUSTOMER: RelClass.CUSTOMER,
    CLS_PEER: RelClass.PEER,
    CLS_PROVIDER: RelClass.PROVIDER,
}


@dataclass(frozen=True)
class PropagationConfig:
    """How per-origin route state is computed.

    ``batched=True`` (the default) propagates origins in blocks of
    ``batch_size`` through the numpy engine; ``batched=False`` keeps
    the reference one-origin-at-a-time sweeps.  Both produce identical
    route state, so the flag only trades speed for simplicity.

    ``max_block_cells`` caps the cell-array footprint of one block
    (``origins × stride``): at internet scale a full ``batch_size``
    block would allocate gigabytes, so the engine shrinks the block
    instead — block size never changes results, only memory.

    ``array_state=True`` returns :class:`RouteState` rows as int32
    numpy slices instead of Python lists — the internet-scale path,
    where materializing millions of Python ints per block dominates
    the profile.  Both row forms hold identical values.
    """

    batched: bool = True
    batch_size: int = 128
    # 2^23 cells ≈ 32 MB of int32 state per array: big enough that a
    # 100k-AS stride still gets 64-origin blocks (the measured sweet
    # spot there), small enough to stay cache-friendly at every scale
    max_block_cells: int = 1 << 23
    array_state: bool = False


class GraphIndex:
    """Dense-integer view of an :class:`ASGraph` for fast propagation.

    A thin wrapper over a :class:`~repro.graph.relgraph.RelGraph`
    compiled by :meth:`RelGraph.from_as_graph`: ASNs map to indexes
    ``0..n-1`` in ascending ASN order (so *lowest ASN* tie-breaks are
    exactly *lowest node index* tie-breaks), adjacency is the graph's
    per-id sorted index lists, and :meth:`csr` exposes its shared CSR
    arrays.  Sibling links are treated as peering links for propagation
    purposes (the generator defaults to zero siblings).  IXP
    route-server ASes do not participate in routing at all — they are
    data-plane artifacts injected later by the noise model.
    """

    def __init__(
        self,
        graph: Optional[ASGraph] = None,
        restrict: Optional[Set[int]] = None,
        *,
        rel: Optional[RelGraph] = None,
    ):
        """``restrict`` limits routing to a subset of ASNs — used for the
        IPv6 plane, where only v6-enabled networks participate.

        ``rel`` adopts an already-compiled :class:`RelGraph` without
        re-indexing — the path the snapshot query service and the
        prediction engine use, where the columnar graph already exists
        and rebuilding an :class:`ASGraph` would only copy it."""
        if rel is None:
            if graph is None:
                raise TypeError("GraphIndex needs an ASGraph or a RelGraph")
            rel = RelGraph.from_as_graph(graph, restrict=restrict)
        self.graph = graph
        self.rel = rel
        self.asns: List[int] = self.rel.index.asns
        self.index: Dict[int, int] = self.rel.index.ids
        self.providers: List[List[int]] = self.rel.providers
        self.customers: List[List[int]] = self.rel.customers
        self.peers: List[List[int]] = self.rel.peers

    def __len__(self) -> int:
        return len(self.asns)

    def csr(self) -> Optional[Csr]:
        """The flat-array adjacency view (built once, ``None`` sans numpy)."""
        if _np is None:
            return None
        return self.rel.csr()


@dataclass
class RouteState:
    """Per-AS selected route for a single origin.

    ``cls[i]`` is one of the ``CLS_*``/``NO_ROUTE`` constants,
    ``nexthop[i]`` the index of the neighbor the route was learned from
    (-1 for the origin), ``pathlen[i]`` the AS-path length in edges.
    """

    origin: int  # dense index of the origin
    cls: List[int]
    nexthop: List[int]
    pathlen: List[int]

    def relclass(self, i: int) -> Optional[RelClass]:
        code = self.cls[i]
        if code == NO_ROUTE:
            return None
        return _CLASS_TO_RELCLASS[code]

    def path_from(self, index: GraphIndex, i: int) -> Optional[Tuple[int, ...]]:
        """AS path (ASNs, collector order: ``i`` first, origin last)."""
        if self.cls[i] == NO_ROUTE:
            return None
        hops: List[int] = []
        node = i
        while node != -1:
            hops.append(index.asns[node])
            if node == self.origin:
                break
            node = self.nexthop[node]
        return tuple(hops)


def propagate_origin(
    index: GraphIndex,
    origin_asn: int,
    leakers: Optional[Set[int]] = None,
) -> RouteState:
    """Compute every AS's selected route toward ``origin_asn``.

    ``leakers`` (ASNs) violate export policy: they re-announce their
    selected route to their providers even when it was learned from a
    peer or provider — the classic *route leak*.  Because leaked routes
    arrive at the provider looking like customer routes, they are
    highly preferred and can hijack selection far beyond the leaker;
    the resulting observed paths contain valleys, which is exactly the
    artifact the inference pipeline must survive.
    """
    n = len(index)
    origin = index.index[origin_asn]
    cls = [NO_ROUTE] * n
    nexthop = [-1] * n
    pathlen = [0] * n

    _sweep_up(index, origin, cls, nexthop, pathlen)
    _sweep_peers(index, cls, nexthop, pathlen)
    _sweep_down(index, cls, nexthop, pathlen)
    if leakers:
        leak_indexes = {
            index.index[asn] for asn in leakers if asn in index.index
        }
        _leak_pass(index, leak_indexes, cls, nexthop, pathlen)
    return RouteState(origin=origin, cls=cls, nexthop=nexthop, pathlen=pathlen)


def propagate_batch(
    index: GraphIndex,
    origin_asns: Sequence[int],
    leakers_by_origin: Optional[Mapping[int, Set[int]]] = None,
    config: Optional[PropagationConfig] = None,
) -> List[RouteState]:
    """Route state for a block of origins, one :class:`RouteState` each.

    With the batched engine enabled (and numpy importable) all origins
    propagate simultaneously over ``(K, n)`` arrays; the returned
    states are row views into those arrays, so paths are materialized
    only where a caller walks them.  Origins with active ``leakers``
    get the reference :func:`_leak_pass` applied to their row after
    the shared sweeps — the leak perturbation is rare and inherently
    sequential, and running it per row keeps it bit-identical.

    Falls back to :func:`propagate_origin` per origin when batching is
    off or numpy is missing; either way the results are identical.
    """
    config = config or PropagationConfig()
    leakers_by_origin = leakers_by_origin or {}
    if not config.batched or _np is None or not origin_asns:
        return [
            propagate_origin(index, asn, leakers=leakers_by_origin.get(asn))
            for asn in origin_asns
        ]

    # cap the per-block cell footprint: a 100k-AS world at the default
    # batch size would allocate origins × stride ≈ 1.7e7 cells per
    # array; shrinking the block trades nothing but wall-clock shape
    stride = 1 << max(1, (len(index) - 1).bit_length())
    step = max(1, min(config.batch_size, config.max_block_cells // stride))
    states: List[RouteState] = []
    for start in range(0, len(origin_asns), step):
        block = origin_asns[start: start + step]
        states.extend(
            _propagate_block(
                index, block, leakers_by_origin, config.array_state
            )
        )
    return states


def _propagate_block(
    index: GraphIndex,
    origin_asns: Sequence[int],
    leakers_by_origin: Mapping[int, Set[int]],
    array_state: bool = False,
) -> List[RouteState]:
    """One block of the batched engine: K origins over flat cell arrays.

    A cell ``(k, node)`` lives at key ``k * stride + node`` where
    ``stride`` is n rounded up to a power of two, so splitting a cell
    key into batch row and node is a shift/mask instead of a div/mod.

    Dtypes narrow independently: the class/next-hop/length state is
    always int32 (node indexes are bounded by :data:`MAX_INT32`), cell
    keys span ``K * stride``, and the ``(cell, source)`` sort
    composites additionally shift by ``shift`` — each widens to int64
    only when its own range demands it, so internet-scale blocks keep
    the state and cell traffic at 4 bytes while only the transient
    sort keys pay for 8.
    """
    csr = index.csr()
    assert csr is not None
    n = len(index)
    K = len(origin_asns)
    stride = 1 << max(1, (n - 1).bit_length())
    shift = stride.bit_length() - 1
    cells = K * stride
    if (cells << shift) >= 2**63:
        raise CsrOverflowError(
            f"batch of {K} origins over stride {stride} overflows the "
            f"64-bit composite key space; lower batch_size"
        )
    cell_dtype = _np.int32 if cells <= MAX_INT32 else _np.int64
    comp_dtype = _np.int32 if (cells << shift) <= MAX_INT32 else _np.int64
    origins = _np.asarray(
        [index.index[asn] for asn in origin_asns], dtype=cell_dtype
    )
    cls = _np.zeros(cells, dtype=_np.int32)
    nexthop = _np.full(cells, -1, dtype=_np.int32)
    pathlen = _np.zeros(cells, dtype=_np.int32)

    origin_cells = _np.arange(K, dtype=cell_dtype) * stride + origins
    cls[origin_cells] = CLS_ORIGIN
    geom = _Geometry(stride, shift, stride - 1, cell_dtype, comp_dtype)
    _batch_sweep_up(csr, geom, origin_cells, cls, nexthop, pathlen)
    _batch_sweep_peers(csr, geom, cls, nexthop, pathlen)
    _batch_sweep_down(csr, geom, cls, nexthop, pathlen)

    states: List[RouteState] = []
    cls2 = cls.reshape(K, stride)
    nexthop2 = nexthop.reshape(K, stride)
    pathlen2 = pathlen.reshape(K, stride)
    for k, asn in enumerate(origin_asns):
        if array_state:
            # detached int32 rows: same values, no per-cell Python-int
            # materialization (the internet-scale hot path)
            state = RouteState(
                origin=int(origins[k]),
                cls=cls2[k, :n].copy(),
                nexthop=nexthop2[k, :n].copy(),
                pathlen=pathlen2[k, :n].copy(),
            )
        else:
            # plain-list rows: identical types to the reference state,
            # and the lazy path walks run at list speed
            state = RouteState(
                origin=int(origins[k]),
                cls=cls2[k, :n].tolist(),
                nexthop=nexthop2[k, :n].tolist(),
                pathlen=pathlen2[k, :n].tolist(),
            )
        leakers = leakers_by_origin.get(asn)
        if leakers:
            leak_indexes = {
                index.index[a] for a in leakers if a in index.index
            }
            _leak_pass(
                index, leak_indexes, state.cls, state.nexthop, state.pathlen
            )
        states.append(state)
    return states


@dataclass(frozen=True)
class _Geometry:
    """Cell-key layout of one batch block: ``cell = row * stride + node``.

    ``cell_dtype`` covers plain cell keys, ``comp_dtype`` the shifted
    ``(cell << shift) | source`` sort composites; they differ exactly
    when the composite range outgrows int32 but the cell range has not.
    """

    stride: int
    shift: int
    mask: int
    cell_dtype: object = None
    comp_dtype: object = None

    def compose(self, cell: "_np.ndarray", src_node: "_np.ndarray"):
        """``(cell << shift) | src_node`` in the composite dtype —
        widening *before* the shift, where int32 cells would wrap."""
        if cell.dtype != self.comp_dtype and self.comp_dtype is not None:
            cell = cell.astype(self.comp_dtype)
        return (cell << self.shift) | src_node


def _expand(
    adjacency: Tuple["_np.ndarray", "_np.ndarray"],
    frontier: "_np.ndarray",
    geom: _Geometry,
) -> Tuple["_np.ndarray", "_np.ndarray"]:
    """Expand frontier cells along a CSR adjacency.

    Returns ``(src, targets)``: one entry per (frontier cell, neighbor)
    pair — the source *cell key* and the neighbor *node index*.
    """
    indptr, indices = adjacency
    fn = frontier & geom.mask
    starts = indptr[fn]
    counts = indptr[fn + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = _np.empty(0, dtype=frontier.dtype)
        return empty, empty
    ends = _np.cumsum(counts, dtype=_np.int64)
    offsets = _np.arange(total, dtype=_np.int64) - _np.repeat(
        ends - counts, counts
    )
    targets = indices[_np.repeat(starts, counts) + offsets]
    return _np.repeat(frontier, counts), targets


def _claim(
    comp: "_np.ndarray",
    geom: _Geometry,
    cls: "_np.ndarray",
    nexthop: "_np.ndarray",
    pathlen: "_np.ndarray",
    route_cls: int,
    depth: int,
) -> "_np.ndarray":
    """Assign the best offer per still-unrouted cell; returns the cells won.

    ``comp`` packs ``(target cell << shift) | source node``; one
    in-place sort groups each cell's offers with the lowest source node
    (== lowest ASN, dense indexes being ASN-ordered) first, so group
    heads are the winners.  Cells already holding a route are dropped
    *after* head selection — cheaper than masking every candidate, and
    equivalent because offers only ever come from the current frontier.
    """
    comp.sort()
    key = comp >> geom.shift
    head = _np.empty(key.size, dtype=bool)
    head[0] = True
    _np.not_equal(key[1:], key[:-1], out=head[1:])
    heads = key[head]
    open_ = cls[heads] == NO_ROUTE
    wkey = heads[open_]
    if wkey.size == 0:
        return wkey
    cls[wkey] = route_cls
    nexthop[wkey] = comp[head][open_] & geom.mask
    pathlen[wkey] = depth
    return wkey


def _batch_sweep_up(
    csr: Csr,
    geom: _Geometry,
    frontier: "_np.ndarray",
    cls: "_np.ndarray",
    nexthop: "_np.ndarray",
    pathlen: "_np.ndarray",
) -> None:
    """Phase 1, batched: all K frontiers climb provider edges per level."""
    depth = 0
    while frontier.size:
        depth += 1
        src, targets = _expand(csr.providers, frontier, geom)
        if targets.size == 0:
            return
        src_node = src & geom.mask
        comp = geom.compose(src - src_node + targets, src_node)
        frontier = _claim(
            comp, geom, cls, nexthop, pathlen, CLS_CUSTOMER, depth
        )


def _batch_sweep_peers(
    csr: Csr,
    geom: _Geometry,
    cls: "_np.ndarray",
    nexthop: "_np.ndarray",
    pathlen: "_np.ndarray",
) -> None:
    """Phase 2, batched: one peering hop off every customer-route cell.

    The composite here also packs the *offered length* between cell and
    source node — the peer preference order is (shortest path, lowest
    peer ASN).  Lengths vary per offer, so this one sweep carries them
    in the sort key; it runs once per block, so the int64 composites
    cost nothing measurable.
    """
    holders = _np.nonzero((cls == CLS_ORIGIN) | (cls == CLS_CUSTOMER))[0]
    src, targets = _expand(csr.peers, holders, geom)
    if targets.size == 0:
        return
    src_node = src & geom.mask
    # this one sweep runs once per block, so its composites are plain
    # int64 regardless of the block geometry
    key = (src - src_node + targets).astype(_np.int64)
    offer_len = pathlen[src].astype(_np.int64) + 1
    lbits = int(offer_len.max()).bit_length()
    if (int(key.max()) << (lbits + geom.shift)) >= 2**62:
        raise CsrOverflowError(
            "peer-sweep composite would overflow 64 bits; lower batch_size"
        )
    comp = (((key << lbits) | offer_len) << geom.shift) | src_node
    comp.sort()
    cell = comp >> (geom.shift + lbits)
    head = _np.empty(cell.size, dtype=bool)
    head[0] = True
    _np.not_equal(cell[1:], cell[:-1], out=head[1:])
    heads = cell[head]
    # a cell holding an origin/customer route never takes a peer route;
    # filtering the few heads beats masking every candidate
    open_ = cls[heads] == NO_ROUTE
    wkey = heads[open_]
    if wkey.size == 0:
        return
    wcomp = comp[head][open_]
    cls[wkey] = CLS_PEER
    nexthop[wkey] = wcomp & geom.mask
    pathlen[wkey] = (wcomp >> geom.shift) & ((1 << lbits) - 1)


def _batch_sweep_down(
    csr: Csr,
    geom: _Geometry,
    cls: "_np.ndarray",
    nexthop: "_np.ndarray",
    pathlen: "_np.ndarray",
) -> None:
    """Phase 3, batched: routed cells descend customer edges by depth."""
    cell_dtype = geom.cell_dtype or cls.dtype
    routed = _np.nonzero(cls != NO_ROUTE)[0].astype(cell_dtype)
    order = _np.argsort(pathlen[routed])
    routed = routed[order]
    depths = pathlen[routed]
    max_initial = int(depths[-1]) if depths.size else -1

    depth = 0
    carry = _np.empty(0, dtype=cell_dtype)
    while depth <= max_initial or carry.size:
        lo = _np.searchsorted(depths, depth, side="left")
        hi = _np.searchsorted(depths, depth, side="right")
        frontier = _np.concatenate((routed[lo:hi], carry))
        depth += 1
        carry = _np.empty(0, dtype=cell_dtype)
        if frontier.size == 0:
            continue
        src, targets = _expand(csr.customers, frontier, geom)
        if targets.size == 0:
            continue
        src_node = src & geom.mask
        comp = geom.compose(src - src_node + targets, src_node)
        carry = _claim(
            comp, geom, cls, nexthop, pathlen, CLS_PROVIDER, depth
        )


def _sweep_up(
    index: GraphIndex,
    origin: int,
    cls: List[int],
    nexthop: List[int],
    pathlen: List[int],
) -> None:
    """Phase 1: customer routes climb provider edges, BFS by level.

    At each level every newly reached provider picks, among its
    customers reached at the previous level, the one with the lowest
    ASN — the deterministic tie-break.
    """
    cls[origin] = CLS_ORIGIN
    frontier = [origin]
    depth = 0
    while frontier:
        depth += 1
        candidates: Dict[int, int] = {}  # provider index -> best customer index
        for node in frontier:
            node_asn = index.asns[node]
            for provider in index.providers[node]:
                if cls[provider] != NO_ROUTE:
                    continue
                best = candidates.get(provider)
                if best is None or node_asn < index.asns[best]:
                    candidates[provider] = node
        next_frontier: List[int] = []
        for provider, via in candidates.items():
            cls[provider] = CLS_CUSTOMER
            nexthop[provider] = via
            pathlen[provider] = depth
            next_frontier.append(provider)
        frontier = next_frontier


def _sweep_peers(
    index: GraphIndex, cls: List[int], nexthop: List[int], pathlen: List[int]
) -> None:
    """Phase 2: one peering hop off every AS holding a customer route.

    Peer-learned routes are not re-exported to peers or providers, so a
    single relaxation suffices.  An AS prefers the peer route with the
    shortest path, then the lowest peer ASN.
    """
    n = len(index)
    best: Dict[int, Tuple[int, int]] = {}  # node -> (pathlen, peer index)
    for node in range(n):
        if cls[node] not in (CLS_ORIGIN, CLS_CUSTOMER):
            continue
        offer = (pathlen[node] + 1, node)
        for peer in index.peers[node]:
            if cls[peer] in (CLS_ORIGIN, CLS_CUSTOMER):
                continue  # peer prefers its customer route
            current = best.get(peer)
            if current is None or _offer_beats(index, offer, current):
                best[peer] = offer
    for node, (length, via) in best.items():
        cls[node] = CLS_PEER
        nexthop[node] = via
        pathlen[node] = length


def _offer_beats(
    index: GraphIndex, offer: Tuple[int, int], current: Tuple[int, int]
) -> bool:
    if offer[0] != current[0]:
        return offer[0] < current[0]
    return index.asns[offer[1]] < index.asns[current[1]]


def _better(
    index: GraphIndex,
    offer_cls: int,
    offer_len: int,
    offer_via: int,
    cls: List[int],
    pathlen: List[int],
    nexthop: List[int],
    node: int,
) -> bool:
    """Does the offered route beat ``node``'s current selection?

    Preference: route class (origin/customer/peer/provider), then path
    length, then lowest next-hop ASN — the same total order the normal
    sweeps implement implicitly.
    """
    current_cls = cls[node]
    if current_cls == NO_ROUTE:
        return True
    if current_cls == CLS_ORIGIN:
        return False
    if offer_cls != current_cls:
        return offer_cls < current_cls
    if offer_len != pathlen[node]:
        return offer_len < pathlen[node]
    current_via = nexthop[node]
    return index.asns[offer_via] < index.asns[current_via]


def _leak_pass(
    index: GraphIndex,
    leakers: Set[int],
    cls: List[int],
    nexthop: List[int],
    pathlen: List[int],
) -> None:
    """One round of route-leak convergence.

    Each leaker holding a peer- or provider-learned route exports it
    upward; receivers treat it as a customer route (they cannot tell),
    re-export it everywhere a customer route goes, and better routes
    displace worse ones.  A single deterministic pass (up, then peers,
    then down) is sufficient to materialize the leak's footprint.
    """
    seeds = sorted(
        node
        for node in leakers
        if cls[node] in (CLS_PEER, CLS_PROVIDER)
    )
    if not seeds:
        return
    seed_set = set(seeds)

    def on_chain(node: int, via: int) -> bool:
        """Is ``node`` already on the route ``via`` would hand it?

        BGP's loop prevention: a router rejects paths containing its
        own ASN.  Chains are short; walk with a hard cap for safety.
        """
        current = via
        for _ in range(len(cls) + 1):
            if current == node:
                return True
            if current == -1:
                return False
            current = nexthop[current]
        return True  # cap hit: treat as looped, refuse

    # upward: leaked routes climb provider chains as customer routes
    updated: List[int] = []
    frontier = list(seeds)
    while frontier:
        next_frontier: List[int] = []
        for node in sorted(frontier, key=lambda i: index.asns[i]):
            offer_len = pathlen[node] + 1
            for provider in index.providers[node]:
                if provider in seed_set:
                    continue  # the leaker keeps its original route
                if on_chain(provider, node):
                    continue
                if _better(index, CLS_CUSTOMER, offer_len, node,
                           cls, pathlen, nexthop, provider):
                    cls[provider] = CLS_CUSTOMER
                    nexthop[provider] = node
                    pathlen[provider] = offer_len
                    updated.append(provider)
                    next_frontier.append(provider)
        frontier = next_frontier

    # sideways: the (apparent) customer routes go to peers too
    peer_updated: List[int] = []
    for node in sorted(set(updated) | seed_set, key=lambda i: index.asns[i]):
        offer_len = pathlen[node] + 1
        for peer in index.peers[node]:
            if peer in seed_set or on_chain(peer, node):
                continue
            if _better(index, CLS_PEER, offer_len, node,
                       cls, pathlen, nexthop, peer):
                cls[peer] = CLS_PEER
                nexthop[peer] = node
                pathlen[peer] = offer_len
                peer_updated.append(peer)

    # downward: every AS whose selection changed re-exports to customers
    frontier = sorted(set(updated) | set(peer_updated) | seed_set,
                      key=lambda i: index.asns[i])
    while frontier:
        next_frontier = []
        for node in frontier:
            offer_len = pathlen[node] + 1
            for customer in index.customers[node]:
                if customer in seed_set or on_chain(customer, node):
                    continue
                if _better(index, CLS_PROVIDER, offer_len, node,
                           cls, pathlen, nexthop, customer):
                    cls[customer] = CLS_PROVIDER
                    nexthop[customer] = node
                    pathlen[customer] = offer_len
                    next_frontier.append(customer)
        frontier = sorted(set(next_frontier), key=lambda i: index.asns[i])


def _sweep_down(
    index: GraphIndex, cls: List[int], nexthop: List[int], pathlen: List[int]
) -> None:
    """Phase 3: selected routes descend customer edges.

    Every AS holding a route (customer, peer, or — recursively —
    provider class) exports it to its customers; a customer adopts a
    provider route only when it has nothing better.  Routes descend in
    order of path length (a bucket queue), so each AS settles on its
    shortest provider route, ties broken by lowest provider ASN.
    """
    n = len(index)
    buckets: List[List[int]] = []

    def put(length: int, node: int) -> None:
        while len(buckets) <= length:
            buckets.append([])
        buckets[length].append(node)

    for node in range(n):
        if cls[node] != NO_ROUTE:
            put(pathlen[node], node)

    depth = 0
    while depth < len(buckets):
        candidates: Dict[int, int] = {}  # customer -> best provider index
        for node in buckets[depth]:
            if pathlen[node] != depth:
                continue  # stale entry
            node_asn = index.asns[node]
            for customer in index.customers[node]:
                if cls[customer] != NO_ROUTE:
                    continue
                best = candidates.get(customer)
                if best is None or node_asn < index.asns[best]:
                    candidates[customer] = node
        for customer, via in candidates.items():
            cls[customer] = CLS_PROVIDER
            nexthop[customer] = via
            pathlen[customer] = depth + 1
            put(depth + 1, customer)
        depth += 1
