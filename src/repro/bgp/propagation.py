"""Gao–Rexford route propagation.

For one origin AS, computes the route every other AS selects under the
standard policy model:

* **preference** — customer-learned routes beat peer-learned routes
  beat provider-learned routes; within a class, shorter AS paths win,
  and ties break on the lowest next-hop ASN (deterministic);
* **export** — routes learned from customers (or originated) are
  exported to everyone; routes learned from peers or providers are
  exported only to customers.

These two rules produce exactly the valley-free paths whose shape the
paper's inference algorithm exploits, and the limited-visibility
artifacts (peering links seen only from below) its heuristics survive.

The implementation is three deterministic sweeps:

1. customer routes climb provider edges (level-synchronous BFS);
2. peer routes hop one peering edge off any AS with a customer route;
3. selected routes descend customer edges (bucketed by path length).

Results are flat arrays indexed by a dense AS index, so a full
propagation is O(V + E) per origin with small constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.relationships import RelClass
from repro.topology.model import ASGraph, ASType

# route classes as small ints for the flat arrays
NO_ROUTE = 0
CLS_ORIGIN = 1
CLS_CUSTOMER = 2
CLS_PEER = 3
CLS_PROVIDER = 4

_CLASS_TO_RELCLASS = {
    CLS_ORIGIN: RelClass.ORIGIN,
    CLS_CUSTOMER: RelClass.CUSTOMER,
    CLS_PEER: RelClass.PEER,
    CLS_PROVIDER: RelClass.PROVIDER,
}


class GraphIndex:
    """Dense-integer view of an :class:`ASGraph` for fast propagation.

    ASNs are mapped to indexes ``0..n-1``; adjacency is stored as lists
    of index lists.  Sibling links are treated as peering links for
    propagation purposes (the generator defaults to zero siblings).
    IXP route-server ASes do not participate in routing at all — they
    are data-plane artifacts injected later by the noise model.
    """

    def __init__(self, graph: ASGraph, restrict: Optional[Set[int]] = None):
        """``restrict`` limits routing to a subset of ASNs — used for the
        IPv6 plane, where only v6-enabled networks participate."""
        self.graph = graph
        routing_asns = sorted(
            asys.asn
            for asys in graph.ases()
            if asys.type is not ASType.IXP_RS
            and (restrict is None or asys.asn in restrict)
        )
        self.asns: List[int] = routing_asns
        self.index: Dict[int, int] = {asn: i for i, asn in enumerate(routing_asns)}
        n = len(routing_asns)
        self.providers: List[List[int]] = [[] for _ in range(n)]
        self.customers: List[List[int]] = [[] for _ in range(n)]
        self.peers: List[List[int]] = [[] for _ in range(n)]
        for asn in routing_asns:
            i = self.index[asn]
            self.providers[i] = sorted(
                self.index[p] for p in graph.providers[asn] if p in self.index
            )
            self.customers[i] = sorted(
                self.index[c] for c in graph.customers[asn] if c in self.index
            )
            peerish = graph.peers[asn] | graph.siblings[asn]
            self.peers[i] = sorted(
                self.index[p] for p in peerish if p in self.index
            )

    def __len__(self) -> int:
        return len(self.asns)


@dataclass
class RouteState:
    """Per-AS selected route for a single origin.

    ``cls[i]`` is one of the ``CLS_*``/``NO_ROUTE`` constants,
    ``nexthop[i]`` the index of the neighbor the route was learned from
    (-1 for the origin), ``pathlen[i]`` the AS-path length in edges.
    """

    origin: int  # dense index of the origin
    cls: List[int]
    nexthop: List[int]
    pathlen: List[int]

    def relclass(self, i: int) -> Optional[RelClass]:
        code = self.cls[i]
        if code == NO_ROUTE:
            return None
        return _CLASS_TO_RELCLASS[code]

    def path_from(self, index: GraphIndex, i: int) -> Optional[Tuple[int, ...]]:
        """AS path (ASNs, collector order: ``i`` first, origin last)."""
        if self.cls[i] == NO_ROUTE:
            return None
        hops: List[int] = []
        node = i
        while node != -1:
            hops.append(index.asns[node])
            if node == self.origin:
                break
            node = self.nexthop[node]
        return tuple(hops)


def propagate_origin(
    index: GraphIndex,
    origin_asn: int,
    leakers: Optional[Set[int]] = None,
) -> RouteState:
    """Compute every AS's selected route toward ``origin_asn``.

    ``leakers`` (ASNs) violate export policy: they re-announce their
    selected route to their providers even when it was learned from a
    peer or provider — the classic *route leak*.  Because leaked routes
    arrive at the provider looking like customer routes, they are
    highly preferred and can hijack selection far beyond the leaker;
    the resulting observed paths contain valleys, which is exactly the
    artifact the inference pipeline must survive.
    """
    n = len(index)
    origin = index.index[origin_asn]
    cls = [NO_ROUTE] * n
    nexthop = [-1] * n
    pathlen = [0] * n

    _sweep_up(index, origin, cls, nexthop, pathlen)
    _sweep_peers(index, cls, nexthop, pathlen)
    _sweep_down(index, cls, nexthop, pathlen)
    if leakers:
        leak_indexes = {
            index.index[asn] for asn in leakers if asn in index.index
        }
        _leak_pass(index, leak_indexes, cls, nexthop, pathlen)
    return RouteState(origin=origin, cls=cls, nexthop=nexthop, pathlen=pathlen)


def _sweep_up(
    index: GraphIndex,
    origin: int,
    cls: List[int],
    nexthop: List[int],
    pathlen: List[int],
) -> None:
    """Phase 1: customer routes climb provider edges, BFS by level.

    At each level every newly reached provider picks, among its
    customers reached at the previous level, the one with the lowest
    ASN — the deterministic tie-break.
    """
    cls[origin] = CLS_ORIGIN
    frontier = [origin]
    depth = 0
    while frontier:
        depth += 1
        candidates: Dict[int, int] = {}  # provider index -> best customer index
        for node in frontier:
            node_asn = index.asns[node]
            for provider in index.providers[node]:
                if cls[provider] != NO_ROUTE:
                    continue
                best = candidates.get(provider)
                if best is None or node_asn < index.asns[best]:
                    candidates[provider] = node
        next_frontier: List[int] = []
        for provider, via in candidates.items():
            cls[provider] = CLS_CUSTOMER
            nexthop[provider] = via
            pathlen[provider] = depth
            next_frontier.append(provider)
        frontier = next_frontier


def _sweep_peers(
    index: GraphIndex, cls: List[int], nexthop: List[int], pathlen: List[int]
) -> None:
    """Phase 2: one peering hop off every AS holding a customer route.

    Peer-learned routes are not re-exported to peers or providers, so a
    single relaxation suffices.  An AS prefers the peer route with the
    shortest path, then the lowest peer ASN.
    """
    n = len(index)
    best: Dict[int, Tuple[int, int]] = {}  # node -> (pathlen, peer index)
    for node in range(n):
        if cls[node] not in (CLS_ORIGIN, CLS_CUSTOMER):
            continue
        offer = (pathlen[node] + 1, node)
        for peer in index.peers[node]:
            if cls[peer] in (CLS_ORIGIN, CLS_CUSTOMER):
                continue  # peer prefers its customer route
            current = best.get(peer)
            if current is None or _offer_beats(index, offer, current):
                best[peer] = offer
    for node, (length, via) in best.items():
        cls[node] = CLS_PEER
        nexthop[node] = via
        pathlen[node] = length


def _offer_beats(
    index: GraphIndex, offer: Tuple[int, int], current: Tuple[int, int]
) -> bool:
    if offer[0] != current[0]:
        return offer[0] < current[0]
    return index.asns[offer[1]] < index.asns[current[1]]


def _better(
    index: GraphIndex,
    offer_cls: int,
    offer_len: int,
    offer_via: int,
    cls: List[int],
    pathlen: List[int],
    nexthop: List[int],
    node: int,
) -> bool:
    """Does the offered route beat ``node``'s current selection?

    Preference: route class (origin/customer/peer/provider), then path
    length, then lowest next-hop ASN — the same total order the normal
    sweeps implement implicitly.
    """
    current_cls = cls[node]
    if current_cls == NO_ROUTE:
        return True
    if current_cls == CLS_ORIGIN:
        return False
    if offer_cls != current_cls:
        return offer_cls < current_cls
    if offer_len != pathlen[node]:
        return offer_len < pathlen[node]
    current_via = nexthop[node]
    return index.asns[offer_via] < index.asns[current_via]


def _leak_pass(
    index: GraphIndex,
    leakers: Set[int],
    cls: List[int],
    nexthop: List[int],
    pathlen: List[int],
) -> None:
    """One round of route-leak convergence.

    Each leaker holding a peer- or provider-learned route exports it
    upward; receivers treat it as a customer route (they cannot tell),
    re-export it everywhere a customer route goes, and better routes
    displace worse ones.  A single deterministic pass (up, then peers,
    then down) is sufficient to materialize the leak's footprint.
    """
    seeds = sorted(
        node
        for node in leakers
        if cls[node] in (CLS_PEER, CLS_PROVIDER)
    )
    if not seeds:
        return
    seed_set = set(seeds)

    def on_chain(node: int, via: int) -> bool:
        """Is ``node`` already on the route ``via`` would hand it?

        BGP's loop prevention: a router rejects paths containing its
        own ASN.  Chains are short; walk with a hard cap for safety.
        """
        current = via
        for _ in range(len(cls) + 1):
            if current == node:
                return True
            if current == -1:
                return False
            current = nexthop[current]
        return True  # cap hit: treat as looped, refuse

    # upward: leaked routes climb provider chains as customer routes
    updated: List[int] = []
    frontier = list(seeds)
    while frontier:
        next_frontier: List[int] = []
        for node in sorted(frontier, key=lambda i: index.asns[i]):
            offer_len = pathlen[node] + 1
            for provider in index.providers[node]:
                if provider in seed_set:
                    continue  # the leaker keeps its original route
                if on_chain(provider, node):
                    continue
                if _better(index, CLS_CUSTOMER, offer_len, node,
                           cls, pathlen, nexthop, provider):
                    cls[provider] = CLS_CUSTOMER
                    nexthop[provider] = node
                    pathlen[provider] = offer_len
                    updated.append(provider)
                    next_frontier.append(provider)
        frontier = next_frontier

    # sideways: the (apparent) customer routes go to peers too
    peer_updated: List[int] = []
    for node in sorted(set(updated) | seed_set, key=lambda i: index.asns[i]):
        offer_len = pathlen[node] + 1
        for peer in index.peers[node]:
            if peer in seed_set or on_chain(peer, node):
                continue
            if _better(index, CLS_PEER, offer_len, node,
                       cls, pathlen, nexthop, peer):
                cls[peer] = CLS_PEER
                nexthop[peer] = node
                pathlen[peer] = offer_len
                peer_updated.append(peer)

    # downward: every AS whose selection changed re-exports to customers
    frontier = sorted(set(updated) | set(peer_updated) | seed_set,
                      key=lambda i: index.asns[i])
    while frontier:
        next_frontier = []
        for node in frontier:
            offer_len = pathlen[node] + 1
            for customer in index.customers[node]:
                if customer in seed_set or on_chain(customer, node):
                    continue
                if _better(index, CLS_PROVIDER, offer_len, node,
                           cls, pathlen, nexthop, customer):
                    cls[customer] = CLS_PROVIDER
                    nexthop[customer] = node
                    pathlen[customer] = offer_len
                    next_frontier.append(customer)
        frontier = sorted(set(next_frontier), key=lambda i: index.asns[i])


def _sweep_down(
    index: GraphIndex, cls: List[int], nexthop: List[int], pathlen: List[int]
) -> None:
    """Phase 3: selected routes descend customer edges.

    Every AS holding a route (customer, peer, or — recursively —
    provider class) exports it to its customers; a customer adopts a
    provider route only when it has nothing better.  Routes descend in
    order of path length (a bucket queue), so each AS settles on its
    shortest provider route, ties broken by lowest provider ASN.
    """
    n = len(index)
    buckets: List[List[int]] = []

    def put(length: int, node: int) -> None:
        while len(buckets) <= length:
            buckets.append([])
        buckets[length].append(node)

    for node in range(n):
        if cls[node] != NO_ROUTE:
            put(pathlen[node], node)

    depth = 0
    while depth < len(buckets):
        candidates: Dict[int, int] = {}  # customer -> best provider index
        for node in buckets[depth]:
            if pathlen[node] != depth:
                continue  # stale entry
            node_asn = index.asns[node]
            for customer in index.customers[node]:
                if cls[customer] != NO_ROUTE:
                    continue
                best = candidates.get(customer)
                if best is None or node_asn < index.asns[best]:
                    candidates[customer] = node
        for customer, via in candidates.items():
            cls[customer] = CLS_PROVIDER
            nexthop[customer] = via
            pathlen[customer] = depth + 1
            put(depth + 1, customer)
        depth += 1
