"""BGP substrate: policy routing, vantage points, and RIB collection.

Implements Gao–Rexford route propagation over a ground-truth AS graph
(prefer customer > peer > provider routes; export customer routes to
everyone, peer/provider routes to customers only), and a RouteViews-like
collector that records each vantage point's best AS path per prefix.

The output — a corpus of AS paths plus per-prefix RIB entries carrying
BGP communities — is the only thing the inference algorithm ever sees,
exactly as in the paper.
"""

from repro.bgp.propagation import (
    GraphIndex,
    PropagationConfig,
    RouteState,
    propagate_batch,
    propagate_origin,
)
from repro.bgp.collector import (
    Collector,
    CollectorConfig,
    PathCorpus,
    RibEntry,
    VantagePoint,
    collect,
    shutdown_pool,
    shutdown_worker_pool,
)
from repro.bgp.noise import NoiseConfig

__all__ = [
    "GraphIndex",
    "PropagationConfig",
    "RouteState",
    "propagate_batch",
    "propagate_origin",
    "Collector",
    "CollectorConfig",
    "PathCorpus",
    "RibEntry",
    "VantagePoint",
    "collect",
    "shutdown_pool",
    "shutdown_worker_pool",
    "NoiseConfig",
]
