"""Measurement-noise model for observed AS paths.

Real BGP data is not a clean print-out of the routing state: ASes
prepend their own ASN for traffic engineering, IXP route servers leave
their ASN in paths, and origins sometimes *poison* announcements with a
third-party ASN.  The paper's sanitization stage exists to strip or
discard exactly these artifacts, so the substrate must produce them.

Noise is applied at path-materialization time, deterministically from
the scenario seed, so corpora are reproducible.  (Prepending in the
real world also influences path *selection*; we apply it after
selection, a simplification that preserves what matters here — the
pattern the sanitizer must remove.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.relationships import canonical_pair
from repro.topology.model import ASGraph


@dataclass
class NoiseConfig:
    """Rates for each artifact class; zero disables the artifact."""

    seed: int = 1
    # whether IXP route servers leave their ASN in observed paths
    ixp_insertion: bool = True
    # fraction of (AS, neighbor) export adjacencies that prepend
    prepend_prob: float = 0.03
    max_prepend: int = 3
    # fraction of materialized paths that carry an injected clique ASN
    # between two genuine hops (the "poisoned path" artifact)
    poison_prob: float = 0.002
    # fraction of paths where the origin appears twice (loop artifact —
    # e.g. BGP poisoning for measurement, discarded by sanitization)
    loop_prob: float = 0.001
    # fraction of paths corrupted with a reserved/private ASN
    reserved_asn_prob: float = 0.0005

    @classmethod
    def none(cls) -> "NoiseConfig":
        """A configuration with every artifact turned off."""
        return cls(ixp_insertion=False, prepend_prob=0.0, poison_prob=0.0,
                   loop_prob=0.0, reserved_asn_prob=0.0)


#: a private-use ASN occasionally leaking into paths
RESERVED_ASN = 64512


class PathNoiser:
    """Applies IXP insertion, prepending, poisoning and loop artifacts.

    Prepend behaviour is a deterministic function of the (AS, next-hop)
    pair, mirroring per-session prepend policy; the per-path artifacts
    (poison/loop/reserved) are drawn from the corpus RNG.
    """

    def __init__(
        self,
        graph: Optional[ASGraph],
        config: NoiseConfig,
        rng_seed: Optional[int] = None,
        prepend_cache: Optional[Dict[Tuple[int, int], int]] = None,
        clique: Optional[Sequence[int]] = None,
        edge_cache: Optional[Dict[Tuple[int, int], List[int]]] = None,
        via_ixp: Optional[Dict[Tuple[int, int], int]] = None,
    ):
        """``rng_seed`` overrides the seed of the per-path artifact RNG
        only (parallel collection derives one per origin); the
        per-adjacency prepend policy always hashes ``config.seed`` so a
        session prepends identically regardless of which origin's route
        it exports.

        ``prepend_cache``, ``clique`` and ``edge_cache`` let a caller
        constructing one noiser per origin (the collector) share the
        memoized prepend policy, the precomputed clique, and the
        per-edge expansion segments across all of them.  All three are
        deterministic functions of the graph and ``config.seed``, never
        of the per-origin RNG, so sharing cannot change any emitted
        path.

        ``via_ixp`` supplies the IXP link map directly; with both it
        and ``clique`` given, ``graph`` may be ``None`` — how
        shared-memory collection workers noise paths without ever
        holding a topology object.
        """
        self._config = config
        self._rng = random.Random(
            config.seed if rng_seed is None else rng_seed
        )
        if via_ixp is None:
            via_ixp = getattr(graph, "via_ixp", {}) if graph is not None else {}
        self._via_ixp: Dict[Tuple[int, int], int] = (
            via_ixp if config.ixp_insertion else {}
        )
        if clique is None:
            clique = graph.clique_asns() if graph is not None else []
        self._clique = clique
        self._prepend_cache: Dict[Tuple[int, int], int] = (
            {} if prepend_cache is None else prepend_cache
        )
        # (prev hop, hop) -> the observed segment that hop contributes
        self._edge_cache: Dict[Tuple[int, int], List[int]] = (
            {} if edge_cache is None else edge_cache
        )

    def _prepend_count(self, asn: int, toward: int) -> int:
        """How many extra copies ``asn`` inserts when exporting to ``toward``."""
        key = (asn, toward)
        count = self._prepend_cache.get(key)
        if count is None:
            # deterministic per adjacency: hash into a local RNG
            local = random.Random((self._config.seed << 32) ^ (asn << 16) ^ toward)
            if local.random() < self._config.prepend_prob:
                count = local.randint(1, max(1, self._config.max_prepend))
            else:
                count = 0
            self._prepend_cache[key] = count
        return count

    def _edge_segment(self, prev: int, asn: int) -> List[int]:
        """What ``asn`` contributes to a path observed after ``prev``.

        The deterministic artifacts — the route-server ASN sitting on
        the ``prev``–``asn`` edge, then ``asn`` itself, then ``asn``'s
        prepends toward ``prev`` — depend only on the directed edge,
        never on which origin's route crosses it, so segments memoize
        per ``(prev, asn)`` pair.
        """
        segment: List[int] = []
        rs = self._via_ixp.get(canonical_pair(prev, asn))
        if rs is not None:
            segment.append(rs)
        segment.append(asn)
        if self._config.prepend_prob > 0:
            # prepends show up after the first occurrence in collector
            # order
            segment.extend([asn] * self._prepend_count(asn, prev))
        return segment

    def apply(self, path: Tuple[int, ...]) -> Tuple[int, ...]:
        """Return the observed form of a true AS path."""
        if not path:
            return ()
        cfg = self._config
        edges = self._edge_cache
        observed: List[int] = [path[0]]
        prev = path[0]
        for asn in path[1:]:
            segment = edges.get((prev, asn))
            if segment is None:
                segment = self._edge_segment(prev, asn)
                edges[(prev, asn)] = segment
            observed.extend(segment)
            prev = asn

        if cfg.poison_prob > 0 and len(observed) >= 3 and self._clique:
            if self._rng.random() < cfg.poison_prob:
                spot = self._rng.randrange(1, len(observed) - 1)
                poison = self._rng.choice(self._clique)
                if poison not in observed:
                    observed.insert(spot, poison)
        if cfg.loop_prob > 0 and len(observed) >= 3:
            if self._rng.random() < cfg.loop_prob:
                # origin ASN re-appears earlier in the path (loop artifact)
                observed.insert(self._rng.randrange(1, len(observed) - 1),
                                observed[-1])
        if cfg.reserved_asn_prob > 0 and len(observed) >= 2:
            if self._rng.random() < cfg.reserved_asn_prob:
                observed.insert(self._rng.randrange(1, len(observed)),
                                RESERVED_ASN)
        return tuple(observed)
