"""Synthetic AS-level Internet topology with planted ground truth.

The generator produces a hierarchical AS graph — a fully meshed clique
of tier-1 transit providers, regional transit tiers, and a long tail of
access/content/enterprise/stub networks — with every link labeled with
its true business relationship.  The BGP simulator propagates routes
over this graph; the inference algorithm only ever sees AS paths, and
the planted labels become the validation oracle.
"""

from repro.topology.model import AS, ASGraph, ASType, TopologyError
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.evolution import EvolutionConfig, generate_series

__all__ = [
    "AS",
    "ASGraph",
    "ASType",
    "TopologyError",
    "GeneratorConfig",
    "generate_topology",
    "EvolutionConfig",
    "generate_series",
]
