"""Ground-truth AS graph model.

:class:`ASGraph` stores the ASes, their prefixes, and the labeled links
(provider→customer, peer, sibling).  It enforces the structural
invariants the paper's algorithm assumes about the real Internet:

* no cycles in the provider→customer DAG;
* at most one relationship per AS pair;
* an AS never peers with or provides transit to itself.

The graph is the oracle for validation and the substrate the BGP
simulator propagates routes over.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.net.prefix import Prefix
from repro.relationships import Relationship, canonical_pair


class TopologyError(ValueError):
    """Raised when an operation would violate a structural invariant."""


class ASType(enum.Enum):
    """Business role of an AS; drives degree, prefix count and peering."""

    CLIQUE = "clique"  # tier-1 transit-free provider
    LARGE_TRANSIT = "large_transit"  # tier-2 backbone
    SMALL_TRANSIT = "small_transit"  # regional transit
    ACCESS = "access"  # eyeball/broadband network
    CONTENT = "content"  # content/CDN network, peers widely
    ENTERPRISE = "enterprise"  # multihomed corporate network
    STUB = "stub"  # single-homed edge network
    IXP_RS = "ixp_rs"  # IXP route server (path artifact, not a business AS)


#: AS types that normally provide transit to others.
TRANSIT_TYPES = frozenset(
    {ASType.CLIQUE, ASType.LARGE_TRANSIT, ASType.SMALL_TRANSIT}
)


@dataclass
class AS:
    """One autonomous system with its role, region and originated space.

    ``prefixes6`` is non-empty for networks that have deployed IPv6;
    the dual-plane (congruence) experiments route the v6 plane over the
    subgraph of such networks.
    """

    asn: int
    type: ASType
    region: int = 0
    prefixes: List[Prefix] = field(default_factory=list)
    prefixes6: List = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise TopologyError(f"ASN must be positive, got {self.asn}")

    @property
    def num_addresses(self) -> int:
        return sum(p.num_addresses for p in self.prefixes)

    @property
    def v6_enabled(self) -> bool:
        return bool(self.prefixes6)


class ASGraph:
    """Mutable AS graph with labeled relationships and invariant checks."""

    def __init__(self) -> None:
        self._ases: Dict[int, AS] = {}
        self.providers: Dict[int, Set[int]] = {}
        self.customers: Dict[int, Set[int]] = {}
        self.peers: Dict[int, Set[int]] = {}
        self.siblings: Dict[int, Set[int]] = {}
        self._links: Dict[Tuple[int, int], Relationship] = {}
        # for P2C links, remembers which member of the canonical pair is
        # the provider
        self._link_provider: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------

    def add_as(self, asys: AS) -> None:
        if asys.asn in self._ases:
            raise TopologyError(f"AS{asys.asn} already present")
        self._ases[asys.asn] = asys
        self.providers[asys.asn] = set()
        self.customers[asys.asn] = set()
        self.peers[asys.asn] = set()
        self.siblings[asys.asn] = set()

    def get_as(self, asn: int) -> AS:
        try:
            return self._ases[asn]
        except KeyError:
            raise TopologyError(f"unknown AS{asn}") from None

    def __contains__(self, asn: int) -> bool:
        return asn in self._ases

    def __len__(self) -> int:
        return len(self._ases)

    def ases(self) -> Iterator[AS]:
        return iter(self._ases.values())

    def asns(self) -> List[int]:
        return sorted(self._ases)

    # ------------------------------------------------------------------
    # link management
    # ------------------------------------------------------------------

    def add_p2c(self, provider: int, customer: int) -> None:
        """Add a provider→customer link, refusing cycles and duplicates."""
        self._check_new_link(provider, customer)
        if self._creates_p2c_cycle(provider, customer):
            raise TopologyError(
                f"p2c {provider}->{customer} would create a provider cycle"
            )
        key = canonical_pair(provider, customer)
        self._links[key] = Relationship.P2C
        self._link_provider[key] = provider
        self.customers[provider].add(customer)
        self.providers[customer].add(provider)

    def add_p2c_unchecked(self, provider: int, customer: int) -> None:
        """Add a provider→customer link without the per-link cycle scan.

        The BFS in :meth:`add_p2c` is what makes bulk wiring quadratic:
        at internet scale it revisits most of the graph for every link.
        Callers that wire strictly tier-by-tier (providers always drawn
        from tiers created earlier) produce a DAG by construction, so
        they may skip the scan and rely on the global cycle check in
        :meth:`validate_invariants` instead.  Duplicate/self/unknown
        links are still refused.
        """
        self._check_new_link(provider, customer)
        key = canonical_pair(provider, customer)
        self._links[key] = Relationship.P2C
        self._link_provider[key] = provider
        self.customers[provider].add(customer)
        self.providers[customer].add(provider)

    def add_p2p(self, a: int, b: int) -> None:
        """Add a settlement-free peering link."""
        self._check_new_link(a, b)
        self._links[canonical_pair(a, b)] = Relationship.P2P
        self.peers[a].add(b)
        self.peers[b].add(a)

    def add_p2p_if_absent(self, a: int, b: int) -> bool:
        """One-lookup peering insert for bulk wiring.

        Returns ``False`` (instead of raising) when the pair is already
        linked, folding the caller's would-be ``relationship()`` probe
        and the insert into a single dict lookup.  The caller vouches
        that both ASes exist and ``a != b``.
        """
        key = (a, b) if a < b else (b, a)  # canonical_pair, sans the call
        if key in self._links:
            return False
        self._links[key] = Relationship.P2P
        self.peers[a].add(b)
        self.peers[b].add(a)
        return True

    def add_s2s(self, a: int, b: int) -> None:
        """Add a sibling link (common ownership)."""
        self._check_new_link(a, b)
        self._links[canonical_pair(a, b)] = Relationship.S2S
        self.siblings[a].add(b)
        self.siblings[b].add(a)

    def _check_new_link(self, a: int, b: int) -> None:
        if a == b:
            raise TopologyError(f"self-link on AS{a}")
        if a not in self._ases or b not in self._ases:
            raise TopologyError(f"link references unknown AS: {a} or {b}")
        if canonical_pair(a, b) in self._links:
            raise TopologyError(f"link {a}-{b} already labeled")

    def _creates_p2c_cycle(self, provider: int, customer: int) -> bool:
        """Would ``provider -> customer`` close a cycle of p2c links?"""
        if provider == customer:
            return True
        # cycle iff provider is reachable from customer via p2c edges
        queue = deque([customer])
        seen = {customer}
        while queue:
            node = queue.popleft()
            for nxt in self.customers[node]:
                if nxt == provider:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    queue.append(nxt)
        return False

    def remove_link(self, a: int, b: int) -> None:
        key = canonical_pair(a, b)
        rel = self._links.pop(key, None)
        if rel is None:
            raise TopologyError(f"no link {a}-{b}")
        if rel is Relationship.P2C:
            provider = self._link_provider.pop(key)
            customer = b if provider == a else a
            self.customers[provider].discard(customer)
            self.providers[customer].discard(provider)
        elif rel is Relationship.P2P:
            self.peers[a].discard(b)
            self.peers[b].discard(a)
        else:
            self.siblings[a].discard(b)
            self.siblings[b].discard(a)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def relationship(self, a: int, b: int) -> Optional[Relationship]:
        """Relationship label of the a—b link, None when not linked."""
        return self._links.get(canonical_pair(a, b))

    def provider_of(self, a: int, b: int) -> Optional[int]:
        """For a p2c link, which endpoint is the provider; else None."""
        key = canonical_pair(a, b)
        if self._links.get(key) is not Relationship.P2C:
            return None
        return self._link_provider[key]

    def links(self) -> Iterator[Tuple[int, int, Relationship]]:
        """Iterate links as ``(a, b, rel)``; for P2C, ``a`` is the provider."""
        for key, rel in self._links.items():
            if rel is Relationship.P2C:
                provider = self._link_provider[key]
                customer = key[1] if provider == key[0] else key[0]
                yield provider, customer, rel
            else:
                yield key[0], key[1], rel

    def num_links(self) -> int:
        return len(self._links)

    def neighbors(self, asn: int) -> Set[int]:
        """All linked neighbors of ``asn`` regardless of relationship."""
        return (
            self.providers[asn]
            | self.customers[asn]
            | self.peers[asn]
            | self.siblings[asn]
        )

    def degree(self, asn: int) -> int:
        return len(self.neighbors(asn))

    def clique_asns(self) -> List[int]:
        """The planted tier-1 clique, sorted."""
        return sorted(
            a.asn for a in self._ases.values() if a.type is ASType.CLIQUE
        )

    def ixp_asns(self) -> FrozenSet[int]:
        """ASNs of IXP route servers (path artifacts to be sanitized)."""
        return frozenset(
            a.asn for a in self._ases.values() if a.type is ASType.IXP_RS
        )

    def transit_free(self) -> List[int]:
        """ASes with no providers (should be exactly the clique + isolates)."""
        return sorted(
            asn for asn in self._ases if not self.providers[asn]
        )

    def customer_cone(self, asn: int) -> Set[int]:
        """Ground-truth recursive customer cone, including ``asn`` itself."""
        cone = {asn}
        queue = deque([asn])
        while queue:
            node = queue.popleft()
            for customer in self.customers[node]:
                if customer not in cone:
                    cone.add(customer)
                    queue.append(customer)
        return cone

    def prefix_origins(self) -> Dict[Prefix, int]:
        """Map every originated prefix to its origin ASN."""
        origins: Dict[Prefix, int] = {}
        for asys in self._ases.values():
            for prefix in asys.prefixes:
                if prefix in origins:
                    raise TopologyError(
                        f"{prefix} originated by both AS{origins[prefix]} "
                        f"and AS{asys.asn}"
                    )
                origins[prefix] = asys.asn
        return origins

    def prefix6_origins(self) -> Dict[object, int]:
        """Map every originated IPv6 prefix to its origin ASN."""
        origins: Dict[object, int] = {}
        for asys in self._ases.values():
            for prefix in asys.prefixes6:
                if prefix in origins:
                    raise TopologyError(
                        f"{prefix} originated by both AS{origins[prefix]} "
                        f"and AS{asys.asn}"
                    )
                origins[prefix] = asys.asn
        return origins

    def v6_asns(self) -> Set[int]:
        """ASNs that have deployed IPv6."""
        return {a.asn for a in self._ases.values() if a.v6_enabled}

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------

    def validate_invariants(self) -> List[str]:
        """Return a list of invariant violations (empty when healthy)."""
        problems: List[str] = []
        # every non-clique, non-IXP AS must have a provider (reachability)
        for asys in self._ases.values():
            if asys.type in (ASType.CLIQUE, ASType.IXP_RS):
                continue
            if not self.providers[asys.asn]:
                problems.append(f"AS{asys.asn} ({asys.type.value}) has no provider")
        # the clique must be fully meshed with p2p links
        clique = self.clique_asns()
        for i, a in enumerate(clique):
            for b in clique[i + 1:]:
                if self.relationship(a, b) is not Relationship.P2P:
                    problems.append(f"clique pair {a}-{b} not p2p")
        # clique members must be transit-free
        for asn in clique:
            if self.providers[asn]:
                problems.append(f"clique AS{asn} has providers")
        # p2c DAG acyclicity (defensive; add_p2c already refuses cycles)
        state: Dict[int, int] = {}

        def has_cycle(start: int) -> bool:
            stack: List[Tuple[int, Iterator[int]]] = [(start, iter(self.customers[start]))]
            state[start] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    mark = state.get(nxt, 0)
                    if mark == 1:
                        return True
                    if mark == 0:
                        state[nxt] = 1
                        stack.append((nxt, iter(self.customers[nxt])))
                        advanced = True
                        break
                if not advanced:
                    state[node] = 2
                    stack.pop()
            return False

        for asn in self._ases:
            if state.get(asn, 0) == 0 and has_cycle(asn):
                problems.append("p2c cycle detected")
                break
        return problems
